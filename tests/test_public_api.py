"""Meta-tests on the public API surface.

Enforces the documentation deliverable mechanically: every public
module, class and function carries a docstring; every name a module
exports through ``__all__`` actually resolves; and the top-level
package re-exports the primary entry points.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.split(".")[-1].startswith("_")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} undocumented"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    """Every exported class/function has a docstring, and every public
    method on exported classes does too."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if item.__module__ != module_name:
            continue  # re-export; documented at definition site
        assert inspect.getdoc(item), f"{module_name}.{name}"
        if inspect.isclass(item):
            for method_name in dir(item):
                if method_name.startswith("_"):
                    continue
                member = inspect.getattr_static(item, method_name)
                if not isinstance(member, (staticmethod, classmethod)) and not (
                    inspect.isfunction(member)
                ):
                    continue
                # getdoc resolves docstrings inherited from the base
                # class, so a documented-ABC override passes.
                assert inspect.getdoc(getattr(item, method_name)), (
                    f"{module_name}.{name}.{method_name}"
                )


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "name",
        [
            "ProtocolSuite",
            "run_intersection",
            "run_intersection_size",
            "run_equijoin",
            "run_equijoin_size",
            "join_tables",
            "Table",
            "ValueMultiset",
        ],
    )
    def test_primary_entry_points(self, name):
        assert hasattr(repro, name)
        assert name in repro.__all__

    def test_subpackages_importable(self):
        for sub in ("crypto", "db", "net", "protocols", "circuits",
                    "analysis", "apps", "workloads"):
            importlib.import_module(f"repro.{sub}")
