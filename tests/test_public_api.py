"""Meta-tests on the public API surface.

Enforces the documentation deliverable mechanically: every public
module, class and function carries a docstring; every name a module
exports through ``__all__`` actually resolves; and the top-level
package re-exports the primary entry points.
"""

from __future__ import annotations

import importlib
import importlib.util
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parents[1]
API_REFERENCE = REPO_ROOT / "docs" / "API.md"

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.split(".")[-1].startswith("_")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} undocumented"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    """Every exported class/function has a docstring, and every public
    method on exported classes does too."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if item.__module__ != module_name:
            continue  # re-export; documented at definition site
        assert inspect.getdoc(item), f"{module_name}.{name}"
        if inspect.isclass(item):
            for method_name in dir(item):
                if method_name.startswith("_"):
                    continue
                member = inspect.getattr_static(item, method_name)
                if not isinstance(member, (staticmethod, classmethod)) and not (
                    inspect.isfunction(member)
                ):
                    continue
                # getdoc resolves docstrings inherited from the base
                # class, so a documented-ABC override passes.
                assert inspect.getdoc(getattr(item, method_name)), (
                    f"{module_name}.{name}.{method_name}"
                )


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "name",
        [
            "ProtocolSuite",
            "run_intersection",
            "run_intersection_size",
            "run_equijoin",
            "run_equijoin_size",
            "join_tables",
            "Table",
            "ValueMultiset",
        ],
    )
    def test_primary_entry_points(self, name):
        assert hasattr(repro, name)
        assert name in repro.__all__

    def test_subpackages_importable(self):
        for sub in ("crypto", "db", "net", "protocols", "circuits",
                    "analysis", "apps", "workloads"):
            importlib.import_module(f"repro.{sub}")


#: The one-call facade: the documented way in and out of the package.
FACADE = ["run", "serve", "connect", "RunResult", "ServeResult",
          "ConnectResult"]

#: Packages whose ``__all__`` is the audited public surface.
AUDITED = ["repro", "repro.net", "repro.protocols", "repro.crypto"]


class TestFacadeSurface:
    """The facade, ``docs/API.md`` and ``__all__`` must agree."""

    @pytest.mark.parametrize("name", FACADE)
    def test_facade_is_the_top_level_export(self, name):
        assert name in repro.__all__
        api = importlib.import_module("repro.api")
        assert getattr(repro, name) is getattr(api, name)
        assert name in api.__all__

    def test_facade_leads_the_export_list(self):
        """The redesigned entry points come first: the quickstart names
        a reader sees are the first names ``__all__`` advertises."""
        assert repro.__all__[: len(FACADE)] == FACADE

    @pytest.mark.parametrize("module_name", AUDITED)
    def test_all_has_no_duplicates(self, module_name):
        module = importlib.import_module(module_name)
        exports = list(getattr(module, "__all__"))
        assert len(exports) == len(set(exports)), f"{module_name}.__all__"

    def test_removed_tcp_shims_stay_removed(self):
        net = importlib.import_module("repro.net")
        for name in net.__all__:
            assert not (
                name.startswith(("serve_", "connect_"))
                and name not in (
                    "serve_resumable_sender", "connect_resumable_receiver",
                    "connect_receiver_async",  # protocol-generic, async
                )
            ), f"per-protocol shim {name} resurfaced in repro.net.__all__"

    def _generated_reference(self) -> str:
        spec = importlib.util.spec_from_file_location(
            "make_api_reference",
            REPO_ROOT / "benchmarks" / "make_api_reference.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.generate()

    def test_api_reference_matches_the_code(self):
        """``docs/API.md`` is exactly what the generator derives from
        the live ``__all__`` lists - docs and surface cannot drift."""
        assert API_REFERENCE.read_text() == self._generated_reference()

    def test_facade_documented_in_api_reference(self):
        text = API_REFERENCE.read_text()
        assert "## `repro.api`" in text
        section = text.split("## `repro.api`", 1)[1].split("\n## ", 1)[0]
        for name in FACADE:
            assert name in section, f"facade {name} missing from docs/API.md"
        for removed in ("serve_intersection_sender",
                        "connect_equijoin_receiver"):
            assert removed not in text
