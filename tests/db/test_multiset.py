"""Tests for value multisets and their duplicate structure."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.multiset import ValueMultiset
from repro.db.table import Table

small_values = st.lists(st.integers(min_value=0, max_value=20), max_size=60)


class TestBasics:
    def test_from_values(self):
        ms = ValueMultiset.from_values(["a", "b", "a"])
        assert ms.multiplicity("a") == 2
        assert ms.multiplicity("b") == 1
        assert ms.multiplicity("zzz") == 0

    def test_from_table(self):
        t = Table(("x",), [(1,), (1,), (2,)])
        ms = ValueMultiset.from_table(t, "x")
        assert ms.multiplicity(1) == 2

    def test_len_counts_occurrences(self):
        assert len(ValueMultiset.from_values("aab")) == 3

    def test_distinct(self):
        ms = ValueMultiset.from_values("aab")
        assert ms.distinct() == {"a", "b"}
        assert ms.distinct_size == 2

    def test_iteration_expands(self):
        ms = ValueMultiset.from_values([1, 1, 2])
        assert sorted(ms) == [1, 1, 2]

    def test_contains(self):
        ms = ValueMultiset.from_values([1])
        assert 1 in ms and 2 not in ms


class TestDuplicateStructure:
    def test_duplicate_distribution(self):
        ms = ValueMultiset.from_values(["a", "a", "b", "b", "c"])
        assert ms.duplicate_distribution() == {1: 1, 2: 2}

    def test_partition_by_count(self):
        ms = ValueMultiset.from_values(["a", "a", "b", "b", "c"])
        assert ms.partition_by_count() == {2: {"a", "b"}, 1: {"c"}}

    def test_distribution_sorted_keys(self):
        ms = ValueMultiset.from_values(["a"] * 5 + ["b"] + ["c"] * 3)
        assert list(ms.duplicate_distribution()) == [1, 3, 5]

    @given(small_values)
    @settings(max_examples=200)
    def test_distribution_consistency(self, values):
        ms = ValueMultiset.from_values(values)
        dist = ms.duplicate_distribution()
        # Sum of d * |V(d)| must equal total occurrences.
        assert sum(d * n for d, n in dist.items()) == len(values)
        # Sum of |V(d)| must equal distinct count.
        assert sum(dist.values()) == ms.distinct_size


class TestJointStatistics:
    def test_join_size_example(self):
        ms_a = ValueMultiset.from_values(["x", "x", "y"])
        ms_b = ValueMultiset.from_values(["x", "y", "y", "z"])
        assert ms_a.join_size(ms_b) == 2 * 1 + 1 * 2

    def test_join_size_symmetric(self):
        ms_a = ValueMultiset.from_values([1, 1, 2, 3])
        ms_b = ValueMultiset.from_values([1, 3, 3])
        assert ms_a.join_size(ms_b) == ms_b.join_size(ms_a)

    def test_intersection_size(self):
        ms_a = ValueMultiset.from_values([1, 1, 2])
        ms_b = ValueMultiset.from_values([2, 3])
        assert ms_a.intersection_size(ms_b) == 1

    @given(small_values, small_values)
    @settings(max_examples=200)
    def test_join_size_matches_nested_loop(self, a, b):
        ms_a, ms_b = ValueMultiset.from_values(a), ValueMultiset.from_values(b)
        brute = sum(1 for x in a for y in b if x == y)
        assert ms_a.join_size(ms_b) == brute

    @given(small_values, small_values)
    @settings(max_examples=200)
    def test_intersection_size_matches_sets(self, a, b):
        ms_a, ms_b = ValueMultiset.from_values(a), ValueMultiset.from_values(b)
        assert ms_a.intersection_size(ms_b) == len(set(a) & set(b))
