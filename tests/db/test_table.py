"""Tests for the relational table substrate."""

from __future__ import annotations

import pytest

from repro.db.table import Table


@pytest.fixture()
def people():
    return Table(
        ("id", "name", "city"),
        [
            (1, "alice", "sj"),
            (2, "bob", "sf"),
            (3, "carol", "sj"),
            (4, "alice", "la"),
        ],
        name="people",
    )


class TestConstruction:
    def test_basic(self, people):
        assert len(people) == 4
        assert people.columns == ("id", "name", "city")

    def test_rows_normalized_to_tuples(self):
        t = Table(("a",), [[1], [2]])
        assert all(isinstance(row, tuple) for row in t.rows)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table(("a", "a"), [])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Table(("a", "b"), [(1,)])

    def test_from_dicts(self):
        t = Table.from_dicts(("x", "y"), [{"x": 1, "y": 2}, {"y": 4, "x": 3}])
        assert t.rows == [(1, 2), (3, 4)]

    def test_from_dicts_missing_key(self):
        with pytest.raises(KeyError):
            Table.from_dicts(("x", "y"), [{"x": 1}])


class TestIntrospection:
    def test_column_values_with_duplicates(self, people):
        assert people.column_values("name") == ["alice", "bob", "carol", "alice"]

    def test_distinct_values(self, people):
        assert people.distinct_values("name") == {"alice", "bob", "carol"}

    def test_column_index_error(self, people):
        with pytest.raises(KeyError):
            people.column_index("missing")

    def test_iteration(self, people):
        assert list(people)[0] == (1, "alice", "sj")

    def test_as_dicts(self, people):
        assert people.as_dicts()[1] == {"id": 2, "name": "bob", "city": "sf"}


class TestOperators:
    def test_select(self, people):
        sj = people.select(lambda r: r["city"] == "sj")
        assert len(sj) == 2
        assert {r[0] for r in sj} == {1, 3}

    def test_where(self, people):
        assert len(people.where("name", "alice")) == 2
        assert len(people.where("name", "zed")) == 0

    def test_project(self, people):
        proj = people.project(["name"])
        assert proj.columns == ("name",)
        assert len(proj) == 4  # keeps duplicates

    def test_project_reorders(self, people):
        proj = people.project(["city", "id"])
        assert proj.rows[0] == ("sj", 1)

    def test_group_rows_by(self, people):
        groups = people.group_rows_by("city")
        assert set(groups) == {"sj", "sf", "la"}
        assert len(groups["sj"]) == 2

    def test_group_preserves_row_order(self, people):
        groups = people.group_rows_by("name")
        assert groups["alice"] == [(1, "alice", "sj"), (4, "alice", "la")]
