"""Tests for query descriptions and disclosure profiles."""

from __future__ import annotations

from repro.db.query import (
    Disclosure,
    DisclosureProfile,
    EquijoinQuery,
    EquijoinSizeQuery,
    IntersectionQuery,
    IntersectionSizeQuery,
)


class TestProfiles:
    def test_intersection_profile(self):
        profile = IntersectionQuery().profile
        assert Disclosure.INTERSECTION in profile.r_learns
        assert Disclosure.OTHER_SET_SIZE in profile.r_learns
        assert profile.s_learns == frozenset({Disclosure.OTHER_SET_SIZE})

    def test_intersection_size_weaker_than_intersection(self):
        size_profile = IntersectionSizeQuery().profile
        assert Disclosure.INTERSECTION not in size_profile.r_learns
        assert Disclosure.INTERSECTION_SIZE in size_profile.r_learns

    def test_equijoin_adds_rows(self):
        profile = EquijoinQuery().profile
        assert Disclosure.JOIN_ROWS in profile.r_learns
        assert Disclosure.INTERSECTION in profile.r_learns
        assert profile.s_learns == frozenset({Disclosure.OTHER_SET_SIZE})

    def test_equijoin_size_has_characterized_leak(self):
        profile = EquijoinSizeQuery().profile
        assert Disclosure.DUPLICATE_DISTRIBUTION in profile.r_learns
        assert Disclosure.PARTITION_OVERLAPS in profile.r_learns
        assert Disclosure.DUPLICATE_DISTRIBUTION in profile.s_learns
        # But never the actual intersection.
        assert Disclosure.INTERSECTION not in profile.r_learns

    def test_s_never_learns_content(self):
        for query in (
            IntersectionQuery(),
            IntersectionSizeQuery(),
            EquijoinQuery(),
            EquijoinSizeQuery(),
        ):
            assert Disclosure.INTERSECTION not in query.profile.s_learns
            assert Disclosure.JOIN_ROWS not in query.profile.s_learns


class TestDescribe:
    def test_describe_mentions_both_parties(self):
        text = IntersectionQuery().profile.describe()
        assert text.startswith("R learns:")
        assert "S learns:" in text

    def test_empty_profile_describes_nothing(self):
        profile = DisclosureProfile.of(set(), set())
        assert "nothing" in profile.describe()

    def test_attribute_default(self):
        assert IntersectionQuery().attribute == "A"
        assert EquijoinQuery(attribute="person_id").attribute == "person_id"


class TestExtensionProfiles:
    def test_equijoin_sum_profile(self):
        from repro.db.query import EquijoinSumQuery

        profile = EquijoinSumQuery().profile
        assert Disclosure.JOIN_SUM in profile.r_learns
        assert Disclosure.INTERSECTION_SIZE in profile.r_learns
        assert Disclosure.INTERSECTION not in profile.r_learns
        assert Disclosure.JOIN_ROWS not in profile.r_learns
        assert profile.s_learns == frozenset({Disclosure.OTHER_SET_SIZE})

    def test_selection_profile_s_learns_nothing(self):
        from repro.db.query import SelectionQuery

        profile = SelectionQuery().profile
        assert profile.s_learns == frozenset()
        assert Disclosure.SELECTED_RECORD in profile.r_learns
        assert Disclosure.RECORD_COUNT_AND_WIDTH in profile.r_learns
