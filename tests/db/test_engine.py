"""Tests for the plaintext query engine (the protocols' ground truth)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.engine import (
    equijoin,
    equijoin_size,
    group_by_count,
    intersection,
    intersection_size,
)
from repro.db.table import Table

ids = st.lists(st.integers(min_value=0, max_value=15), max_size=25)


class TestIntersection:
    def test_basic(self):
        assert intersection([1, 2, 3], [2, 3, 4]) == {2, 3}

    def test_duplicates_ignored(self):
        assert intersection([1, 1, 2], [1]) == {1}

    def test_size(self):
        assert intersection_size([1, 2], [2, 3]) == 1

    @given(ids, ids)
    @settings(max_examples=150)
    def test_matches_set_semantics(self, a, b):
        assert intersection(a, b) == set(a) & set(b)
        assert intersection_size(a, b) == len(set(a) & set(b))


class TestEquijoin:
    @pytest.fixture()
    def t_s(self):
        return Table(("id", "payload"), [(1, "a"), (2, "b"), (2, "c")], name="S")

    @pytest.fixture()
    def t_r(self):
        return Table(("id", "flag"), [(2, True), (3, False), (2, False)], name="R")

    def test_join_rows(self, t_s, t_r):
        joined = equijoin(t_s, t_r, "id")
        # R has two id=2 rows, S has two: 4 result rows.
        assert len(joined) == 4
        assert joined.columns == ("id", "flag", "s_id", "payload")

    def test_join_values_correct(self, t_s, t_r):
        joined = equijoin(t_s, t_r, "id")
        assert all(row[0] == row[2] for row in joined.rows)

    def test_disjoint_join_empty(self):
        a = Table(("k",), [(1,)])
        b = Table(("k",), [(2,)])
        assert len(equijoin(a, b, "k")) == 0

    def test_different_attr_names(self):
        t_s = Table(("sid", "v"), [(1, "x")])
        t_r = Table(("rid",), [(1,)])
        joined = equijoin(t_s, t_r, "sid", "rid")
        assert joined.rows == [(1, 1, "x")]

    def test_no_collision_no_rename(self):
        t_s = Table(("sid", "v"), [(1, "x")])
        t_r = Table(("rid",), [(1,)])
        assert equijoin(t_s, t_r, "sid", "rid").columns == ("rid", "sid", "v")

    @given(ids, ids)
    @settings(max_examples=150)
    def test_join_size_matches_materialized_join(self, a, b):
        t_s = Table(("id",), [(x,) for x in a], name="S")
        t_r = Table(("id",), [(x,) for x in b], name="R")
        assert equijoin_size(t_s, t_r, "id") == len(equijoin(t_s, t_r, "id"))


class TestGroupByCount:
    def test_basic(self):
        t = Table(("a", "b"), [(1, "x"), (1, "x"), (2, "y")])
        assert group_by_count(t, ["a", "b"]) == {(1, "x"): 2, (2, "y"): 1}

    def test_single_column(self):
        t = Table(("a",), [(1,), (1,), (2,)])
        assert group_by_count(t, ["a"]) == {(1,): 2, (2,): 1}

    def test_empty_table(self):
        t = Table(("a",), [])
        assert group_by_count(t, ["a"]) == {}

    def test_counts_sum_to_rows(self):
        t = Table(("a", "b"), [(i % 3, i % 2) for i in range(20)])
        counts = group_by_count(t, ["a", "b"])
        assert sum(counts.values()) == 20
