"""Tests for comparator and intersection circuit builders."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.builders import (
    brute_force_intersection_circuit,
    encode_value_bits,
    equality_comparator,
    less_than_comparator,
    pack_inputs,
)
from repro.circuits.costmodel import equality_gates, less_than_gates


class TestEncodeValueBits:
    def test_little_endian(self):
        assert encode_value_bits(6, 4) == [0, 1, 1, 0]

    def test_width_enforced(self):
        with pytest.raises(ValueError):
            encode_value_bits(16, 4)
        with pytest.raises(ValueError):
            encode_value_bits(-1, 4)

    def test_round_trip(self):
        for v in range(16):
            bits = encode_value_bits(v, 4)
            assert sum(b << i for i, b in enumerate(bits)) == v


class TestEqualityComparator:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_exhaustive(self, width):
        circuit = equality_comparator(width)
        for a, b in itertools.product(range(1 << width), repeat=2):
            bits = encode_value_bits(a, width) + encode_value_bits(b, width)
            assert circuit.evaluate(bits) == [int(a == b)], (a, b)

    @pytest.mark.parametrize("width", [1, 4, 8, 16, 32])
    def test_gate_count_matches_paper(self, width):
        """Exactly Ge = 2w - 1 gates."""
        assert equality_comparator(width).gate_count == equality_gates(width)

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=100)
    def test_width8_property(self, a, b):
        circuit = equality_comparator(8)
        bits = encode_value_bits(a, 8) + encode_value_bits(b, 8)
        assert circuit.evaluate(bits) == [int(a == b)]


class TestLessThanComparator:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_exhaustive(self, width):
        circuit = less_than_comparator(width)
        for a, b in itertools.product(range(1 << width), repeat=2):
            bits = encode_value_bits(a, width) + encode_value_bits(b, width)
            assert circuit.evaluate(bits) == [int(a < b)], (a, b)

    @pytest.mark.parametrize("width", [1, 8, 32])
    def test_gate_count_within_paper_bound(self, width):
        """Our ANDNOT construction uses 4w - 3 <= Gl = 5w - 3 gates."""
        actual = less_than_comparator(width).gate_count
        assert actual == 4 * width - 3
        assert actual <= less_than_gates(width)

    @given(st.integers(min_value=0, max_value=2**16 - 1), st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=100)
    def test_width16_property(self, a, b):
        circuit = less_than_comparator(16)
        bits = encode_value_bits(a, 16) + encode_value_bits(b, 16)
        assert circuit.evaluate(bits) == [int(a < b)]


class TestBruteForceIntersection:
    def test_small_example(self):
        circuit = brute_force_intersection_circuit(4, n_s=3, n_r=2)
        s_vals, r_vals = [1, 5, 9], [5, 7]
        out = circuit.evaluate(pack_inputs(s_vals, r_vals, 4))
        assert out == [1, 0]

    def test_gate_count(self):
        w, n_s, n_r = 4, 3, 2
        circuit = brute_force_intersection_circuit(w, n_s, n_r)
        expected = n_s * n_r * equality_gates(w) + n_r * (n_s - 1)
        assert circuit.gate_count == expected

    def test_single_values(self):
        circuit = brute_force_intersection_circuit(3, 1, 1)
        assert circuit.evaluate(pack_inputs([5], [5], 3)) == [1]
        assert circuit.evaluate(pack_inputs([5], [4], 3)) == [0]

    @given(
        st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=4),
        st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=4),
    )
    @settings(max_examples=60)
    def test_matches_set_membership_property(self, s_vals, r_vals):
        circuit = brute_force_intersection_circuit(4, len(s_vals), len(r_vals))
        out = circuit.evaluate(pack_inputs(s_vals, r_vals, 4))
        assert out == [int(r in s_vals) for r in r_vals]

    def test_pack_inputs_layout(self):
        bits = pack_inputs([3], [1], 2)
        assert bits == [1, 1, 1, 0]  # 3 then 1, little-endian 2-bit
