"""Tests that the Appendix A cost model reproduces the printed numbers."""

from __future__ import annotations

import pytest

from repro.circuits.costmodel import (
    CircuitCostModel,
    equality_gates,
    less_than_gates,
)


@pytest.fixture(scope="module")
def model():
    return CircuitCostModel()  # the paper's w=32, k0=64, k1=100, k=1024


class TestGateConstants:
    def test_paper_w32(self):
        assert equality_gates(32) == 63   # 2w - 1
        assert less_than_gates(32) == 157  # 5w - 3


class TestOTCosts:
    """Appendix A.1.1."""

    def test_unit_cost(self, model):
        assert model.ot_unit_cost_ce() == pytest.approx(0.157, abs=1e-3)

    def test_unit_bits(self, model):
        assert model.ot_unit_bits() == pytest.approx(3200)

    def test_input_coding_approximation(self, model):
        """w * n * C_ot ~ 5 n C_e and ~1e5 n bits."""
        n = 10**6
        assert model.input_coding_ce(n) == pytest.approx(5 * n, rel=0.01)
        assert model.input_coding_bits(n) == pytest.approx(1.024e5 * n, rel=0.03)


class TestCircuitSizeTable:
    """Appendix A.1.2: the n / m / f(n) table."""

    def test_optimal_m_values(self, model):
        table = model.circuit_size_table()
        assert [row.m for row in table] == [11, 19, 32]

    @pytest.mark.parametrize(
        "n, expected",
        [(10**4, 2.3e8), (10**6, 7.3e10), (10**8, 1.9e13)],
    )
    def test_partition_gate_counts(self, model, n, expected):
        choice = model.optimal_partition(n)
        assert choice.gates == pytest.approx(expected, rel=0.05)

    @pytest.mark.parametrize(
        "n, expected",
        [(10**4, 6.3e9), (10**6, 6.3e13), (10**8, 6.3e17)],
    )
    def test_brute_force_gate_counts(self, model, n, expected):
        assert model.brute_force_gates(n, n) == pytest.approx(expected, rel=0.01)

    def test_brute_force_much_worse(self, model):
        for n in (10**4, 10**6, 10**8):
            assert model.brute_force_gates(n, n) > 10 * model.optimal_partition(n).gates

    def test_partition_requires_m_at_least_2(self, model):
        with pytest.raises(ValueError):
            model.partition_gates(10**4, 1)

    def test_recurrence_consistency(self, model):
        """The closed form is the telescoped recurrence
        f(n) >= 2 m^2 Gl + (2m - 1) f(n/m); check one unrolling."""
        n, m = 10**4, 10
        gl = less_than_gates(32)
        lhs = model.partition_gates(n, m)
        rhs = 2 * m * m * gl + (2 * m - 1) * model.partition_gates(n // m, m)
        # Closed form is a lower bound of the unrolled recurrence.
        assert lhs <= rhs * 1.02


class TestComparisonTables:
    """Appendix A.2: computation and communication comparison."""

    def test_computation_rows(self, model):
        rows = {r.n: r for r in model.comparison_table()}
        assert rows[10**4].circuit_input_ce == pytest.approx(5e4, rel=0.01)
        assert rows[10**6].circuit_input_ce == pytest.approx(5e6, rel=0.01)
        assert rows[10**8].circuit_input_ce == pytest.approx(5e8, rel=0.01)
        assert rows[10**4].circuit_eval_cr == pytest.approx(4.7e8, rel=0.05)
        assert rows[10**6].circuit_eval_cr == pytest.approx(1.5e11, rel=0.05)
        assert rows[10**8].circuit_eval_cr == pytest.approx(3.8e13, rel=0.05)
        assert rows[10**4].ours_ce == pytest.approx(4e4)
        assert rows[10**8].ours_ce == pytest.approx(4e8)

    def test_communication_rows(self, model):
        rows = {r.n: r for r in model.comparison_table()}
        assert rows[10**4].circuit_input_bits == pytest.approx(1e9, rel=0.05)
        assert rows[10**6].circuit_input_bits == pytest.approx(1e11, rel=0.05)
        assert rows[10**4].circuit_tables_bits == pytest.approx(6.0e10, rel=0.05)
        assert rows[10**6].circuit_tables_bits == pytest.approx(1.8e13, rel=0.05)
        assert rows[10**8].circuit_tables_bits == pytest.approx(4.9e15, rel=0.05)
        assert rows[10**4].ours_bits == pytest.approx(3e7, rel=0.05)
        assert rows[10**6].ours_bits == pytest.approx(3e9, rel=0.05)

    def test_headline_144_days_vs_half_hour(self, model):
        """'For n = 1 million, the communication time for the
        circuit-based protocol is 144 days (using a T1 line), versus
        0.5 hours for our protocol.'"""
        row = next(r for r in model.comparison_table() if r.n == 10**6)
        circuit_days = model.t1_transfer_days(row.circuit_tables_bits)
        ours_hours = model.t1_transfer_days(row.ours_bits) * 24
        assert 130 <= circuit_days <= 150
        assert 0.4 <= ours_hours <= 0.6

    def test_circuit_vs_ours_ratio_1000x_plus(self, model):
        """'1000 to 10,000 times as much communication as our protocol'."""
        for row in model.comparison_table():
            total_circuit = row.circuit_input_bits + row.circuit_tables_bits
            ratio = total_circuit / row.ours_bits
            assert ratio > 1000
