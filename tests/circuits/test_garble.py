"""Tests for Yao garbled-circuit evaluation and the executable PSI baseline."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.boolean import Circuit, GATE_FUNCTIONS
from repro.circuits.builders import (
    encode_value_bits,
    equality_comparator,
    less_than_comparator,
)
from repro.circuits.garble import evaluate_garbled, garble, yao_intersection
from repro.crypto.groups import QRGroup


def _garbled_output(circuit, inputs, seed=0):
    garbled, secrets = garble(circuit, random.Random(seed))
    labels = [secrets.active_label(w, bit) for w, bit in enumerate(inputs)]
    return evaluate_garbled(garbled, labels)


class TestSingleGates:
    @pytest.mark.parametrize("op", sorted(GATE_FUNCTIONS))
    def test_every_gate_type_all_inputs(self, op):
        circuit = Circuit(n_inputs=2)
        circuit.set_outputs([circuit.add_gate(op, 0, 1)])
        for a, b in itertools.product((0, 1), repeat=2):
            assert _garbled_output(circuit, [a, b]) == circuit.evaluate([a, b])


class TestComposedCircuits:
    def test_equality_comparator_exhaustive_w3(self):
        circuit = equality_comparator(3)
        for a, b in itertools.product(range(8), repeat=2):
            bits = encode_value_bits(a, 3) + encode_value_bits(b, 3)
            assert _garbled_output(circuit, bits) == [int(a == b)]

    def test_less_than_comparator_w8_samples(self):
        circuit = less_than_comparator(8)
        rng = random.Random(1)
        for _ in range(25):
            a, b = rng.randrange(256), rng.randrange(256)
            bits = encode_value_bits(a, 8) + encode_value_bits(b, 8)
            assert _garbled_output(circuit, bits, seed=rng.randrange(999)) == [int(a < b)]

    def test_constants_garble_correctly(self):
        circuit = Circuit(n_inputs=1)
        one = circuit.constant(1)
        circuit.set_outputs([circuit.add_gate("XOR", 0, one)])
        assert _garbled_output(circuit, [0]) == [1]
        assert _garbled_output(circuit, [1]) == [0]

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_random_circuit_matches_plain(self, seed):
        """Random feed-forward circuits: garbled == plain evaluation."""
        rng = random.Random(seed)
        n_inputs = rng.randrange(2, 6)
        circuit = Circuit(n_inputs=n_inputs)
        ops = sorted(GATE_FUNCTIONS)
        for _ in range(rng.randrange(1, 15)):
            a = rng.randrange(circuit.n_wires)
            b = rng.randrange(circuit.n_wires)
            circuit.add_gate(rng.choice(ops), a, b)
        wires = list(range(circuit.n_wires))
        circuit.set_outputs(rng.sample(wires, min(3, len(wires))))
        inputs = [rng.randrange(2) for _ in range(n_inputs)]
        assert _garbled_output(circuit, inputs, seed=seed) == circuit.evaluate(inputs)


class TestGarbledStructure:
    def test_table_bytes(self):
        circuit = equality_comparator(4)
        garbled, _ = garble(circuit, random.Random(0))
        # 4 rows of (16-byte label + 1 color byte) per gate.
        assert garbled.table_bytes == circuit.gate_count * 4 * 17

    def test_wrong_label_count_rejected(self):
        circuit = equality_comparator(2)
        garbled, _ = garble(circuit, random.Random(0))
        with pytest.raises(ValueError):
            evaluate_garbled(garbled, [b"x" * 17])


class TestYaoPSI:
    @pytest.fixture(scope="class")
    def group(self):
        return QRGroup.for_bits(64)

    def test_intersection_correct(self, group):
        stats = yao_intersection(
            [3, 17, 99, 200], [17, 200, 5], width=8, group=group,
            rng=random.Random(2),
        )
        assert stats.intersection == {17, 200}

    def test_disjoint(self, group):
        stats = yao_intersection(
            [1, 2], [3, 4], width=4, group=group, rng=random.Random(3)
        )
        assert stats.intersection == set()

    def test_accounting(self, group):
        stats = yao_intersection(
            [1, 2, 3], [3, 4], width=4, group=group, rng=random.Random(4)
        )
        assert stats.ot_count == 2 * 4  # one OT per R input bit
        assert stats.gate_count > 0
        assert stats.ot_bytes > 0
        assert stats.total_bytes == stats.table_bytes + stats.ot_bytes

    @given(
        st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=4),
        st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=4),
    )
    @settings(max_examples=10, deadline=None)
    def test_matches_set_intersection_property(self, v_s, v_r):
        group = QRGroup.for_bits(64)
        stats = yao_intersection(
            sorted(v_s), sorted(v_r), width=5, group=group, rng=random.Random(7)
        )
        assert stats.intersection == (v_s & v_r)
