"""Tests for the boolean circuit IR and evaluator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.boolean import Circuit, GATE_FUNCTIONS


class TestGateFunctions:
    @pytest.mark.parametrize("op", sorted(GATE_FUNCTIONS))
    def test_outputs_are_bits(self, op):
        fn = GATE_FUNCTIONS[op]
        for a in (0, 1):
            for b in (0, 1):
                assert fn(a, b) in (0, 1)

    def test_truth_tables(self):
        t = {(a, b): None for a in (0, 1) for b in (0, 1)}
        assert [GATE_FUNCTIONS["AND"](a, b) for a, b in t] == [0, 0, 0, 1]
        assert [GATE_FUNCTIONS["OR"](a, b) for a, b in t] == [0, 1, 1, 1]
        assert [GATE_FUNCTIONS["XOR"](a, b) for a, b in t] == [0, 1, 1, 0]
        assert [GATE_FUNCTIONS["XNOR"](a, b) for a, b in t] == [1, 0, 0, 1]
        assert [GATE_FUNCTIONS["NAND"](a, b) for a, b in t] == [1, 1, 1, 0]
        assert [GATE_FUNCTIONS["NOR"](a, b) for a, b in t] == [1, 0, 0, 0]
        assert [GATE_FUNCTIONS["ANDNOT"](a, b) for a, b in t] == [0, 1, 0, 0]


class TestCircuitConstruction:
    def test_wire_allocation(self):
        c = Circuit(n_inputs=2)
        w = c.add_gate("AND", 0, 1)
        assert w == 2
        assert c.n_wires == 3
        assert c.gate_count == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Circuit(n_inputs=1).add_gate("MAJ", 0, 0)

    def test_forward_reference_rejected(self):
        with pytest.raises(ValueError):
            Circuit(n_inputs=1).add_gate("AND", 0, 5)

    def test_constant_wires(self):
        c = Circuit(n_inputs=1)
        one = c.constant(1)
        out = c.add_gate("XOR", 0, one)  # NOT via XOR with 1
        c.set_outputs([out])
        assert c.evaluate([0]) == [1]
        assert c.evaluate([1]) == [0]

    def test_constant_must_be_bit(self):
        with pytest.raises(ValueError):
            Circuit(n_inputs=0).constant(2)

    def test_gate_count_by_op(self):
        c = Circuit(n_inputs=2)
        c.add_gate("AND", 0, 1)
        c.add_gate("AND", 0, 1)
        c.add_gate("XOR", 0, 1)
        assert c.gate_count_by_op() == {"AND": 2, "XOR": 1}


class TestEvaluation:
    def test_input_width_checked(self):
        c = Circuit(n_inputs=2)
        c.set_outputs([0])
        with pytest.raises(ValueError):
            c.evaluate([1])

    def test_passthrough_output(self):
        c = Circuit(n_inputs=2)
        c.set_outputs([1, 0])
        assert c.evaluate([0, 1]) == [1, 0]

    def test_not_gate(self):
        c = Circuit(n_inputs=1)
        c.set_outputs([c.not_gate(0)])
        assert c.evaluate([0]) == [1]
        assert c.evaluate([1]) == [0]

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=8))
    @settings(max_examples=100)
    def test_and_tree(self, bits):
        c = Circuit(n_inputs=len(bits))
        c.set_outputs([c.and_tree(list(range(len(bits))))])
        assert c.evaluate(bits) == [int(all(bits))]

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=8))
    @settings(max_examples=100)
    def test_or_tree(self, bits):
        c = Circuit(n_inputs=len(bits))
        c.set_outputs([c.or_tree(list(range(len(bits))))])
        assert c.evaluate(bits) == [int(any(bits))]

    def test_tree_single_wire(self):
        c = Circuit(n_inputs=1)
        assert c.and_tree([0]) == 0
        assert c.gate_count == 0

    def test_tree_gate_counts(self):
        for n in (2, 3, 5, 8, 13):
            c = Circuit(n_inputs=n)
            c.and_tree(list(range(n)))
            assert c.gate_count == n - 1

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            Circuit(n_inputs=1).or_tree([])
