"""Engine choice must never change the wire: serial and pooled runs of
every protocol produce byte-identical transcripts and equal answers."""

from __future__ import annotations

import random

import pytest

from repro.crypto.engine import ProcessPoolEngine, SerialEngine
from repro.net.serialization import encode
from repro.protocols.parties import (
    EquijoinReceiver,
    EquijoinSender,
    EquijoinSizeReceiver,
    EquijoinSizeSender,
    IntersectionReceiver,
    IntersectionSender,
    IntersectionSizeReceiver,
    IntersectionSizeSender,
    PublicParams,
)

BITS = 128
N = 40  # above DEFAULT_MIN_PARALLEL so the pool actually engages


@pytest.fixture(scope="module")
def params():
    return PublicParams.for_bits(BITS)


def _values(n=N):
    half = n // 2
    v_r = [f"r{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    return v_r, v_s


def _run(receiver_cls, sender_cls, params, engine, sender_ext=False):
    """One full run with fixed seeds; returns (m1, m2, answer) bytes-able."""
    v_r, v_s = _values()
    rng_r, rng_s = random.Random("R"), random.Random("S")
    receiver = receiver_cls(v_r, params, rng_r, engine=engine)
    if sender_ext:
        ext = {v: f"payload:{v}".encode() for v in v_s}
        sender = sender_cls(ext, params, rng_s, engine=engine)
    else:
        sender = sender_cls(v_s, params, rng_s, engine=engine)
    m1 = receiver.round1()
    m2 = sender.round1(m1)
    answer = receiver.finish(m2)
    return m1.to_wire(), m2.to_wire(), answer


PROTOCOLS = [
    ("intersection", IntersectionReceiver, IntersectionSender, False),
    ("intersection-size", IntersectionSizeReceiver, IntersectionSizeSender, False),
    ("equijoin", EquijoinReceiver, EquijoinSender, True),
    ("equijoin-size", EquijoinSizeReceiver, EquijoinSizeSender, False),
]


@pytest.mark.parametrize(
    "name,receiver_cls,sender_cls,sender_ext",
    PROTOCOLS,
    ids=[p[0] for p in PROTOCOLS],
)
def test_transcripts_identical_across_engines(
    params, name, receiver_cls, sender_cls, sender_ext
):
    serial = _run(receiver_cls, sender_cls, params, SerialEngine(),
                  sender_ext=sender_ext)
    with ProcessPoolEngine(processors=2, chunk_size=7) as engine:
        pooled = _run(receiver_cls, sender_cls, params, engine,
                      sender_ext=sender_ext)
        assert engine.parallel_batches > 0, "pool never engaged"
    s_m1, s_m2, s_answer = serial
    p_m1, p_m2, p_answer = pooled
    assert encode(s_m1) == encode(p_m1)
    assert encode(s_m2) == encode(p_m2)
    assert s_answer == p_answer


def test_answers_correct_under_pool(params):
    with ProcessPoolEngine(processors=2) as engine:
        _, _, answer = _run(
            IntersectionReceiver, IntersectionSender, params, engine
        )
    assert answer == {f"c{i}" for i in range(N // 2)}
