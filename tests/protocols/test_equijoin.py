"""Tests for the Section 4.3 equijoin protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.engine import equijoin as plain_equijoin
from repro.db.table import Table
from repro.protocols.base import ProtocolSuite
from repro.protocols.equijoin import join_tables, run_equijoin

value_sets = st.sets(st.integers(min_value=0, max_value=30), max_size=10)


class TestCorrectness:
    def test_basic(self, suite):
        ext = {"x": b"ext-x", "y": b"ext-y", "z": b"ext-z"}
        result = run_equijoin(["w", "x", "y"], ext, suite)
        assert result.intersection == {"x", "y"}
        assert result.matches == {"x": b"ext-x", "y": b"ext-y"}

    def test_empty_sides(self, suite):
        assert run_equijoin([], {"a": b"1"}, suite).matches == {}
        assert run_equijoin(["a"], {}, suite).matches == {}

    def test_disjoint(self, suite):
        result = run_equijoin(["a"], {"b": b"x"}, suite)
        assert result.intersection == set()

    def test_sizes_learned(self, suite):
        result = run_equijoin(["a", "b"], {"b": b"1", "c": b"2", "d": b"3"}, suite)
        assert result.size_v_s == 3
        assert result.size_v_r == 2

    def test_long_ext_payloads_multiblock(self, suite):
        payload = bytes(range(256)) * 4  # forces BlockExtCipher chunking
        result = run_equijoin(["k"], {"k": payload}, suite)
        assert result.matches["k"] == payload

    def test_empty_ext_payload(self, suite):
        result = run_equijoin(["k"], {"k": b""}, suite)
        assert result.matches["k"] == b""

    @given(
        value_sets,
        st.dictionaries(
            st.integers(min_value=0, max_value=30), st.binary(max_size=8), max_size=10
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_plaintext_property(self, v_r, ext):
        suite = ProtocolSuite.default(bits=64, seed=1)
        result = run_equijoin(list(v_r), ext, suite)
        expected = {v: ext[v] for v in v_r if v in ext}
        assert result.matches == expected


class TestDisclosureBoundary:
    def test_non_intersection_ext_not_revealed(self, suite):
        """R decrypts ext only for the intersection; other payloads stay
        sealed (their keys never leave S)."""
        ext = {"in": b"revealed", "out": b"sealed"}
        result = run_equijoin(["in", "other"], ext, suite)
        assert set(result.matches) == {"in"}
        # The sealed payload's plaintext must not appear in R's view.
        blob = repr([m.payload for m in result.run.r_view.received]).encode()
        assert b"sealed" not in blob

    def test_wire_steps(self, suite):
        result = run_equijoin(["a"], {"a": b"x"}, suite)
        assert [m.step for m in result.run.s_view.received] == ["3:Y_R"]
        assert [m.step for m in result.run.r_view.received] == ["4:triples", "5:pairs"]

    def test_pairs_sorted_by_codeword(self, suite):
        ext = {f"v{i}": bytes([i]) for i in range(8)}
        result = run_equijoin(["v0"], ext, suite)
        pairs = next(result.run.r_view.payloads("5:pairs"))
        codewords = [p[0] for p in pairs]
        assert codewords == sorted(codewords)

    def test_triples_keyed_by_received_y(self, suite):
        result = run_equijoin(["a", "b"], {"a": b"x"}, suite)
        y_r = next(result.run.s_view.payloads("3:Y_R"))
        triples = next(result.run.r_view.payloads("4:triples"))
        assert [t[0] for t in triples] == y_r


class TestTableJoin:
    @pytest.fixture()
    def tables(self):
        t_r = Table(
            ("id", "flag"), [(1, True), (2, False), (3, True), (2, True)], name="R"
        )
        t_s = Table(
            ("id", "payload"), [(2, "a"), (3, "b"), (3, "c"), (9, "z")], name="S"
        )
        return t_r, t_s

    def test_matches_plaintext_join(self, tables, suite):
        t_r, t_s = tables
        joined, _ = join_tables(t_r, t_s, "id", suite=suite)
        expected = plain_equijoin(t_s, t_r, "id")
        assert sorted(joined.rows) == sorted(expected.rows)
        assert joined.columns == expected.columns

    def test_s_rows_grouped_as_ext(self, tables, suite):
        t_r, t_s = tables
        _, result = join_tables(t_r, t_s, "id", suite=suite)
        # intersection on distinct ids {2, 3}
        assert result.intersection == {2, 3}

    def test_different_column_names(self, suite):
        t_r = Table(("rid",), [(7,)])
        t_s = Table(("sid", "v"), [(7, "hit")])
        joined, _ = join_tables(t_r, t_s, "rid", s_attr="sid", suite=suite)
        assert joined.rows == [(7, 7, "hit")]

    def test_empty_result(self, suite):
        t_r = Table(("id",), [(1,)])
        t_s = Table(("id",), [(2,)])
        joined, result = join_tables(t_r, t_s, "id", suite=suite)
        assert len(joined) == 0
        assert result.intersection == set()
