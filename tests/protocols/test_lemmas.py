"""Tests for the executable proof fragments (Lemmas 1-4)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.commutative import PowerCipher
from repro.crypto.ext_cipher import MultiplicativeExtCipher
from repro.crypto.groups import QRGroup
from repro.protocols.lemmas import (
    TupleMatrix,
    build_hybrid_matrix,
    build_real_matrix,
    check_lemma1_identity,
    lemma1_reduction,
    lemma4_q,
)


@pytest.fixture(scope="module")
def group():
    return QRGroup.for_bits(128)


@pytest.fixture()
def cipher(group):
    return PowerCipher(group)


class TestTupleMatrix:
    def test_rows_must_match(self):
        with pytest.raises(ValueError):
            TupleMatrix(top=(1, 2), bottom=(3,))

    def test_m(self):
        assert TupleMatrix(top=(1, 2), bottom=(3, 4)).m == 2


class TestLemma1:
    def test_reduction_with_real_challenge_lands_in_dm(self, group, cipher):
        """When u = f_e(y), EVERY column satisfies z_i = f_e(x_i) -
        the matrix is distributed as D_m."""
        rng = random.Random(1)
        e = cipher.sample_key(rng)
        x = group.random_element(rng)
        y = group.random_element(rng)
        matrix = lemma1_reduction(
            group, x, cipher.encrypt(e, x), y, cipher.encrypt(e, y), m=6, rng=rng
        )
        assert check_lemma1_identity(group, e, matrix, skip_last=False)

    def test_reduction_with_random_challenge_breaks_last_column(
        self, group, cipher
    ):
        """When u is random, the constructed columns still satisfy the
        identity but the final column does not - D_{m-1}."""
        rng = random.Random(2)
        e = cipher.sample_key(rng)
        x = group.random_element(rng)
        y = group.random_element(rng)
        u = group.random_element(rng)
        matrix = lemma1_reduction(
            group, x, cipher.encrypt(e, x), y, u, m=6, rng=rng
        )
        assert check_lemma1_identity(group, e, matrix, skip_last=True)
        assert matrix.bottom[-1] != cipher.encrypt(e, matrix.top[-1])

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_commutativity_identity_property(self, m, seed):
        """The identity the reduction rests on, for random keys/sizes."""
        group = QRGroup.for_bits(64)
        cipher = PowerCipher(group)
        rng = random.Random(seed)
        e = cipher.sample_key(rng)
        x = group.random_element(rng)
        y = group.random_element(rng)
        matrix = lemma1_reduction(
            group, x, cipher.encrypt(e, x), y, cipher.encrypt(e, y), m, rng
        )
        assert check_lemma1_identity(group, e, matrix, skip_last=False)


class TestLemma2Hybrids:
    def test_real_matrix_fully_encrypted(self, group, cipher):
        rng = random.Random(3)
        e = cipher.sample_key(rng)
        matrix = build_real_matrix(group, e, 8, rng)
        assert check_lemma1_identity(group, e, matrix, skip_last=False)

    def test_hybrid_endpoints(self, group, cipher):
        """D^n_n equals the real distribution; D^n_0 is all-random."""
        rng = random.Random(4)
        e = cipher.sample_key(rng)
        full = build_hybrid_matrix(group, e, n=6, m=6, rng=rng)
        assert check_lemma1_identity(group, e, full, skip_last=False)
        empty = build_hybrid_matrix(group, e, n=6, m=0, rng=rng)
        mismatches = sum(
            empty.bottom[i] != cipher.encrypt(e, empty.top[i]) for i in range(6)
        )
        assert mismatches == 6  # random bottoms; equality has prob ~2^-127

    def test_hybrid_middle(self, group, cipher):
        rng = random.Random(5)
        e = cipher.sample_key(rng)
        matrix = build_hybrid_matrix(group, e, n=8, m=3, rng=rng)
        for i in range(3):
            assert matrix.bottom[i] == cipher.encrypt(e, matrix.top[i])
        for i in range(3, 8):
            assert matrix.bottom[i] != cipher.encrypt(e, matrix.top[i])

    def test_m_bounds(self, group, cipher):
        rng = random.Random(6)
        with pytest.raises(ValueError):
            build_hybrid_matrix(group, 3, n=4, m=5, rng=rng)


class TestLemma4Q:
    def test_q_appends_encrypted_payloads_and_blanks(self, group):
        rng = random.Random(7)
        ext = MultiplicativeExtCipher(group)
        n, m, t = 6, 4, 2
        xs = tuple(group.random_element(rng) for _ in range(n))
        ys = tuple(group.random_element(rng) for _ in range(n))
        zs = tuple(group.random_element(rng) for _ in range(n))
        payloads = [bytes([i]) * 4 for i in range(m)]
        out = lemma4_q((xs, ys, zs), payloads, t, ext)
        assert out[0] == xs and out[1] == ys
        # z_1..z_t blanked, rest visible.
        assert out[2][:t] == (None,) * t
        assert out[2][t:] == zs[t:]
        # Fourth row decrypts under the corresponding z_i.
        for i in range(m):
            assert ext.decrypt(zs[i], out[3][i]) == payloads[i]

    def test_q_rejects_too_many_payloads(self, group):
        ext = MultiplicativeExtCipher(group)
        with pytest.raises(ValueError):
            lemma4_q(((1,), (1,), (4,)), [b"a", b"b"], 0, ext)
