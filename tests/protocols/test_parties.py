"""Tests for the separable party state machines."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.parties import (
    IntersectionReceiver,
    IntersectionSender,
    IntersectionSizeReceiver,
    IntersectionSizeSender,
    PublicParams,
)

value_sets = st.sets(st.integers(min_value=0, max_value=30), max_size=10)


@pytest.fixture(scope="module")
def params():
    return PublicParams.for_bits(128)


def _run_intersection(v_r, v_s, params, seed=0):
    receiver = IntersectionReceiver(v_r, params, random.Random(f"{seed}r"))
    sender = IntersectionSender(v_s, params, random.Random(f"{seed}s"))
    return receiver.finish(sender.round1(receiver.round1()))


def _run_size(v_r, v_s, params, seed=0):
    receiver = IntersectionSizeReceiver(v_r, params, random.Random(f"{seed}r"))
    sender = IntersectionSizeSender(v_s, params, random.Random(f"{seed}s"))
    return receiver.finish(sender.round1(receiver.round1()))


class TestPublicParams:
    def test_wire_round_trip(self, params):
        assert PublicParams.from_wire(params.to_wire()) == params

    def test_unknown_hash_rejected(self):
        with pytest.raises(ValueError):
            PublicParams(p=23, hash_name="md5").build()

    def test_square_hash_variant(self):
        params = PublicParams(p=PublicParams.for_bits(128).p, hash_name="square")
        assert _run_intersection(["a", "b"], ["b", "c"], params) == {"b"}


class TestIntersectionParties:
    def test_basic(self, params):
        assert _run_intersection(["a", "b", "c"], ["b", "c", "d"], params) == {
            "b",
            "c",
        }

    def test_empty_sides(self, params):
        assert _run_intersection([], ["a"], params) == set()
        assert _run_intersection(["a"], [], params) == set()

    def test_sizes_recorded(self, params):
        receiver = IntersectionReceiver(["a", "b"], params, random.Random(1))
        sender = IntersectionSender(["b", "c", "d"], params, random.Random(2))
        answer = receiver.finish(sender.round1(receiver.round1()))
        assert answer == {"b"}
        assert sender.size_v_r == 2
        assert receiver.size_v_s == 3

    def test_messages_are_sorted(self, params):
        receiver = IntersectionReceiver(list("abcdef"), params, random.Random(3))
        y_r = receiver.round1()
        assert y_r == sorted(y_r)
        sender = IntersectionSender(list("defghi"), params, random.Random(4))
        y_s, _pairs = sender.round1(y_r)
        assert y_s == sorted(y_s)

    @given(value_sets, value_sets, st.integers(min_value=0, max_value=99))
    @settings(max_examples=15, deadline=None)
    def test_matches_set_semantics(self, v_r, v_s, seed):
        params = PublicParams.for_bits(64)
        assert _run_intersection(list(v_r), list(v_s), params, seed) == (v_r & v_s)

    def test_agrees_with_driver_function(self, params):
        from repro.protocols.base import ProtocolSuite
        from repro.protocols.intersection import run_intersection

        v_r, v_s = ["x", "y", "z"], ["y", "q"]
        driver = run_intersection(v_r, v_s, ProtocolSuite.default(bits=128, seed=5))
        assert _run_intersection(v_r, v_s, params) == driver.intersection


class TestIntersectionSizeParties:
    def test_basic(self, params):
        assert _run_size(["a", "b", "c"], ["b", "c", "d"], params) == 2

    def test_z_r_unpaired(self, params):
        receiver = IntersectionSizeReceiver(["a", "b"], params, random.Random(6))
        sender = IntersectionSizeSender(["b"], params, random.Random(7))
        y_s, z_r = sender.round1(receiver.round1())
        assert all(isinstance(z, int) for z in z_r)
        assert z_r == sorted(z_r)

    @given(value_sets, value_sets)
    @settings(max_examples=15, deadline=None)
    def test_matches_set_semantics(self, v_r, v_s):
        params = PublicParams.for_bits(64)
        assert _run_size(list(v_r), list(v_s), params) == len(v_r & v_s)


class TestIsolation:
    def test_parties_share_no_state(self, params):
        """The two party objects only exchange explicit messages."""
        receiver = IntersectionReceiver(["a"], params, random.Random(8))
        sender = IntersectionSender(["a"], params, random.Random(9))
        assert receiver._key != sender._key
        # The sender never holds R's values or vice versa.
        assert receiver.values == ["a"] and sender.values == ["a"]
        assert not hasattr(sender, "_y_by_value")


class TestEquijoinParties:
    def _run(self, v_r, ext, params, seed=0):
        from repro.protocols.parties import EquijoinReceiver, EquijoinSender

        receiver = EquijoinReceiver(v_r, params, random.Random(f"{seed}r"))
        sender = EquijoinSender(ext, params, random.Random(f"{seed}s"))
        return receiver.finish(sender.round1(receiver.round1()))

    def test_basic(self, params):
        matches = self._run(
            ["a", "b", "z"], {"a": b"rec-a", "b": b"rec-b", "q": b"rec-q"}, params
        )
        assert matches == {"a": b"rec-a", "b": b"rec-b"}

    def test_multiblock_payload(self, params):
        payload = bytes(range(256)) * 3
        matches = self._run(["k"], {"k": payload}, params)
        assert matches["k"] == payload

    def test_empty_sides(self, params):
        assert self._run([], {"a": b"x"}, params) == {}
        assert self._run(["a"], {}, params) == {}

    def test_sizes_recorded(self, params):
        from repro.protocols.parties import EquijoinReceiver, EquijoinSender

        receiver = EquijoinReceiver(["a", "b"], params, random.Random(1))
        sender = EquijoinSender({"b": b"x", "c": b"y", "d": b"z"}, params,
                                random.Random(2))
        matches = receiver.finish(sender.round1(receiver.round1()))
        assert matches == {"b": b"x"}
        assert sender.size_v_r == 2
        assert receiver.size_v_s == 3

    def test_agrees_with_driver(self, params):
        from repro.protocols.base import ProtocolSuite
        from repro.protocols.equijoin import run_equijoin

        v_r = ["x", "y", "z"]
        ext = {"y": b"payload-y", "w": b"payload-w"}
        driver = run_equijoin(v_r, ext, ProtocolSuite.default(bits=128, seed=3))
        assert self._run(v_r, ext, params) == driver.matches

    @given(
        st.sets(st.integers(min_value=0, max_value=25), max_size=8),
        st.dictionaries(
            st.integers(min_value=0, max_value=25), st.binary(max_size=6), max_size=8
        ),
    )
    @settings(max_examples=10, deadline=None)
    def test_matches_plaintext_property(self, v_r, ext):
        params = PublicParams.for_bits(64)
        expected = {v: ext[v] for v in v_r if v in ext}
        assert self._run(list(v_r), ext, params) == expected


class TestEquijoinSizeParties:
    def _run(self, v_r, v_s, params, seed=0):
        from repro.protocols.parties import (
            EquijoinSizeReceiver,
            EquijoinSizeSender,
        )

        receiver = EquijoinSizeReceiver(v_r, params, random.Random(f"{seed}r"))
        sender = EquijoinSizeSender(v_s, params, random.Random(f"{seed}s"))
        return receiver.finish(sender.round1(receiver.round1()))

    def test_multiplicities_multiply(self, params):
        # a: 2*1, b: 1*2 -> join size 4.
        assert self._run(["a", "a", "b", "c"], ["a", "b", "b", "e"],
                         params) == 4

    def test_disjoint_multisets(self, params):
        assert self._run(["a", "a"], ["b", "b"], params) == 0

    def test_empty_sides(self, params):
        assert self._run([], ["a", "a"], params) == 0
        assert self._run(["a"], [], params) == 0

    def test_sizes_count_occurrences(self, params):
        from repro.protocols.parties import (
            EquijoinSizeReceiver,
            EquijoinSizeSender,
        )

        receiver = EquijoinSizeReceiver(["a", "a", "b"], params,
                                        random.Random(1))
        sender = EquijoinSizeSender(["b", "b"], params, random.Random(2))
        receiver.finish(sender.round1(receiver.round1()))
        assert sender.size_v_r == 3  # R's multiset size, not distinct count
        assert receiver.size_v_s == 2

    def test_agrees_with_multiset_and_driver(self, params):
        from repro.db.multiset import ValueMultiset
        from repro.protocols.base import ProtocolSuite
        from repro.protocols.equijoin_size import run_equijoin_size

        v_r = ["x", "x", "y", "z", "z", "z"]
        v_s = ["x", "y", "y", "z", "w"]
        expected = ValueMultiset.from_values(v_r).join_size(
            ValueMultiset.from_values(v_s)
        )
        driver = run_equijoin_size(
            v_r, v_s, ProtocolSuite.default(bits=128, seed=7)
        )
        assert self._run(v_r, v_s, params) == expected == driver.join_size

    def test_accepts_prebuilt_multiset(self, params):
        from repro.db.multiset import ValueMultiset

        ms_r = ValueMultiset.from_values(["a", "a", "b"])
        ms_s = ValueMultiset.from_values(["a", "b", "b"])
        assert self._run(ms_r, ms_s, params) == 1 * 2 + 2 * 1

    @given(
        st.lists(st.integers(min_value=0, max_value=12), max_size=10),
        st.lists(st.integers(min_value=0, max_value=12), max_size=10),
    )
    @settings(max_examples=10, deadline=None)
    def test_matches_plaintext_property(self, v_r, v_s):
        from repro.db.multiset import ValueMultiset

        params = PublicParams.for_bits(64)
        expected = ValueMultiset.from_values(v_r).join_size(
            ValueMultiset.from_values(v_s)
        )
        assert self._run(v_r, v_s, params) == expected
