"""Tests for the Section 5.1 intersection-size protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.base import ProtocolSuite
from repro.protocols.intersection_size import run_intersection_size
from repro.workloads.generator import overlapping_sets

value_sets = st.sets(st.integers(min_value=0, max_value=40), max_size=15)


class TestCorrectness:
    @pytest.mark.parametrize(
        "v_r, v_s, expected",
        [
            (["a", "b", "c"], ["b", "c", "d"], 2),
            ([], ["a"], 0),
            (["a"], [], 0),
            ([], [], 0),
            (["a", "b"], ["a", "b"], 2),
            (["a", "b"], ["x", "y"], 0),
        ],
    )
    def test_examples(self, suite, v_r, v_s, expected):
        result = run_intersection_size(v_r, v_s, suite)
        assert result.size == expected

    def test_sizes_learned(self, suite):
        result = run_intersection_size(["a"], ["b", "c"], suite)
        assert result.size_v_s == 2
        assert result.size_v_r == 1

    def test_input_duplicates_collapse(self, suite):
        result = run_intersection_size(["a", "a"], ["a", "a", "b"], suite)
        assert result.size == 1
        assert result.size_v_s == 2

    @given(value_sets, value_sets)
    @settings(max_examples=25, deadline=None)
    def test_matches_plaintext_property(self, v_r, v_s):
        suite = ProtocolSuite.default(bits=64, seed=1)
        result = run_intersection_size(list(v_r), list(v_s), suite)
        assert result.size == len(v_r & v_s)

    def test_workload_agreement(self, suite, rng):
        v_r, v_s, expected = overlapping_sets(25, 30, 9, rng)
        assert run_intersection_size(v_r, v_s, suite).size == len(expected)


class TestUnlinkability:
    """The defining difference from Section 3: Z_R comes back unpaired."""

    def test_message_steps(self, suite):
        result = run_intersection_size(["a", "b"], ["c"], suite)
        r_steps = [m.step for m in result.run.r_view.received]
        assert r_steps == ["4a:Y_S", "4b:Z_R"]

    def test_z_r_is_flat_sorted_list(self, suite):
        result = run_intersection_size(list("abcd"), list("cdef"), suite)
        z_r = next(result.run.r_view.payloads("4b:Z_R"))
        assert all(isinstance(x, int) for x in z_r)  # no pairs
        assert z_r == sorted(z_r)

    def test_no_pairs_anywhere_in_r_view(self, suite):
        result = run_intersection_size(list("abcd"), list("cdef"), suite)
        for message in result.run.r_view.received:
            assert all(not isinstance(x, (tuple, list)) for x in message.payload)

    def test_same_traffic_shape_as_intersection_for_s(self, suite):
        """S's view is identical in shape to the intersection protocol's."""
        result = run_intersection_size(["a", "b", "c"], ["d"], suite)
        s_steps = [m.step for m in result.run.s_view.received]
        assert s_steps == ["3:Y_R"]

    def test_z_r_cardinality(self, suite):
        result = run_intersection_size(list("abc"), list("xy"), suite)
        z_r = next(result.run.r_view.payloads("4b:Z_R"))
        assert len(z_r) == 3  # |V_R| double encryptions
