"""Metamorphic tests: protocol answers under input transformations.

Each test states an invariance the protocols must satisfy (the
plaintext semantics satisfy it, so the private computation must too)
and checks it on live runs. These catch bugs that example-based tests
miss - e.g. order dependence, value-encoding confusion, or state
leaking between runs of a shared suite.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.base import ProtocolSuite
from repro.protocols.equijoin_size import run_equijoin_size
from repro.protocols.intersection import run_intersection
from repro.protocols.intersection_size import run_intersection_size

value_sets = st.sets(st.integers(min_value=0, max_value=30), max_size=10)


class TestPermutationInvariance:
    @given(value_sets, value_sets, st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_input_order_irrelevant(self, v_r, v_s, seed):
        rng = random.Random(seed)
        a_r, a_s = sorted(v_r), sorted(v_s)
        b_r, b_s = list(v_r), list(v_s)
        rng.shuffle(b_r)
        rng.shuffle(b_s)
        result_a = run_intersection(a_r, a_s, ProtocolSuite.default(bits=64, seed=1))
        result_b = run_intersection(b_r, b_s, ProtocolSuite.default(bits=64, seed=2))
        assert result_a.intersection == result_b.intersection

    def test_multiset_order_irrelevant_for_join_size(self):
        values_r = ["a", "b", "a", "c", "b", "a"]
        values_s = ["b", "a", "b"]
        forward = run_equijoin_size(
            values_r, values_s, ProtocolSuite.default(bits=64, seed=3)
        )
        backward = run_equijoin_size(
            list(reversed(values_r)), list(reversed(values_s)),
            ProtocolSuite.default(bits=64, seed=4),
        )
        assert forward.join_size == backward.join_size


class TestRelabelingInvariance:
    @given(value_sets, value_sets)
    @settings(max_examples=15, deadline=None)
    def test_bijective_renaming_preserves_sizes(self, v_r, v_s):
        """Applying an injective rename to both inputs must preserve
        the intersection size (the protocol sees only hashes)."""
        rename = lambda v: f"renamed::{v * 7 + 1}"
        original = run_intersection_size(
            list(v_r), list(v_s), ProtocolSuite.default(bits=64, seed=5)
        )
        renamed = run_intersection_size(
            [rename(v) for v in v_r],
            [rename(v) for v in v_s],
            ProtocolSuite.default(bits=64, seed=6),
        )
        assert original.size == renamed.size

    def test_swap_of_parties_transposes_sizes(self):
        v_r, v_s = ["a", "b", "c"], ["b", "x"]
        forward = run_intersection(v_r, v_s, ProtocolSuite.default(bits=64, seed=7))
        swapped = run_intersection(v_s, v_r, ProtocolSuite.default(bits=64, seed=8))
        assert forward.intersection == swapped.intersection
        assert forward.size_v_s == swapped.size_v_r
        assert forward.size_v_r == swapped.size_v_s


class TestMonotonicity:
    @given(value_sets, value_sets, st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_adding_shared_value_grows_intersection(self, v_r, v_s, extra):
        base = run_intersection(
            list(v_r), list(v_s), ProtocolSuite.default(bits=64, seed=9)
        )
        grown = run_intersection(
            list(v_r | {extra}), list(v_s | {extra}),
            ProtocolSuite.default(bits=64, seed=10),
        )
        assert grown.intersection == base.intersection | {extra}

    def test_superset_of_s_never_shrinks_answer(self):
        v_r = ["a", "b", "c"]
        small = run_intersection(v_r, ["b"], ProtocolSuite.default(bits=64, seed=11))
        large = run_intersection(
            v_r, ["b", "c", "z"], ProtocolSuite.default(bits=64, seed=12)
        )
        assert small.intersection <= large.intersection


class TestSuiteReuse:
    def test_sequential_runs_on_one_suite_stay_correct(self):
        """A shared suite (fresh keys per run, shared hash/group) must
        not leak state between runs."""
        suite = ProtocolSuite.default(bits=64, seed=13)
        for i in range(5):
            v_r = [f"v{i}-{j}" for j in range(4)] + ["common"]
            v_s = ["common", f"s{i}"]
            result = run_intersection(v_r, v_s, suite)
            assert result.intersection == {"common"}

    def test_interleaved_protocol_types_on_one_suite(self):
        suite = ProtocolSuite.default(bits=64, seed=14)
        assert run_intersection(["a", "b"], ["b"], suite).intersection == {"b"}
        assert run_intersection_size(["a", "b"], ["b"], suite).size == 1
        assert run_equijoin_size(["a", "a"], ["a"], suite).join_size == 2
        assert run_intersection(["a", "b"], ["b"], suite).intersection == {"b"}


class TestCrossProtocolAgreement:
    @given(value_sets, value_sets)
    @settings(max_examples=10, deadline=None)
    def test_intersection_and_size_agree(self, v_r, v_s):
        inter = run_intersection(
            list(v_r), list(v_s), ProtocolSuite.default(bits=64, seed=15)
        )
        size = run_intersection_size(
            list(v_r), list(v_s), ProtocolSuite.default(bits=64, seed=16)
        )
        assert len(inter.intersection) == size.size

    @given(value_sets, value_sets)
    @settings(max_examples=10, deadline=None)
    def test_join_size_on_sets_equals_intersection_size(self, v_r, v_s):
        join = run_equijoin_size(
            list(v_r), list(v_s), ProtocolSuite.default(bits=64, seed=17)
        )
        assert join.join_size == len(v_r & v_s)
