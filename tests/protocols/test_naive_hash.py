"""Tests for the broken Section 3.1 protocol and the dictionary attack."""

from __future__ import annotations

from repro.protocols.intersection import run_intersection
from repro.protocols.naive_hash import dictionary_attack, run_naive_intersection


class TestNaiveProtocolComputesAnswer:
    def test_intersection_correct(self, suite):
        result = run_naive_intersection(["a", "b", "c"], ["b", "c", "d"], suite)
        assert result.intersection == {"b", "c"}

    def test_empty(self, suite):
        assert run_naive_intersection([], [], suite).intersection == set()

    def test_single_message_protocol(self, suite):
        result = run_naive_intersection(["a"], ["b"], suite)
        assert [m.step for m in result.run.r_view.received] == ["2:X_S"]
        assert result.run.s_view.received == []


class TestAttackSucceedsAgainstNaive:
    def test_full_recovery_over_small_domain(self, suite):
        """Section 3.1: 'if the domain V is small, R can exhaustively go
        over all possible values and completely learn V_S'."""
        domain = [f"person-{i}" for i in range(50)]
        v_s = domain[10:25]
        v_r = domain[:5]  # R's own values barely overlap
        result = run_naive_intersection(v_r, v_s, suite)
        recovered = dictionary_attack(result.observed_hashes, domain, suite.hash)
        assert recovered == set(v_s)

    def test_recovery_beyond_intersection(self, suite):
        """R learns values it does NOT share - the privacy failure."""
        v_s = ["x", "y", "z"]
        result = run_naive_intersection(["x"], v_s, suite)
        recovered = dictionary_attack(
            result.observed_hashes, ["x", "y", "z", "w"], suite.hash
        )
        assert {"y", "z"} <= recovered  # non-shared values exposed

    def test_partial_domain_partial_recovery(self, suite):
        v_s = ["a", "b", "c"]
        result = run_naive_intersection([], v_s, suite)
        recovered = dictionary_attack(result.observed_hashes, ["a", "q"], suite.hash)
        assert recovered == {"a"}


class TestAttackFailsAgainstCommutativeProtocol:
    def test_r_view_resists_dictionary_attack(self, suite):
        """The same attack mounted on the real protocol's R view finds
        nothing: everything on the wire is encrypted under S's key."""
        domain = [f"person-{i}" for i in range(50)]
        v_s = domain[10:25]
        v_r = domain[:12]
        result = run_intersection(v_r, v_s, suite)
        observed = set(result.run.r_view.flat_integers())
        recovered = dictionary_attack(observed, domain, suite.hash)
        assert recovered == set()

    def test_s_view_resists_dictionary_attack(self, suite):
        domain = [f"person-{i}" for i in range(30)]
        result = run_intersection(domain[:10], domain[5:20], suite)
        observed = set(result.run.s_view.flat_integers())
        recovered = dictionary_attack(observed, domain, suite.hash)
        assert recovered == set()
