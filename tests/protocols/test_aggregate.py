"""Tests for the equijoin-sum aggregate protocol (future-work extension)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.aggregate import run_equijoin_sum
from repro.protocols.base import ProtocolSuite


class TestCorrectness:
    @pytest.mark.parametrize(
        "v_r, values_s, expected_sum, expected_matches",
        [
            (["a", "b", "c"], {"b": 10, "c": 32, "z": 999}, 42, 2),
            (["a"], {"a": 7}, 7, 1),
            (["a"], {"b": 5}, 0, 0),
            ([], {"a": 5}, 0, 0),
            (["a", "b"], {}, 0, 0),
            (["x", "y"], {"x": 0, "y": 0}, 0, 2),  # zero values still match
        ],
    )
    def test_examples(self, suite, v_r, values_s, expected_sum, expected_matches):
        result = run_equijoin_sum(v_r, values_s, suite, paillier_bits=128)
        assert result.total == expected_sum
        assert result.match_count == expected_matches

    def test_sizes_learned(self, suite):
        result = run_equijoin_sum(
            ["a", "b"], {"b": 1, "c": 2, "d": 3}, suite, paillier_bits=128
        )
        assert result.size_v_s == 3
        assert result.size_v_r == 2

    def test_large_values(self, suite):
        result = run_equijoin_sum(
            ["k"], {"k": 10**12}, suite, paillier_bits=128
        )
        assert result.total == 10**12

    def test_negative_values_rejected(self, suite):
        with pytest.raises(ValueError):
            run_equijoin_sum(["a"], {"a": -1}, suite, paillier_bits=128)

    @given(
        st.sets(st.integers(min_value=0, max_value=25), max_size=8),
        st.dictionaries(
            st.integers(min_value=0, max_value=25),
            st.integers(min_value=0, max_value=10**6),
            max_size=8,
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_plaintext_property(self, v_r, values_s):
        suite = ProtocolSuite.default(bits=64, seed=5)
        result = run_equijoin_sum(list(v_r), values_s, suite, paillier_bits=128)
        expected = sum(values_s[v] for v in v_r if v in values_s)
        assert result.total == expected
        assert result.match_count == len(v_r & set(values_s))


class TestDisclosureShape:
    def test_wire_steps(self, suite):
        result = run_equijoin_sum(
            ["a", "b"], {"b": 4, "q": 9}, suite, paillier_bits=128
        )
        r_steps = [m.step for m in result.run.r_view.received]
        s_steps = [m.step for m in result.run.s_view.received]
        assert r_steps == ["2:Z_R+pk", "3:pairs", "5:blinded_sum"]
        assert s_steps == ["1:Y_R", "4:blinded"]

    def test_z_r_unpaired_and_sorted(self, suite):
        result = run_equijoin_sum(
            ["a", "b", "c"], {"b": 4}, suite, paillier_bits=128
        )
        z_r, _n = next(result.run.r_view.payloads("2:Z_R+pk"))
        assert z_r == sorted(z_r)
        assert all(isinstance(x, int) for x in z_r)

    def test_s_sees_blinded_sum_not_true_sum(self, suite):
        """The single ciphertext S decrypts carries sum + uniform mask;
        the true sum must not be recoverable from S's view alone (we
        check it is not literally present)."""
        values = {"b": 1111, "c": 2222}
        result = run_equijoin_sum(
            ["b", "c"], values, suite, paillier_bits=128
        )
        assert result.total == 3333
        # S's view holds Y_R (group elements) and one Paillier
        # ciphertext; neither equals the plaintext sum.
        s_ints = set(result.run.s_view.flat_integers())
        assert 3333 not in s_ints

    def test_blinded_sum_varies_across_runs(self):
        """The mask is fresh per run: what S decrypts differs even on
        identical inputs."""
        revealed = set()
        for seed in (1, 2, 3):
            suite = ProtocolSuite.default(bits=128, seed=seed)
            result = run_equijoin_sum(["a"], {"a": 5}, suite, paillier_bits=128)
            revealed.add(next(result.run.r_view.payloads("5:blinded_sum")))
            assert result.total == 5
        assert len(revealed) == 3

    def test_individual_values_not_in_r_view(self, suite):
        """R's view carries only Paillier ciphertexts of S's values -
        the plaintext amounts never appear."""
        values = {"b": 123456789, "q": 987654321}
        result = run_equijoin_sum(["b"], values, suite, paillier_bits=128)
        r_ints = set(result.run.r_view.flat_integers())
        assert 123456789 not in r_ints
        assert 987654321 not in r_ints
