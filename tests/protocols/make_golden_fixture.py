"""Regenerate the golden-transcript fixture for the spec refactor tests.

Runs the in-memory protocol drivers (and, as a cross-check, the
separable party state machines) on fixed inputs with seeded randomness
and records a SHA-256 digest of the serialization of every wire
payload: each recorded view part, each assembled round message, and
the answer. ``tests/protocols/test_golden_transcripts.py`` asserts
that spec-driven runs - in-memory, plain TCP and resumable, serial and
pooled - reproduce these bytes exactly.

The fixture was first captured against the pre-refactor per-protocol
drivers, so it pins byte-identity across the refactor, not merely
self-consistency. Regenerate (only when a protocol's wire format is
*intentionally* changed) with:

    PYTHONPATH=src python tests/protocols/make_golden_fixture.py
"""

from __future__ import annotations

import hashlib
import json
import random
from pathlib import Path

from repro.crypto.commutative import PowerCipher
from repro.crypto.ext_cipher import BlockExtCipher
from repro.crypto.groups import QRGroup
from repro.crypto.hashing import TryIncrementHash
from repro.net.serialization import encode
from repro.protocols.aggregate import run_equijoin_sum
from repro.protocols.base import ProtocolSuite
from repro.protocols.equijoin import run_equijoin
from repro.protocols.equijoin_size import run_equijoin_size
from repro.protocols.intersection import run_intersection
from repro.protocols.intersection_size import run_intersection_size

FIXTURE_PATH = Path(__file__).with_name("golden_transcripts.json")

BITS = 128
N = 40  # above DEFAULT_MIN_PARALLEL so pooled runs actually batch
CHUNK_SIZE = 7  # the chunked column's fixed streaming slice


def fixture_values() -> tuple[list[str], list[str]]:
    """The shared value sets: half private per side, half common."""
    half = N // 2
    v_r = [f"r{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    return v_r, v_s


def fixture_multisets() -> tuple[list[str], list[str]]:
    """Equijoin-size inputs: the shared sets plus duplicates."""
    v_r, v_s = fixture_values()
    return v_r + v_r[:5], v_s + v_s[:3]


def fixture_ext() -> dict[str, bytes]:
    """Equijoin sender payloads."""
    _, v_s = fixture_values()
    return {v: f"payload:{v}".encode() for v in v_s}


def fixture_amounts() -> dict[str, int]:
    """Equijoin-sum sender amounts."""
    _, v_s = fixture_values()
    return {v: (i * 7) % 23 for i, v in enumerate(v_s)}


def fixture_suite() -> ProtocolSuite:
    """The seeded suite every capture run uses (rng_r="R", rng_s="S")."""
    group = QRGroup.for_bits(BITS)
    return ProtocolSuite(
        group=group,
        hash=TryIncrementHash(group),
        cipher=PowerCipher(group),
        ext_cipher=BlockExtCipher(group),
        rng_r=random.Random("R"),
        rng_s=random.Random("S"),
    )


def digest(payload) -> str:
    """SHA-256 of the canonical wire encoding of ``payload``."""
    return hashlib.sha256(encode(payload)).hexdigest()


def canonical_answer(protocol: str, result) -> object:
    """The protocol answer as a deterministic, encodable object."""
    if protocol == "intersection":
        return sorted(result.intersection, key=repr)
    if protocol == "equijoin":
        return [(v, result.matches[v]) for v in sorted(result.matches, key=repr)]
    if protocol == "intersection-size":
        return result.size
    if protocol == "equijoin-size":
        return result.join_size
    if protocol == "equijoin-sum":
        return [result.total, result.match_count]
    raise ValueError(protocol)


def _view_payloads(run) -> dict[str, object]:
    """Every recorded part payload across both views, keyed by label."""
    payloads: dict[str, object] = {}
    for view in (run.s_view, run.r_view):
        for message in view.received:
            payloads[message.step] = message.payload
    return payloads


#: protocol -> (part labels per round, in order); single-part rounds
#: ship the bare payload, multi-part rounds ship the tuple of parts.
ROUND_PARTS = {
    "intersection": [["3:Y_R"], ["4a:Y_S", "4b:pairs"]],
    "intersection-size": [["3:Y_R"], ["4a:Y_S", "4b:Z_R"]],
    "equijoin": [["3:Y_R"], ["4:triples", "5:pairs"]],
    "equijoin-size": [["3:Y_R"], ["4a:Y_S", "4b:Z_R"]],
    "equijoin-sum": [["1:Y_R"], ["2:Z_R+pk", "3:pairs"], ["4:blinded"],
                     ["5:blinded_sum"]],
}


def _round_wires(protocol: str, payloads: dict[str, object]) -> list[object]:
    wires = []
    for labels in ROUND_PARTS[protocol]:
        parts = [payloads[label] for label in labels]
        wires.append(parts[0] if len(parts) == 1 else tuple(parts))
    return wires


def capture(protocol: str) -> dict[str, object]:
    """One protocol's golden record from the in-memory driver."""
    v_r, v_s = fixture_values()
    if protocol == "intersection":
        result = run_intersection(v_r, v_s, fixture_suite())
    elif protocol == "intersection-size":
        result = run_intersection_size(v_r, v_s, fixture_suite())
    elif protocol == "equijoin":
        result = run_equijoin(v_r, fixture_ext(), fixture_suite())
    elif protocol == "equijoin-size":
        ms_r, ms_s = fixture_multisets()
        result = run_equijoin_size(ms_r, ms_s, fixture_suite())
    elif protocol == "equijoin-sum":
        result = run_equijoin_sum(v_r, fixture_amounts(), fixture_suite())
    else:
        raise ValueError(protocol)

    payloads = _view_payloads(result.run)
    record: dict[str, object] = {
        "parts": {label: digest(payload) for label, payload in payloads.items()},
        "wires": {
            f"m{i + 1}": digest(wire)
            for i, wire in enumerate(_round_wires(protocol, payloads))
        },
        "answer": digest(canonical_answer(protocol, result)),
        "size_v_r": result.size_v_r,
        "size_v_s": result.size_v_s,
    }
    if protocol == "equijoin-size":
        record["diagnostics"] = {
            "r_learns_s_duplicates": repr(result.r_learns_s_duplicates),
            "s_learns_r_duplicates": repr(result.s_learns_r_duplicates),
            "partition_overlap": repr(sorted(result.partition_overlap.items())),
        }
    return record


def _chunk_inputs(protocol: str) -> tuple[object, object]:
    """(receiver data, sender data) for the machine-driven capture."""
    v_r, v_s = fixture_values()
    if protocol == "equijoin":
        return v_r, fixture_ext()
    if protocol == "equijoin-size":
        return fixture_multisets()
    if protocol == "equijoin-sum":
        return v_r, fixture_amounts()
    return v_r, v_s


def capture_chunked(protocol: str) -> dict[str, str]:
    """Per-round digests of the chunk-frame stream at ``CHUNK_SIZE``.

    The legacy columns pin the pre-refactor whole-round bytes; this
    one pins the *streamed* wire format - the exact chunk frames (plus
    terminal chunk-end frame) a ``chunk_size=CHUNK_SIZE`` transport
    puts on the wire, hashed in order per round. Non-chunkable rounds
    ship their single legacy frame, so their digest doubles as proof
    the stream leaves them untouched.
    """
    from repro.net.serialization import chunk_end_frame, chunk_frame
    from repro.protocols.parties import (
        PublicParams,
        ReceiverMachine,
        SenderMachine,
    )
    from repro.protocols.spec import PROTOCOLS

    spec = PROTOCOLS[protocol]
    params = PublicParams.for_bits(BITS)
    r_data, s_data = _chunk_inputs(protocol)
    receiver = ReceiverMachine(spec, r_data, params, random.Random("R"))
    sender = SenderMachine(spec, s_data, params, random.Random("S"))
    digests: dict[str, str] = {}
    for i, rnd in enumerate(spec.rounds, start=1):
        producer, consumer = (
            (receiver, sender) if rnd.source == "R" else (sender, receiver)
        )
        if rnd.chunkable:
            payloads = list(producer.produce_chunks(rnd, CHUNK_SIZE))
            frames = [
                chunk_frame(j, payload) for j, payload in enumerate(payloads)
            ] + [chunk_end_frame(len(payloads))]
            consumer.consume_chunks(rnd, payloads)
        else:
            frames = [producer.produce(rnd).to_wire()]
            consumer.consume(rnd, frames[0])
        stream = hashlib.sha256()
        for frame in frames:
            stream.update(encode(frame))
        digests[f"m{i}"] = stream.hexdigest()
    receiver.finish()
    return digests


def _cross_check_parties(fixture: dict) -> None:
    """The party state machines must emit the same bytes as the drivers."""
    from repro.protocols.parties import (
        EquijoinReceiver,
        EquijoinSender,
        EquijoinSizeReceiver,
        EquijoinSizeSender,
        IntersectionReceiver,
        IntersectionSender,
        IntersectionSizeReceiver,
        IntersectionSizeSender,
        PublicParams,
    )

    params = PublicParams.for_bits(BITS)
    v_r, v_s = fixture_values()
    ms_r, ms_s = fixture_multisets()
    cases = {
        "intersection": (IntersectionReceiver, IntersectionSender, v_r, v_s),
        "intersection-size": (
            IntersectionSizeReceiver, IntersectionSizeSender, v_r, v_s,
        ),
        "equijoin": (EquijoinReceiver, EquijoinSender, v_r, fixture_ext()),
        "equijoin-size": (
            EquijoinSizeReceiver, EquijoinSizeSender, ms_r, ms_s,
        ),
    }
    for protocol, (receiver_cls, sender_cls, r_data, s_data) in cases.items():
        receiver = receiver_cls(r_data, params, random.Random("R"))
        sender = sender_cls(s_data, params, random.Random("S"))
        m1 = receiver.round1()
        m2 = sender.round1(m1)
        receiver.finish(m2)
        wires = fixture["protocols"][protocol]["wires"]
        got_m1, got_m2 = digest(_as_wire(m1)), digest(_as_wire(m2))
        if (got_m1, got_m2) != (wires["m1"], wires["m2"]):
            raise AssertionError(
                f"party transcript diverges from driver for {protocol}"
            )


def _as_wire(message) -> object:
    to_wire = getattr(message, "to_wire", None)
    return to_wire() if callable(to_wire) else message


def main() -> None:
    fixture = {
        "bits": BITS,
        "n": N,
        "chunk_size": CHUNK_SIZE,
        "protocols": {name: capture(name) for name in ROUND_PARTS},
    }
    for name, record in fixture["protocols"].items():
        record["chunked_wires"] = capture_chunked(name)
    _cross_check_parties(fixture)
    FIXTURE_PATH.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE_PATH}")


if __name__ == "__main__":
    main()
