"""Tests for the private selection protocol (symmetric-PIR-style)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.base import ProtocolSuite
from repro.protocols.selection import run_selection


@pytest.fixture()
def records():
    return [b"alpha", b"bravo-long-record", b"", b"charlie", b"\x00\x01\x02"]


class TestCorrectness:
    def test_every_index(self, suite, records):
        for i, expected in enumerate(records):
            result = run_selection(i, records, suite)
            assert result.record == expected
            assert result.n_records == len(records)

    def test_single_record(self, suite):
        assert run_selection(0, [b"only"], suite).record == b"only"

    def test_variable_lengths_padded(self, suite):
        """Records of different sizes round-trip exactly (padding is
        stripped via the length prefix)."""
        records = [b"x" * n for n in (0, 1, 30, 7)]
        for i, expected in enumerate(records):
            assert run_selection(i, records, suite).record == expected

    @given(
        st.lists(st.binary(max_size=20), min_size=1, max_size=9),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_property(self, records, seed):
        suite = ProtocolSuite.default(bits=64, seed=seed)
        index = seed % len(records)
        assert run_selection(index, records, suite).record == records[index]


class TestValidation:
    def test_empty_records_rejected(self, suite):
        with pytest.raises(ValueError):
            run_selection(0, [], suite)

    def test_index_out_of_range(self, suite, records):
        with pytest.raises(ValueError):
            run_selection(len(records), records, suite)
        with pytest.raises(ValueError):
            run_selection(-1, records, suite)


class TestDisclosureShape:
    def test_s_sees_only_uniform_elements(self, suite, records):
        """Everything S receives is log2(n) group elements - identical
        in shape for every index, so the index is hidden."""
        signatures = set()
        for index in range(len(records)):
            fresh = ProtocolSuite.default(bits=128, seed=index)
            result = run_selection(index, records, fresh)
            assert [m.step for m in result.run.s_view.received] == ["2:PK0"]
            pk0s = next(result.run.s_view.payloads("2:PK0"))
            assert all(x in fresh.group for x in pk0s)
            signatures.add(result.run.s_view.signature())
        assert len(signatures) == 1  # index-independent

    def test_r_receives_all_n_ciphertexts(self, suite, records):
        result = run_selection(1, records, suite)
        transfer = next(result.run.r_view.payloads("3:transfer"))
        assert len(transfer[1]) == len(records)

    def test_sealed_records_not_in_plaintext(self, suite):
        """Non-selected record contents never appear in R's view."""
        records = [b"public-choice", b"SEALED-SECRET-A", b"SEALED-SECRET-B"]
        result = run_selection(0, records, suite)
        blob = repr([m.payload for m in result.run.r_view.received]).encode()
        assert b"SEALED-SECRET-A" not in blob
        assert b"SEALED-SECRET-B" not in blob

    def test_traffic_linear_in_n(self, suite):
        small = run_selection(0, [b"r" * 10] * 4, suite)
        large = run_selection(0, [b"r" * 10] * 16, suite)
        assert large.run.total_bytes > small.run.total_bytes
