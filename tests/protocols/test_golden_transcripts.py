"""Golden-transcript pinning for the spec-driven protocol stack.

``golden_transcripts.json`` was captured from the pre-refactor
per-protocol drivers (see ``make_golden_fixture.py``). These tests
assert that the declarative round schedules, interpreted by the
generic machines, reproduce those bytes exactly - for every registered
protocol, across the in-memory, plain-TCP and resumable execution
paths, with the serial and the process-pool crypto engines.
"""

from __future__ import annotations

import hashlib
import json
import random
import socket
import threading
from pathlib import Path

import pytest

from repro.crypto.engine import ProcessPoolEngine
from repro.net.serialization import (
    chunk_end_frame,
    chunk_frame,
    encode,
    fold_chunk_frames,
    is_chunk_end,
    is_chunk_frame,
)
from repro.net.session import (
    ReceiverSession,
    RetryPolicy,
    SenderSession,
    SessionConfig,
)
from repro.net.tcp import SocketEndpoint, connect, serve
from repro.protocols.parties import (
    PublicParams,
    ReceiverMachine,
    SenderMachine,
)
from repro.protocols.spec import PROTOCOLS

FIXTURE = json.loads(
    Path(__file__).with_name("golden_transcripts.json").read_text()
)
BITS = FIXTURE["bits"]
N = FIXTURE["n"]
CHUNK_SIZE = FIXTURE["chunk_size"]

PROTOCOL_NAMES = sorted(FIXTURE["protocols"])


def _digest(payload) -> str:
    return hashlib.sha256(encode(payload)).hexdigest()


def _values():
    half = N // 2
    v_r = [f"r{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    return v_r, v_s


def _inputs(name):
    """(receiver data, sender data) exactly as the fixture was captured."""
    v_r, v_s = _values()
    if name == "equijoin":
        return v_r, {v: f"payload:{v}".encode() for v in v_s}
    if name == "equijoin-size":
        return v_r + v_r[:5], v_s + v_s[:3]
    if name == "equijoin-sum":
        return v_r, {v: (i * 7) % 23 for i, v in enumerate(v_s)}
    return v_r, v_s


def _canonical_answer(name, answer, match_count=None):
    """Mirror of the fixture generator's ``canonical_answer``."""
    if name == "intersection":
        return sorted(answer, key=repr)
    if name == "equijoin":
        return [(v, answer[v]) for v in sorted(answer, key=repr)]
    if name == "equijoin-sum":
        return [answer, match_count]
    return answer  # the size protocols answer with one number


def _plain_match_count() -> int:
    v_r, v_s = _values()
    return len(set(v_r) & set(v_s))


@pytest.fixture(scope="module")
def params():
    return PublicParams.for_bits(BITS)


@pytest.fixture(scope="module")
def pooled_engines():
    """One pool per party so concurrent runs never share a pool."""
    with ProcessPoolEngine(processors=2, chunk_size=7) as r_engine:
        with ProcessPoolEngine(processors=2, chunk_size=7) as s_engine:
            yield r_engine, s_engine


@pytest.fixture(params=["serial", "pooled"])
def engines(request, pooled_engines):
    """(receiver engine, sender engine); ``None`` means serial."""
    if request.param == "serial":
        return None, None
    return pooled_engines


def _session_config():
    return SessionConfig(
        timeout_s=2.0,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05),
        max_reconnects=1,
        fin_grace_s=0.05,
    )


class _RecordingTransport:
    """Wraps a framed transport; logs every message in arrival order."""

    def __init__(self, transport, log):
        self._transport = transport
        self.log = log

    def send(self, message):
        self.log.append(("sent", message))
        self._transport.send(message)

    def recv(self):
        message = self._transport.recv()
        self.log.append(("received", message))
        return message

    def settimeout(self, timeout):
        self._transport.settimeout(timeout)

    def close(self):
        self._transport.close()


class _SessionRecordingTransport(_RecordingTransport):
    """Records the payload bytes of ``msg`` session frames, by seq."""

    def __init__(self, transport, frames):
        super().__init__(transport, [])
        self.frames = frames

    def send(self, frame):
        if isinstance(frame, tuple) and frame and frame[0] == "msg":
            self.frames.setdefault(("sent", frame[1]), frame[2])
        self._transport.send(frame)

    def recv(self):
        frame = self._transport.recv()
        if isinstance(frame, tuple) and frame and frame[0] == "msg":
            self.frames.setdefault(("received", frame[1]), frame[2])
        return frame


def _assert_wires(name, digests):
    expected = FIXTURE["protocols"][name]["wires"]
    assert digests == expected, f"wire transcript diverges for {name}"


def _assert_answer(name, answer, match_count=None):
    got = _digest(_canonical_answer(name, answer, match_count))
    assert got == FIXTURE["protocols"][name]["answer"]


# ----------------------------------------------------------------------
# In-memory: machines driven directly, wires captured per round
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_in_memory_matches_golden(name, params, engines):
    r_engine, s_engine = engines
    spec = PROTOCOLS[name]
    r_data, s_data = _inputs(name)
    receiver = ReceiverMachine(
        spec, r_data, params, random.Random("R"), engine=r_engine
    )
    sender = SenderMachine(
        spec, s_data, params, random.Random("S"), engine=s_engine
    )
    digests = {}
    for i, rnd in enumerate(spec.rounds, start=1):
        producer, consumer = (
            (receiver, sender) if rnd.source == "R" else (sender, receiver)
        )
        wire = producer.produce(rnd).to_wire()
        digests[f"m{i}"] = _digest(wire)
        consumer.consume(rnd, wire)
    answer = receiver.finish()

    _assert_wires(name, digests)
    _assert_answer(
        name, answer, getattr(receiver.state, "match_count", None)
    )
    record = FIXTURE["protocols"][name]
    assert sender.state.size_v_r == record["size_v_r"]
    assert receiver.state.size_v_s == record["size_v_s"]


# ----------------------------------------------------------------------
# Plain TCP: generic serve/connect, wires captured on the client side
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_tcp_matches_golden(name, params, engines):
    r_engine, s_engine = engines
    spec = PROTOCOLS[name]
    r_data, s_data = _inputs(name)
    port_box: list[int] = []
    ready = threading.Event()
    server_box: dict = {}

    def serve_thread():
        server_box["size_v_r"] = serve(
            name, s_data, params, random.Random("S"),
            ready_callback=lambda port: (port_box.append(port), ready.set()),
            timeout=10.0, engine=s_engine,
        )

    thread = threading.Thread(target=serve_thread)
    thread.start()
    assert ready.wait(timeout=10)
    log: list = []
    answer = connect(
        name, r_data, random.Random("R"), "127.0.0.1", port_box[0],
        timeout=10.0, engine=r_engine,
        endpoint_wrapper=lambda endpoint: _RecordingTransport(endpoint, log),
    )
    thread.join(timeout=10)
    assert not thread.is_alive()

    rounds = log[1:]  # drop the ("params", ...) handshake frame
    assert len(rounds) == len(spec.rounds)
    digests = {}
    for i, (rnd, (direction, message)) in enumerate(
        zip(spec.rounds, rounds), start=1
    ):
        assert direction == ("sent" if rnd.source == "R" else "received")
        digests[f"m{i}"] = _digest(message)
    _assert_wires(name, digests)
    match_count = _plain_match_count() if name == "equijoin-sum" else None
    _assert_answer(name, answer, match_count)
    assert server_box["size_v_r"] == FIXTURE["protocols"][name]["size_v_r"]


# ----------------------------------------------------------------------
# Resumable sessions: driven over a socketpair, msg frames captured
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_resumable_matches_golden(name, params, engines):
    r_engine, s_engine = engines
    spec = PROTOCOLS[name]
    r_data, s_data = _inputs(name)
    config = _session_config()
    raw_s, raw_r = socket.socketpair()
    raw_s.settimeout(10.0)
    raw_r.settimeout(10.0)
    sender_session = SenderSession(
        name,
        params,
        lambda: spec.make_sender(
            s_data, params, random.Random("S"), engine=s_engine
        ),
        config=config,
        rng=random.Random(1),
    )
    receiver_session = ReceiverSession(
        name,
        lambda wire: spec.make_receiver(
            r_data,
            PublicParams.from_wire(tuple(wire)),
            random.Random("R"),
            engine=r_engine,
        ),
        config=config,
        rng=random.Random(2),
    )
    server_box: dict = {}
    connections = iter([SocketEndpoint(sock=raw_s)])

    def serve_thread():
        server_box["state"] = sender_session.run(lambda: next(connections))

    thread = threading.Thread(target=serve_thread)
    thread.start()
    frames: dict = {}
    answer = receiver_session.run(
        lambda: _SessionRecordingTransport(SocketEndpoint(sock=raw_r), frames)
    )
    thread.join(timeout=10)
    assert not thread.is_alive()

    digests = {}
    sent = received = 0
    for i, rnd in enumerate(spec.rounds, start=1):
        if rnd.source == "R":
            wire_bytes = frames[("sent", sent)]
            sent += 1
        else:
            wire_bytes = frames[("received", received)]
            received += 1
        digests[f"m{i}"] = hashlib.sha256(wire_bytes).hexdigest()
    _assert_wires(name, digests)
    match_count = getattr(
        receiver_session._machine.state, "match_count", None
    )
    _assert_answer(name, answer, match_count)
    record = FIXTURE["protocols"][name]
    assert server_box["state"].size_v_r == record["size_v_r"]
    assert sender_session.stats.reconnects == 0
    assert receiver_session.stats.reconnects == 0
    assert sender_session.stats.rounds_computed == sum(
        1 for rnd in spec.rounds if rnd.source == "S"
    )
    assert receiver_session.stats.rounds_computed == sum(
        1 for rnd in spec.rounds if rnd.source == "R"
    )


# ----------------------------------------------------------------------
# Chunked execution: the streamed wire format must carry the identical
# logical transcript, and its chunk-frame stream is pinned too.
# ----------------------------------------------------------------------
def _stream_digest(frames) -> str:
    stream = hashlib.sha256()
    for frame in frames:
        stream.update(encode(frame))
    return stream.hexdigest()


def _assert_chunked_wires(name, digests):
    expected = FIXTURE["protocols"][name]["chunked_wires"]
    assert digests == expected, f"chunk-frame stream diverges for {name}"


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_in_memory_chunked_matches_golden(name, params, engines):
    """Machines driven chunk-by-chunk reproduce both columns: the
    reassembled logical wires equal the legacy whole-round digests,
    and the chunk-frame stream equals the chunked column."""
    r_engine, s_engine = engines
    spec = PROTOCOLS[name]
    r_data, s_data = _inputs(name)
    receiver = ReceiverMachine(
        spec, r_data, params, random.Random("R"), engine=r_engine
    )
    sender = SenderMachine(
        spec, s_data, params, random.Random("S"), engine=s_engine
    )
    logical = {}
    streamed = {}
    for i, rnd in enumerate(spec.rounds, start=1):
        producer, consumer = (
            (receiver, sender) if rnd.source == "R" else (sender, receiver)
        )
        if rnd.chunkable:
            payloads = list(producer.produce_chunks(rnd, CHUNK_SIZE))
            frames = [
                chunk_frame(j, payload) for j, payload in enumerate(payloads)
            ] + [chunk_end_frame(len(payloads))]
            consumer.consume_chunks(rnd, payloads)
            message = consumer.inbox[rnd.name]
        else:
            wire = producer.produce(rnd).to_wire()
            frames = [wire]
            message = consumer.consume(rnd, wire)
        logical[f"m{i}"] = _digest(message.to_wire())
        streamed[f"m{i}"] = _stream_digest(frames)
    answer = receiver.finish()

    _assert_wires(name, logical)
    _assert_chunked_wires(name, streamed)
    _assert_answer(
        name, answer, getattr(receiver.state, "match_count", None)
    )


def _group_round_frames(frames):
    """Split a flat frame log into per-round frame groups."""
    rounds = []
    current: list = []
    for frame in frames:
        if is_chunk_frame(frame):
            current.append(frame)
        elif is_chunk_end(frame):
            current.append(frame)
            rounds.append(current)
            current = []
        else:
            assert not current, "whole-round frame interleaved with chunks"
            rounds.append([frame])
    assert not current, "chunk run never terminated"
    return rounds


def _round_digests_from_frames(spec, frame_groups):
    """(logical, streamed) per-round digests from grouped frames."""
    logical = {}
    streamed = {}
    assert len(frame_groups) == len(spec.rounds)
    for i, (rnd, frames) in enumerate(
        zip(spec.rounds, frame_groups), start=1
    ):
        status, payload, used = fold_chunk_frames(frames)
        assert used == len(frames)
        if status == "single":
            wire = payload
        else:
            wire = rnd.message.from_wire_chunks(payload).to_wire()
        logical[f"m{i}"] = _digest(wire)
        streamed[f"m{i}"] = _stream_digest(frames)
    return logical, streamed


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_tcp_chunked_matches_golden(name, params, engines):
    """A ``chunk_size`` TCP run streams the pinned chunk frames and
    reassembles to the pinned logical transcript."""
    r_engine, s_engine = engines
    spec = PROTOCOLS[name]
    r_data, s_data = _inputs(name)
    port_box: list[int] = []
    ready = threading.Event()
    server_box: dict = {}

    def serve_thread():
        server_box["size_v_r"] = serve(
            name, s_data, params, random.Random("S"),
            ready_callback=lambda port: (port_box.append(port), ready.set()),
            timeout=10.0, engine=s_engine, chunk_size=CHUNK_SIZE,
        )

    thread = threading.Thread(target=serve_thread)
    thread.start()
    assert ready.wait(timeout=10)
    log: list = []
    answer = connect(
        name, r_data, random.Random("R"), "127.0.0.1", port_box[0],
        timeout=10.0, engine=r_engine, chunk_size=CHUNK_SIZE,
        endpoint_wrapper=lambda endpoint: _RecordingTransport(endpoint, log),
    )
    thread.join(timeout=10)
    assert not thread.is_alive()

    frames = [message for _direction, message in log[1:]]  # drop params
    logical, streamed = _round_digests_from_frames(
        spec, _group_round_frames(frames)
    )
    _assert_wires(name, logical)
    _assert_chunked_wires(name, streamed)
    match_count = _plain_match_count() if name == "equijoin-sum" else None
    _assert_answer(name, answer, match_count)
    assert server_box["size_v_r"] == FIXTURE["protocols"][name]["size_v_r"]


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_resumable_chunked_matches_golden(name, params, engines):
    """Chunked sessions: every ``msg`` frame is one chunk (or one
    whole non-chunkable round), and both pinned columns reproduce."""
    from repro.net.serialization import decode

    r_engine, s_engine = engines
    spec = PROTOCOLS[name]
    r_data, s_data = _inputs(name)
    config = _session_config()
    raw_s, raw_r = socket.socketpair()
    raw_s.settimeout(10.0)
    raw_r.settimeout(10.0)
    sender_session = SenderSession(
        name,
        params,
        lambda: spec.make_sender(
            s_data, params, random.Random("S"), engine=s_engine
        ),
        config=config,
        rng=random.Random(1),
        chunk_size=CHUNK_SIZE,
    )
    receiver_session = ReceiverSession(
        name,
        lambda wire: spec.make_receiver(
            r_data,
            PublicParams.from_wire(tuple(wire)),
            random.Random("R"),
            engine=r_engine,
        ),
        config=config,
        rng=random.Random(2),
        chunk_size=CHUNK_SIZE,
    )
    server_box: dict = {}
    connections = iter([SocketEndpoint(sock=raw_s)])

    def serve_thread():
        server_box["state"] = sender_session.run(lambda: next(connections))

    thread = threading.Thread(target=serve_thread)
    thread.start()
    frames: dict = {}
    answer = receiver_session.run(
        lambda: _SessionRecordingTransport(SocketEndpoint(sock=raw_r), frames)
    )
    thread.join(timeout=10)
    assert not thread.is_alive()

    sent = sorted(
        (seq, data) for (direction, seq), data in frames.items()
        if direction == "sent"
    )
    received = sorted(
        (seq, data) for (direction, seq), data in frames.items()
        if direction == "received"
    )
    # Interleave the two directions back into spec-round order by
    # decoding each direction's frame stream and grouping on chunk-end.
    sent_groups = _group_round_frames([decode(d) for _seq, d in sent])
    recv_groups = _group_round_frames([decode(d) for _seq, d in received])
    sent_iter, recv_iter = iter(sent_groups), iter(recv_groups)
    groups = [
        next(sent_iter) if rnd.source == "R" else next(recv_iter)
        for rnd in spec.rounds
    ]
    logical, streamed = _round_digests_from_frames(spec, groups)
    _assert_wires(name, logical)
    _assert_chunked_wires(name, streamed)
    match_count = getattr(
        receiver_session._machine.state, "match_count", None
    )
    _assert_answer(name, answer, match_count)
    record = FIXTURE["protocols"][name]
    assert server_box["state"].size_v_r == record["size_v_r"]
    chunkable_sent = sum(
        1 for rnd in spec.rounds if rnd.source == "R" and rnd.chunkable
    )
    if chunkable_sent:
        assert receiver_session.stats.chunks_sent > 0
    assert sender_session.stats.chunks_sent > 0
