"""Tests for the executable proof simulators (Statements 2, 4, 6).

The decisive check: for every protocol, the *structural signature* of
the simulated view equals the real one - the simulator, which only sees
what the party is allowed to learn, produces a view of exactly the same
shape. A shape mismatch would mean the protocol leaks structure the
proof never considered.
"""

from __future__ import annotations

import random

import pytest

from repro.protocols.equijoin import run_equijoin
from repro.protocols.intersection import run_intersection
from repro.protocols.intersection_size import run_intersection_size
from repro.protocols.simulators import (
    simulate_r_view_equijoin,
    simulate_r_view_intersection,
    simulate_r_view_intersection_size,
    simulate_s_view_intersection,
)


@pytest.fixture()
def sim_rng():
    return random.Random(777)


class TestSimulatorS:
    def test_signature_matches_real(self, suite, sim_rng):
        result = run_intersection(["a", "b", "c"], ["b", "x"], suite)
        simulated = simulate_s_view_intersection(suite.group, 3, sim_rng)
        assert simulated.signature() == result.run.s_view.signature()

    def test_elements_in_group_and_sorted(self, suite, sim_rng):
        view = simulate_s_view_intersection(suite.group, 10, sim_rng)
        y_r = next(view.payloads("3:Y_R"))
        assert y_r == sorted(y_r)
        assert all(x in suite.group for x in y_r)

    def test_serves_size_protocol_too(self, suite, sim_rng):
        result = run_intersection_size(["a", "b"], ["c"], suite)
        simulated = simulate_s_view_intersection(
            suite.group, 2, sim_rng, protocol="intersection_size"
        )
        assert simulated.signature() == result.run.s_view.signature()


class TestSimulatorRIntersection:
    def test_signature_matches_real(self, suite, sim_rng):
        v_r, v_s = ["a", "b", "c"], ["b", "c", "d", "e"]
        result = run_intersection(v_r, v_s, suite)
        e_r = suite.cipher.sample_key(sim_rng)
        simulated = simulate_r_view_intersection(
            group=suite.group,
            hash_fn=suite.hash,
            e_r=e_r,
            v_r=v_r,
            intersection=result.intersection,
            size_v_s=result.size_v_s,
            rng=sim_rng,
        )
        assert simulated.signature() == result.run.r_view.signature()

    def test_empty_intersection_shape(self, suite, sim_rng):
        v_r, v_s = ["a"], ["x", "y"]
        result = run_intersection(v_r, v_s, suite)
        simulated = simulate_r_view_intersection(
            suite.group, suite.hash, suite.cipher.sample_key(sim_rng),
            v_r, set(), 2, sim_rng,
        )
        assert simulated.signature() == result.run.r_view.signature()

    def test_simulator_uses_only_allowed_inputs(self, suite, sim_rng):
        """The filler elements are random: values in V_S - V_R never
        appear hashed in the simulated view."""
        v_r, v_s = ["a"], ["a", "secret1", "secret2"]
        result = run_intersection(v_r, v_s, suite)
        simulated = simulate_r_view_intersection(
            suite.group, suite.hash, suite.cipher.sample_key(sim_rng),
            v_r, result.intersection, 3, sim_rng,
        )
        integers = set(simulated.flat_integers())
        assert suite.hash.hash_value("secret1") not in integers
        assert suite.hash.hash_value("secret2") not in integers


class TestSimulatorRJoin:
    def test_signature_matches_real(self, suite, sim_rng):
        # Fixed-size payloads: the paper's C_ext is a fixed ciphertext
        # domain, so simulator fillers match real ciphertext shapes.
        ext = {v: v.encode() * 2 for v in ("aa", "bb", "cc", "dd")}
        v_r = ["aa", "bb", "zz"]
        result = run_equijoin(v_r, ext, suite)
        simulated = simulate_r_view_equijoin(
            group=suite.group,
            hash_fn=suite.hash,
            e_r=suite.cipher.sample_key(sim_rng),
            v_r=v_r,
            matches=result.matches,
            size_v_s=result.size_v_s,
            rng=sim_rng,
            ext_cipher=suite.ext_cipher,
        )
        assert simulated.signature() == result.run.r_view.signature()

    def test_no_ext_leak_in_simulation(self, suite, sim_rng):
        ext = {"aa": b"known!", "qq": b"sealed"}
        result = run_equijoin(["aa"], ext, suite)
        simulated = simulate_r_view_equijoin(
            suite.group, suite.hash, suite.cipher.sample_key(sim_rng),
            ["aa"], result.matches, 2, sim_rng, suite.ext_cipher,
        )
        blob = repr([m.payload for m in simulated.received]).encode()
        assert b"sealed" not in blob


class TestSimulatorRIntersectionSize:
    def test_signature_matches_real(self, suite, sim_rng):
        v_r, v_s = ["a", "b", "c", "d"], ["c", "d", "e"]
        result = run_intersection_size(v_r, v_s, suite)
        simulated = simulate_r_view_intersection_size(
            group=suite.group,
            size_v_s=result.size_v_s,
            size_v_r=result.size_v_r,
            intersection_size=result.size,
            e_r=suite.cipher.sample_key(sim_rng),
            rng=sim_rng,
        )
        assert simulated.signature() == result.run.r_view.signature()

    def test_simulated_intersection_size_is_consistent(self, suite, sim_rng):
        """Simulated Z_R and the encryption of simulated Y_S under e_R
        overlap in exactly `intersection_size` elements - the simulator
        reproduces the answer R computes, not just the shape."""
        from repro.crypto.commutative import PowerCipher

        e_r = suite.cipher.sample_key(sim_rng)
        view = simulate_r_view_intersection_size(
            suite.group, size_v_s=6, size_v_r=5, intersection_size=3,
            e_r=e_r, rng=sim_rng,
        )
        y_s = next(view.payloads("4a:Y_S"))
        z_r = next(view.payloads("4b:Z_R"))
        cipher = PowerCipher(suite.group)
        z_s = {cipher.encrypt(e_r, y) for y in y_s}
        assert len(z_s & set(z_r)) == 3
