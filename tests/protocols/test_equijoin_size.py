"""Tests for the Section 5.2 equijoin-size protocol and its leak."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.leakage import overlap_matrix
from repro.db.multiset import ValueMultiset
from repro.protocols.base import ProtocolSuite
from repro.protocols.equijoin_size import run_equijoin_size
from repro.workloads.generator import multiset_pair

occurrences = st.lists(st.integers(min_value=0, max_value=12), max_size=30)


class TestCorrectness:
    @pytest.mark.parametrize(
        "v_r, v_s, expected",
        [
            (["a", "a", "b", "c"], ["a", "b", "b", "b", "d"], 2 * 1 + 1 * 3),
            ([], ["a"], 0),
            (["a"], [], 0),
            (["a"], ["a"], 1),
            (["a", "a"], ["a", "a", "a"], 6),
            (["x", "y"], ["z"], 0),
        ],
    )
    def test_examples(self, suite, v_r, v_s, expected):
        assert run_equijoin_size(v_r, v_s, suite).join_size == expected

    def test_accepts_multisets(self, suite):
        ms_r = ValueMultiset.from_values(["a", "a", "b"])
        ms_s = ValueMultiset.from_values(["a", "b", "b"])
        assert run_equijoin_size(ms_r, ms_s, suite).join_size == 2 + 2

    def test_sizes_are_occurrence_counts(self, suite):
        result = run_equijoin_size(["a", "a", "b"], ["c", "c", "c", "c"], suite)
        assert result.size_v_r == 3  # occurrences, not distinct
        assert result.size_v_s == 4

    @given(occurrences, occurrences)
    @settings(max_examples=20, deadline=None)
    def test_matches_nested_loop_property(self, v_r, v_s):
        suite = ProtocolSuite.default(bits=64, seed=1)
        brute = sum(1 for x in v_r for y in v_s if x == y)
        assert run_equijoin_size(v_r, v_s, suite).join_size == brute

    def test_workload_agreement(self, suite, rng):
        ms_r, ms_s = multiset_pair(12, 15, 6, rng)
        result = run_equijoin_size(ms_r, ms_s, suite)
        assert result.join_size == ms_r.join_size(ms_s)


class TestCharacterizedLeak:
    def test_duplicate_distributions_reported(self, suite):
        result = run_equijoin_size(
            ["a", "a", "b"], ["x", "x", "x", "y"], suite
        )
        assert result.s_learns_r_duplicates == {1: 1, 2: 1}
        assert result.r_learns_s_duplicates == {1: 1, 3: 1}

    def test_partition_overlap_matches_plaintext(self, suite, rng):
        ms_r, ms_s = multiset_pair(10, 12, 5, rng)
        result = run_equijoin_size(ms_r, ms_s, suite)
        expected = overlap_matrix(ms_r, ms_s)
        assert result.partition_overlap == expected

    def test_uniform_duplicates_leak_only_size(self, suite, rng):
        """All values with equal counts: one (d, d) overlap cell, i.e.
        R learns nothing beyond |V_R ∩ V_S| (the paper's benign extreme)."""
        ms_r, ms_s = multiset_pair(8, 9, 4, rng, uniform_count=3)
        result = run_equijoin_size(ms_r, ms_s, suite)
        assert set(result.partition_overlap) == {(3, 3)}
        assert result.partition_overlap[(3, 3)] == 4

    def test_distinct_duplicates_fully_identify(self, suite):
        """All counts distinct: every overlap cell has count 1, pinning
        individual values (the paper's worst-case extreme)."""
        v_r = ["a"] * 1 + ["b"] * 2 + ["c"] * 3
        v_s = ["a"] * 4 + ["b"] * 5 + ["z"] * 6
        result = run_equijoin_size(v_r, v_s, suite)
        assert all(count == 1 for count in result.partition_overlap.values())
        assert len(result.partition_overlap) == 2  # a and b matched

    def test_join_size_consistent_with_overlap_matrix(self, suite, rng):
        ms_r, ms_s = multiset_pair(10, 10, 6, rng)
        result = run_equijoin_size(ms_r, ms_s, suite)
        from_matrix = sum(
            d_r * d_s * count
            for (d_r, d_s), count in result.partition_overlap.items()
        )
        assert from_matrix == result.join_size


class TestWireBehaviour:
    def test_multiset_ships_duplicates(self, suite):
        result = run_equijoin_size(["a", "a", "a"], ["b"], suite)
        y_r = next(result.run.s_view.payloads("3:Y_R"))
        assert len(y_r) == 3
        assert len(set(y_r)) == 1  # deterministic encryption: 3 copies

    def test_z_r_sorted_and_unpaired(self, suite):
        result = run_equijoin_size(["a", "b", "b"], ["b"], suite)
        z_r = next(result.run.r_view.payloads("4b:Z_R"))
        assert z_r == sorted(z_r)
        assert all(isinstance(x, int) for x in z_r)


class TestTableConvenience:
    def test_join_size_tables_matches_engine(self, suite):
        from repro.db.engine import equijoin_size as plain_join_size
        from repro.db.table import Table
        from repro.protocols.equijoin_size import join_size_tables

        t_r = Table(("k", "x"), [(1, "a"), (1, "b"), (2, "c"), (3, "d")])
        t_s = Table(("k", "y"), [(1, "p"), (2, "q"), (2, "r"), (9, "s")])
        result = join_size_tables(t_r, t_s, "k", suite=suite)
        assert result.join_size == plain_join_size(t_s, t_r, "k")

    def test_different_attribute_names(self, suite):
        from repro.db.table import Table
        from repro.protocols.equijoin_size import join_size_tables

        t_r = Table(("rid",), [(1,), (1,), (2,)])
        t_s = Table(("sid",), [(1,), (2,), (2,)])
        result = join_size_tables(t_r, t_s, "rid", s_attr="sid", suite=suite)
        assert result.join_size == 2 * 1 + 1 * 2
