"""Tests for the Section 3.3 intersection protocol."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import SquareHash
from repro.crypto.oracle import RandomOracle
from repro.db.engine import intersection as plain_intersection
from repro.protocols.base import HashCollisionError, ProtocolSuite
from repro.protocols.intersection import run_intersection
from repro.workloads.generator import overlapping_sets

value_sets = st.sets(st.integers(min_value=0, max_value=40), max_size=15)


class TestCorrectness:
    @pytest.mark.parametrize(
        "v_r, v_s",
        [
            (["a", "b", "c"], ["b", "c", "d"]),
            ([], ["a"]),
            (["a"], []),
            ([], []),
            (["a", "b"], ["a", "b"]),          # identical sets
            (["a", "b", "c", "d"], ["x"]),     # disjoint
            (["a"], ["a", "b", "c", "d"]),     # subset
            ([1, 2, 3], [3, 4]),               # ints
            ([b"one", b"two"], [b"two"]),      # bytes
        ],
    )
    def test_examples(self, suite, v_r, v_s):
        result = run_intersection(v_r, v_s, suite)
        assert result.intersection == plain_intersection(v_s, v_r)

    def test_sizes_learned(self, suite):
        result = run_intersection(["a", "b"], ["b", "c", "d"], suite)
        assert result.size_v_s == 3
        assert result.size_v_r == 2

    def test_duplicates_in_input_collapse(self, suite):
        result = run_intersection(["a", "a", "b"], ["b", "b"], suite)
        assert result.intersection == {"b"}
        assert result.size_v_r == 2  # distinct count

    def test_mixed_type_values(self, suite):
        result = run_intersection([1, "1", b"1"], ["1"], suite)
        assert result.intersection == {"1"}

    @given(value_sets, value_sets)
    @settings(max_examples=25, deadline=None)
    def test_matches_plaintext_property(self, v_r, v_s):
        suite = ProtocolSuite.default(bits=64, seed=1)
        result = run_intersection(list(v_r), list(v_s), suite)
        assert result.intersection == (v_r & v_s)

    def test_workload_generator_agreement(self, suite, rng):
        v_r, v_s, expected = overlapping_sets(30, 40, 12, rng)
        result = run_intersection(v_r, v_s, suite)
        assert result.intersection == expected

    def test_square_hash_variant(self):
        suite = ProtocolSuite.default(bits=128, seed=2, hash_cls=SquareHash)
        result = run_intersection(["a", "b"], ["b", "c"], suite)
        assert result.intersection == {"b"}

    @pytest.mark.parametrize("bits", [64, 128, 256, 512])
    def test_across_modulus_sizes(self, bits):
        suite = ProtocolSuite.default(bits=bits, seed=3)
        result = run_intersection(["x", "y", "z"], ["y", "q"], suite)
        assert result.intersection == {"y"}


class TestWireBehaviour:
    def test_three_messages(self, suite):
        result = run_intersection(["a", "b"], ["c", "d", "e"], suite)
        r_steps = [m.step for m in result.run.r_view.received]
        s_steps = [m.step for m in result.run.s_view.received]
        assert s_steps == ["3:Y_R"]
        assert r_steps == ["4a:Y_S", "4b:pairs"]

    def test_codeword_counts_match_section6(self, suite):
        """(n_S + 2 n_R) codewords cross the wire: n_R up, n_S + n_R down
        (the pairs reuse R's y values, counted once more coming back)."""
        n_r, n_s = 4, 6
        result = run_intersection(
            [f"r{i}" for i in range(n_r)], [f"s{i}" for i in range(n_s)], suite
        )
        y_r = next(result.run.s_view.payloads("3:Y_R"))
        y_s = next(result.run.r_view.payloads("4a:Y_S"))
        pairs = next(result.run.r_view.payloads("4b:pairs"))
        total_codewords = len(y_r) + len(y_s) + 2 * len(pairs)
        # Paper counts (n_S + 2 n_R): it does not re-count the echoed
        # y in step 4(b) ("S does not retransmit the y's back").
        assert len(y_r) == n_r
        assert len(y_s) == n_s
        assert len(pairs) == n_r
        assert total_codewords - n_r == n_s + 2 * n_r  # optimized accounting

    def test_shipped_sets_sorted(self, suite):
        result = run_intersection(list("abcdef"), list("defghi"), suite)
        y_r = next(result.run.s_view.payloads("3:Y_R"))
        y_s = next(result.run.r_view.payloads("4a:Y_S"))
        assert y_r == sorted(y_r)
        assert y_s == sorted(y_s)

    def test_all_wire_integers_in_group(self, suite):
        result = run_intersection(["a", "b"], ["b", "c"], suite)
        for view in (result.run.r_view, result.run.s_view):
            for x in view.flat_integers():
                assert x in suite.group

    def test_no_raw_hashes_on_wire(self, suite):
        v_r, v_s = ["a", "b"], ["b", "c"]
        result = run_intersection(v_r, v_s, suite)
        wire = set(result.run.r_view.flat_integers()) | set(
            result.run.s_view.flat_integers()
        )
        for v in v_r + v_s:
            assert suite.hash.hash_value(v) not in wire


class TestCollisionDetection:
    def test_programmed_collision_raises(self, group128, rng):
        oracle = RandomOracle(group128, seed=1)
        shared = group128.random_element(rng)
        oracle.program("a", shared)
        oracle.program("b", shared)
        suite = ProtocolSuite.default(bits=128, seed=1)
        suite = ProtocolSuite(
            group=group128,
            hash=oracle,
            cipher=suite.cipher,
            ext_cipher=suite.ext_cipher,
            rng_r=random.Random(1),
            rng_s=random.Random(2),
        )
        with pytest.raises(HashCollisionError):
            run_intersection(["a", "b"], ["x"], suite)


class TestDeterminism:
    def test_same_seed_same_transcript_bytes(self):
        def run():
            suite = ProtocolSuite.default(bits=128, seed=99)
            return run_intersection(["a", "b"], ["b", "c"], suite)

        assert run().run.total_bytes == run().run.total_bytes

    def test_different_keys_per_run(self):
        """Fresh suites draw fresh keys: wire bytes differ across seeds."""
        r1 = run_intersection(["a"], ["a"], ProtocolSuite.default(bits=128, seed=1))
        r2 = run_intersection(["a"], ["a"], ProtocolSuite.default(bits=128, seed=2))
        y1 = next(r1.run.s_view.payloads("3:Y_R"))
        y2 = next(r2.run.s_view.payloads("3:Y_R"))
        assert y1 != y2
