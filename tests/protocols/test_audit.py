"""Tests for the disclosure audit machinery."""

from __future__ import annotations

import random

import pytest

from repro.net.transcript import View
from repro.protocols.audit import audit_view
from repro.protocols.equijoin import run_equijoin
from repro.protocols.intersection import run_intersection
from repro.protocols.intersection_size import run_intersection_size
from repro.protocols.naive_hash import run_naive_intersection
from repro.protocols.simulators import simulate_s_view_intersection


@pytest.fixture()
def domain():
    return [f"id-{i}" for i in range(40)]


class TestProtocolsPassAudit:
    def test_intersection_both_views(self, suite, domain):
        v_r, v_s = domain[:15], domain[10:30]
        result = run_intersection(v_r, v_s, suite)
        r_report = audit_view(
            result.run.r_view,
            suite.group,
            suite.hash,
            counterpart_values=v_s,
            allowed_plain_values=result.intersection,
            value_domain=domain,
        )
        assert r_report.passed, r_report.failures()
        s_report = audit_view(
            result.run.s_view,
            suite.group,
            suite.hash,
            counterpart_values=v_r,
            value_domain=domain,
        )
        assert s_report.passed, s_report.failures()

    def test_intersection_size_r_view(self, suite, domain):
        result = run_intersection_size(domain[:10], domain[5:20], suite)
        report = audit_view(
            result.run.r_view,
            suite.group,
            suite.hash,
            counterpart_values=domain[5:20],
            value_domain=domain,
        )
        assert report.passed, report.failures()

    def test_equijoin_s_view(self, suite, domain):
        ext = {v: v.encode() for v in domain[5:20]}
        result = run_equijoin(domain[:10], ext, suite)
        report = audit_view(
            result.run.s_view,
            suite.group,
            suite.hash,
            counterpart_values=domain[:10],
            value_domain=domain,
        )
        assert report.passed, report.failures()

    def test_signature_check_against_simulator(self, suite, domain):
        result = run_intersection(domain[:5], domain[3:9], suite)
        simulated = simulate_s_view_intersection(
            suite.group, 5, random.Random(1)
        )
        report = audit_view(
            result.run.s_view,
            suite.group,
            suite.hash,
            counterpart_values=domain[:5],
            expected_signature=simulated.signature(),
            value_domain=domain,
        )
        assert report.passed, report.failures()


class TestAuditCatchesViolations:
    def test_naive_protocol_fails_dictionary_check(self, suite, domain):
        """The Section 3.1 protocol's R view flunks the audit."""
        v_r, v_s = domain[:5], domain[3:20]
        result = run_naive_intersection(v_r, v_s, suite)
        report = audit_view(
            result.run.r_view,
            suite.group,
            suite.hash,
            counterpart_values=v_s,
            allowed_plain_values=result.intersection,
            value_domain=domain,
        )
        assert not report.passed
        names = {c.name for c in report.failures()}
        assert "no_plaintext_hash_leak" in names
        assert "dictionary_attack_resisted" in names

    def test_unsorted_ciphertexts_detected(self, suite, domain):
        """Footnote 3's requirement: shipping in input order is flagged."""
        view = View(party="S", protocol="broken")
        gen = random.Random(4)
        elements = [suite.group.random_element(gen) for _ in range(6)]
        if elements == sorted(elements):  # pragma: no cover
            elements.reverse()
        view.record("3:Y_R", elements)
        report = audit_view(
            view, suite.group, suite.hash, counterpart_values=domain[:5]
        )
        assert not report.passed
        assert any(c.name.startswith("sorted:") for c in report.failures())

    def test_non_group_element_detected(self, suite, domain):
        view = View(party="S", protocol="broken")
        non_member = next(x for x in range(2, 100) if x not in suite.group)
        view.record("3:Y_R", [non_member])
        report = audit_view(
            view, suite.group, suite.hash, counterpart_values=domain[:3]
        )
        assert not report.passed
        assert "codewords_in_group" in {c.name for c in report.failures()}

    def test_signature_mismatch_detected(self, suite, domain):
        result = run_intersection(domain[:5], domain[3:9], suite)
        wrong = simulate_s_view_intersection(suite.group, 7, random.Random(1))
        report = audit_view(
            result.run.s_view,
            suite.group,
            suite.hash,
            counterpart_values=domain[:5],
            expected_signature=wrong.signature(),
        )
        assert not report.passed


class TestReportShape:
    def test_report_metadata(self, suite, domain):
        result = run_intersection(domain[:3], domain[2:5], suite)
        report = audit_view(
            result.run.s_view, suite.group, suite.hash, counterpart_values=domain[:3]
        )
        assert report.party == "S"
        assert report.protocol == "intersection"
        assert len(report.checks) >= 3

    def test_failures_empty_on_pass(self, suite, domain):
        result = run_intersection(domain[:3], domain[2:5], suite)
        report = audit_view(
            result.run.s_view, suite.group, suite.hash, counterpart_values=domain[:3]
        )
        assert report.passed
        assert report.failures() == []
