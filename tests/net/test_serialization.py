"""Tests for the wire format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.serialization import decode, encode, encoded_size

# Recursive strategy over everything the wire format supports.
atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**2048), max_value=2**2048),
    st.binary(max_size=64),
    st.text(max_size=64),
)
messages = st.recursive(
    atoms,
    lambda children: st.one_of(
        st.lists(children, max_size=6), st.tuples(children, children)
    ),
    max_leaves=25,
)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "obj",
        [
            None,
            True,
            False,
            0,
            -1,
            12345,
            -(2**512),
            2**1024 + 7,
            b"",
            b"\x00\xff",
            "",
            "héllo",
            [],
            [1, 2, 3],
            (1, "two", b"three"),
            [[1], [2, [3, None]]],
            [(True, b""), (False, b"\x00")],
        ],
    )
    def test_examples(self, obj):
        assert decode(encode(obj)) == obj

    @given(messages)
    @settings(max_examples=300)
    def test_property(self, obj):
        assert decode(encode(obj)) == obj

    def test_list_tuple_distinction_preserved(self):
        assert decode(encode([1, 2])) == [1, 2]
        assert isinstance(decode(encode((1, 2))), tuple)
        assert isinstance(decode(encode([1, 2])), list)

    def test_bool_not_confused_with_int(self):
        assert decode(encode(True)) is True
        assert decode(encode(1)) == 1
        assert decode(encode(1)) is not True


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            encode(3.14)
        with pytest.raises(TypeError):
            encode({"a": 1})

    def test_trailing_bytes(self):
        with pytest.raises(ValueError):
            decode(encode(1) + b"extra")

    def test_unknown_tag(self):
        with pytest.raises(ValueError):
            decode(b"Z")


class TestSizes:
    def test_encoded_size_matches(self):
        for obj in (None, 42, b"xyz", ["a", 1]):
            assert encoded_size(obj) == len(encode(obj))

    def test_group_element_cost(self):
        """A k-bit integer costs ceil(k/8) + 5 bytes on the wire."""
        k = 1024
        x = (1 << (k - 1)) + 12345
        assert encoded_size(x) == k // 8 + 5

    def test_list_overhead_is_five_bytes(self):
        elements = [2**127 + i for i in range(10)]
        assert encoded_size(elements) == 5 + sum(encoded_size(e) for e in elements)


class TestMalformedInput:
    """A hostile or corrupted wire must raise ValueError, nothing else."""

    def test_truncated_length_header(self):
        with pytest.raises(ValueError):
            decode(b"I\x00\x00")

    def test_declared_length_beyond_data(self):
        with pytest.raises(ValueError):
            decode(b"B\x00\x00\x00\xff12")

    def test_truncated_list(self):
        with pytest.raises(ValueError):
            decode(b"L\x00\x00\x00\x05" + encode(1))

    def test_invalid_utf8_string(self):
        with pytest.raises(ValueError):
            decode(b"S\x00\x00\x00\x02\xff\xfe")

    def test_empty_input(self):
        with pytest.raises(ValueError):
            decode(b"")

    def test_deep_nesting_bounded(self):
        """Absurdly nested input must not crash the interpreter."""
        data = b"L\x00\x00\x00\x01" * 5000 + encode(None)
        with pytest.raises(ValueError):
            decode(data)

    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=500)
    def test_fuzz_random_bytes(self, blob):
        """Random bytes either decode to something re-encodable or
        raise ValueError - never any other exception."""
        try:
            obj = decode(blob)
        except ValueError:
            return
        assert decode(encode(obj)) == obj

    @given(messages, st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=255))
    @settings(max_examples=300)
    def test_fuzz_bit_flips(self, obj, position, new_byte):
        """Corrupting one byte of a valid encoding either still decodes
        (to possibly different content) or raises ValueError."""
        wire = bytearray(encode(obj))
        wire[position % len(wire)] = new_byte
        try:
            decode(bytes(wire))
        except ValueError:
            pass
