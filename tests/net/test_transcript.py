"""Tests for recorded views and structural signatures."""

from __future__ import annotations

from repro.net.transcript import ReceivedMessage, View


class TestSignatures:
    def test_homogeneous_list_collapses(self):
        m = ReceivedMessage(step="s", payload=[1, 2, 3])
        assert m.signature() == ("s", ("list", 3, "int"))

    def test_heterogeneous_list(self):
        m = ReceivedMessage(step="s", payload=[1, "x"])
        assert m.signature() == ("s", ("list", 2, ("int", "str")))

    def test_nested_pairs(self):
        m = ReceivedMessage(step="s", payload=[(1, 2), (3, 4)])
        assert m.signature() == ("s", ("list", 2, ("tuple", 2, "int")))

    def test_signature_independent_of_values(self):
        a = ReceivedMessage(step="s", payload=[10, 20]).signature()
        b = ReceivedMessage(step="s", payload=[99, 1]).signature()
        assert a == b

    def test_signature_distinguishes_lengths(self):
        a = ReceivedMessage(step="s", payload=[1]).signature()
        b = ReceivedMessage(step="s", payload=[1, 2]).signature()
        assert a != b

    def test_bytes_include_length(self):
        a = ReceivedMessage(step="s", payload=b"ab").signature()
        b = ReceivedMessage(step="s", payload=b"abc").signature()
        assert a != b

    def test_bool_distinct_from_int(self):
        a = ReceivedMessage(step="s", payload=[True]).signature()
        b = ReceivedMessage(step="s", payload=[1]).signature()
        assert a != b


class TestView:
    def test_record_returns_payload(self):
        view = View(party="R", protocol="p")
        assert view.record("step", [1, 2]) == [1, 2]

    def test_view_signature_sequences_messages(self):
        view = View(party="R", protocol="p")
        view.record("a", [1])
        view.record("b", [2, 3])
        assert view.signature() == (
            ("a", ("list", 1, "int")),
            ("b", ("list", 2, "int")),
        )

    def test_payload_filtering(self):
        view = View(party="R", protocol="p")
        view.record("a", 1)
        view.record("b", 2)
        view.record("a", 3)
        assert list(view.payloads("a")) == [1, 3]
        assert list(view.payloads()) == [1, 2, 3]

    def test_flat_integers_walks_nesting(self):
        view = View(party="R", protocol="p")
        view.record("a", [1, (2, [3, None, "x"]), True])
        assert view.flat_integers() == [1, 2, 3]  # True excluded

    def test_flat_integers_excludes_bools(self):
        view = View(party="R", protocol="p")
        view.record("a", [True, False, 0])
        assert view.flat_integers() == [0]
