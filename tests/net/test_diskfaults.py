"""Unit tests for seeded disk faults and the journal's fail-stop rule.

Covers the injector itself (per-class counters, skip/cap gating, seeded
determinism), the journal's poisoning on write/fsync failure (the
fsyncgate rule: a failed handle is never reused), rename-failure
classification, and torn-tail recovery at *every* byte offset of a
multi-record journal.
"""

from __future__ import annotations

import errno

import pytest

from repro.net.diskfaults import (
    DiskFaultPlan,
    DiskFaultStats,
    FaultyFile,
    FaultyJournalIO,
    JournalIO,
)
from repro.net.journal import (
    DONE_SUFFIX,
    JOURNAL_MAGIC,
    JournalDir,
    JournalError,
    SessionJournal,
    peek_state,
)


def _journal(path, io=None, **records):
    journal = SessionJournal(path, fsync=False, io=io)
    journal.record_open("sender", "intersection")
    journal.record_meta("session_id", 7)
    return journal


# ----------------------------------------------------------------------
# Plan and injector mechanics
# ----------------------------------------------------------------------
class TestPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="fsync_error_rate"):
            DiskFaultPlan(fsync_error_rate=1.5)
        with pytest.raises(ValueError, match="torn_write_rate"):
            DiskFaultPlan(torn_write_rate=-0.1)

    def test_write_rates_must_sum_below_one(self):
        with pytest.raises(ValueError, match="sum"):
            DiskFaultPlan(torn_write_rate=0.7, enospc_rate=0.7)
        DiskFaultPlan(torn_write_rate=0.5, enospc_rate=0.5)  # boundary ok


class TestInjectorMechanics:
    def test_same_seed_same_fault_sequence(self, tmp_path):
        def run(seed):
            io = FaultyJournalIO(DiskFaultPlan(
                seed=seed, torn_write_rate=0.3, enospc_rate=0.3,
                fsync_error_rate=0.2,
            ))
            outcomes = []
            for i in range(30):
                fh = open(tmp_path / f"f{seed}-{i}", "wb")
                try:
                    io.write(fh, b"x" * 64)
                    outcomes.append("ok")
                except OSError as exc:
                    outcomes.append(errno.errorcode[exc.errno])
                finally:
                    fh.close()
            return outcomes, io.stats.as_dict()

        first = run(42)
        again = run(42)
        other = run(43)
        assert first == again
        assert first != other
        assert first[1]["torn_writes"] + first[1]["enospc_errors"] > 0

    def test_skip_and_max_faults_gate_injection(self, tmp_path):
        io = FaultyJournalIO(DiskFaultPlan(
            seed=1, enospc_rate=1.0, skip=3, max_faults=2,
        ))
        results = []
        with open(tmp_path / "f", "wb") as fh:
            for _ in range(10):
                try:
                    io.write(fh, b"abc")
                    results.append("ok")
                except OSError:
                    results.append("fault")
        # First 3 ops skipped, then exactly max_faults=2 injected.
        assert results == ["ok"] * 3 + ["fault"] * 2 + ["ok"] * 5
        assert io.stats.injected == 2
        assert io.stats.ops == 10

    def test_torn_write_leaves_a_prefix(self, tmp_path):
        io = FaultyJournalIO(DiskFaultPlan(seed=5, torn_write_rate=1.0))
        path = tmp_path / "torn"
        with open(path, "wb") as fh:
            with pytest.raises(OSError) as exc_info:
                io.write(fh, b"0123456789")
        assert exc_info.value.errno == errno.EIO
        assert len(path.read_bytes()) < 10  # a strict prefix landed
        assert path.read_bytes() == b"0123456789"[: len(path.read_bytes())]
        assert io.stats.torn_writes == 1

    def test_stats_dict_shape(self):
        stats = DiskFaultStats(ops=3, torn_writes=1, fsync_errors=2)
        assert stats.injected == 3
        assert stats.as_dict()["torn_writes"] == 1
        assert stats.as_dict()["ops"] == 3

    def test_faulty_file_routes_through_injector(self, tmp_path):
        io = FaultyJournalIO(DiskFaultPlan(seed=0, fsync_error_rate=1.0))
        raw = open(tmp_path / "ff", "wb")
        wrapped = FaultyFile(raw, io)
        assert wrapped.write(b"abc") == 3  # write op 1: no write faults
        wrapped.flush()  # never faulted
        with pytest.raises(OSError):
            wrapped.sync()
        assert io.stats.fsync_errors == 1
        assert wrapped.fileno() == raw.fileno()
        assert wrapped.name == raw.name  # __getattr__ delegation
        wrapped.close()

    def test_real_io_seam_is_faithful(self, tmp_path):
        io = JournalIO()
        path = tmp_path / "real"
        fh = io.open_append(path)
        io.write(fh, b"hello world")
        io.flush(fh)
        io.fsync(fh)
        fh.close()
        io.truncate(path, 5)
        assert path.read_bytes() == b"hello"
        io.replace(path, tmp_path / "moved")
        io.fsync_dir(tmp_path)
        assert (tmp_path / "moved").exists()


# ----------------------------------------------------------------------
# Journal fail-stop (the fsyncgate rule)
# ----------------------------------------------------------------------
class TestJournalFailStop:
    def test_fsync_failure_poisons_the_journal(self, tmp_path):
        # Ops: magic write(1), fsync(2), dir fsync(3); open write(4),
        # fsync(5); meta write(6), fsync(7) <- the scripted fault.
        io = FaultyJournalIO(DiskFaultPlan(
            seed=2, fsync_error_rate=1.0, skip=6, max_faults=1,
        ))
        journal = SessionJournal(tmp_path / "j.wal", io=io)
        journal.record_open("sender", "intersection")
        with pytest.raises(JournalError, match="fail-stop"):
            journal.record_meta("session_id", 1)
        assert journal.poisoned is not None
        assert journal._file is None  # the fd is gone, never reused
        assert journal.io_stats()["fsync_failures"] == 1
        # Every later operation stays refused.
        with pytest.raises(JournalError, match="fail-stop"):
            journal.record_inbound(0, b"x")
        journal.close()  # teardown is safe

    def test_write_failure_poisons_the_journal(self, tmp_path):
        # fsync=False ops: magic write(1), dir fsync(2); open write(3);
        # meta write(4); inbound write(5) <- the scripted fault.
        io = FaultyJournalIO(DiskFaultPlan(
            seed=3, enospc_rate=1.0, skip=4, max_faults=1,
        ))
        journal = _journal(tmp_path / "j.wal", io=io)
        with pytest.raises(JournalError, match="fail-stop"):
            journal.record_inbound(0, b"payload")
        assert journal.write_failures == 1
        assert journal.poisoned is not None

    def test_torn_append_is_repaired_on_reopen(self, tmp_path):
        path = tmp_path / "j.wal"
        io = FaultyJournalIO(DiskFaultPlan(
            seed=11, torn_write_rate=1.0, skip=4, max_faults=1,
        ))
        journal = _journal(path, io=io)
        good = path.read_bytes()
        with pytest.raises(JournalError, match="fail-stop"):
            journal.record_inbound(0, b"payload-that-tears")
        journal.close()
        assert len(path.read_bytes()) >= len(good)  # prefix may have landed
        reopened = SessionJournal(path, fsync=False)
        assert reopened.records == [
            ("open", 1, "sender", "intersection"),
            ("meta", "session_id", 7),
        ]
        assert path.read_bytes() == good  # torn tail physically dropped
        reopened.record_inbound(0, b"payload-that-tears")  # and life goes on
        reopened.close()

    def test_close_never_raises_but_poisons(self, tmp_path):
        # Ops: magic write(1), fsync(2), dir fsync(3); open write(4),
        # fsync(5); close fsync(6) <- the scripted fault.
        io = FaultyJournalIO(DiskFaultPlan(
            seed=4, fsync_error_rate=1.0, skip=5, max_faults=1,
        ))
        journal = SessionJournal(tmp_path / "j.wal", io=io)
        journal.record_open("sender", "intersection")
        journal.close()  # the injected close-fsync failure must not raise
        assert journal.fsync_failures == 1
        assert journal.poisoned is not None

    def test_poisoned_journal_refuses_rotation(self, tmp_path):
        io = FaultyJournalIO(DiskFaultPlan(
            seed=2, fsync_error_rate=1.0, skip=6, max_faults=1,
        ))
        journal = SessionJournal(tmp_path / "j.wal", io=io)
        journal.record_open("sender", "intersection")
        with pytest.raises(JournalError):
            journal.record_meta("session_id", 1)
        with pytest.raises(JournalError, match="poisoned"):
            journal.rotate()
        assert journal.io_stats()["rotate_failures"] == 1

    def test_dir_fsync_failures_are_counted_not_fatal(self, tmp_path):
        io = FaultyJournalIO(DiskFaultPlan(seed=6, dir_fsync_error_rate=1.0))
        journal = SessionJournal(tmp_path / "j.wal", io=io)
        assert journal.dir_fsync_failures == 1  # the create barrier
        journal.record_open("sender", "intersection")  # appends unaffected
        assert journal.io_stats()["dir_fsync_failures"] == 1
        journal.close()


class TestRenameFailure:
    def _complete_journal(self, path, io=None):
        journal = _journal(path, io=io)
        journal.record_complete()
        return journal

    def test_failed_rotation_keeps_a_classifiable_wal(self, tmp_path):
        path = tmp_path / "sender-intersection-0000000000000007.wal"
        io = FaultyJournalIO(DiskFaultPlan(
            seed=9, rename_error_rate=1.0, max_faults=1,
        ))
        journal = self._complete_journal(path, io=io)
        with pytest.raises(JournalError, match="rotation"):
            journal.rotate()
        assert journal.rotate_failures == 1
        assert journal.path == path  # unchanged, still *.wal
        # The failed rename left the file byte-identical: a read-only
        # scan still classifies it as a completed run...
        state = peek_state(path)
        assert state is not None and state.complete
        # ...so the directory scan skips it rather than re-running it.
        assert JournalDir(tmp_path).incomplete("sender") == []
        # The injector's budget is spent; the retry rotation succeeds.
        rotated = SessionJournal(path, fsync=False, io=io).rotate()
        assert rotated.suffix == DONE_SUFFIX

    def test_successful_rotation_still_works_under_injector(self, tmp_path):
        io = FaultyJournalIO(DiskFaultPlan(seed=9, rename_error_rate=0.0))
        journal = self._complete_journal(tmp_path / "j.wal", io=io)
        assert journal.rotate().suffix == DONE_SUFFIX


# ----------------------------------------------------------------------
# Torn-tail recovery at every byte offset (satellite)
# ----------------------------------------------------------------------
def _multi_record_journal(tmp_path):
    """A complete 6-record journal plus its record-boundary offsets."""
    base = tmp_path / "base.wal"
    journal = SessionJournal(base, fsync=False)
    journal.record_open("sender", "intersection")
    journal.record_meta("session_id", 5)
    journal.record_inbound(0, b"first-inbound-payload")
    journal.record_outbound(0, b"first-outbound")
    journal.record_inbound(1, b"x")
    journal.record_complete()
    journal.close()
    data = base.read_bytes()
    boundaries = [len(JOURNAL_MAGIC)]
    offset = len(JOURNAL_MAGIC)
    while offset < len(data):
        record, offset = SessionJournal._scan_one(data, offset)
        assert record is not None
        boundaries.append(offset)
    assert len(boundaries) == 7  # magic + 6 records
    return data, boundaries


def test_torn_tail_recovery_at_every_byte_offset(tmp_path):
    """Cut the journal at every byte; recovery always yields the exact
    record prefix, truncates the torn tail, and stays appendable."""
    data, boundaries = _multi_record_journal(tmp_path)
    path = tmp_path / "cut.wal"
    for cut in range(len(data) + 1):
        path.write_bytes(data[:cut])
        whole = max(
            i for i, end in enumerate(boundaries) if end <= cut
        ) if cut >= boundaries[0] else 0
        # Read-only classification first: never repairs, never raises
        # on a torn tail.
        state = peek_state(path)
        if whole == 0:
            assert state is None
        else:
            assert state is not None
            assert state.complete == (whole == len(boundaries) - 1)
        assert path.read_bytes() == data[:cut]  # peek changed nothing
        # Owner reopen: repairs to the boundary and stays writable.
        journal = SessionJournal(path, fsync=False)
        assert len(journal.records) == whole
        if cut >= boundaries[0]:
            assert journal.truncated_bytes == cut - boundaries[whole]
            assert path.read_bytes() == data[: boundaries[whole]]
        else:
            # Torn inside the magic header: repaired to a fresh journal.
            assert journal.truncated_bytes == 0
            assert path.read_bytes() == JOURNAL_MAGIC
        journal.close()
        path.unlink()


def test_corrupt_byte_at_every_offset_never_yields_garbage(tmp_path):
    """Flip one byte at every offset (headers, payloads, CRC seals):
    the scan must yield an exact record prefix or a typed error -
    never a record that was not journaled."""
    data, boundaries = _multi_record_journal(tmp_path)
    intact_records = SessionJournal._scan_bytes(data, tmp_path)[0]
    path = tmp_path / "flip.wal"
    for offset in range(len(data)):
        corrupted = bytearray(data)
        corrupted[offset] ^= 0x40
        path.write_bytes(bytes(corrupted))
        if offset < len(JOURNAL_MAGIC):
            with pytest.raises(JournalError):
                peek_state(path)
            path.unlink()
            continue
        state = peek_state(path)
        got = SessionJournal._scan_bytes(bytes(corrupted), path)[0]
        # The scan stops at (or skips past nothing into) the corrupted
        # record: what survives is a strict prefix of what was written,
        # except when the flip lands in a payload byte that still
        # satisfies the CRC - impossible - so prefix always.
        assert got == intact_records[: len(got)]
        assert len(got) < len(intact_records)
        if state is not None:
            assert not state.complete or len(got) == len(intact_records)
        path.unlink()


def test_rotation_window_crash_states_classify_correctly(tmp_path):
    """The .wal -> .done window: done-record-but-unrotated journals are
    complete (skipped by scans, rotatable); missing the done record
    means incomplete (recoverable)."""
    data, boundaries = _multi_record_journal(tmp_path)
    # Crash after the done record, before the rename: complete.
    before_rename = tmp_path / "sender-intersection-0000000000000005.wal"
    before_rename.write_bytes(data)
    assert peek_state(before_rename).complete
    assert JournalDir(tmp_path).incomplete("sender") == []
    rotated = SessionJournal(before_rename, fsync=False).rotate()
    assert rotated.suffix == DONE_SUFFIX
    assert peek_state(rotated).complete
    rotated.unlink()
    # Crash just before the done record landed: incomplete, recoverable.
    before_done = tmp_path / "sender-intersection-0000000000000006.wal"
    before_done.write_bytes(data[: boundaries[-2]])
    assert not peek_state(before_done).complete
    assert JournalDir(tmp_path).incomplete("sender") == [before_done]
