"""Unit tests for the sharded front end (:mod:`repro.net.shard`).

The router's contract: a client cannot tell a sharded server from a
flat one; the session id in the hello deterministically picks the
worker (``sid % shards``), so reconnects land on the journal that owns
them; garbage that never produces a hello is dropped without touching
a worker; drain collects every worker's results tagged by shard.
"""

from __future__ import annotations

import random
import socket
import struct
import time

import pytest

from repro.net import tcp
from repro.net.serialization import encode
from repro.net.session import (
    SESSION_VERSION,
    ReceiverSession,
    RetryPolicy,
    SessionConfig,
    refusal_retry_hint_s,
    seal,
    unseal,
)
from repro.net.shard import ShardedProtocolServer
from repro.protocols.parties import PublicParams

BITS = 128


@pytest.fixture(scope="module")
def params():
    return PublicParams.for_bits(BITS)


def _offers(params):
    return {"intersection": (["b", "c", "x"], params)}


def _config(timeout_s=2.0, max_reconnects=8):
    return SessionConfig(
        timeout_s=timeout_s,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05),
        max_reconnects=max_reconnects,
        fin_grace_s=0.05,
    )


def _session(port, seed, config=None):
    """One sync resumable client run through the router."""
    session = ReceiverSession(
        "intersection",
        lambda wire: _make_receiver(wire, seed),
        config=config or _config(),
        rng=random.Random(seed),
    )
    answer = session.run(
        lambda: tcp._dial("127.0.0.1", port, timeout=5.0)
    )
    return answer, session


def _make_receiver(params_wire, seed):
    from repro.protocols.spec import get_spec

    return get_spec("intersection").make_receiver(
        ["a", "b", "c"],
        PublicParams.from_wire(tuple(params_wire)),
        random.Random(seed),
    )


class TestRouting:
    def test_sessions_land_on_sid_mod_shards(self, params):
        with ShardedProtocolServer(
            _offers(params), shards=2, config=_config(), max_sessions=4
        ) as server:
            sessions = []
            for seed in range(4):
                answer, session = _session(server.port, seed)
                assert sorted(answer) == ["b", "c"]
                sessions.append(session)
            # In-process workers expose live results: every session id
            # must sit on exactly the worker its id selects.
            rows = server.results()
        by_sid = {row["session_id"]: row["shard"] for row in rows}
        assert len(by_sid) == 4
        for session in sessions:
            assert by_sid[session.session_id] == session.session_id % 2

    def test_reconnect_routes_back_to_the_owning_worker(self, params):
        """A mid-run disconnect redials through the router and must
        resume on the same worker (same sid, same journal owner)."""
        with ShardedProtocolServer(
            _offers(params), shards=3, config=_config(), max_sessions=4
        ) as server:
            session = ReceiverSession(
                "intersection",
                lambda wire: _make_receiver(wire, 99),
                config=_config(),
                rng=random.Random(99),
            )
            dials = {"count": 0}

            def flaky_dial():
                dials["count"] += 1
                endpoint = tcp._dial("127.0.0.1", server.port, timeout=5.0)
                if dials["count"] == 1:
                    # Kill the first connection right after the
                    # handshake frames land.
                    original_recv = endpoint.recv

                    def recv_once_then_die():
                        original_recv()
                        endpoint.close()
                        raise ConnectionError("injected drop")

                    endpoint.recv = recv_once_then_die
                return endpoint

            answer = session.run(flaky_dial)
            assert sorted(answer) == ["b", "c"]
            assert dials["count"] >= 2  # it really did reconnect
            deadline = time.monotonic() + 5.0
            while True:
                rows = server.results()
                mine = [
                    r for r in rows
                    if r["session_id"] == session.session_id
                ]
                if mine and mine[0]["status"] == "done":
                    break
                assert time.monotonic() < deadline
                time.sleep(0.02)
        assert len(mine) == 1  # one record total: both dials, one worker
        assert mine[0]["status"] == "done"
        assert mine[0]["shard"] == session.session_id % 3

    def test_garbage_connection_is_dropped_without_workers(self, params):
        with ShardedProtocolServer(
            _offers(params), shards=2,
            config=_config(timeout_s=0.3), max_sessions=2,
        ) as server:
            sock = socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            )
            # Not even wire format: the router closes the connection.
            sock.sendall(struct.pack(">I", 4) + b"\xff\xff\xff\xff")
            sock.settimeout(2.0)
            assert sock.recv(1024) == b""
            sock.close()
            deadline = time.monotonic() + 2.0
            while server.refused_unroutable == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert server.results() == []

    def test_sealed_garbage_before_hello_is_forwarded(self, params):
        """A garbled-seal frame then a valid hello still gets served -
        the router buffers and replays pre-hello frames verbatim."""
        with ShardedProtocolServer(
            _offers(params), shards=2, config=_config(), max_sessions=2
        ) as server:
            sock = socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            )
            endpoint = tcp.SocketEndpoint(sock=sock)
            bad = encode(("hello", "garbled", "no-seal"))
            sock.sendall(struct.pack(">I", len(bad)) + bad)
            endpoint.send(
                seal("hello", SESSION_VERSION, "intersection", 6, 0, 0)
            )
            endpoint.settimeout(5.0)
            frame = endpoint.recv()
            assert frame[0] == "welcome"
            endpoint.close()


class TestProcessWorkers:
    def test_forked_workers_serve_and_report_results(self, params):
        with ShardedProtocolServer(
            _offers(params), shards=2, worker_processes=True,
            config=_config(), max_sessions=4,
        ) as server:
            answers = [
                sorted(_session(server.port, seed)[0]) for seed in range(3)
            ]
        assert answers == [["b", "c"]] * 3
        rows = server.results()  # reported by workers at drain
        assert len(rows) == 3
        assert all(row["status"] == "done" for row in rows)
        assert {row["shard"] for row in rows} <= {0, 1}

    def test_shutdown_is_idempotent_and_joins_workers(self, params):
        server = ShardedProtocolServer(
            _offers(params), shards=2, worker_processes=True,
            config=_config(), max_sessions=2,
        ).start()
        _session(server.port, 7)
        server.shutdown(drain_timeout_s=2.0)
        server.shutdown(drain_timeout_s=2.0)
        assert server.wait_closed(timeout=5)
        assert all(not s.process.is_alive() for s in server._shards)


class TestValidation:
    def test_rejects_zero_shards(self, params):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedProtocolServer(_offers(params), shards=0)

    def test_port_before_start_raises(self, params):
        server = ShardedProtocolServer(_offers(params), shards=1)
        with pytest.raises(RuntimeError, match="not started"):
            server.port


def _wait_for(predicate, timeout_s=15.0, interval_s=0.02, what="condition"):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(interval_s)


def _raw_hello(port, session_id):
    """Dial the front end and send a bare valid hello."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    endpoint = tcp.SocketEndpoint(sock=sock)
    endpoint.settimeout(5.0)
    endpoint.send(
        seal("hello", SESSION_VERSION, "intersection", session_id, 0, 0)
    )
    return sock, endpoint


class TestSupervision:
    """The self-healing loop: death detection, typed refusals, respawn
    with journal takeover, hang detection, budget exhaustion, drain."""

    def test_killed_worker_respawns_and_serves_again(
        self, params, tmp_path
    ):
        with ShardedProtocolServer(
            _offers(params), shards=1, worker_processes=True,
            config=_config(), max_sessions=4,
            journal_dir=tmp_path, journal_fsync=False,
            heartbeat_s=0.05, respawn_backoff_s=0.4, restart_budget=4,
        ) as server:
            answer, _ = _session(server.port, 1)
            assert sorted(answer) == ["b", "c"]
            (row,) = server.health()
            old_pid = row["pid"]
            assert row["state"] == "alive" and row["restarts"] == 0

            assert server.kill_worker(0) == old_pid
            _wait_for(
                lambda: server.health()[0]["state"] in ("dead", "respawning"),
                what="the supervisor to notice the corpse",
            )
            # A hello routed at the downed shard gets a typed,
            # hint-carrying worker-lost frame, not a raw close.
            sock, endpoint = _raw_hello(server.port, session_id=4)
            fields = unseal(endpoint.recv())
            assert fields[0] == "worker-lost"
            assert refusal_retry_hint_s(fields) is not None
            sock.close()

            _wait_for(
                lambda: (
                    server.health()[0]["state"] == "alive"
                    and server.health()[0]["restarts"] >= 1
                ),
                what="the respawn",
            )
            (row,) = server.health()
            assert row["pid"] != old_pid
            answer, _ = _session(server.port, 2)
            assert sorted(answer) == ["b", "c"]
        assert server.worker_deaths >= 1
        assert server.respawns >= 1
        assert server.worker_lost_notices >= 1

    def test_mid_session_worker_loss_is_typed_then_clean_eof(
        self, params
    ):
        """The splice contract: a worker-side reset mid-session reaches
        the client as a typed worker-lost frame followed by a clean
        EOF - never as a raw ``ConnectionResetError``."""
        with ShardedProtocolServer(
            _offers(params), shards=1, worker_processes=True,
            config=_config(), max_sessions=4,
            heartbeat_s=0.05, respawn_backoff_s=0.05, restart_budget=4,
        ) as server:
            sock, endpoint = _raw_hello(server.port, session_id=9)
            fields = unseal(endpoint.recv())
            assert fields[0] == "welcome"  # spliced through to a worker
            assert server.kill_worker(0) is not None
            deadline = time.monotonic() + 10.0
            while True:
                assert time.monotonic() < deadline
                fields = unseal(endpoint.recv())
                if fields[0] == "worker-lost":
                    break
            assert len(fields) in (3, 4)
            assert refusal_retry_hint_s(fields) is not None
            # After the typed notice: clean EOF, not a reset.
            sock.settimeout(5.0)
            assert sock.recv(65536) == b""
            sock.close()
        assert server.worker_lost_notices >= 1

    def test_wedged_worker_is_killed_and_respawned(self, params):
        with ShardedProtocolServer(
            _offers(params), shards=1, worker_processes=True,
            config=_config(), max_sessions=4,
            heartbeat_s=0.05, heartbeat_timeout_s=0.25,
            respawn_backoff_s=0.05, restart_budget=4,
        ) as server:
            (row,) = server.health()
            old_pid = row["pid"]
            # Wedge far past the missed-heartbeat deadline: the worker
            # stops heartbeating but would otherwise keep running.
            assert server.wedge_worker(0, 30.0)
            _wait_for(
                lambda: server.hung_workers >= 1,
                what="the hang to be declared",
            )
            _wait_for(
                lambda: (
                    server.health()[0]["state"] == "alive"
                    and server.health()[0]["pid"] != old_pid
                ),
                what="the respawn after the hang",
            )
            answer, _ = _session(server.port, 5)
            assert sorted(answer) == ["b", "c"]
        assert server.hung_workers == 1
        assert server.worker_deaths >= 1

    def test_budget_exhaustion_degrades_only_that_shard(self, params):
        with ShardedProtocolServer(
            _offers(params), shards=2, worker_processes=True,
            config=_config(), max_sessions=4,
            heartbeat_s=0.05, respawn_backoff_s=0.05, restart_budget=0,
        ) as server:
            assert server.kill_worker(0) is not None
            _wait_for(
                lambda: server.health()[0]["state"] == "failed",
                what="shard 0 to exhaust its budget",
            )
            # Shard 0 (even session ids): typed permanent reject.
            sock, endpoint = _raw_hello(server.port, session_id=6)
            fields = unseal(endpoint.recv())
            assert fields[0] == "reject"
            assert "restart budget" in fields[2]
            sock.close()
            # Shard 1 (odd session ids): business as usual.
            sock, endpoint = _raw_hello(server.port, session_id=7)
            assert unseal(endpoint.recv())[0] == "welcome"
            sock.close()
            assert server.refused_failed >= 1
            assert server.respawns == 0  # budget 0 = never respawn

    def test_drain_reaps_dead_workers_without_hanging(self, params):
        server = ShardedProtocolServer(
            _offers(params), shards=2, worker_processes=True,
            config=_config(), max_sessions=2,
            heartbeat_s=0.05, respawn_backoff_s=0.05, restart_budget=0,
        ).start()
        assert server.kill_worker(0) is not None
        _wait_for(
            lambda: server.health()[0]["state"] == "failed",
            what="shard 0 to fail",
        )
        started = time.monotonic()
        server.shutdown(drain_timeout_s=1.0)
        assert time.monotonic() - started < 15.0  # no control-pipe hang
        assert server.wait_closed(timeout=5)
        assert all(not s.process.is_alive() for s in server._shards)
        states = {r["shard"]: r["state"] for r in server.drain_report}
        assert states == {0: "failed", 1: "drained"}
