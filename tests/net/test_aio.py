"""Unit tests for the asyncio transport core (:mod:`repro.net.aio`).

The properties that make the event-loop stack safe to put under the
byte-exact session layer: framing round-trips, a receive timeout never
desynchronizes the stream (the pending-read pattern), the loop-thread
bridge delivers frames and failures to synchronous callers exactly
once, the async prefetcher preserves order and propagates producer
failures, and the async client speaks the same wire protocol as the
sync resumable server.
"""

from __future__ import annotations

import asyncio
import random
import struct
import threading

import pytest

from repro.net import tcp
from repro.net.aio import (
    AsyncFrameEndpoint,
    LoopThread,
    LoopTransport,
    connect_receiver_async,
    open_endpoint,
)
from repro.net.serialization import encode
from repro.net.streaming import aprefetch
from repro.net.session import SessionConfig, RetryPolicy
from repro.net.tcp import FrameTooLarge
from repro.protocols.parties import PublicParams

BITS = 128


@pytest.fixture(scope="module")
def params():
    return PublicParams.for_bits(BITS)


def _config(timeout_s=2.0):
    return SessionConfig(
        timeout_s=timeout_s,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05),
        max_reconnects=2,
        fin_grace_s=0.05,
    )


def _run(coro):
    return asyncio.run(coro)


async def _echo_server(handler):
    """One-connection asyncio server; returns (server, port)."""
    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


# ----------------------------------------------------------------------
# AsyncFrameEndpoint
# ----------------------------------------------------------------------
class TestAsyncFrameEndpoint:
    def test_round_trips_frames_and_counts_bytes(self):
        async def scenario():
            async def handle(reader, writer):
                ep = AsyncFrameEndpoint(reader, writer)
                msg = await ep.recv()
                await ep.send(("echo", msg))
                await ep.close()

            server, port = await _echo_server(handle)
            ep = await open_endpoint("127.0.0.1", port, timeout=5)
            await ep.send(("k", [1, 2, b"three"]))
            reply = await ep.recv()
            sent, received = ep.bytes_sent, ep.bytes_received
            await ep.close()
            server.close()
            await server.wait_closed()
            return reply, sent, received

        reply, sent, received = _run(scenario())
        assert reply == ("echo", ("k", [1, 2, b"three"]))
        assert sent > 0 and received > sent  # echo adds the tag

    def test_oversized_frame_is_rejected_not_read(self):
        async def scenario():
            async def handle(reader, writer):
                writer.write(struct.pack(">I", 1 << 30) + b"x" * 64)
                await writer.drain()

            server, port = await _echo_server(handle)
            ep = await open_endpoint(
                "127.0.0.1", port, timeout=5, max_frame_bytes=1024
            )
            with pytest.raises(FrameTooLarge):
                await ep.recv()
            await ep.close()
            server.close()
            await server.wait_closed()

        _run(scenario())

    def test_mid_frame_close_is_connection_error(self):
        async def scenario():
            async def handle(reader, writer):
                writer.write(struct.pack(">I", 100) + b"only-some")
                await writer.drain()
                writer.close()

            server, port = await _echo_server(handle)
            ep = await open_endpoint("127.0.0.1", port, timeout=5)
            with pytest.raises(ConnectionError, match="mid-frame"):
                await ep.recv()
            await ep.close()
            server.close()
            await server.wait_closed()

        _run(scenario())

    def test_recv_timeout_does_not_desync_the_stream(self):
        """A timed-out read resumes where it left off.

        The server sends a frame's header, stalls past the client's
        timeout, then sends the payload. Cancelling the read on timeout
        would strand the payload as a phantom next frame; the pending
        pattern must instead deliver the whole frame to the *next*
        receive call.
        """
        payload = encode(("slow", "frame"))
        release = asyncio.Event()

        async def scenario():
            async def handle(reader, writer):
                writer.write(struct.pack(">I", len(payload)))
                await writer.drain()
                await release.wait()
                writer.write(payload)
                await writer.drain()

            server, port = await _echo_server(handle)
            ep = await open_endpoint("127.0.0.1", port, timeout=5)
            with pytest.raises(asyncio.TimeoutError):
                await ep.recv_within(0.05)
            release.set()
            frame = await ep.recv_within(2.0)
            await ep.close()
            server.close()
            await server.wait_closed()
            return frame

        assert _run(scenario()) == ("slow", "frame")


# ----------------------------------------------------------------------
# LoopThread + LoopTransport (the sync-session bridge)
# ----------------------------------------------------------------------
class TestLoopBridge:
    def test_loop_thread_runs_coroutines_and_stops(self):
        loop_thread = LoopThread().start()
        try:
            async def answer():
                return 41 + 1

            assert loop_thread.run(answer(), timeout=5) == 42
        finally:
            loop_thread.stop()
        loop_thread.stop()  # idempotent

    def test_transport_replays_then_pumps_then_raises_fatal(self):
        """Replay frames come first, live frames next, then the closed
        connection surfaces as a sticky ConnectionError."""
        loop_thread = LoopThread().start()
        try:
            async def handle(reader, writer):
                ep = AsyncFrameEndpoint(reader, writer)
                await ep.send(("live", 1))
                await ep.close()

            async def setup():
                server, port = await _echo_server(handle)
                ep = await open_endpoint("127.0.0.1", port, timeout=5)
                transport = LoopTransport(
                    ep, asyncio.get_running_loop(),
                    replay=[encode(("replayed", 0))], timeout=5.0,
                )
                transport.start_pump()
                return server, transport

            server, transport = loop_thread.run(setup(), timeout=5)
            assert transport.recv() == ("replayed", 0)
            assert transport.recv() == ("live", 1)
            with pytest.raises((ConnectionError, OSError)):
                transport.recv()
            with pytest.raises((ConnectionError, OSError)):
                transport.recv()  # sticky, not one-shot
            transport.close()
            loop_thread.run(_close_server(server), timeout=5)
        finally:
            loop_thread.stop()


async def _close_server(server):
    server.close()
    await server.wait_closed()


# ----------------------------------------------------------------------
# aprefetch
# ----------------------------------------------------------------------
class TestAprefetch:
    def test_preserves_order_and_exhausts(self):
        async def scenario():
            items = []
            async for item in aprefetch(iter(range(20)), depth=3):
                items.append(item)
            return items

        assert _run(scenario()) == list(range(20))

    def test_producer_failure_reraises_after_buffered_items(self):
        def source():
            yield "ok"
            raise RuntimeError("producer blew up")

        async def scenario():
            seen = []
            with pytest.raises(RuntimeError, match="blew up"):
                async for item in aprefetch(source()):
                    seen.append(item)
            return seen

        assert _run(scenario()) == ["ok"]

    def test_abandoning_the_stream_stops_the_producer(self):
        produced = []

        def source():
            for i in range(10_000):
                produced.append(i)
                yield i

        async def scenario():
            agen = aprefetch(source(), depth=2)
            async for item in agen:
                if item == 3:
                    break
            await agen.aclose()

        _run(scenario())
        assert len(produced) < 100  # bounded by depth, not the source


# ----------------------------------------------------------------------
# The async client against the sync resumable server
# ----------------------------------------------------------------------
class TestAsyncClient:
    @pytest.mark.parametrize("chunk_size", [None, 2])
    def test_intersection_against_sync_server(self, params, chunk_size):
        v_r = ["a", "b", "c", "d"]
        v_s = ["b", "c", "x"]
        port_ready = threading.Event()
        bound = {}

        def serve():
            tcp.serve_resumable_sender(
                "intersection", v_s, params, random.Random(1),
                ready_callback=lambda p: (bound.update(port=p),
                                          port_ready.set()),
                config=_config(), chunk_size=chunk_size,
            )

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        assert port_ready.wait(5)

        async def go():
            return await connect_receiver_async(
                "intersection", v_r, random.Random(2),
                "127.0.0.1", bound["port"],
                config=_config(), chunk_size=chunk_size,
            )

        answer, stats = _run(go())
        server.join(timeout=10)
        assert sorted(answer) == ["b", "c"]
        assert stats.frames_sent > 0 and stats.frames_received > 0
        if chunk_size is not None:
            assert stats.chunks_sent > 0
