"""SessionOptions and the deprecated resumable=/journal_dir= shim.

The one-shot facades grew a ``session=SessionOptions(...)`` kwarg; the
old boolean/path kwargs must keep working (warn-once) and mixing the
two styles must be an error, not a silent preference.
"""

from __future__ import annotations

import random
import threading
import warnings

import pytest

import repro
from repro import api
from repro.net.session import RetryPolicy, SessionConfig

V_R = [f"v{i}" for i in range(10)]
V_S = [f"v{i}" for i in range(5, 15)]
EXPECTED = set(V_R) & set(V_S)


def _config(timeout_s=5.0):
    return SessionConfig(
        timeout_s=timeout_s,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.02, max_delay_s=0.1),
        max_reconnects=4,
        fin_grace_s=0.05,
    )


@pytest.fixture(autouse=True)
def _reset_warn_once():
    """The deprecation warning fires once per process; reset so every
    test observes it fresh."""
    api._SESSION_KWARG_WARNED.clear()
    yield
    api._SESSION_KWARG_WARNED.clear()


def _serve_connect(serve_kwargs, connect_kwargs):
    ready, ports = threading.Event(), []
    box = {}

    def serve_thread():
        box["serve"] = repro.serve(
            "intersection", V_S, bits=128, seed=3, port=0,
            ready_callback=lambda p: (ports.append(p), ready.set()),
            timeout=10.0, **serve_kwargs,
        )

    thread = threading.Thread(target=serve_thread)
    thread.start()
    assert ready.wait(timeout=10)
    box["connect"] = repro.connect(
        "intersection", V_R, host="127.0.0.1", port=ports[0],
        seed=4, timeout=10.0, **connect_kwargs,
    )
    thread.join(timeout=30)
    return box


class TestSessionOptions:
    def test_dataclass_defaults(self):
        opts = repro.SessionOptions()
        assert opts.journal_dir is None
        assert opts.config is None
        assert opts.journal_fsync is True

    def test_session_kwarg_runs_resumable(self, tmp_path):
        box = _serve_connect(
            {"session": repro.SessionOptions(journal_dir=tmp_path / "s", config=_config())},
            {"session": repro.SessionOptions(journal_dir=tmp_path / "r", config=_config())},
        )
        assert box["connect"].answer == EXPECTED
        assert box["connect"].stats is not None
        assert box["serve"].stats is not None
        assert any(tmp_path.joinpath("s").iterdir())
        assert any(tmp_path.joinpath("r").iterdir())

    def test_session_kwarg_emits_no_warning(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            box = _serve_connect(
                {"session": repro.SessionOptions(config=_config())},
                {"session": repro.SessionOptions(config=_config())},
            )
        assert box["connect"].answer == EXPECTED


class TestDeprecatedKwargs:
    def test_resumable_warns_once_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="resumable"):
            box = _serve_connect({"resumable": True, "config": _config()}, {"resumable": True, "config": _config()})
        assert box["connect"].answer == EXPECTED
        # Second use in the same process: no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            box = _serve_connect({"resumable": True, "config": _config()}, {"resumable": True, "config": _config()})
        assert box["connect"].answer == EXPECTED

    def test_journal_dir_warns_and_journals(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="journal_dir"):
            box = _serve_connect(
                {"journal_dir": tmp_path / "s", "config": _config()},
                {"journal_dir": tmp_path / "r", "config": _config()},
            )
        assert box["connect"].answer == EXPECTED
        assert any(tmp_path.joinpath("r").iterdir())

    def test_mixing_styles_raises(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            repro.serve(
                "intersection", V_S, bits=128, seed=1, port=0,
                resumable=True, session=repro.SessionOptions(),
            )
        with pytest.raises(ValueError, match="not both"):
            repro.connect(
                "intersection", V_R, host="127.0.0.1", port=1,
                journal_dir=tmp_path,
                session=repro.SessionOptions(journal_dir=tmp_path),
            )


class TestServeResultPort:
    def test_port_zero_reports_bound_port(self):
        """serve(port=0) must expose the kernel-chosen port on the
        result and agree with the ready_callback value."""
        ports, ready = [], threading.Event()
        box = {}

        def serve_thread():
            box["serve"] = repro.serve(
                "intersection", V_S, bits=128, seed=5, port=0,
                ready_callback=lambda p: (ports.append(p), ready.set()),
                timeout=10.0,
            )

        thread = threading.Thread(target=serve_thread)
        thread.start()
        assert ready.wait(timeout=10)
        assert ports[0] != 0
        result = repro.connect(
            "intersection", V_R, host="127.0.0.1", port=ports[0],
            seed=6, timeout=10.0,
        )
        thread.join(timeout=30)
        assert result.answer == EXPECTED
        assert box["serve"].port == ports[0]

    def test_catalog_serve_port_zero(self):
        catalog = repro.open_catalog(V_S, bits=128, rng=random.Random(1))
        peer = catalog.serve(port=0, timeout=5.0)
        try:
            assert peer.port != 0
        finally:
            peer.close()
