"""Tests for the fault-tolerant session layer."""

from __future__ import annotations

import random
import socket
import threading

import pytest

from repro.net.serialization import encode
from repro.net.session import (
    SESSION_VERSION,
    ClientRetryPolicy,
    HandshakeError,
    RetryPolicy,
    SenderSession,
    ServerBusyError,
    SessionConfig,
    SessionEndpoint,
    SessionError,
    SessionStats,
    WorkerLost,
    refusal_retry_hint_s,
    seal,
    unseal,
)
from repro.net.tcp import SocketEndpoint
from repro.protocols.parties import PublicParams


class TestSeal:
    def test_round_trip(self):
        frame = seal("msg", 3, b"payload")
        assert unseal(frame) == ("msg", 3, b"payload")

    def test_corrupted_field_detected(self):
        frame = seal("msg", 3, b"payload")
        tampered = (frame[0], 4, *frame[2:])
        with pytest.raises(ValueError, match="checksum"):
            unseal(tampered)

    def test_corrupted_payload_detected(self):
        frame = seal("msg", 3, b"payload")
        tampered = (frame[0], frame[1], b"paXload", frame[3])
        with pytest.raises(ValueError, match="checksum"):
            unseal(tampered)

    def test_non_tuple_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            unseal([1, 2, 3])

    def test_non_integer_seal_rejected(self):
        with pytest.raises(ValueError, match="seal"):
            unseal(("msg", "not-a-crc"))

    def test_missing_tag_rejected(self):
        with pytest.raises(ValueError):
            unseal(seal(42, 43))


class TestRetryPolicy:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0,
                             max_delay_s=0.5, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay_s(a, rng) for a in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=1.0, jitter=0.5)
        rng = random.Random(1)
        for attempt in range(50):
            d = policy.delay_s(attempt, rng)
            assert 0.05 <= d <= 0.1

    def test_seeded_rng_reproducible(self):
        policy = RetryPolicy()
        a = [policy.delay_s(i, random.Random(3)) for i in range(4)]
        b = [policy.delay_s(i, random.Random(3)) for i in range(4)]
        assert a == b


def _endpoint_pair(timeout_s=0.5, max_attempts=3):
    """A SessionEndpoint facing a raw framed endpoint over a socketpair."""
    raw_a, raw_b = socket.socketpair()
    raw_a.settimeout(2.0)
    raw_b.settimeout(2.0)
    config = SessionConfig(
        timeout_s=timeout_s,
        retry=RetryPolicy(max_attempts=max_attempts, base_delay_s=0.01,
                          max_delay_s=0.02),
    )
    session_side = SessionEndpoint(
        SocketEndpoint(sock=raw_a), config, SessionStats(), random.Random(0)
    )
    return session_side, SocketEndpoint(sock=raw_b)


class TestSessionEndpoint:
    def test_send_waits_for_ack(self):
        endpoint, raw = _endpoint_pair()
        raw.send(seal("ack", 0))  # pre-buffered: the ack awaits the send
        endpoint.send(["data"])
        assert endpoint.send_seq == 1
        frame = unseal(raw.recv())
        assert frame[0] == "msg" and frame[1] == 0

    def test_unacked_send_raises_after_retries(self):
        endpoint, raw = _endpoint_pair(timeout_s=0.05, max_attempts=2)
        with pytest.raises(SessionError, match="unacknowledged"):
            endpoint.send("nobody listens")
        assert endpoint.stats.retransmits == 1
        assert unseal(raw.recv())[1] == 0  # both attempts hit the wire
        assert unseal(raw.recv())[1] == 0

    def test_recv_acks_in_order_frame(self):
        endpoint, raw = _endpoint_pair()
        raw.send(seal("msg", 0, encode(("k", 1))))
        assert endpoint.recv() == ("k", 1)
        assert unseal(raw.recv()) == ("ack", 0)
        assert endpoint.stats.frames_received == 1

    def test_duplicate_reacked_and_discarded(self):
        endpoint, raw = _endpoint_pair()
        raw.send(seal("msg", 0, encode("first")))
        raw.send(seal("msg", 0, encode("first")))  # retransmitted dup
        raw.send(seal("msg", 1, encode("second")))
        assert endpoint.recv() == "first"
        assert endpoint.recv() == "second"
        assert endpoint.stats.duplicates_discarded == 1
        acks = [unseal(raw.recv()) for _ in range(3)]
        assert acks == [("ack", 0), ("ack", 0), ("ack", 1)]

    def test_garbled_frame_naked_then_recovered(self):
        endpoint, raw = _endpoint_pair()
        good = seal("msg", 0, encode("payload"))
        raw.send((good[0], good[1], b"damaged!", good[3]))
        raw.send(good)
        assert endpoint.recv() == "payload"
        assert endpoint.stats.checksum_failures == 1
        assert endpoint.stats.naks_sent == 1
        assert unseal(raw.recv()) == ("nak", -1)
        assert unseal(raw.recv()) == ("ack", 0)

    def test_out_of_order_frame_raises(self):
        endpoint, raw = _endpoint_pair()
        raw.send(seal("msg", 5, encode("from the future")))
        with pytest.raises(SessionError, match="out-of-order"):
            endpoint.recv()

    def test_sealed_but_undecodable_payload_raises(self):
        endpoint, raw = _endpoint_pair()
        raw.send(seal("msg", 0, b"\xffnot wire format"))
        with pytest.raises(SessionError, match="failed to\\s+decode"):
            endpoint.recv()

    def test_data_frame_is_implicit_ack(self):
        endpoint, raw = _endpoint_pair()
        raw.send(seal("msg", 0, encode("reply")))  # peer already progressed
        endpoint.send("request")
        assert endpoint.stats.implicit_acks == 1
        assert endpoint.recv() == "reply"  # buffered, not re-read

    def test_recv_times_out_with_session_error(self):
        endpoint, _raw = _endpoint_pair(timeout_s=0.05, max_attempts=2)
        with pytest.raises(SessionError, match="timed out"):
            endpoint.recv()

    def test_nak_triggers_retransmit(self):
        endpoint, raw = _endpoint_pair()
        raw.send(seal("nak", 0))
        raw.send(seal("ack", 0))
        endpoint.send("payload")
        assert endpoint.stats.retransmits == 1
        frames = [unseal(raw.recv()) for _ in range(2)]
        assert [f[1] for f in frames] == [0, 0]


def _handshake_config():
    return SessionConfig(
        timeout_s=0.2,
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.01,
                          max_delay_s=0.02),
        max_reconnects=1,
        fin_grace_s=0.05,
    )


class TestHandshake:
    def _server_session(self):
        params = PublicParams.for_bits(64)
        return SenderSession(
            "intersection",
            params,
            make_sender=lambda: None,
            config=_handshake_config(),
            rng=random.Random(0),
        )

    def test_version_mismatch_rejected(self):
        raw_a, raw_b = socket.socketpair()
        raw_a.settimeout(1.0)
        raw_b.settimeout(1.0)
        server = self._server_session()
        client = SocketEndpoint(sock=raw_b)
        client.send(seal("hello", 99, "intersection", 1, 0, 0))
        with pytest.raises(HandshakeError, match="version"):
            server._handshake(SocketEndpoint(sock=raw_a))
        reject = unseal(client.recv())
        assert reject[0] == "reject"

    def test_protocol_mismatch_rejected(self):
        raw_a, raw_b = socket.socketpair()
        raw_a.settimeout(1.0)
        raw_b.settimeout(1.0)
        server = self._server_session()
        client = SocketEndpoint(sock=raw_b)
        client.send(
            seal("hello", SESSION_VERSION, "equijoin", 1, 0, 0)
        )
        with pytest.raises(HandshakeError, match="protocol|equijoin"):
            server._handshake(SocketEndpoint(sock=raw_a))
        assert unseal(client.recv())[0] == "reject"

    def test_valid_hello_answered_with_welcome(self):
        raw_a, raw_b = socket.socketpair()
        raw_a.settimeout(1.0)
        raw_b.settimeout(1.0)
        server = self._server_session()
        client = SocketEndpoint(sock=raw_b)
        client.send(seal("hello", SESSION_VERSION, "intersection", 77, 0, 0))
        endpoint, next_recv = server._handshake(SocketEndpoint(sock=raw_a))
        assert next_recv == 0
        welcome = unseal(client.recv())
        assert welcome[0] == "welcome"
        assert welcome[2] == "intersection"
        assert welcome[3] == 77
        assert PublicParams.from_wire(tuple(welcome[4])) == server.params

    def test_implausible_cursor_rejected(self):
        raw_a, raw_b = socket.socketpair()
        raw_a.settimeout(1.0)
        raw_b.settimeout(1.0)
        server = self._server_session()
        client = SocketEndpoint(sock=raw_b)
        client.send(seal("hello", SESSION_VERSION, "intersection", 1, 0, 5))
        with pytest.raises(SessionError, match="cursor"):
            server._handshake(SocketEndpoint(sock=raw_a))

    def test_garbled_hello_absorbed_then_accepted(self):
        """A corrupted hello does not kill the connection: the server
        waits for a valid retransmission."""
        raw_a, raw_b = socket.socketpair()
        raw_a.settimeout(1.0)
        raw_b.settimeout(1.0)
        server = self._server_session()
        client = SocketEndpoint(sock=raw_b)
        good = seal("hello", SESSION_VERSION, "intersection", 5, 0, 0)
        client.send((good[0], 99, *good[2:]))  # fails the checksum
        client.send(good)
        _endpoint, next_recv = server._handshake(SocketEndpoint(sock=raw_a))
        assert next_recv == 0
        assert server.stats.checksum_failures == 1


class TestResumableEndToEnd:
    def test_full_tcp_run_clean(self):
        from repro.net.tcp import (
            connect_resumable_receiver,
            serve_resumable_sender,
        )

        config = _handshake_config()
        params = PublicParams.for_bits(128)
        ready = threading.Event()
        box: dict = {}

        def serve():
            box["server"] = serve_resumable_sender(
                "intersection",
                ["b", "c", "d"],
                params,
                random.Random(1),
                ready_callback=lambda port: (
                    box.__setitem__("port", port), ready.set()
                ),
                config=config,
            )

        thread = threading.Thread(target=serve)
        thread.start()
        assert ready.wait(timeout=5)
        answer, stats = connect_resumable_receiver(
            "intersection",
            ["a", "b", "c"],
            random.Random(2),
            "127.0.0.1",
            box["port"],
            config=config,
        )
        thread.join(timeout=5)
        assert not thread.is_alive()
        size_v_r, server_stats = box["server"]
        assert answer == {"b", "c"}
        assert size_v_r == 3
        assert stats.reconnects == 0
        assert server_stats.rounds_computed == 1
        assert stats.rounds_computed == 1

    def test_protocol_mismatch_over_tcp(self):
        from repro.net.tcp import (
            connect_resumable_receiver,
            serve_resumable_sender,
        )

        config = _handshake_config()
        params = PublicParams.for_bits(64)
        ready = threading.Event()
        box: dict = {}

        def serve():
            try:
                serve_resumable_sender(
                    "intersection",
                    ["a"],
                    params,
                    random.Random(1),
                    ready_callback=lambda port: (
                        box.__setitem__("port", port), ready.set()
                    ),
                    config=config,
                )
            except HandshakeError as exc:
                box["error"] = exc

        thread = threading.Thread(target=serve)
        thread.start()
        assert ready.wait(timeout=5)
        with pytest.raises(HandshakeError):
            connect_resumable_receiver(
                "equijoin-size",
                ["a"],
                random.Random(2),
                "127.0.0.1",
                box["port"],
                config=config,
            )
        thread.join(timeout=5)
        assert isinstance(box.get("error"), HandshakeError)

    def test_unknown_protocol_name_rejected_locally(self):
        from repro.net.tcp import connect_resumable_receiver

        with pytest.raises(ValueError, match="unknown protocol"):
            connect_resumable_receiver(
                "set-union", ["a"], random.Random(0), "127.0.0.1", 1
            )


# ----------------------------------------------------------------------
# The unified client retry policy and the typed worker-lost refusal
# ----------------------------------------------------------------------
class TestClientRetryPolicy:
    def test_parse_full_spec(self):
        policy = ClientRetryPolicy.parse(
            "attempts=4,timeout=1.5,deadline=30,base=0.1,multiplier=3,"
            "max-delay=1,jitter=0.25,busy=no,worker-lost=yes"
        )
        assert policy.max_attempts == 4
        assert policy.attempt_timeout_s == 1.5
        assert policy.total_deadline_s == 30.0
        assert policy.base_delay_s == 0.1
        assert policy.multiplier == 3.0
        assert policy.max_delay_s == 1.0
        assert policy.jitter == 0.25
        assert policy.retry_busy is False
        assert policy.retry_worker_lost is True

    def test_parse_defaults_and_whitespace(self):
        assert ClientRetryPolicy.parse("") == ClientRetryPolicy()
        assert (
            ClientRetryPolicy.parse(" attempts=2 , busy=TRUE ")
            == ClientRetryPolicy(max_attempts=2, retry_busy=True)
        )

    @pytest.mark.parametrize("raw,expected", [
        ("yes", True), ("no", False), ("true", True), ("false", False),
        ("1", True), ("0", False),
    ])
    def test_parse_bool_spellings(self, raw, expected):
        policy = ClientRetryPolicy.parse(f"worker-lost={raw}")
        assert policy.retry_worker_lost is expected

    @pytest.mark.parametrize("spec,match", [
        ("retries=3", "unknown retry-policy key"),
        ("attempts", "not key=value"),
        ("attempts=lots", "wants a number"),
        ("busy=maybe", "wants yes/no"),
    ])
    def test_parse_rejections(self, spec, match):
        with pytest.raises(ValueError, match=match):
            ClientRetryPolicy.parse(spec)

    def test_retryable_routes_by_exception_and_toggle(self):
        policy = ClientRetryPolicy()
        assert policy.retryable(ServerBusyError("busy"))
        assert policy.retryable(WorkerLost("lost"))
        assert not policy.retryable(SessionError("generic"))
        assert not policy.retryable(HandshakeError("rejected"))
        off = ClientRetryPolicy(retry_busy=False, retry_worker_lost=False)
        assert not off.retryable(ServerBusyError("busy"))
        assert not off.retryable(WorkerLost("lost"))

    def test_backoff_without_hint_is_subtractive_exponential(self):
        policy = ClientRetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.5
        )
        rng = random.Random(7)
        for attempt, raw in enumerate([0.1, 0.2, 0.4, 0.5, 0.5]):
            delay = policy.backoff_s(attempt, rng)
            assert raw * 0.5 <= delay <= raw  # jitter only shortens

    def test_backoff_with_hint_never_undercuts_the_server(self):
        """A server hint is a promise of unavailability: the sleep may
        stretch past it (jitter de-syncs the herd) but never dips
        below it."""
        policy = ClientRetryPolicy(base_delay_s=0.01, jitter=0.5)
        rng = random.Random(11)
        for attempt in range(5):
            delay = policy.backoff_s(attempt, rng, hint_s=0.3)
            assert 0.3 <= delay <= 0.3 * 1.5 + policy.max_delay_s

    def test_session_config_mirrors_the_policy(self):
        policy = ClientRetryPolicy(
            max_attempts=5, attempt_timeout_s=1.25,
            base_delay_s=0.03, multiplier=4.0, max_delay_s=0.7, jitter=0.1,
        )
        config = policy.session_config()
        assert config.timeout_s == 1.25
        assert config.max_reconnects == 5
        assert config.retry.base_delay_s == 0.03
        assert config.retry.multiplier == 4.0
        assert config.retry.max_delay_s == 0.7
        assert config.retry.jitter == 0.1
        override = policy.session_config(fin_grace_s=0.01)
        assert override.fin_grace_s == 0.01


class TestRefusalRetryHint:
    def test_integer_ms_hint_converts_to_seconds(self):
        fields = unseal(seal("worker-lost", SESSION_VERSION, "gone", 250))
        assert refusal_retry_hint_s(fields) == 0.25

    @pytest.mark.parametrize("hint", [True, -5, "soon", 0.25])
    def test_malformed_hints_read_as_none(self, hint):
        # Built directly: the wire format cannot even carry some of
        # these (no floats), but a hostile peer can hand-craft them.
        fields = ("busy", SESSION_VERSION, "full", hint)
        assert refusal_retry_hint_s(fields) is None

    def test_three_field_frame_has_no_hint(self):
        fields = unseal(seal("worker-lost", SESSION_VERSION, "gone"))
        assert refusal_retry_hint_s(fields) is None


class TestWorkerLostFrames:
    """The endpoint's receipt of the sharded front end's typed notice."""

    def test_worker_lost_during_recv_raises_typed_with_hint(self):
        endpoint, raw = _endpoint_pair()
        raw.send(seal("worker-lost", SESSION_VERSION, "shard 0 died", 120))
        with pytest.raises(WorkerLost) as excinfo:
            endpoint.recv()
        assert excinfo.value.retry_after_s == 0.12
        assert endpoint.stats.worker_lost == 1

    def test_worker_lost_during_send_raises_typed(self):
        endpoint, raw = _endpoint_pair()
        raw.send(seal("worker-lost", SESSION_VERSION, "shard 0 died"))
        with pytest.raises(WorkerLost) as excinfo:
            endpoint.send(["data"])
        assert excinfo.value.retry_after_s is None

    def test_worker_lost_is_retryable_not_a_handshake_reject(self):
        """WorkerLost must stay outside the HandshakeError hierarchy:
        reconnect loops treat a handshake reject as final, while a
        lost worker is exactly the failure a reconnect can heal."""
        assert issubclass(WorkerLost, SessionError)
        assert not issubclass(WorkerLost, HandshakeError)
