"""Unit tests for the crash-durable session journal.

Covers the record codec (scan, torn-tail truncation, rotation), the
validated fold into :class:`JournalState`, and session recovery - the
replay-determinism invariant in both its accepting and rejecting
directions.
"""

from __future__ import annotations

import random
import socket
import threading

import pytest

from repro.net.journal import (
    DONE_SUFFIX,
    JOURNAL_MAGIC,
    JournalDir,
    JournalError,
    SessionJournal,
    peek_state,
    recover_receiver_session,
    recover_sender_session,
    replay_state,
)
from repro.net.serialization import encode
from repro.net.session import (
    ReceiverSession,
    RetryPolicy,
    SenderSession,
    SessionConfig,
)
from repro.net.tcp import SocketEndpoint
from repro.protocols.parties import (
    PublicParams,
    ReceiverMachine,
    SenderMachine,
)
from repro.protocols.spec import PROTOCOLS

BITS = 128
N = 12


@pytest.fixture(scope="module")
def params():
    return PublicParams.for_bits(BITS)


def _inputs(name):
    half = N // 2
    v_r = [f"r{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    if name == "equijoin":
        return v_r, {v: f"payload:{v}".encode() for v in v_s}
    if name == "equijoin-sum":
        return v_r, {v: (i * 7) % 23 for i, v in enumerate(v_s)}
    return v_r, v_s


def _machine_wires(name, params):
    """All round wires of one deterministic run, in schedule order."""
    spec = PROTOCOLS[name]
    r_data, s_data = _inputs(name)
    receiver = ReceiverMachine(spec, r_data, params, random.Random("R"))
    sender = SenderMachine(spec, s_data, params, random.Random("S"))
    wires = []
    for rnd in spec.rounds:
        producer, consumer = (
            (receiver, sender) if rnd.source == "R" else (sender, receiver)
        )
        wire = producer.produce(rnd).to_wire()
        wires.append((rnd.source, wire))
        consumer.consume(rnd, wire)
    return wires, receiver.finish()


def _write_party_journal(path, role, name, session_id, params, wires,
                         rounds, emits):
    """A hand-built journal for a party that processed ``rounds`` rounds."""
    journal = SessionJournal(path, fsync=False)
    journal.record_open(role, name)
    journal.record_meta("session_id", session_id)
    if role == "receiver":
        journal.record_meta("params", tuple(params.to_wire()))
    inb = out = 0
    for source, wire in wires[:rounds]:
        if source == emits:
            journal.record_outbound(out, encode(wire))
            out += 1
        else:
            journal.record_inbound(inb, encode(wire))
            inb += 1
    journal.close()
    return journal


# ----------------------------------------------------------------------
# Record codec: scan, truncation, rotation
# ----------------------------------------------------------------------
def test_append_and_reopen_round_trips(tmp_path):
    path = tmp_path / "s.wal"
    journal = SessionJournal(path, fsync=False)
    journal.record_open("sender", "intersection")
    journal.record_meta("session_id", 7)
    journal.record_inbound(0, b"\x01\x02")
    journal.record_outbound(0, b"\x03")
    journal.close()

    reopened = SessionJournal(path, fsync=False)
    assert reopened.records == [
        ("open", 1, "sender", "intersection"),
        ("meta", "session_id", 7),
        ("in", 0, b"\x01\x02"),
        ("out", 0, b"\x03"),
    ]
    assert reopened.truncated_bytes == 0
    assert not reopened.complete
    reopened.record_complete()
    assert reopened.complete
    reopened.close()


def test_torn_tail_is_truncated_on_open(tmp_path):
    path = tmp_path / "s.wal"
    journal = SessionJournal(path, fsync=False)
    journal.record_open("sender", "intersection")
    journal.record_inbound(0, b"xy")
    journal.close()
    intact = path.read_bytes()

    # A record cut short mid-write by the crash.
    next_record = encode(("out", 0, b"zz"))
    path.write_bytes(intact + len(next_record).to_bytes(4, "big")
                     + next_record[:3])
    reopened = SessionJournal(path, fsync=False)
    assert reopened.truncated_bytes == 4 + 3
    assert len(reopened.records) == 2
    assert path.read_bytes() == intact  # file physically truncated
    reopened.close()


def test_corrupt_crc_truncates_from_that_record(tmp_path):
    path = tmp_path / "s.wal"
    journal = SessionJournal(path, fsync=False)
    journal.record_open("sender", "intersection")
    journal.close()
    good = path.read_bytes()
    journal = SessionJournal(path, fsync=False)
    journal.record_inbound(0, b"victim")
    journal.close()
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF  # flip a crc bit of the last record
    path.write_bytes(bytes(blob))

    reopened = SessionJournal(path, fsync=False)
    assert len(reopened.records) == 1
    assert reopened.truncated_bytes > 0
    assert path.read_bytes() == good
    reopened.close()


def test_foreign_file_is_rejected(tmp_path):
    path = tmp_path / "notes.wal"
    path.write_bytes(b"these are not journal bytes at all")
    with pytest.raises(JournalError):
        SessionJournal(path)


def test_crash_mid_creation_is_reset(tmp_path):
    path = tmp_path / "s.wal"
    path.write_bytes(JOURNAL_MAGIC[:3])  # torn header
    journal = SessionJournal(path, fsync=False)
    assert journal.records == []
    journal.record_open("sender", "intersection")
    journal.close()
    assert SessionJournal(path, fsync=False).records[0][0] == "open"


def test_rotate_is_atomic_and_idempotent(tmp_path):
    path = tmp_path / "s.wal"
    journal = SessionJournal(path, fsync=False)
    journal.record_open("sender", "intersection")
    journal.record_complete()
    rotated = journal.rotate()
    assert rotated.suffix == DONE_SUFFIX
    assert not path.exists()
    assert journal.rotate() == rotated  # second rotation is a no-op
    assert rotated.exists()


# ----------------------------------------------------------------------
# replay_state validation
# ----------------------------------------------------------------------
def test_replay_state_requires_open_record(tmp_path):
    journal = SessionJournal(tmp_path / "x.wal", fsync=False)
    journal.append(("meta", "session_id", 1))
    with pytest.raises(JournalError, match="missing open record"):
        replay_state(journal)
    journal.close()


def test_replay_state_rejects_out_of_order_rounds(tmp_path):
    journal = SessionJournal(tmp_path / "x.wal", fsync=False)
    journal.record_open("sender", "intersection")
    journal.record_inbound(1, b"skipped index 0")
    with pytest.raises(JournalError, match="out of order"):
        replay_state(journal)
    journal.close()


def test_replay_state_rejects_records_after_done(tmp_path):
    journal = SessionJournal(tmp_path / "x.wal", fsync=False)
    journal.record_open("sender", "intersection")
    journal.record_complete()
    journal.record_inbound(0, b"late")
    with pytest.raises(JournalError, match="after completion"):
        replay_state(journal)
    journal.close()


def test_journal_dir_naming_and_incomplete_scan(tmp_path, params):
    jdir = JournalDir(tmp_path, fsync=False)
    live = jdir.open_session("sender", "intersection", 0xAB)
    assert live.path.name == f"sender-intersection-{0xAB:016x}.wal"
    live.close()

    done = jdir.open_session("sender", "intersection", 0xCD)
    done.record_complete()
    done.rotate()

    # Complete-but-unrotated (crash between the marker and the rename).
    marked = jdir.open_session("sender", "intersection", 0xEF)
    marked.record_complete()
    marked.close()

    other_role = jdir.open_session("receiver", "intersection", 0xAB)
    other_role.close()

    stale = jdir.incomplete("sender", "intersection")
    assert stale == [jdir.path_for("sender", "intersection", 0xAB)]


# ----------------------------------------------------------------------
# peek_state: the strictly read-only scan
# ----------------------------------------------------------------------
def test_peek_state_reads_without_repairing(tmp_path):
    path = tmp_path / "s.wal"
    journal = SessionJournal(path, fsync=False)
    journal.record_open("sender", "intersection")
    journal.record_inbound(0, b"xy")
    journal.close()
    # A half-flushed append, as a live concurrent writer would leave it.
    next_record = encode(("out", 0, b"zz"))
    torn = (
        path.read_bytes()
        + len(next_record).to_bytes(4, "big")
        + next_record[:3]
    )
    path.write_bytes(torn)

    state = peek_state(path)
    assert state.role == "sender"
    assert state.inbound == [b"xy"]
    assert state.outbound == []
    assert path.read_bytes() == torn  # not truncated: the scan is read-only


def test_peek_state_handles_blank_missing_and_foreign_files(tmp_path):
    blank = tmp_path / "blank.wal"
    blank.write_bytes(JOURNAL_MAGIC[:3])  # crash mid-creation
    assert peek_state(blank) is None
    empty = tmp_path / "empty.wal"
    empty.write_bytes(JOURNAL_MAGIC)  # header only, no records yet
    assert peek_state(empty) is None
    foreign = tmp_path / "foreign.wal"
    foreign.write_bytes(b"these are not journal bytes at all")
    with pytest.raises(JournalError, match="foreign"):
        peek_state(foreign)
    with pytest.raises(JournalError, match="unreadable"):
        peek_state(tmp_path / "missing.wal")


def test_incomplete_scan_leaves_live_journals_untouched(tmp_path):
    """The directory scan must never repair: a journal whose owner is
    mid-append (half-flushed tail) is reported one record shorter, not
    truncated out from under its O_APPEND writer."""
    jdir = JournalDir(tmp_path, fsync=False)
    live = jdir.open_session("sender", "intersection", 0x11)
    live.record_inbound(0, b"committed")
    # Simulate the scanner racing a half-flushed append by the owner.
    half = encode(("out", 0, b"half-flushed"))
    with open(live.path, "ab") as fh:
        fh.write(len(half).to_bytes(4, "big") + half[: len(half) // 2])
    before = live.path.read_bytes()

    assert jdir.incomplete("sender", "intersection") == [live.path]
    assert live.path.read_bytes() == before  # the scan changed nothing
    # Every committed record is still visible to the read-only peek.
    assert peek_state(live.path).inbound == [b"committed"]
    live.close()


# ----------------------------------------------------------------------
# Recovery: the replay-determinism invariant
# ----------------------------------------------------------------------
def test_recover_sender_restores_cursor_and_caches(tmp_path, params):
    wires, _ = _machine_wires("intersection", params)
    path = tmp_path / "sender-intersection-0000000000000001.wal"
    # Crash window: first two rounds processed, nothing shipped after.
    _write_party_journal(
        path, "sender", "intersection", 1, params, wires, rounds=2, emits="S"
    )
    _, s_data = _inputs("intersection")
    session = recover_sender_session(
        path, params,
        lambda: PROTOCOLS["intersection"].make_sender(
            s_data, params, random.Random("S")
        ),
        fsync=False,
    )
    assert session.stats.rounds_recovered == 2
    assert session._session_id == 1
    assert len(session._inbound) + len(session._outbound) == 2
    assert session._attempted_sends == set(range(len(session._outbound)))
    session.journal.close()


def test_recover_sender_rejects_divergent_seed(tmp_path, params):
    wires, _ = _machine_wires("intersection", params)
    path = tmp_path / "sender-intersection-0000000000000002.wal"
    _write_party_journal(
        path, "sender", "intersection", 2, params, wires, rounds=2, emits="S"
    )
    _, s_data = _inputs("intersection")
    with pytest.raises(JournalError, match="diverges"):
        recover_sender_session(
            path, params,
            lambda: PROTOCOLS["intersection"].make_sender(
                s_data, params, random.Random("WRONG-SEED")
            ),
            fsync=False,
        )


def test_recover_receiver_restores_session_id_and_params(tmp_path, params):
    wires, _ = _machine_wires("intersection", params)
    path = tmp_path / "receiver-intersection-0000000000000003.wal"
    _write_party_journal(
        path, "receiver", "intersection", 3, params, wires, rounds=1,
        emits="R",
    )
    r_data, _ = _inputs("intersection")
    session = recover_receiver_session(
        path,
        lambda wire: PROTOCOLS["intersection"].make_receiver(
            r_data, PublicParams.from_wire(tuple(wire)), random.Random("R")
        ),
        fsync=False,
    )
    assert session.session_id == 3
    assert session._params_wire == tuple(params.to_wire())
    assert session.stats.rounds_recovered == 1
    session.journal.close()


def test_recover_receiver_rejects_rounds_before_params(tmp_path):
    journal = SessionJournal(tmp_path / "r.wal", fsync=False)
    journal.record_open("receiver", "intersection")
    journal.record_meta("session_id", 4)
    journal.record_outbound(0, encode(("a round", "with no params")))
    journal.close()
    with pytest.raises(JournalError, match="before the"):
        recover_receiver_session(
            tmp_path / "r.wal", lambda wire: None, fsync=False
        )


def test_recovered_pair_completes_the_run(tmp_path, params):
    """Both parties crash mid-run; both recover and finish correctly."""
    name = "equijoin"
    spec = PROTOCOLS[name]
    wires, expected = _machine_wires(name, params)
    r_data, s_data = _inputs(name)
    sid = 0x51
    s_path = tmp_path / f"sender-{name}-{sid:016x}.wal"
    r_path = tmp_path / f"receiver-{name}-{sid:016x}.wal"
    # S journaled two rounds; the second (its first outbound) was never
    # shipped. R journaled only its own first round.
    _write_party_journal(
        s_path, "sender", name, sid, params, wires, rounds=2, emits="S"
    )
    _write_party_journal(
        r_path, "receiver", name, sid, params, wires, rounds=1, emits="R"
    )

    config = SessionConfig(
        timeout_s=2.0,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05),
        max_reconnects=1,
        fin_grace_s=0.05,
    )
    sender_session = recover_sender_session(
        s_path, params,
        lambda: spec.make_sender(s_data, params, random.Random("S")),
        config=config, fsync=False,
    )
    receiver_session = recover_receiver_session(
        r_path,
        lambda wire: spec.make_receiver(
            r_data, PublicParams.from_wire(tuple(wire)), random.Random("R")
        ),
        config=config, fsync=False,
    )
    raw_s, raw_r = socket.socketpair()
    raw_s.settimeout(10.0)
    raw_r.settimeout(10.0)
    connections = iter([SocketEndpoint(sock=raw_s)])
    box = {}
    thread = threading.Thread(
        target=lambda: box.update(
            state=sender_session.run(lambda: next(connections))
        )
    )
    thread.start()
    answer = receiver_session.run(lambda: SocketEndpoint(sock=raw_r))
    thread.join(timeout=10)
    assert not thread.is_alive()

    assert answer == expected
    assert sender_session.stats.rounds_recovered == 2
    assert receiver_session.stats.rounds_recovered == 1
    # Both journals completed and rotated.
    assert sender_session.journal.path.suffix == DONE_SUFFIX
    assert receiver_session.journal.path.suffix == DONE_SUFFIX
    assert not list(tmp_path.glob("*.wal"))


def test_fresh_journaled_sessions_rotate_on_completion(tmp_path, params):
    """A clean run under ``journal=JournalDir(...)`` leaves only .done."""
    name = "intersection"
    spec = PROTOCOLS[name]
    r_data, s_data = _inputs(name)
    jdir = JournalDir(tmp_path, fsync=False)
    config = SessionConfig(
        timeout_s=2.0,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05),
        max_reconnects=1,
        fin_grace_s=0.05,
    )
    sender_session = SenderSession(
        name, params,
        lambda: spec.make_sender(s_data, params, random.Random("S")),
        config=config, rng=random.Random(1), journal=jdir,
    )
    receiver_session = ReceiverSession(
        name,
        lambda wire: spec.make_receiver(
            r_data, PublicParams.from_wire(tuple(wire)), random.Random("R")
        ),
        config=config, rng=random.Random(2), journal=jdir,
    )
    raw_s, raw_r = socket.socketpair()
    raw_s.settimeout(10.0)
    raw_r.settimeout(10.0)
    connections = iter([SocketEndpoint(sock=raw_s)])
    thread = threading.Thread(
        target=lambda: sender_session.run(lambda: next(connections))
    )
    thread.start()
    answer = receiver_session.run(lambda: SocketEndpoint(sock=raw_r))
    thread.join(timeout=10)
    assert not thread.is_alive()

    half = N // 2
    assert answer == {f"c{i}" for i in range(half)}
    assert not list(tmp_path.glob("*.wal"))
    assert len(list(tmp_path.glob(f"*{DONE_SUFFIX}"))) == 2
    assert jdir.incomplete() == []
