"""Unit/integration tests for the supervised multi-session server.

The acceptance bar from the issue: a :class:`ProtocolServer` sustains
at least four concurrent sessions across *different* protocols while
rejecting the ``(max_sessions + 1)``-th new client with a typed busy
frame rather than a hang. Plus: reconnect routing by session id,
deadline/idle reaping, graceful drain, journal-backed recovery, and
per-session stats folded into the metrics report.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest

from repro.analysis.instrumentation import MetricsRecorder
from repro.net import tcp
from repro.net.journal import JournalDir
from repro.net.serialization import encode
from repro.net.server import ProtocolOffer, ProtocolServer
from repro.net.session import (
    SESSION_VERSION,
    ReceiverSession,
    RetryPolicy,
    ServerBusyError,
    SessionConfig,
    seal,
    unseal,
)
from repro.protocols.parties import PublicParams, ReceiverMachine, SenderMachine
from repro.protocols.spec import PROTOCOLS

BITS = 128
N = 12


@pytest.fixture(scope="module")
def params():
    return PublicParams.for_bits(BITS)


def _values():
    half = N // 2
    v_r = [f"r{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    return v_r, v_s


def _offers(params):
    v_r, v_s = _values()
    return {
        "intersection": (v_s, params),
        "intersection-size": (v_s, params),
        "equijoin": ({v: f"payload:{v}".encode() for v in v_s}, params),
        "equijoin-sum": (
            {v: (i * 7) % 23 for i, v in enumerate(v_s)}, params
        ),
    }


def _config(timeout_s=2.0, max_reconnects=8):
    return SessionConfig(
        timeout_s=timeout_s,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05),
        max_reconnects=max_reconnects,
        fin_grace_s=0.05,
    )


def _client(port, protocol, seed, config=None):
    v_r, _ = _values()
    answer, stats = tcp.connect_resumable_receiver(
        protocol, v_r, random.Random(seed), "127.0.0.1", port,
        config=config or _config(),
    )
    return answer, stats


def _raw_hello_holder(port, protocol, session_id):
    """A fake client: valid hello, then silence (holds its slot)."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    endpoint = tcp.SocketEndpoint(sock=sock)
    endpoint.send(
        seal("hello", SESSION_VERSION, protocol, session_id, 0, 0)
    )
    return endpoint


def _expect_frame(endpoint, tag, timeout=5.0):
    endpoint.settimeout(timeout)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        fields = unseal(endpoint.recv())
        if fields[0] == tag:
            return fields
    raise AssertionError(f"no {tag!r} frame within {timeout}s")


# ----------------------------------------------------------------------
# Concurrency + typed busy rejection (the acceptance criterion)
# ----------------------------------------------------------------------
def test_four_concurrent_protocols_and_busy_rejection(params):
    half = N // 2
    server = ProtocolServer(
        _offers(params), max_sessions=4, config=_config()
    ).start()
    try:
        # Fill all four slots with holders on four different protocols.
        holders = [
            _raw_hello_holder(server.port, protocol, 100 + i)
            for i, protocol in enumerate(_offers(params))
        ]
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            with server._lock:
                running = sum(
                    1 for r in server.sessions.values()
                    if r.status == "running"
                )
            if running == 4:
                break
            time.sleep(0.02)
        assert running == 4, "server did not reach 4 concurrent sessions"

        # The fifth new client gets a typed busy frame, not a hang.
        with pytest.raises(ServerBusyError, match="capacity"):
            _client(
                server.port, "intersection", seed=9,
                config=_config(max_reconnects=0),
            )
        assert server.rejected_busy == 1

        # The four held sessions are still live: complete each of them
        # with a real client reconnecting under the held session id.
        answers = {}
        threads = []
        for i, protocol in enumerate(_offers(params)):
            def run(protocol=protocol, sid=100 + i):
                v_r, _ = _values()
                spec = PROTOCOLS[protocol]
                session = ReceiverSession(
                    protocol,
                    lambda wire: spec.make_receiver(
                        v_r, PublicParams.from_wire(tuple(wire)),
                        random.Random("R"),
                    ),
                    config=_config(),
                    rng=random.Random(i),
                    session_id=sid,
                )
                answers[protocol] = session.run(
                    lambda: tcp._dial("127.0.0.1", server.port, 2.0)
                )
            threads.append(threading.Thread(target=run))
        for holder in holders:
            holder.close()  # free the dead connections
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()

        assert answers["intersection"] == {f"c{i}" for i in range(half)}
        assert answers["intersection-size"] == half
        assert answers["equijoin"] == {
            f"c{i}": f"payload:c{i}".encode() for i in range(half)
        }
    finally:
        server.shutdown(drain_timeout_s=2.0)
    statuses = {r["session_id"]: r["status"] for r in server.results()}
    assert all(statuses[100 + i] == "done" for i in range(4)), statuses


def test_reconnect_routes_to_owning_session(params):
    """A dead first connection does not kill the session: a reconnect
    under the same id resumes it on a fresh connection."""
    server = ProtocolServer(
        _offers(params), max_sessions=2, config=_config(timeout_s=0.5)
    ).start()
    try:
        holder = _raw_hello_holder(server.port, "intersection", 0xBEEF)
        _expect_frame(holder, "welcome")  # the session adopted conn #1
        holder.close()  # conn #1 dies mid-handshake

        v_r, _ = _values()
        spec = PROTOCOLS["intersection"]
        session = ReceiverSession(
            "intersection",
            lambda wire: spec.make_receiver(
                v_r, PublicParams.from_wire(tuple(wire)), random.Random("R")
            ),
            config=_config(timeout_s=0.5),
            rng=random.Random(3),
            session_id=0xBEEF,
        )
        answer = session.run(
            lambda: tcp._dial("127.0.0.1", server.port, 2.0)
        )
        assert answer == {f"c{i}" for i in range(N // 2)}
    finally:
        server.shutdown(drain_timeout_s=2.0)
    (record,) = server.results()
    assert record["session_id"] == 0xBEEF
    assert record["status"] == "done"


# ----------------------------------------------------------------------
# Supervision: deadlines, reaping, drain
# ----------------------------------------------------------------------
def test_session_deadline_expires_and_frees_the_slot(params):
    server = ProtocolServer(
        _offers(params), max_sessions=1,
        config=_config(timeout_s=0.3, max_reconnects=1),
        session_deadline_s=0.5,
    ).start()
    try:
        holder = _raw_hello_holder(server.port, "intersection", 0xDEAD)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if any(
                r["status"] == "expired" for r in server.results()
            ):
                break
            time.sleep(0.05)
        else:
            raise AssertionError("deadline reaper never fired")
        holder.close()

        # The freed slot accepts a fresh session end-to-end.
        answer, _stats = _client(server.port, "intersection", seed=11)
        assert answer == {f"c{i}" for i in range(N // 2)}
    finally:
        server.shutdown(drain_timeout_s=2.0)


def test_drain_refuses_new_sessions_with_busy(params):
    server = ProtocolServer(
        _offers(params), max_sessions=4, config=_config(timeout_s=0.5)
    ).start()
    port = server.port
    shutdown_thread = threading.Thread(
        target=server.shutdown, kwargs={"drain_timeout_s": 2.0}
    )
    shutdown_thread.start()
    deadline = time.monotonic() + 5.0
    while not server.draining and time.monotonic() < deadline:
        time.sleep(0.01)
    try:
        with pytest.raises(ServerBusyError, match="draining"):
            _client(port, "intersection", seed=13,
                    config=_config(max_reconnects=0))
    finally:
        shutdown_thread.join(timeout=10)
    assert server.wait_closed(timeout=10)


# ----------------------------------------------------------------------
# Journal recovery through the supervisor
# ----------------------------------------------------------------------
def _journal_crash_window(tmp_path, params, protocol, sid):
    """Hand-build both parties' journals at the worst crash point:
    S journaled (in m1, out m2) but never shipped m2; R journaled m1."""
    from repro.net.journal import SessionJournal

    spec = PROTOCOLS[protocol]
    v_r, v_s = _values()
    receiver = ReceiverMachine(spec, v_r, params, random.Random("R"))
    sender = SenderMachine(spec, v_s, params, random.Random("S"))
    wires = []
    for rnd in spec.rounds:
        producer, consumer = (
            (receiver, sender) if rnd.source == "R" else (sender, receiver)
        )
        wire = producer.produce(rnd).to_wire()
        wires.append((rnd.source, wire))
        consumer.consume(rnd, wire)

    jdir = JournalDir(tmp_path, fsync=False)
    s_journal = SessionJournal(
        jdir.path_for("sender", protocol, sid), fsync=False
    )
    s_journal.record_open("sender", protocol)
    s_journal.record_meta("session_id", sid)
    r_journal = SessionJournal(
        jdir.path_for("receiver", protocol, sid), fsync=False
    )
    r_journal.record_open("receiver", protocol)
    r_journal.record_meta("session_id", sid)
    r_journal.record_meta("params", tuple(params.to_wire()))
    inb = out = 0
    for source, wire in wires[:2]:
        if source == "R":
            s_journal.record_inbound(inb, encode(wire))
            inb += 1
            if inb == 1:
                r_journal.record_outbound(0, encode(wire))
        else:
            s_journal.record_outbound(out, encode(wire))
            out += 1
    s_journal.close()
    r_journal.close()
    return jdir, receiver.finish()


def test_server_recovers_journaled_session_for_unknown_id(
    tmp_path, params
):
    protocol = "intersection"
    sid = 0x7E57
    jdir, expected = _journal_crash_window(tmp_path, params, protocol, sid)

    v_r, v_s = _values()
    offer = ProtocolOffer(
        protocol=protocol,
        params=params,
        make_sender=lambda: PROTOCOLS[protocol].make_sender(
            v_s, params, random.Random("S")
        ),
    )
    recorder = MetricsRecorder()
    server = ProtocolServer(
        [offer], max_sessions=2, config=_config(),
        journal_dir=jdir, recorder=recorder,
    ).start()
    try:
        from repro.net.journal import recover_receiver_session

        client = recover_receiver_session(
            jdir.path_for("receiver", protocol, sid),
            lambda wire: PROTOCOLS[protocol].make_receiver(
                v_r, PublicParams.from_wire(tuple(wire)), random.Random("R")
            ),
            config=_config(), fsync=False,
        )
        answer = client.run(
            lambda: tcp._dial("127.0.0.1", server.port, 2.0)
        )
        assert answer == expected
    finally:
        server.shutdown(drain_timeout_s=2.0)

    (record,) = server.results()
    assert record["status"] == "done"
    assert record["rounds_recovered"] == 2  # rebuilt from the journal
    # Stats landed in the metrics report.
    report = recorder.report()
    assert len(report["sessions"]) == 1
    assert report["sessions"][0]["session_id"] == sid
    # Completed journals rotated out of the recovery scan.
    assert jdir.incomplete("sender", protocol) == []


def test_corrupt_journal_rejects_quarantines_and_frees_the_id(
    tmp_path, params
):
    """An unrecoverable journal (replay divergence) must not wedge the
    session id or kill the dispatch thread: the client gets a typed
    reject, the journal is quarantined as ``*.corrupt``, and a fresh
    hello under the same id starts over on a new journal."""
    from repro.net.journal import SessionJournal

    protocol = "intersection"
    sid = 0xBAD
    spec = PROTOCOLS[protocol]
    v_r, v_s = _values()
    receiver = ReceiverMachine(spec, v_r, params, random.Random("R"))
    m1 = receiver.produce(spec.rounds[0]).to_wire()

    jdir = JournalDir(tmp_path, fsync=False)
    journal = SessionJournal(
        jdir.path_for("sender", protocol, sid), fsync=False
    )
    journal.record_open("sender", protocol)
    journal.record_meta("session_id", sid)
    journal.record_inbound(0, encode(m1))
    journal.record_outbound(0, b"not what replay recomputes")
    journal.close()

    offer = ProtocolOffer(
        protocol=protocol,
        params=params,
        make_sender=lambda: spec.make_sender(
            v_s, params, random.Random("S")
        ),
    )
    server = ProtocolServer(
        [offer], max_sessions=2, config=_config(), journal_dir=jdir
    ).start()
    try:
        endpoint = _raw_hello_holder(server.port, protocol, sid)
        fields = _expect_frame(endpoint, "reject")
        assert "recovery" in fields[2]
        assert "quarantined" in fields[2]
        endpoint.close()

        wal = jdir.path_for("sender", protocol, sid)
        corrupt = wal.with_suffix(".corrupt")
        assert corrupt.exists() and not wal.exists()
        assert server.quarantined == [corrupt]
        with server._lock:
            assert sid not in server.sessions  # the id is free again

        # A fresh client under the same id completes on a new journal.
        session = ReceiverSession(
            protocol,
            lambda wire: spec.make_receiver(
                v_r, PublicParams.from_wire(tuple(wire)), random.Random("R2")
            ),
            config=_config(),
            rng=random.Random(5),
            session_id=sid,
        )
        answer = session.run(
            lambda: tcp._dial("127.0.0.1", server.port, 2.0)
        )
        assert answer == {f"c{i}" for i in range(N // 2)}
    finally:
        server.shutdown(drain_timeout_s=2.0)
    (record,) = server.results()
    assert record["status"] == "done"
    assert corrupt.exists()  # still there for forensics


class _SlowSendTransport:
    """Client transport that sleeps before each send.

    Frames keep flowing, just slower: every inter-frame gap stays under
    the server's idle timeout while the whole run takes longer than it
    - the exact shape the idle reaper must *not* mistake for an
    abandoned session."""

    def __init__(self, transport, delay_s):
        self._transport = transport
        self._delay_s = delay_s

    def send(self, message):
        time.sleep(self._delay_s)
        self._transport.send(message)

    def recv(self):
        return self._transport.recv()

    def settimeout(self, timeout):
        self._transport.settimeout(timeout)

    def close(self):
        self._transport.close()


def test_idle_reaper_spares_a_session_actively_exchanging_rounds(params):
    # The four-round equijoin-sum keeps frames flowing long enough that
    # the whole run outlives the idle window while no single gap does.
    protocol = "equijoin-sum"
    idle_timeout_s = 0.75
    spec = PROTOCOLS[protocol]
    v_r, _ = _values()
    s_data = _offers(params)[protocol][0]
    receiver_m = ReceiverMachine(spec, v_r, params, random.Random("R"))
    sender_m = SenderMachine(spec, s_data, params, random.Random("S"))
    for rnd in spec.rounds:
        producer, consumer = (
            (receiver_m, sender_m) if rnd.source == "R"
            else (sender_m, receiver_m)
        )
        consumer.consume(rnd, producer.produce(rnd).to_wire())
    expected = receiver_m.finish()

    server = ProtocolServer(
        _offers(params), max_sessions=2, config=_config(timeout_s=5.0),
        idle_timeout_s=idle_timeout_s,
    ).start()
    try:
        session = ReceiverSession(
            protocol,
            lambda wire: spec.make_receiver(
                v_r, PublicParams.from_wire(tuple(wire)), random.Random("R")
            ),
            config=_config(timeout_s=5.0),
            rng=random.Random(21),
            session_id=0xA11CE,
        )
        start = time.monotonic()
        answer = session.run(
            lambda: _SlowSendTransport(
                tcp._dial("127.0.0.1", server.port, 5.0), 0.3
            )
        )
        # The run really did outlive the idle window on one connection.
        assert time.monotonic() - start > idle_timeout_s
        assert answer == expected
    finally:
        server.shutdown(drain_timeout_s=2.0)
    (record,) = server.results()
    assert record["status"] == "done"


def test_rejects_unknown_protocol_and_bad_version(params):
    server = ProtocolServer(
        {"intersection": _offers(params)["intersection"]},
        max_sessions=2, config=_config(),
    ).start()
    try:
        sock = socket.create_connection(("127.0.0.1", server.port), 5.0)
        endpoint = tcp.SocketEndpoint(sock=sock)
        endpoint.send(seal("hello", SESSION_VERSION, "equijoin", 1, 0, 0))
        fields = _expect_frame(endpoint, "reject")
        assert "not served" in fields[2]
        endpoint.close()

        sock = socket.create_connection(("127.0.0.1", server.port), 5.0)
        endpoint = tcp.SocketEndpoint(sock=sock)
        endpoint.send(seal("hello", 999, "intersection", 1, 0, 0))
        fields = _expect_frame(endpoint, "reject")
        assert "version" in fields[2]
        endpoint.close()
    finally:
        server.shutdown(drain_timeout_s=1.0)
    assert server.results() == []  # rejects never became sessions


def test_metadata_only_stub_journal_restarts_fresh(tmp_path, params):
    """A worker killed between journal creation and the ``chunk_size``
    meta append leaves a metadata-only stub (open + session_id, no
    rounds). Recovery must treat that id as fresh - nothing durable
    exists to replay - not quarantine the stub for a chunk_size
    mismatch and reject the client that reconnects to resume."""
    protocol = "intersection"
    sid = 0x51AB
    jdir = JournalDir(tmp_path, fsync=False)
    jdir.open_session("sender", protocol, sid).close()  # the stub

    v_r, v_s = _values()
    offer = ProtocolOffer(
        protocol=protocol,
        params=params,
        make_sender=lambda: PROTOCOLS[protocol].make_sender(
            v_s, params, random.Random("S")
        ),
    )
    server = ProtocolServer(
        [offer], max_sessions=2, config=_config(),
        journal_dir=jdir, chunk_size=1,
    ).start()
    try:
        session = ReceiverSession(
            protocol,
            lambda wire: PROTOCOLS[protocol].make_receiver(
                v_r, PublicParams.from_wire(tuple(wire)), random.Random("R")
            ),
            config=_config(),
            rng=random.Random(1),
            session_id=sid,
            chunk_size=1,
        )
        answer = session.run(
            lambda: tcp._dial("127.0.0.1", server.port, 2.0)
        )
    finally:
        server.shutdown(drain_timeout_s=2.0)
    half = N // 2
    assert sorted(answer) == sorted(f"c{i}" for i in range(half))
    (record,) = server.results()
    assert record["status"] == "done"
    assert record["session_id"] == sid
    # The stub was discarded, not quarantined; the finished session's
    # journal rotated normally.
    assert list(tmp_path.glob("*.corrupt")) == []
    assert jdir.incomplete("sender", protocol) == []
