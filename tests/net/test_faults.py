"""Tests for the seeded fault-injection layer."""

from __future__ import annotations

import random
import socket

import pytest

from repro.net.channel import ChannelClosed, duplex_pair
from repro.net.faults import (
    FaultInjector,
    FaultPlan,
    FaultStats,
    FaultyEndpoint,
    corrupt_message,
    faulty_duplex_pair,
)
from repro.net.tcp import SocketEndpoint


class TestFaultPlan:
    def test_rates_must_sum_below_one(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=0.7, corrupt_rate=0.5)

    def test_zero_plan_is_clean_passthrough(self):
        a, b = faulty_duplex_pair(FaultPlan())
        for i in range(20):
            a.send(("frame", i))
        assert [b.recv() for _ in range(20)] == [("frame", i) for i in range(20)]
        assert a.stats.injected == 0
        assert a.stats.delivered == 20


class TestDeterminism:
    def _fates(self, seed, n=40):
        plan = FaultPlan(seed=seed, drop_rate=0.3, corrupt_rate=0.2,
                         delay_rate=0.1)
        endpoint = FaultyEndpoint(_NullTransport(), plan,
                                  sleep=lambda _s: None)
        fates = []
        for _ in range(n):
            before = endpoint.stats.as_dict()
            endpoint.send(("payload", b"x"))
            after = endpoint.stats.as_dict()
            fates.append(tuple(after[k] - before[k] for k in sorted(after)))
        return fates

    def test_same_seed_same_fault_sequence(self):
        assert self._fates(7) == self._fates(7)

    def test_different_seed_different_sequence(self):
        assert self._fates(7) != self._fates(8)


class _NullTransport:
    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)


class TestCounters:
    def test_drop_counted_and_not_delivered(self):
        transport = _NullTransport()
        endpoint = FaultyEndpoint(transport, FaultPlan(seed=1, drop_rate=1.0))
        for _ in range(5):
            endpoint.send("m")
        assert endpoint.stats.sent == 5
        assert endpoint.stats.dropped == 5
        assert endpoint.stats.delivered == 0
        assert transport.sent == []

    def test_delay_counted_and_sleeps(self):
        slept = []
        endpoint = FaultyEndpoint(
            _NullTransport(),
            FaultPlan(seed=1, delay_rate=1.0, delay_s=0.125),
            sleep=slept.append,
        )
        endpoint.send("m")
        assert endpoint.stats.delayed == 1
        assert endpoint.stats.delivered == 1
        assert slept == [0.125]

    def test_max_faults_caps_injections(self):
        transport = _NullTransport()
        endpoint = FaultyEndpoint(
            transport, FaultPlan(seed=1, drop_rate=1.0, max_faults=3)
        )
        for _ in range(10):
            endpoint.send("m")
        assert endpoint.stats.dropped == 3
        assert endpoint.stats.delivered == 7

    def test_skip_delivers_prefix_cleanly(self):
        transport = _NullTransport()
        endpoint = FaultyEndpoint(
            transport, FaultPlan(seed=1, drop_rate=1.0, skip=4)
        )
        for _ in range(6):
            endpoint.send("m")
        assert endpoint.stats.delivered == 4
        assert endpoint.stats.dropped == 2

    def test_as_dict_shape(self):
        stats = FaultStats(sent=3, dropped=1, delivered=2)
        d = stats.as_dict()
        assert d["sent"] == 3 and d["dropped"] == 1 and d["delivered"] == 2
        assert set(d) == {
            "sent", "delivered", "dropped", "corrupted", "delayed",
            "disconnects",
        }


class TestCorruptMessage:
    def test_prefers_bytes_leaf(self):
        rng = random.Random(0)
        message = ("msg", 7, b"payload-bytes")
        damaged = corrupt_message(message, rng)
        assert damaged != message
        assert damaged[0] == "msg" and damaged[1] == 7
        assert isinstance(damaged[2], bytes)
        assert len(damaged[2]) == len(b"payload-bytes")

    def test_int_leaf_flips_one_bit(self):
        rng = random.Random(3)
        damaged = corrupt_message((42,), rng)
        assert damaged != (42,)
        assert isinstance(damaged[0], int)

    def test_no_leaf_becomes_marker(self):
        assert corrupt_message((), random.Random(0)) == ("?garbled?",)

    def test_preserves_structure(self):
        rng = random.Random(5)
        message = ["a", (1, [b"xy", "z"]), 9]
        damaged = corrupt_message(message, rng)
        assert isinstance(damaged, list) and len(damaged) == 3
        assert isinstance(damaged[1], tuple)


class TestInMemoryFaults:
    def test_dropped_frames_never_arrive(self):
        a, b = faulty_duplex_pair(
            FaultPlan(seed=2, drop_rate=1.0, max_faults=1), FaultPlan()
        )
        a.send("lost")
        a.send("kept")
        assert b.recv() == "kept"

    def test_corrupted_frame_differs(self):
        a, b = faulty_duplex_pair(
            FaultPlan(seed=2, corrupt_rate=1.0, max_faults=1), FaultPlan()
        )
        a.send(("tag", b"payload"))
        damaged = b.recv()
        assert damaged != ("tag", b"payload")
        assert a.stats.corrupted == 1

    def test_disconnect_closes_channel(self):
        a, b = faulty_duplex_pair(
            FaultPlan(seed=2, disconnect_rate=1.0), FaultPlan()
        )
        with pytest.raises(ConnectionError):
            a.send("doomed")
        assert a.stats.disconnects == 1
        with pytest.raises(ChannelClosed):
            b.recv()


class TestSocketDisconnect:
    def test_mid_frame_cut_truncates_read(self):
        """The peer of a disconnect fault observes a half-sent frame."""
        raw_a, raw_b = socket.socketpair()
        a = FaultyEndpoint(
            SocketEndpoint(sock=raw_a),
            FaultPlan(seed=0, disconnect_rate=1.0),
        )
        b = SocketEndpoint(sock=raw_b)
        with pytest.raises(ConnectionError, match="mid-frame"):
            a.send(("payload", b"x" * 64))
        with pytest.raises(ConnectionError, match="mid-frame"):
            b.recv()
        b.close()

    def test_passthrough_accounting_and_timeout(self):
        raw_a, raw_b = socket.socketpair()
        a = FaultyEndpoint(SocketEndpoint(sock=raw_a), FaultPlan())
        b = FaultyEndpoint(SocketEndpoint(sock=raw_b), FaultPlan())
        a.send([1, 2, 3])
        assert b.recv() == [1, 2, 3]
        assert a.bytes_sent > 0 and b.bytes_received == a.bytes_sent
        b.settimeout(0.01)
        with pytest.raises((TimeoutError, OSError)):
            b.recv()
        a.close()
        b.close()


class TestFaultInjector:
    def test_shared_rng_across_wraps(self):
        """Fresh wrappers continue one fault stream instead of replaying
        the seed - the property that makes reconnects survivable."""
        plan = FaultPlan(seed=9, drop_rate=0.5)
        injector = FaultInjector(plan)

        def fates(endpoint, n):
            out = []
            for _ in range(n):
                before = endpoint.stats.dropped
                endpoint.send("m")
                out.append(endpoint.stats.dropped - before)
            return out

        first = fates(injector.wrap(_NullTransport()), 10)
        second = fates(injector.wrap(_NullTransport()), 10)

        # A naive per-connection FaultyEndpoint restarts at the seed:
        replayed = fates(
            FaultyEndpoint(_NullTransport(), plan,
                           stats=FaultStats()), 10
        )
        assert first == replayed
        assert second != first  # the injector's stream moved on

    def test_stats_accumulate_across_connections(self):
        injector = FaultInjector(FaultPlan(seed=1, drop_rate=1.0))
        injector.wrap(_NullTransport()).send("a")
        injector.wrap(_NullTransport()).send("b")
        assert injector.stats.dropped == 2

    def test_injector_is_callable_as_wrapper(self):
        injector = FaultInjector(FaultPlan())
        endpoint = injector(_NullTransport())
        assert isinstance(endpoint, FaultyEndpoint)


class TestWrappedInMemoryChannel:
    def test_clean_wrap_round_trips(self):
        a_raw, b_raw = duplex_pair()
        a = FaultyEndpoint(a_raw, FaultPlan())
        b = FaultyEndpoint(b_raw, FaultPlan())
        a.send(("k", 1, b"v"))
        assert b.recv() == ("k", 1, b"v")
