"""The stateful Catalog/Peer API: parity, deltas, cache, sessions.

Three properties anchor the repeated-query redesign:

* **Golden parity** - the first (full) query through a Catalog puts
  exactly the bytes of the legacy one-shot drivers on the wire, for
  every registered protocol, in both roles.  The announce dialect adds
  precisely one framing message (the query announcement) and nothing
  else.
* **Delta correctness** - a delta query's answer equals a fresh full
  run over the mutated tables, for every protocol.
* **Persistence** - a cache-backed catalog warm-starts from disk with
  the same answers, and delta commits re-key the cache.
"""

from __future__ import annotations

import random
import threading

import pytest

import repro
from repro.net import tcp
from repro.protocols.parties import PublicParams
from repro.protocols.spec import PROTOCOLS, get_spec

BITS = 128
PARAMS = PublicParams.for_bits(BITS)

BASE_PROTOCOLS = [n for n, s in PROTOCOLS.items() if s.delta_of is None]


def _tables(protocol):
    v_r = [f"v{i}" for i in range(12)]
    v_s = [f"v{i}" for i in range(6, 18)]
    shape = get_spec(protocol).sender_input
    if shape == "ext":
        return v_r, {v: f"ext({v})".encode() for v in v_s}
    if shape == "amounts":
        return v_r, {v: i * 10 for i, v in enumerate(v_s)}
    return v_r, v_s


def _mutate(cat_r, cat_s, protocol):
    """Stage one insert + one delete on each side."""
    shape = get_spec(protocol).sender_input
    cat_r.insert("v20")
    cat_r.delete("v0")
    if shape == "ext":
        cat_s.insert("v20", b"ext(v20)")
    elif shape == "amounts":
        cat_s.insert("v20", 777)
    else:
        cat_s.insert("v20")
    cat_s.delete("v17")


class _RecordingTransport:
    """Wraps a framed transport; logs every message in arrival order."""

    def __init__(self, transport, log):
        self._transport = transport
        self.log = log

    def send(self, message):
        self.log.append(("sent", message))
        self._transport.send(message)

    def recv(self):
        message = self._transport.recv()
        self.log.append(("received", message))
        return message

    def settimeout(self, timeout):
        self._transport.settimeout(timeout)

    def close(self):
        self._transport.close()


def _serve_recording(protocol, v_s, log):
    """A legacy tcp.serve thread that records its transcript."""
    port_box, ready = [], threading.Event()
    box = {}

    def serve_thread():
        box["size_v_r"] = tcp.serve(
            protocol, v_s, PARAMS, random.Random("S"),
            ready_callback=lambda p: (port_box.append(p), ready.set()),
            timeout=10.0,
            endpoint_wrapper=lambda e: _RecordingTransport(e, log),
        )

    thread = threading.Thread(target=serve_thread)
    thread.start()
    assert ready.wait(timeout=10)
    return thread, port_box, box


# ----------------------------------------------------------------------
# Golden parity: Catalog first query == legacy one-shot, all protocols
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", BASE_PROTOCOLS)
class TestGoldenParity:
    def test_catalog_client_matches_legacy_client(self, protocol):
        """Same seeds, same server: a Catalog client's full query puts
        the identical messages on the wire as legacy tcp.connect."""
        v_r, v_s = _tables(protocol)

        legacy_log = []
        thread, ports, _ = _serve_recording(protocol, v_s, legacy_log)
        legacy_answer = tcp.connect(
            protocol, v_r, random.Random("R"), "127.0.0.1", ports[0],
            timeout=10.0,
        )
        thread.join(timeout=10)

        catalog_log = []
        thread, ports, _ = _serve_recording(protocol, v_s, catalog_log)
        catalog = repro.open_catalog(v_r, rng=random.Random("R"))
        peer = catalog.connect(
            "127.0.0.1", port=ports[0], timeout=10.0, announce=False
        )
        result = peer.query(protocol)
        thread.join(timeout=10)

        assert result.mode == "full"
        assert result.answer == legacy_answer
        assert catalog_log == legacy_log

    def test_catalog_server_matches_legacy_server(self, protocol):
        """Same seeds, same client: a Catalog server peer answers with
        the identical messages as legacy tcp.serve."""
        v_r, v_s = _tables(protocol)

        def run_client(port, log):
            return tcp.connect(
                protocol, v_r, random.Random("R"), "127.0.0.1", port,
                timeout=10.0,
                endpoint_wrapper=lambda e: _RecordingTransport(e, log),
            )

        legacy_log = []
        thread, ports, box = _serve_recording(protocol, v_s, [])
        legacy_answer = run_client(ports[0], legacy_log)
        thread.join(timeout=10)

        catalog_log = []
        catalog = repro.open_catalog(
            v_s, params=PARAMS, rng=random.Random("S")
        )
        peer = catalog.serve(port=0, timeout=10.0, announce=False)
        box2 = {}

        def serve_thread():
            box2["result"] = peer.query(protocol)

        thread = threading.Thread(target=serve_thread)
        thread.start()
        answer = run_client(peer.port, catalog_log)
        thread.join(timeout=10)
        peer.close()

        assert answer == legacy_answer
        assert catalog_log == legacy_log
        assert box2["result"].size_v_r == box["size_v_r"]

    def test_announce_dialect_adds_exactly_one_frame(self, protocol):
        """Catalog-to-catalog queries announce (protocol, kind) first;
        every byte after that announcement is the legacy transcript."""
        v_r, v_s = _tables(protocol)

        legacy_log = []
        thread, ports, _ = _serve_recording(protocol, v_s, legacy_log)
        tcp.connect(
            protocol, v_r, random.Random("R"), "127.0.0.1", ports[0],
            timeout=10.0,
        )
        thread.join(timeout=10)

        announce_log = []
        cat_s = repro.open_catalog(v_s, params=PARAMS, rng=random.Random("S"))
        server_peer = cat_s.serve(port=0, timeout=10.0)
        # Record at the server's socket: wrap accept() before the
        # server thread starts so its endpoint logs every frame.
        server_peer._listener = _ListenerRecorder(
            server_peer._listener, announce_log
        )
        box = {}

        def serve_thread():
            box["result"] = server_peer.query(protocol)

        thread = threading.Thread(target=serve_thread)
        thread.start()
        cat_r = repro.open_catalog(v_r, rng=random.Random("R"))
        client_peer = cat_r.connect(
            "127.0.0.1", port=server_peer.port, timeout=10.0
        )
        result = client_peer.query(protocol)
        thread.join(timeout=10)
        server_peer.close()

        assert result.mode == "full"
        assert announce_log[0] == (
            "received", ("query", protocol, "full")
        )
        assert announce_log[1:] == legacy_log


class _ListenerRecorder:
    """Intercepts accept() so the server peer's endpoint records."""

    def __init__(self, listener, log):
        self._listener = listener
        self.log = log

    def accept(self):
        conn, addr = self._listener.accept()
        return _RecordingSocket(conn, self.log), addr

    def __getattr__(self, name):
        return getattr(self._listener, name)


class _RecordingSocket:
    """A socket shim that reassembles and decodes framed messages.

    SocketEndpoint speaks sendall/recv at the byte level, so this
    records complete length-prefixed frames as they cross the socket
    and logs them decoded - same shape as _RecordingTransport logs.
    """

    def __init__(self, sock, log):
        self._sock = sock
        self.log = log
        self._out = b""
        self._in = b""

    def sendall(self, data):
        self._sock.sendall(data)
        self._out += data
        self._drain("sent", "_out")

    def recv(self, n):
        data = self._sock.recv(n)
        self._in += data
        self._drain("received", "_in")
        return data

    def _drain(self, tag, attr):
        import struct

        from repro.net import serialization

        buf = getattr(self, attr)
        while len(buf) >= 4:
            (length,) = struct.unpack(">I", buf[:4])
            if len(buf) < 4 + length:
                break
            self.log.append(
                (tag, serialization.decode(buf[4 : 4 + length]))
            )
            buf = buf[4 + length :]
        setattr(self, attr, buf)

    def __getattr__(self, name):
        return getattr(self._sock, name)


# ----------------------------------------------------------------------
# Delta correctness: every protocol, local pair
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", BASE_PROTOCOLS)
def test_delta_query_matches_full_rerun(protocol):
    v_r, v_s = _tables(protocol)
    legacy = repro.run(protocol, v_r, v_s, bits=BITS, seed=42)

    cat_r = repro.open_catalog(v_r, bits=BITS, seed=11)
    cat_s = repro.open_catalog(v_s, bits=BITS, seed=12)
    peer = cat_r.pair(cat_s)
    first = peer.query(protocol)
    assert first.mode == "full"
    assert first.answer == legacy.answer
    assert first.size_v_r == legacy.size_v_r
    assert first.size_v_s == legacy.size_v_s

    _mutate(cat_r, cat_s, protocol)
    second = peer.query(protocol)
    assert second.mode == "delta"
    reference = repro.run(protocol, cat_r.data, cat_s.data, bits=BITS, seed=7)
    assert second.answer == reference.answer

    # An empty staged delta still answers (and still in delta mode).
    third = peer.query(protocol)
    assert third.mode == "delta"
    assert third.answer == reference.answer


def test_replace_payload_is_a_delta(rng_seed=9):
    """Re-inserting a key with a new ext payload reaches the answer."""
    v_r, v_s = _tables("equijoin")
    cat_r = repro.open_catalog(v_r, bits=BITS, seed=1)
    cat_s = repro.open_catalog(v_s, bits=BITS, seed=2)
    peer = cat_r.pair(cat_s)
    assert peer.query("equijoin").answer["v6"] == b"ext(v6)"
    cat_s.insert("v6", b"updated")
    result = peer.query("equijoin")
    assert result.mode == "delta"
    assert result.answer["v6"] == b"updated"


# ----------------------------------------------------------------------
# Cache persistence through the API
# ----------------------------------------------------------------------
def test_cache_warm_start_and_rekey(tmp_path):
    v_r, v_s = _tables("intersection")

    def open_pair():
        cat_r = repro.open_catalog(
            v_r, bits=BITS, seed=1, cache_dir=tmp_path / "r"
        )
        cat_s = repro.open_catalog(
            v_s, bits=BITS, seed=2, cache_dir=tmp_path / "s"
        )
        return cat_r, cat_s

    cat_r, cat_s = open_pair()
    cold = cat_r.pair(cat_s).query("intersection")
    assert not cold.cache_hit

    # "Restart": fresh catalogs, same tables + seeds, warm cache.
    cat_r, cat_s = open_pair()
    peer = cat_r.pair(cat_s)
    warm = peer.query("intersection")
    assert warm.cache_hit
    assert warm.answer == cold.answer

    # A delta commit re-keys the entries to the mutated tables.
    cat_r.insert("zz")
    cat_s.insert("zz")
    delta = peer.query("intersection")
    assert delta.mode == "delta" and "zz" in delta.answer

    cat_r2 = repro.open_catalog(
        list(cat_r.data), bits=BITS, seed=1, cache_dir=tmp_path / "r"
    )
    cat_s2 = repro.open_catalog(
        list(cat_s.data), bits=BITS, seed=2, cache_dir=tmp_path / "s"
    )
    rewarmed = cat_r2.pair(cat_s2).query("intersection")
    assert rewarmed.cache_hit
    assert rewarmed.answer == delta.answer


def test_warm_start_is_wire_identical(tmp_path):
    """A cache-hit query must put the same bytes on the wire as the
    cold run it replays - warm starts are a pure compute shortcut."""
    v_r, v_s = _tables("intersection")

    def run_once(log):
        thread, ports, _ = _serve_recording("intersection", v_s, log)
        catalog = repro.open_catalog(
            v_r, rng=random.Random("R"), cache_dir=tmp_path / "r"
        )
        peer = catalog.connect(
            "127.0.0.1", port=ports[0], timeout=10.0, announce=False
        )
        result = peer.query("intersection")
        thread.join(timeout=10)
        return result

    cold_log, warm_log = [], []
    cold = run_once(cold_log)
    warm = run_once(warm_log)
    assert not cold.cache_hit and warm.cache_hit
    assert warm.answer == cold.answer
    assert warm_log == cold_log


# ----------------------------------------------------------------------
# Staging and mode errors
# ----------------------------------------------------------------------
class TestStagingAndModes:
    def test_delta_mode_without_state_raises(self):
        v_r, v_s = _tables("intersection")
        peer = repro.open_catalog(v_r, bits=BITS, seed=1).pair(
            repro.open_catalog(v_s, bits=BITS, seed=2)
        )
        with pytest.raises(ValueError, match="full"):
            peer.query("intersection", mode="delta")

    def test_querying_a_delta_spec_directly_raises(self):
        v_r, v_s = _tables("intersection")
        peer = repro.open_catalog(v_r, bits=BITS, seed=1).pair(
            repro.open_catalog(v_s, bits=BITS, seed=2)
        )
        with pytest.raises(ValueError, match="base protocol"):
            peer.query("intersection+delta")

    def test_unknown_mode_raises(self):
        v_r, v_s = _tables("intersection")
        peer = repro.open_catalog(v_r, bits=BITS, seed=1).pair(
            repro.open_catalog(v_s, bits=BITS, seed=2)
        )
        with pytest.raises(ValueError, match="mode"):
            peer.query("intersection", mode="incremental")

    def test_payload_insert_needs_mapping(self):
        catalog = repro.open_catalog(["a"], bits=BITS, seed=1)
        with pytest.raises(ValueError, match="mapping"):
            catalog.insert("b", b"payload")

    def test_delete_absent_raises(self):
        catalog = repro.open_catalog(["a"], bits=BITS, seed=1)
        with pytest.raises(ValueError):
            catalog.delete("zebra")
        mapping = repro.open_catalog({"a": 1}, bits=BITS, seed=1)
        with pytest.raises(KeyError):
            mapping.delete("zebra")

    def test_multiset_staging_counts_occurrences(self):
        v_r = ["a", "a", "b", "c"]
        v_s = ["a", "a", "a", "b"]
        cat_r = repro.open_catalog(v_r, bits=BITS, seed=1)
        cat_s = repro.open_catalog(v_s, bits=BITS, seed=2)
        peer = cat_r.pair(cat_s)
        first = peer.query("equijoin-size")
        assert first.answer == repro.run(
            "equijoin-size", v_r, v_s, bits=BITS, seed=3
        ).answer
        cat_s.delete("a")  # one occurrence
        cat_r.insert("c")
        second = peer.query("equijoin-size")
        assert second.mode == "delta"
        assert second.answer == repro.run(
            "equijoin-size", cat_r.data, cat_s.data, bits=BITS, seed=4
        ).answer

    def test_paired_params_must_match(self):
        other = PublicParams.for_bits(256)
        cat_r = repro.open_catalog(["a"], params=PARAMS, seed=1)
        cat_s = repro.open_catalog(["a"], params=other, seed=2)
        with pytest.raises(ValueError, match="params"):
            cat_r.pair(cat_s)

    def test_protocol_mismatch_over_tcp(self):
        v_r, v_s = _tables("intersection")
        cat_s = repro.open_catalog(v_s, bits=BITS, seed=1)
        server_peer = cat_s.serve(port=0, timeout=10.0)
        errors = {}

        def serve_thread():
            try:
                server_peer.query("equijoin-size")
            except ValueError as exc:
                errors["server"] = str(exc)

        thread = threading.Thread(target=serve_thread)
        thread.start()
        cat_r = repro.open_catalog(v_r, bits=BITS, seed=2)
        client = cat_r.connect(
            "127.0.0.1", port=server_peer.port, timeout=10.0
        )
        with pytest.raises(RuntimeError, match="refused"):
            client.query("intersection")
        thread.join(timeout=10)
        server_peer.close()
        assert "intersection" in errors["server"]

    def test_context_managers(self):
        v_r, v_s = _tables("intersection")
        with repro.open_catalog(v_r, bits=BITS, seed=1) as cat_r:
            with repro.open_catalog(v_s, bits=BITS, seed=2) as cat_s:
                with cat_r.pair(cat_s) as peer:
                    assert peer.query("intersection").mode == "full"
        assert not cat_r._links  # close() dropped the committed state


# ----------------------------------------------------------------------
# Session-layer catalog queries (reconnectable, journaled)
# ----------------------------------------------------------------------
def test_session_mode_full_then_delta(tmp_path):
    v_r, v_s = _tables("intersection")
    ready, staged = threading.Event(), threading.Event()
    cat_s = repro.open_catalog(v_s, bits=BITS, seed=8)
    server_peer = cat_s.serve(
        port=0,
        session=repro.SessionOptions(journal_dir=tmp_path / "s"),
        ready_callback=lambda p: ready.set(),
    )
    box = {}

    def serve_thread():
        box["first"] = server_peer.query("intersection")
        staged.wait(10)
        box["second"] = server_peer.query("intersection")

    thread = threading.Thread(target=serve_thread)
    thread.start()
    assert ready.wait(10)

    cat_r = repro.open_catalog(v_r, bits=BITS, seed=9)
    client = cat_r.connect(
        "127.0.0.1",
        port=server_peer.port,
        session=repro.SessionOptions(journal_dir=tmp_path / "r"),
    )
    first = client.query("intersection")
    assert first.mode == "full"
    assert first.stats is not None
    assert first.answer == set(v_r) & set(v_s)

    cat_r.insert("yy")
    cat_s.insert("yy")
    cat_s.delete("v17")
    staged.set()
    second = client.query("intersection")
    thread.join(timeout=30)

    assert second.mode == "delta"
    assert second.answer == set(cat_r.data) & set(cat_s.data)
    assert "yy" in second.answer
    assert box["second"].mode == "delta"
    assert box["second"].stats is not None
    assert box["first"].size_v_r == len(v_r)
