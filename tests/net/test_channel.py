"""Tests for accounted channels and the link model."""

from __future__ import annotations

import pytest

from repro.net.channel import (
    Channel,
    ChannelClosed,
    LinkModel,
    T1_LINE,
    duplex_pair,
)
from repro.net.serialization import encoded_size


class TestChannel:
    def test_fifo_order(self):
        ch = Channel()
        ch.send([1, 2])
        ch.send("second")
        assert ch.recv() == [1, 2]
        assert ch.recv() == "second"

    def test_byte_accounting_exact(self):
        ch = Channel()
        payloads = [[2**100, 2**100 + 1], "text", b"\x00" * 10]
        for p in payloads:
            ch.send(p)
        assert ch.bytes_sent == sum(encoded_size(p) for p in payloads)
        assert ch.bits_sent == 8 * ch.bytes_sent
        assert ch.messages_sent == 3

    def test_recv_empty_raises(self):
        with pytest.raises(ChannelClosed):
            Channel().recv()

    def test_send_after_close_raises(self):
        ch = Channel()
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.send(1)

    def test_pending(self):
        ch = Channel()
        assert ch.pending == 0
        ch.send(1)
        ch.send(2)
        assert ch.pending == 2
        ch.recv()
        assert ch.pending == 1

    def test_receiver_sees_serialized_copy(self):
        """No shared mutable state between the parties."""
        ch = Channel()
        original = [1, 2, 3]
        ch.send(original)
        original.append(4)
        assert ch.recv() == [1, 2, 3]


class TestDuplexPair:
    def test_cross_wiring(self):
        a, b = duplex_pair()
        a.send("from-a")
        b.send("from-b")
        assert b.recv() == "from-a"
        assert a.recv() == "from-b"

    def test_total_bytes_sums_both_directions(self):
        a, b = duplex_pair()
        a.send([1] * 10)
        b.send("x")
        assert a.total_bytes == a.bytes_sent + a.bytes_received
        assert a.total_bytes == b.total_bytes


class TestLinkModel:
    def test_t1_constant(self):
        assert T1_LINE.bandwidth_bps == pytest.approx(1.544e6)
        assert T1_LINE.latency_s == 0.0

    def test_transfer_time_bandwidth_only(self):
        link = LinkModel(bandwidth_bps=1e6)
        assert link.transfer_time(5e6) == pytest.approx(5.0)

    def test_transfer_time_with_latency(self):
        link = LinkModel(bandwidth_bps=1e6, latency_s=0.1)
        assert link.transfer_time(1e6, messages=3) == pytest.approx(1.3)

    def test_paper_t1_throughput_per_hour(self):
        """Section 6: T1 ~ 5 Gbits/hour."""
        bits_per_hour = T1_LINE.bandwidth_bps * 3600
        assert bits_per_hour == pytest.approx(5.56e9, rel=0.01)
