"""Tests for the protocol trace renderer."""

from __future__ import annotations

from repro.net.trace import render_run, render_view, summarize_payload
from repro.net.transcript import View
from repro.protocols.equijoin import run_equijoin
from repro.protocols.intersection import run_intersection


class TestSummarizePayload:
    def test_codeword_list(self):
        assert summarize_payload([1, 2, 3]) == "3 codewords"

    def test_pairs_and_triples(self):
        assert summarize_payload([(1, 2), (3, 4)]) == "2 pairs"
        assert summarize_payload([(1, 2, 3)]) == "1 triples"

    def test_wider_tuples(self):
        assert summarize_payload([(1, 2, 3, 4)]) == "1 4-tuples"

    def test_scalars(self):
        assert "bits" in summarize_payload(12345)
        assert summarize_payload(b"abc") == "3 bytes"
        assert summarize_payload("hey") == "string (3 chars)"

    def test_nested_tuple(self):
        out = summarize_payload(([1, 2], 7))
        assert "2 codewords" in out

    def test_mixed_list(self):
        assert summarize_payload([1, "x"]) == "list of 2"


class TestRenderRun:
    def test_intersection_diagram(self, suite):
        result = run_intersection(["a", "b"], ["b", "c", "d"], suite)
        text = render_run(result.run)
        assert "protocol: intersection" in text
        assert "3:Y_R" in text
        assert "4a:Y_S" in text
        assert "4b:pairs" in text
        assert "R ------------------------------> S" in text
        assert "R <------------------------------ S" in text
        assert "traffic:" in text

    def test_message_order_follows_steps(self, suite):
        result = run_intersection(["a"], ["b"], suite)
        text = render_run(result.run)
        assert text.index("3:Y_R") < text.index("4a:Y_S") < text.index("4b:pairs")

    def test_equijoin_diagram_has_triples(self, suite):
        result = run_equijoin(["a"], {"a": b"x", "b": b"y"}, suite)
        text = render_run(result.run)
        assert "triples" in text
        assert "pairs" in text

    def test_sizes_rendered(self, suite):
        result = run_intersection(["a"] * 1, ["b"], suite)
        text = render_run(result.run)
        assert " B)" in text or " kB)" in text


class TestRenderView:
    def test_lines_per_message(self):
        view = View(party="T", protocol="demo")
        view.record("step1", [1, 2])
        view.record("step2", b"xy")
        lines = render_view(view)
        assert len(lines) == 2
        assert "step1" in lines[0]
        assert "2 codewords" in lines[0]
