"""Unit tests for the on-disk encrypted-catalog cache.

The cache must behave like the session journal it mirrors: CRC-sealed
records, torn tails truncated on load, atomic re-keying, and every
byte written through the injectable :class:`JournalIO` seam so seeded
disk faults hit it too.
"""

from __future__ import annotations

import pytest

from repro.net.catalog import (
    CATALOG_MAGIC,
    CatalogCache,
    CatalogCacheError,
    table_digest,
)
from repro.net.diskfaults import DiskFaultPlan, FaultyJournalIO
from repro.protocols.parties import PublicParams

PARAMS = PublicParams.for_bits(128)
KEYS = (123456789,)
ENTRIES = {
    "alice": (11, (1111,)),
    "bob": (22, (2222,)),
    "carol": (33, (3333,)),
}
DIGEST = table_digest(["alice", "bob", "carol"])


def _store(cache, digest=DIGEST, entries=ENTRIES):
    return cache.store(digest, "intersection.r", PARAMS, KEYS, entries)


class TestTableDigest:
    def test_order_insensitive(self):
        assert table_digest(["a", "b"]) == table_digest(["b", "a"])

    def test_multiplicity_counts(self):
        assert table_digest(["a", "a", "b"]) != table_digest(["a", "b"])

    def test_mapping_digests_payloads(self):
        assert table_digest({"a": 1}) != table_digest({"a": 2})
        assert table_digest({"a": 1, "b": 2}) == table_digest(
            {"b": 2, "a": 1}
        )

    def test_mapping_and_sequence_differ(self):
        assert table_digest({"a": None}) != table_digest(["a"])


class TestRoundTrip:
    def test_store_then_lookup(self, tmp_path):
        cache = CatalogCache(tmp_path)
        stored = _store(cache)
        loaded = cache.lookup(DIGEST, "intersection.r")
        assert loaded is not None
        assert loaded.keys == KEYS
        assert loaded.entries == ENTRIES
        assert loaded.params == PARAMS
        assert loaded.fingerprint == stored.fingerprint

    def test_survives_reopen(self, tmp_path):
        _store(CatalogCache(tmp_path))
        loaded = CatalogCache(tmp_path).lookup(DIGEST, "intersection.r")
        assert loaded is not None and loaded.entries == ENTRIES

    def test_miss_returns_none(self, tmp_path):
        cache = CatalogCache(tmp_path)
        assert cache.lookup(DIGEST, "intersection.r") is None
        _store(cache)
        assert cache.lookup(DIGEST, "intersection.s") is None
        assert cache.lookup(table_digest(["x"]), "intersection.r") is None

    def test_party_cache_shape(self, tmp_path):
        cache = CatalogCache(tmp_path)
        _store(cache)
        pc = cache.lookup(DIGEST, "intersection.r").party_cache()
        assert pc.keys == KEYS
        assert pc.entries == ENTRIES


class TestAppendDelta:
    def test_folds_and_rekeys(self, tmp_path):
        cache = CatalogCache(tmp_path)
        entry = _store(cache)
        new_digest = table_digest(["alice", "carol", "dave"])
        updated = cache.append_delta(
            entry, new_digest, {"dave": (44, (4444,))}, ["bob"]
        )
        assert updated.entries == {
            "alice": (11, (1111,)),
            "carol": (33, (3333,)),
            "dave": (44, (4444,)),
        }
        # The old key is gone; the new one loads the folded entry.
        assert cache.lookup(DIGEST, "intersection.r") is None
        loaded = cache.lookup(new_digest, "intersection.r")
        assert loaded.entries == updated.entries

    def test_replace_same_value(self, tmp_path):
        cache = CatalogCache(tmp_path)
        entry = _store(cache)
        new_digest = table_digest(["replaced"])
        updated = cache.append_delta(
            entry, new_digest, {"alice": (99, (9999,))}, []
        )
        assert updated.entries["alice"] == (99, (9999,))


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        cache = CatalogCache(tmp_path)
        path = _store(cache).path
        path.write_bytes(b"XXXX" + path.read_bytes()[4:])
        with pytest.raises(CatalogCacheError):
            cache.lookup(DIGEST, "intersection.r")

    def test_corrupt_header_crc(self, tmp_path):
        cache = CatalogCache(tmp_path)
        path = _store(cache).path
        data = bytearray(path.read_bytes())
        data[len(CATALOG_MAGIC) + 8] ^= 0xFF  # flip a header byte
        path.write_bytes(bytes(data))
        with pytest.raises(CatalogCacheError):
            cache.lookup(DIGEST, "intersection.r")

    def test_torn_tail_truncated_and_served(self, tmp_path):
        cache = CatalogCache(tmp_path)
        path = _store(cache).path
        intact = path.read_bytes()
        path.write_bytes(intact + b"\x00\x00\x01\x00garbage")
        loaded = cache.lookup(DIGEST, "intersection.r")
        assert loaded is not None and loaded.entries == ENTRIES
        # The repair is durable: the torn bytes are gone from disk.
        assert path.read_bytes() == intact

    def test_foreign_keys_rejected(self, tmp_path):
        """An entry whose keys do not match its fingerprint is refused
        (cached ciphertexts must never replay under the wrong key)."""
        from repro.crypto.commutative import key_fingerprint
        from repro.net.catalog import _record

        cache = CatalogCache(tmp_path)
        path = _store(cache).path
        # A validly CRC-sealed header whose fingerprint names *other*
        # keys than the ones stored: the CRC passes, the key check
        # must not.
        path.write_bytes(
            CATALOG_MAGIC
            + _record((
                "header", DIGEST, "intersection.r", PARAMS.to_wire(),
                KEYS, key_fingerprint((987654321,), PARAMS.p),
            ))
        )
        with pytest.raises(CatalogCacheError):
            cache.lookup(DIGEST, "intersection.r")


class TestDiskFaults:
    def test_fsync_fault_surfaces(self, tmp_path):
        io = FaultyJournalIO(
            DiskFaultPlan(seed=1, fsync_error_rate=1.0, max_faults=1)
        )
        cache = CatalogCache(tmp_path, io=io)
        with pytest.raises(OSError):
            _store(cache)

    def test_torn_write_repaired_on_next_load(self, tmp_path):
        """A torn final write is exactly the crash the tail-scan
        repairs: the intact prefix (header + earlier adds) loads."""
        io = FaultyJournalIO(
            DiskFaultPlan(seed=2, torn_write_rate=1.0, max_faults=1, skip=4)
        )
        cache = CatalogCache(tmp_path, io=io, fsync=False)
        try:
            _store(cache)
        except OSError:
            pass
        # Whatever made it to disk must load cleanly or miss - never a
        # wrong answer.
        clean = CatalogCache(tmp_path)
        try:
            loaded = clean.lookup(DIGEST, "intersection.r")
        except CatalogCacheError:
            loaded = None
        if loaded is not None:
            for value, entry in loaded.entries.items():
                assert ENTRIES[value] == entry
