"""The streaming round pipeline: chunk framing, prefetch, memory bounds.

Covers the layers the million-item streaming path is built from:
the wire chunk frames (:mod:`repro.net.serialization`), the message
chunker/assembler (:mod:`repro.protocols.messages`), the double-buffer
(:mod:`repro.net.streaming`), and the end-to-end guarantee the whole
stack exists for - peak resident payload per round stays O(chunk_size)
on the plain TCP path, with the producer/consumer overlap visible in
the metrics report.
"""

from __future__ import annotations

import queue
import random
import threading
import time

import pytest

from repro.analysis.instrumentation import MetricsRecorder, PipelineStats
from repro.net import serialization, tcp
from repro.net.streaming import TimedIterator, prefetch
from repro.protocols.messages import (
    ChunkAssembler,
    CipherList,
    IntersectionReply,
    SizeReply,
    SumReply,
)
from repro.protocols.parties import PublicParams


# ----------------------------------------------------------------------
# Wire chunk frames
# ----------------------------------------------------------------------
class TestChunkFrames:
    def test_tags_round_trip_serialization(self):
        frame = serialization.chunk_frame(3, (0, "seg", [1, 2]))
        assert serialization.is_chunk_frame(frame)
        assert not serialization.is_chunk_end(frame)
        decoded = serialization.decode(serialization.encode(frame))
        assert serialization.is_chunk_frame(decoded)

    def test_fold_single_whole_round_frame(self):
        status, payload, used = serialization.fold_chunk_frames([[1, 2, 3]])
        assert (status, payload, used) == ("single", [1, 2, 3], 1)

    def test_fold_complete_chunk_run(self):
        frames = [
            serialization.chunk_frame(0, (0, "seg", [1])),
            serialization.chunk_frame(1, (0, "seg", [2])),
            serialization.chunk_end_frame(2),
        ]
        status, payloads, used = serialization.fold_chunk_frames(frames)
        assert status == "chunked"
        assert payloads == [(0, "seg", [1]), (0, "seg", [2])]
        assert used == 3

    def test_fold_partial_run_waits(self):
        frames = [serialization.chunk_frame(0, (0, "seg", [1]))]
        status, payload, used = serialization.fold_chunk_frames(frames)
        assert (status, payload, used) == ("partial", None, 0)

    def test_fold_count_mismatch_raises(self):
        frames = [
            serialization.chunk_frame(0, (0, "seg", [1])),
            serialization.chunk_end_frame(2),
        ]
        with pytest.raises(ValueError):
            serialization.fold_chunk_frames(frames)

    def test_fold_out_of_order_index_raises(self):
        frames = [
            serialization.chunk_frame(1, (0, "seg", [1])),
            serialization.chunk_end_frame(1),
        ]
        with pytest.raises(ValueError):
            serialization.fold_chunk_frames(frames)

    def test_fold_interleaved_whole_frame_raises(self):
        frames = [
            serialization.chunk_frame(0, (0, "seg", [1])),
            [9, 9, 9],
        ]
        with pytest.raises(ValueError):
            serialization.fold_chunk_frames(frames)

    def test_no_protocol_payload_collides_with_chunk_tags(self):
        """Auto-detection is safe: a whole-round wire payload is a
        tuple of *parts* (lists/tuples), never a tuple opening with the
        chunk tag strings."""
        for message in (
            CipherList(values=[1, 2]),
            IntersectionReply(y_s=[1], pairs=[[2, 3]]),
            SizeReply(y_s=[1], z_r=[2]),
        ):
            wire = message.to_wire()
            assert not serialization.is_chunk_frame(wire)
            assert not serialization.is_chunk_end(wire)


# ----------------------------------------------------------------------
# Message chunking / assembly
# ----------------------------------------------------------------------
class TestMessageChunking:
    @pytest.mark.parametrize("chunk_size", [1, 2, 1000])
    def test_round_trip_every_shape(self, chunk_size):
        messages = [
            CipherList(values=[10, 20, 30]),
            IntersectionReply(y_s=[1, 2, 3], pairs=[[4, 5], [6, 7]]),
            SizeReply(y_s=[1], z_r=[2, 3, 4]),
            SumReply(z_r_pk=([5, 6], 77), pairs=[[8, 9]]),
        ]
        for message in messages:
            payloads = list(message.to_wire_chunks(chunk_size))
            rebuilt = type(message).from_wire_chunks(payloads)
            assert rebuilt == message

    def test_empty_list_part_still_emits_a_chunk(self):
        payloads = list(CipherList(values=[]).to_wire_chunks(4))
        assert payloads == [(0, "seg", [])]
        assert CipherList.from_wire_chunks(payloads) == CipherList(values=[])

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError):
            list(CipherList(values=[1]).to_wire_chunks(0))

    def test_assembler_rejects_reopened_part(self):
        assembler = ChunkAssembler(IntersectionReply)
        assembler.add((0, "seg", [1]))
        assembler.add((1, "seg", [2]))
        with pytest.raises(ValueError):
            assembler.add((0, "seg", [3]))

    def test_sum_reply_requires_its_paillier_modulus(self):
        with pytest.raises(ValueError):
            SumReply.from_wire_chunks([(0, "seg", [1]), (1, "seg", [])])


# ----------------------------------------------------------------------
# The double buffer
# ----------------------------------------------------------------------
class TestPrefetch:
    def test_preserves_order(self):
        assert list(prefetch(iter(range(50)))) == list(range(50))

    def test_producer_exception_reaches_consumer(self):
        def faulty():
            yield 1
            raise RuntimeError("producer died")

        it = prefetch(faulty())
        assert next(it) == 1
        with pytest.raises(RuntimeError, match="producer died"):
            list(it)

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            next(prefetch(iter([1]), depth=0))

    def test_abandoned_consumer_stops_producer(self):
        produced = []

        def source():
            for i in range(10_000):
                produced.append(i)
                yield i

        it = prefetch(source(), depth=2)
        next(it)
        it.close()
        time.sleep(0.2)
        # The producer ran at most a few items ahead, then stopped.
        assert len(produced) < 50

    def test_production_overlaps_slow_consumption(self):
        """While the consumer sleeps on item k, the producer fills the
        buffer with k+1 - the wall clock beats the serial sum."""
        delay = 0.02
        n = 8

        def slow_source():
            for i in range(n):
                time.sleep(delay)
                yield i

        timed = TimedIterator(slow_source())
        start = time.perf_counter()
        for _ in prefetch(timed):
            time.sleep(delay)  # consumer-side work
        wall = time.perf_counter() - start
        serial = timed.elapsed_s + n * delay
        assert timed.items == n
        assert wall < serial * 0.9, (wall, serial)


class TestTimedIterator:
    def test_counts_items_and_time(self):
        timed = TimedIterator(iter([1, 2, 3]))
        assert list(timed) == [1, 2, 3]
        assert timed.items == 3
        assert timed.elapsed_s >= 0.0


# ----------------------------------------------------------------------
# Pipeline metrics
# ----------------------------------------------------------------------
class TestPipelineStats:
    def test_overlap_math(self):
        stats = PipelineStats(
            name="s.m2", produce_s=1.0, send_s=1.0, wall_s=1.5, chunks=10
        )
        assert stats.overlap_s == pytest.approx(0.5)
        assert stats.overlap_ratio == pytest.approx(0.5 / 1.5)

    def test_no_negative_overlap(self):
        stats = PipelineStats(
            name="s.m2", produce_s=0.1, send_s=0.1, wall_s=1.0, chunks=1
        )
        assert stats.overlap_s == 0.0
        assert stats.overlap_ratio == 0.0

    def test_recorder_accumulates_and_reports(self):
        recorder = MetricsRecorder()
        recorder.add_pipeline("s.m2", 0.5, 0.25, 0.6, chunks=3)
        recorder.add_pipeline("s.m2", 0.5, 0.25, 0.6, chunks=3)
        report = recorder.report()
        entry = report["pipeline"]["s.m2"]
        assert entry["chunks"] == 6
        assert entry["overlap_s"] == pytest.approx(1.5 - 1.2)

    def test_report_omits_pipeline_when_unused(self):
        assert "pipeline" not in MetricsRecorder().report()


# ----------------------------------------------------------------------
# End-to-end memory bound on the plain TCP path
# ----------------------------------------------------------------------
class _FrameSizeProbe:
    """Transport wrapper recording the encoded size of every frame."""

    def __init__(self, transport):
        self._transport = transport
        self.max_frame = 0

    def _observe(self, message):
        self.max_frame = max(
            self.max_frame, serialization.encoded_size(message)
        )

    def send(self, message):
        self._observe(message)
        self._transport.send(message)

    def recv(self):
        message = self._transport.recv()
        self._observe(message)
        return message

    def settimeout(self, timeout):
        self._transport.settimeout(timeout)

    def close(self):
        self._transport.close()


def _probe_run(v_r, v_s, chunk_size):
    params = PublicParams.for_bits(64)
    port_box: queue.Queue[int] = queue.Queue()
    probes = []

    def serve_s():
        tcp.serve(
            "intersection", v_s, params, random.Random("s"),
            ready_callback=port_box.put, chunk_size=chunk_size,
        )

    thread = threading.Thread(target=serve_s)
    thread.start()
    port = port_box.get(timeout=10)

    def wrap(endpoint):
        probe = _FrameSizeProbe(endpoint)
        probes.append(probe)
        return probe

    answer = tcp.connect(
        "intersection", v_r, random.Random("r"), "127.0.0.1", port,
        chunk_size=chunk_size, endpoint_wrapper=wrap,
    )
    thread.join(timeout=10)
    return answer, probes[0].max_frame


class TestPayloadStaysChunkSized:
    def test_peak_frame_is_o_chunk_size_not_o_n(self):
        """The point of streaming: with n items and chunk size c, no
        frame on the plain TCP path ever holds more than O(c) payload -
        the per-round resident buffer no longer scales with n."""
        n, c = 192, 8
        v_r = [f"r{i}" for i in range(n)]
        v_s = [f"s{i}" for i in range(n // 2)] + v_r[: n // 2]

        whole_answer, whole_peak = _probe_run(v_r, v_s, chunk_size=None)
        chunked_answer, chunked_peak = _probe_run(v_r, v_s, chunk_size=c)

        assert chunked_answer == whole_answer
        # Generous constant: a chunk frame carries c elements plus tag
        # overhead, so (c+4)/n of the whole-round frame bounds it.
        assert chunked_peak < whole_peak * (c + 4) / n, (
            chunked_peak, whole_peak
        )

    def test_chunk_size_one_is_the_tightest_stream(self):
        n = 48
        v_r = [f"r{i}" for i in range(n)]
        v_s = v_r[: n // 2]
        answer, peak_one = _probe_run(v_r, v_s, chunk_size=1)
        _, peak_four = _probe_run(v_r, v_s, chunk_size=4)
        assert answer == set(v_s)
        assert peak_one <= peak_four
