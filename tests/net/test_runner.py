"""Tests for the protocol run orchestration."""

from __future__ import annotations

import pytest

from repro.net.channel import LinkModel
from repro.net.runner import ProtocolRun, ThreePartyRun
from repro.net.serialization import encoded_size


class TestProtocolRun:
    def test_message_movement_and_views(self):
        run = ProtocolRun(protocol="demo")
        got = run.to_s("1:msg", [1, 2, 3])
        assert got == [1, 2, 3]
        got = run.to_r("2:msg", "reply")
        assert got == "reply"
        assert [m.step for m in run.s_view.received] == ["1:msg"]
        assert [m.step for m in run.r_view.received] == ["2:msg"]

    def test_byte_accounting_by_direction(self):
        run = ProtocolRun(protocol="demo")
        a = [2**100] * 4
        b = [2**100] * 7
        run.to_s("x", a)
        run.to_r("y", b)
        assert run.bytes_r_to_s == encoded_size(a)
        assert run.bytes_s_to_r == encoded_size(b)
        assert run.total_bytes == encoded_size(a) + encoded_size(b)
        assert run.total_bits == 8 * run.total_bytes

    def test_elapsed_and_finish(self):
        run = ProtocolRun(protocol="demo")
        assert run.elapsed_s >= 0
        run.finish()
        frozen = run.elapsed_s
        assert run.elapsed_s == frozen

    def test_transfer_time_uses_link(self):
        run = ProtocolRun(protocol="demo")
        run.to_s("x", [1])
        link = LinkModel(bandwidth_bps=8.0)  # one byte per second
        assert run.transfer_time(link) == pytest.approx(run.total_bytes)

    def test_views_labelled_by_party(self):
        run = ProtocolRun(protocol="demo")
        assert run.r_view.party == "R"
        assert run.s_view.party == "S"
        assert run.r_view.protocol == "demo"


class TestThreePartyRun:
    def test_t_receives_from_both(self):
        run = ThreePartyRun(protocol="medical")
        run.r_sends_t("zs", [1, 2])
        run.s_sends_t("zr", [3])
        steps = [m.step for m in run.t_view.received]
        assert steps == ["zs", "zr"]

    def test_total_bytes_includes_all_links(self):
        run = ThreePartyRun(protocol="medical")
        run.r_to_s.to_s("a", [1] * 5)
        run.r_sends_t("b", [2] * 3)
        run.s_sends_t("c", [3] * 2)
        expected = (
            encoded_size([1] * 5) + encoded_size([2] * 3) + encoded_size([3] * 2)
        )
        assert run.total_bytes == expected
        assert run.total_bits == 8 * expected
