"""The deprecated ``serve_*``/``connect_*`` shims are gone for good.

They were deprecated (warn-once delegations to the generic
``serve``/``connect``) and have now been removed; the supported
networked entry points are the one-call facade ``repro.serve`` /
``repro.connect`` plus the generic drivers in :mod:`repro.net.tcp`.
These tests pin the removal - the names must not quietly come back -
and prove the facade produces wire transcripts identical to the
generic drivers it fronts.
"""

from __future__ import annotations

import random
import threading

import pytest

import repro
from repro.net import tcp
from repro.protocols.parties import PublicParams

BITS = 128
N = 12

REMOVED_SHIMS = [
    "serve_intersection_sender",
    "connect_intersection_receiver",
    "serve_intersection_size_sender",
    "connect_intersection_size_receiver",
    "serve_equijoin_sender",
    "connect_equijoin_receiver",
    "serve_equijoin_size_sender",
    "connect_equijoin_size_receiver",
]


@pytest.mark.parametrize("name", REMOVED_SHIMS)
def test_shim_is_removed(name):
    assert not hasattr(tcp, name), f"removed shim {name} reappeared"
    assert name not in tcp.__all__
    import repro.net as net

    assert not hasattr(net, name)
    assert name not in net.__all__


def test_generic_pair_is_the_exported_surface():
    for name in ("serve", "connect", "serve_resumable_sender",
                 "connect_resumable_receiver"):
        assert name in tcp.__all__
        assert callable(getattr(tcp, name))


# ----------------------------------------------------------------------
# Facade parity: repro.serve/connect vs the generic drivers (sockets)
# ----------------------------------------------------------------------
class _RecordingTransport:
    """Wraps a framed transport; logs every message in arrival order."""

    def __init__(self, transport, log):
        self._transport = transport
        self.log = log

    def send(self, message):
        self.log.append(("sent", message))
        self._transport.send(message)

    def recv(self):
        message = self._transport.recv()
        self.log.append(("received", message))
        return message

    def settimeout(self, timeout):
        self._transport.settimeout(timeout)

    def close(self):
        self._transport.close()


def _values():
    half = N // 2
    v_r = [f"r{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    return v_r, v_s


def _run_generic(protocol, log, chunk_size):
    v_r, v_s = _values()
    params = PublicParams.for_bits(BITS)
    port_box, ready = [], threading.Event()
    result_box = {}

    def serve_thread():
        result_box["size_v_r"] = tcp.serve(
            protocol, v_s, params, random.Random("S"),
            ready_callback=lambda p: (port_box.append(p), ready.set()),
            timeout=10.0, chunk_size=chunk_size,
        )

    thread = threading.Thread(target=serve_thread)
    thread.start()
    assert ready.wait(timeout=10)
    answer = tcp.connect(
        protocol, v_r, random.Random("R"), "127.0.0.1", port_box[0],
        timeout=10.0, chunk_size=chunk_size,
        endpoint_wrapper=lambda e: _RecordingTransport(e, log),
    )
    thread.join(timeout=10)
    assert not thread.is_alive()
    return answer, result_box["size_v_r"]


def _run_facade(protocol, log, chunk_size):
    v_r, v_s = _values()
    port_box, ready = [], threading.Event()
    result_box = {}

    def serve_thread():
        result_box["serve"] = repro.serve(
            protocol, v_s, bits=BITS, rng=random.Random("S"),
            ready_callback=lambda p: (port_box.append(p), ready.set()),
            timeout=10.0, chunk_size=chunk_size,
        )

    thread = threading.Thread(target=serve_thread)
    thread.start()
    assert ready.wait(timeout=10)
    # The facade drives the same generic machinery, so an
    # endpoint-wrapper hook is reachable through repro.net.tcp.connect;
    # the facade's own connect is exercised for the answer.
    answer = tcp.connect(
        protocol, v_r, random.Random("R"), "127.0.0.1", port_box[0],
        timeout=10.0, chunk_size=chunk_size,
        endpoint_wrapper=lambda e: _RecordingTransport(e, log),
    )
    thread.join(timeout=10)
    assert not thread.is_alive()
    return answer, result_box["serve"]


@pytest.mark.parametrize("chunk_size", [None, 3])
@pytest.mark.parametrize("protocol", ["intersection", "equijoin-size"])
def test_facade_transcripts_match_generic_pair(protocol, chunk_size):
    """Same seeds -> the facade server's wire transcript is
    byte-identical to the generic driver's, chunked or not."""
    generic_log, facade_log = [], []
    generic_answer, generic_size = _run_generic(
        protocol, generic_log, chunk_size
    )
    facade_answer, serve_result = _run_facade(
        protocol, facade_log, chunk_size
    )
    assert facade_log == generic_log
    assert facade_answer == generic_answer
    assert serve_result.size_v_r == generic_size
    assert serve_result.port != 0


def test_facade_run_matches_networked_answer():
    v_r, v_s = _values()
    log = []
    networked, _ = _run_generic("intersection", log, None)
    in_memory = repro.run("intersection", v_r, v_s, bits=BITS, seed=0)
    assert in_memory.answer == networked
    assert in_memory.size_v_r == len(set(v_r))
    assert in_memory.size_v_s == len(set(v_s))
