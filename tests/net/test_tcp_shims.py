"""The eight deprecated ``serve_*``/``connect_*`` shims in ``net.tcp``.

Two contracts: each shim emits ``DeprecationWarning`` exactly once per
process no matter how often it is called, and each produces a wire
transcript (and answer) identical to the generic ``serve``/``connect``
pair it delegates to.
"""

from __future__ import annotations

import random
import threading
import warnings

import pytest

from repro.net import tcp
from repro.protocols.parties import PublicParams

BITS = 128
N = 12

SHIM_PAIRS = [
    ("serve_intersection_sender", "connect_intersection_receiver",
     "intersection"),
    ("serve_intersection_size_sender", "connect_intersection_size_receiver",
     "intersection-size"),
    ("serve_equijoin_sender", "connect_equijoin_receiver", "equijoin"),
    ("serve_equijoin_size_sender", "connect_equijoin_size_receiver",
     "equijoin-size"),
]


def _values():
    half = N // 2
    v_r = [f"r{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    return v_r, v_s


def _sender_data(protocol):
    _, v_s = _values()
    if protocol == "equijoin":
        return {v: f"payload:{v}".encode() for v in v_s}
    if protocol == "equijoin-size":
        return v_s + v_s[:3]
    return v_s


class _RecordingTransport:
    """Wraps a framed transport; logs every message in arrival order."""

    def __init__(self, transport, log):
        self._transport = transport
        self.log = log

    def send(self, message):
        self.log.append(("sent", message))
        self._transport.send(message)

    def recv(self):
        message = self._transport.recv()
        self.log.append(("received", message))
        return message

    def settimeout(self, timeout):
        self._transport.settimeout(timeout)

    def close(self):
        self._transport.close()


# ----------------------------------------------------------------------
# Warn-once behavior (serve/connect stubbed out: no sockets needed)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("serve_name,connect_name,protocol", SHIM_PAIRS)
def test_shims_warn_exactly_once(serve_name, connect_name, protocol,
                                 monkeypatch):
    monkeypatch.setattr(tcp, "serve", lambda *a, **k: 0)
    monkeypatch.setattr(tcp, "connect", lambda *a, **k: [])
    monkeypatch.setattr(tcp, "_DEPRECATION_WARNED", set())
    serve_shim = getattr(tcp, serve_name)
    connect_shim = getattr(tcp, connect_name)
    params = PublicParams.for_bits(BITS)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for _ in range(3):
            serve_shim([], params, random.Random(0))
            connect_shim([], random.Random(0), "127.0.0.1", 1)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 2  # one per shim, not one per call
    messages = sorted(str(w.message) for w in deprecations)
    assert any(serve_name in m for m in messages), messages
    assert any(connect_name in m for m in messages), messages
    assert all("deprecated" in m for m in messages)


def test_warn_once_guard_spans_all_shims(monkeypatch):
    monkeypatch.setattr(tcp, "serve", lambda *a, **k: 0)
    monkeypatch.setattr(tcp, "connect", lambda *a, **k: [])
    monkeypatch.setattr(tcp, "_DEPRECATION_WARNED", set())
    params = PublicParams.for_bits(BITS)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for serve_name, connect_name, _ in SHIM_PAIRS:
            for _ in range(2):
                getattr(tcp, serve_name)([], params, random.Random(0))
                getattr(tcp, connect_name)(
                    [], random.Random(0), "127.0.0.1", 1
                )
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == len(SHIM_PAIRS) * 2  # all 8 shims, once each


# ----------------------------------------------------------------------
# Transcript identity vs the generic pair (real sockets)
# ----------------------------------------------------------------------
def _run_generic(protocol, log):
    v_r, _ = _values()
    params = PublicParams.for_bits(BITS)
    port_box, ready = [], threading.Event()
    result_box = {}

    def serve_thread():
        result_box["size_v_r"] = tcp.serve(
            protocol, _sender_data(protocol), params, random.Random("S"),
            ready_callback=lambda p: (port_box.append(p), ready.set()),
            timeout=10.0,
        )

    thread = threading.Thread(target=serve_thread)
    thread.start()
    assert ready.wait(timeout=10)
    receiver_data = v_r + v_r[:5] if protocol == "equijoin-size" else v_r
    answer = tcp.connect(
        protocol, receiver_data, random.Random("R"), "127.0.0.1", port_box[0],
        timeout=10.0,
        endpoint_wrapper=lambda e: _RecordingTransport(e, log),
    )
    thread.join(timeout=10)
    assert not thread.is_alive()
    return answer, result_box["size_v_r"]


def _run_shim(serve_name, connect_name, protocol, log):
    v_r, _ = _values()
    params = PublicParams.for_bits(BITS)
    port_box, ready = [], threading.Event()
    result_box = {}

    def serve_thread():
        result_box["size_v_r"] = getattr(tcp, serve_name)(
            _sender_data(protocol), params, random.Random("S"),
            ready_callback=lambda p: (port_box.append(p), ready.set()),
            timeout=10.0,
        )

    thread = threading.Thread(target=serve_thread)
    thread.start()
    assert ready.wait(timeout=10)
    receiver_data = v_r + v_r[:5] if protocol == "equijoin-size" else v_r
    answer = getattr(tcp, connect_name)(
        receiver_data, random.Random("R"), "127.0.0.1", port_box[0],
        timeout=10.0,
        endpoint_wrapper=lambda e: _RecordingTransport(e, log),
    )
    thread.join(timeout=10)
    assert not thread.is_alive()
    return answer, result_box["size_v_r"]


@pytest.mark.parametrize("serve_name,connect_name,protocol", SHIM_PAIRS)
def test_shim_transcripts_match_generic_pair(serve_name, connect_name,
                                             protocol):
    generic_log, shim_log = [], []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        generic_answer, generic_size = _run_generic(protocol, generic_log)
        shim_answer, shim_size = _run_shim(
            serve_name, connect_name, protocol, shim_log
        )
    assert shim_log == generic_log, (
        f"{serve_name}/{connect_name} transcript diverges from the "
        "generic serve/connect pair"
    )
    # The intersection shim post-processes the answer into a set.
    expected = (
        set(generic_answer) if protocol == "intersection" else generic_answer
    )
    assert shim_answer == expected
    assert shim_size == generic_size
