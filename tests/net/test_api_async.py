"""The facade's async serving and busy-retry surface (``repro.api``).

``repro.serve(async_=True)`` hosts the one-session run on the
event-loop server; ``repro.connect(retry_busy=N)`` waits out typed
busy refusals with the server's own retry hint (jittered upward,
never earlier). Both must compose with the plain facade paths and
return the same typed results.
"""

from __future__ import annotations

import random
import socket
import threading

import pytest

import repro
from repro.net import tcp
from repro.net.server import ProtocolServer
from repro.net.session import (
    SESSION_VERSION,
    RetryPolicy,
    SessionConfig,
    seal,
)
from repro.protocols.parties import PublicParams

BITS = 128


@pytest.fixture(scope="module")
def params():
    return PublicParams.for_bits(BITS)


def _config(timeout_s=5.0):
    return SessionConfig(
        timeout_s=timeout_s,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.02, max_delay_s=0.1),
        max_reconnects=4,
        fin_grace_s=0.05,
    )


class TestServeAsync:
    def test_one_session_round_trip(self):
        v_r, v_s = ["a", "b", "c", "d"], ["b", "c", "x"]
        port_ready = threading.Event()
        bound, result = {}, {}

        def serve():
            result["serve"] = repro.serve(
                "intersection", v_s, bits=BITS, seed=1, async_=True,
                ready_callback=lambda p: (bound.update(port=p),
                                          port_ready.set()),
                config=_config(),
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert port_ready.wait(10)
        connected = repro.connect(
            "intersection", v_r, seed=2, port=bound["port"],
            resumable=True, config=_config(),
        )
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert sorted(connected.answer) == ["b", "c"]
        assert connected.busy_retries == 0
        serve_result = result["serve"]
        assert serve_result.port == bound["port"] != 0
        assert serve_result.size_v_r == len(set(v_r))
        assert serve_result.stats.frames_sent > 0

    def test_journaled_async_serve_rotates_the_journal(self, tmp_path):
        v_r, v_s = ["a", "b"], ["b", "z"]
        port_ready = threading.Event()
        bound = {}

        def serve():
            repro.serve(
                "intersection", v_s, bits=BITS, seed=3, async_=True,
                journal_dir=tmp_path,
                ready_callback=lambda p: (bound.update(port=p),
                                          port_ready.set()),
                config=_config(),
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert port_ready.wait(10)
        connected = repro.connect(
            "intersection", v_r, seed=4, port=bound["port"],
            resumable=True, config=_config(),
        )
        thread.join(timeout=15)
        assert sorted(connected.answer) == ["b"]
        assert list(tmp_path.glob("*.wal")) == []
        assert len(list(tmp_path.glob("sender-intersection-*.done"))) == 1


class TestConnectRetryBusy:
    def test_waits_out_busy_and_lands_when_the_slot_frees(self, params):
        """A full 1-slot server refuses with a hint; ``retry_busy``
        keeps redialing and succeeds once the reaper frees the slot."""
        server = ProtocolServer(
            {"intersection": (["b", "c", "x"], params)},
            config=_config(),
            max_sessions=1,
            busy_retry_hint_s=0.05,
            idle_timeout_s=0.4,
        )
        with server:
            # Occupy the only slot: valid hello, then silence.
            sock = socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            )
            holder = tcp.SocketEndpoint(sock=sock)
            holder.send(
                seal("hello", SESSION_VERSION, "intersection", 77, 0, 0)
            )
            connected = repro.connect(
                "intersection", ["a", "b", "c"], seed=5, port=server.port,
                resumable=True, config=_config(), retry_busy=40,
            )
            holder.close()
        assert sorted(connected.answer) == ["b", "c"]
        assert connected.busy_retries >= 1


class TestConnectUnifiedRetry:
    """``repro.connect(retry=...)``: the unified policy surface."""

    def test_retry_and_retry_busy_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            repro.connect(
                "intersection", ["a"], port=1,
                retry="attempts=2", retry_busy=3,
            )

    def test_policy_spec_string_connects_and_counts_attempts(self, params):
        server = ProtocolServer(
            {"intersection": (["b", "c", "x"], params)},
            config=_config(),
        )
        with server:
            connected = repro.connect(
                "intersection", ["a", "b", "c"], seed=5, port=server.port,
                resumable=True, retry="attempts=4,timeout=5,base=0.02",
            )
        assert sorted(connected.answer) == ["b", "c"]
        assert connected.retries == 0  # first attempt landed
        assert connected.busy_retries == 0

    def test_policy_waits_out_busy_and_lands(self, params):
        """Same shape as the legacy retry_busy test, driven by the
        unified policy: the full 1-slot server refuses with a hint and
        the policy redials until the reaper frees the slot."""
        from repro.net.session import ClientRetryPolicy

        server = ProtocolServer(
            {"intersection": (["b", "c", "x"], params)},
            config=_config(),
            max_sessions=1,
            busy_retry_hint_s=0.05,
            idle_timeout_s=0.4,
        )
        with server:
            sock = socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            )
            holder = tcp.SocketEndpoint(sock=sock)
            holder.send(
                seal("hello", SESSION_VERSION, "intersection", 77, 0, 0)
            )
            connected = repro.connect(
                "intersection", ["a", "b", "c"], seed=5, port=server.port,
                resumable=True, config=_config(),
                retry=ClientRetryPolicy(
                    max_attempts=40, base_delay_s=0.02, max_delay_s=0.2
                ),
            )
            holder.close()
        assert sorted(connected.answer) == ["b", "c"]
        assert connected.busy_retries >= 1
        assert connected.retries >= 1

    def test_policy_with_busy_off_fails_fast(self, params):
        from repro.net.session import ServerBusyError

        server = ProtocolServer(
            {"intersection": (["b", "c", "x"], params)},
            config=_config(),
        )
        with server:
            server._draining.set()
            with pytest.raises(ServerBusyError):
                repro.connect(
                    "intersection", ["a", "b"], seed=5, port=server.port,
                    resumable=True, retry="busy=no,timeout=2",
                )
