"""The registry is the only integration point a new protocol needs.

``equijoin-sum`` was added to :data:`repro.protocols.spec.PROTOCOLS`
without touching :mod:`repro.net.tcp`, :mod:`repro.net.session` or the
CLI dispatch tables. These smoke tests prove the generic drivers pick
it up by name - over plain TCP and over a resumable session - and that
no bespoke helper for it exists anywhere in the net layer.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.net import tcp
from repro.net.session import RetryPolicy, SessionConfig
from repro.protocols.parties import PublicParams
from repro.protocols.spec import PROTOCOLS

AMOUNTS = {"apple": 5, "pear": 7, "plum": 11, "quince": 13}
V_R = ["apple", "plum", "cherry", "fig"]
EXPECTED_TOTAL = AMOUNTS["apple"] + AMOUNTS["plum"]


@pytest.fixture(scope="module")
def params():
    return PublicParams.for_bits(128)


def test_equijoin_sum_is_registry_only():
    assert "equijoin-sum" in PROTOCOLS
    assert "equijoin-sum" in tcp.SESSION_PROTOCOLS
    bespoke = [name for name in dir(tcp) if "equijoin_sum" in name.lower()]
    assert bespoke == [], f"unexpected bespoke equijoin-sum helpers: {bespoke}"


def test_equijoin_sum_over_plain_tcp(params):
    port_box: list[int] = []
    ready = threading.Event()
    result: dict = {}

    def serve():
        result["size_v_r"] = tcp.serve(
            "equijoin-sum", AMOUNTS, params, random.Random(7),
            ready_callback=lambda port: (port_box.append(port), ready.set()),
            timeout=10.0,
        )

    thread = threading.Thread(target=serve)
    thread.start()
    assert ready.wait(timeout=10)
    total = tcp.connect(
        "equijoin-sum", V_R, random.Random(11), "127.0.0.1", port_box[0],
        timeout=10.0,
    )
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert total == EXPECTED_TOTAL
    assert result["size_v_r"] == len(V_R)


def test_equijoin_sum_over_resumable_session(params):
    config = SessionConfig(
        timeout_s=2.0,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05),
        max_reconnects=2,
        fin_grace_s=0.05,
    )
    port_box: list[int] = []
    ready = threading.Event()
    result: dict = {}

    def serve():
        result["run"] = tcp.serve_resumable_sender(
            "equijoin-sum", AMOUNTS, params, random.Random(7),
            ready_callback=lambda port: (port_box.append(port), ready.set()),
            config=config,
        )

    thread = threading.Thread(target=serve)
    thread.start()
    assert ready.wait(timeout=10)
    total, stats = tcp.connect_resumable_receiver(
        "equijoin-sum", V_R, random.Random(11), "127.0.0.1", port_box[0],
        config=config,
    )
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert total == EXPECTED_TOTAL
    size_v_r, sender_stats = result["run"]
    assert size_v_r == len(V_R)
    assert stats.reconnects == 0
    spec = PROTOCOLS["equijoin-sum"]
    assert sender_stats.rounds_computed == sum(
        1 for rnd in spec.rounds if rnd.source == "S"
    )
