"""Adversarial-bytes fuzzing for the frame codecs.

A seeded generator mutates valid frames - truncation, bit flips, huge
length prefixes, random garbage, hostile nesting - and feeds them to
``session.unseal``, ``serialization.decode`` and the TCP framing
codec. The contract under attack: every malformed input yields a clean
``ValueError``/``SessionError``/``FrameTooLarge``/``ConnectionError``/
``TimeoutError``, never another exception type, a hang, or an
allocation beyond the frame bound.
"""

from __future__ import annotations

import random
import socket
import struct

import pytest

from repro.net import serialization
from repro.net.session import SESSION_VERSION, SessionError, seal, unseal
from repro.net.tcp import FrameTooLarge, SocketEndpoint

SEED = 0xC0FFEE
ROUNDS = 300

#: The full set of outcomes a hostile frame is allowed to produce.
CLEAN_FAILURES = (ValueError, SessionError, FrameTooLarge,
                  ConnectionError, TimeoutError)


def _sample_frames():
    """Valid sealed frames of every tag the session layer speaks."""
    return [
        seal("hello", SESSION_VERSION, "intersection", 12345, 0, 0),
        seal("welcome", SESSION_VERSION, "intersection", 12345,
             (1, 2, b"x"), 0),
        seal("reject", SESSION_VERSION, "go away"),
        seal("busy", SESSION_VERSION, "at capacity"),
        seal("msg", 0, serialization.encode(["payload", 42, b"\x00" * 40])),
        seal("ack", 3),
        seal("nak", -1),
        seal("fin", 12345),
    ]


def _mutate_value(rng: random.Random):
    """One adversarial replacement for a single frame field."""
    choice = rng.randrange(8)
    if choice == 0:
        return rng.getrandbits(rng.randrange(1, 128))
    if choice == 1:
        return -rng.getrandbits(64)
    if choice == 2:
        return bytes(rng.getrandbits(8) for _ in range(rng.randrange(64)))
    if choice == 3:
        return "x" * rng.randrange(64)
    if choice == 4:
        return None
    if choice == 5:
        return [rng.getrandbits(8) for _ in range(rng.randrange(8))]
    if choice == 6:
        return {"not": "encodable"}  # dicts are outside the wire format
    return float(rng.random())  # floats too


def _mutate_frame(rng: random.Random, frame: tuple):
    """A corrupted variant of one valid sealed frame."""
    fields = list(frame)
    op = rng.randrange(6)
    if op == 0 and len(fields) > 1:  # truncate
        del fields[rng.randrange(len(fields)) :]
    elif op == 1:  # replace one field
        fields[rng.randrange(len(fields))] = _mutate_value(rng)
    elif op == 2:  # flip bits in the crc
        fields[-1] = fields[-1] ^ (1 << rng.randrange(32))
    elif op == 3:  # duplicate-extend
        fields.extend(fields[: rng.randrange(1, len(fields) + 1)])
    elif op == 4:  # not a tuple at all
        return _mutate_value(rng)
    else:  # garbage tag
        fields[0] = _mutate_value(rng)
    return tuple(fields)


def test_unseal_survives_mutated_frames():
    rng = random.Random(SEED)
    frames = _sample_frames()
    rejected = 0
    for _ in range(ROUNDS):
        mutated = _mutate_frame(rng, rng.choice(frames))
        try:
            fields = unseal(mutated)
        except CLEAN_FAILURES:
            rejected += 1
        else:
            # A mutation may cancel out (e.g. duplicate-extend then
            # truncate back); anything accepted must round-trip its seal.
            assert unseal(seal(*fields)) == fields
    assert rejected > ROUNDS // 2  # the generator does corrupt frames


def test_unseal_rejects_primitive_garbage():
    rng = random.Random(SEED + 1)
    for _ in range(ROUNDS):
        with pytest.raises(CLEAN_FAILURES):
            unseal(_mutate_value(rng))


def test_decode_survives_random_bytes():
    rng = random.Random(SEED + 2)
    for _ in range(ROUNDS):
        blob = bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 256)))
        try:
            serialization.decode(blob)
        except ValueError:
            pass  # the only permitted failure


def test_decode_survives_bitflipped_valid_payloads():
    rng = random.Random(SEED + 3)
    valid = serialization.encode(
        ["round", 7, b"\xde\xad" * 16, ("nested", [1, 2, 3], None, True)]
    )
    for _ in range(ROUNDS):
        blob = bytearray(valid)
        for _ in range(rng.randrange(1, 4)):
            blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
        try:
            serialization.decode(bytes(blob))
        except ValueError:
            pass  # flips may still decode to a different message: fine


def test_decode_hostile_count_is_bounded_by_payload():
    # A list header claiming 2**32 - 1 items must fail fast on the
    # missing items instead of allocating for the claimed count.
    blob = b"L" + struct.pack(">I", 2**32 - 1) + b"N" * 8
    with pytest.raises(ValueError):
        serialization.decode(blob)


def _framed_endpoint_pair(max_frame_bytes=4096):
    left, right = socket.socketpair()
    left.settimeout(1.0)
    right.settimeout(1.0)
    return (
        left,
        SocketEndpoint(sock=right, max_frame_bytes=max_frame_bytes),
    )


def test_framing_rejects_huge_length_prefix_without_allocating():
    raw, endpoint = _framed_endpoint_pair(max_frame_bytes=4096)
    try:
        raw.sendall(struct.pack(">I", 2**31) + b"junk")
        with pytest.raises(FrameTooLarge):
            endpoint.recv()
    finally:
        raw.close()
        endpoint.close()


def test_framing_survives_adversarial_streams():
    rng = random.Random(SEED + 4)
    valid_payload = serialization.encode(seal("ack", 1))
    for _ in range(60):
        raw, endpoint = _framed_endpoint_pair(max_frame_bytes=4096)
        try:
            op = rng.randrange(4)
            if op == 0:  # pure garbage
                blob = bytes(
                    rng.getrandbits(8) for _ in range(rng.randrange(1, 64))
                )
            elif op == 1:  # truncated valid frame
                frame = struct.pack(">I", len(valid_payload)) + valid_payload
                blob = frame[: rng.randrange(1, len(frame))]
            elif op == 2:  # valid length, corrupted payload
                payload = bytearray(valid_payload)
                payload[rng.randrange(len(payload))] ^= 0xFF
                blob = struct.pack(">I", len(payload)) + bytes(payload)
            else:  # length prefix over the bound
                blob = struct.pack(
                    ">I", 4097 + rng.randrange(2**20)
                ) + b"\x00" * 8
            raw.sendall(blob)
            if op != 2:
                raw.close()  # truncation: let recv hit EOF, not a timeout
            try:
                message = endpoint.recv()
            except CLEAN_FAILURES:
                continue
            # A frame that decodes must still fail the session seal if
            # its bytes were corrupted.
            if op == 2:
                with pytest.raises(CLEAN_FAILURES):
                    unseal(message)
        finally:
            raw.close()
            endpoint.close()
