"""Tests for the TCP transport: protocols across a real socket."""

from __future__ import annotations

import queue
import random
import socket
import threading

import pytest

import struct

from repro.net.serialization import encode
from repro.net.tcp import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameTooLarge,
    SocketEndpoint,
    connect,
    serve,
)
from repro.protocols.parties import PublicParams


def _socket_pair():
    a, b = socket.socketpair()
    return SocketEndpoint(sock=a), SocketEndpoint(sock=b)


class TestSocketEndpoint:
    def test_round_trip(self):
        a, b = _socket_pair()
        a.send([1, "two", b"\x00three"])
        assert b.recv() == [1, "two", b"\x00three"]
        a.close()
        b.close()

    def test_multiple_frames_in_order(self):
        a, b = _socket_pair()
        for i in range(5):
            a.send(i)
        assert [b.recv() for _ in range(5)] == list(range(5))
        a.close()
        b.close()

    def test_byte_accounting(self):
        a, b = _socket_pair()
        message = [2**256] * 3
        a.send(message)
        b.recv()
        expected = 4 + len(encode(message))
        assert a.bytes_sent == expected
        assert b.bytes_received == expected
        a.close()
        b.close()

    def test_peer_close_raises(self):
        a, b = _socket_pair()
        a.close()
        with pytest.raises(ConnectionError):
            b.recv()
        b.close()

    def test_large_frame(self):
        a, b = _socket_pair()
        big = [i for i in range(20000)]
        sender = threading.Thread(target=a.send, args=(big,))
        sender.start()
        assert b.recv() == big
        sender.join()
        a.close()
        b.close()


class TestHardenedFraming:
    """Wire-level edge cases: corrupt prefixes, truncation, timeouts."""

    def test_default_frame_bound(self):
        a, _b = _socket_pair()
        assert a.max_frame_bytes == DEFAULT_MAX_FRAME_BYTES == 64 * 1024 * 1024

    def test_oversized_length_prefix_fails_fast(self):
        raw_a, raw_b = socket.socketpair()
        b = SocketEndpoint(sock=raw_b, max_frame_bytes=1024)
        raw_a.sendall(struct.pack(">I", 1 << 30))  # 1 GiB claim, no body
        with pytest.raises(FrameTooLarge, match="1024"):
            b.recv()
        raw_a.close()
        b.close()

    def test_frame_too_large_is_a_connection_error(self):
        """Callers catching ConnectionError (the only safe recovery -
        the stream cannot resync) also catch FrameTooLarge."""
        assert issubclass(FrameTooLarge, ConnectionError)

    def test_frame_at_the_bound_still_passes(self):
        raw_a, raw_b = socket.socketpair()
        payload = b"x" * 64
        frame = encode(payload)
        a = SocketEndpoint(sock=raw_a, max_frame_bytes=len(frame))
        b = SocketEndpoint(sock=raw_b, max_frame_bytes=len(frame))
        a.send(payload)
        assert b.recv() == payload
        a.close()
        b.close()

    def test_short_read_mid_header(self):
        raw_a, raw_b = socket.socketpair()
        b = SocketEndpoint(sock=raw_b)
        raw_a.sendall(b"\x00\x00")  # half a length prefix
        raw_a.close()
        with pytest.raises(ConnectionError, match="mid-frame"):
            b.recv()
        b.close()

    def test_short_read_mid_payload(self):
        raw_a, raw_b = socket.socketpair()
        b = SocketEndpoint(sock=raw_b)
        payload = encode([1, 2, 3])
        frame = struct.pack(">I", len(payload)) + payload
        raw_a.sendall(frame[: len(frame) - 3])  # truncated mid-payload
        raw_a.close()
        with pytest.raises(ConnectionError, match="mid-frame"):
            b.recv()
        b.close()

    def test_corrupted_payload_raises_value_error(self):
        raw_a, raw_b = socket.socketpair()
        b = SocketEndpoint(sock=raw_b)
        garbage = b"\xff\xfe\xfd\xfc"
        raw_a.sendall(struct.pack(">I", len(garbage)) + garbage)
        with pytest.raises(ValueError):
            b.recv()
        raw_a.close()
        b.close()

    def test_read_timeout_raises(self):
        a, b = _socket_pair()
        b.settimeout(0.05)
        with pytest.raises((TimeoutError, OSError)):
            b.recv()
        a.close()
        b.close()

    def test_accept_timeout_raises(self):
        with pytest.raises(TimeoutError, match="no client"):
            serve(
                "intersection", ["a"], PublicParams.for_bits(64),
                random.Random(0), timeout=0.05,
            )

    def test_truncated_handshake_aborts_client(self):
        """A server that dies mid-handshake aborts the client with a
        connection error, not a hang or a garbage answer."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def half_handshake():
            conn, _ = listener.accept()
            payload = encode(("params", (23, "try-increment")))
            frame = struct.pack(">I", len(payload)) + payload
            conn.sendall(frame[: len(frame) // 2])  # die mid-frame
            conn.close()

        thread = threading.Thread(target=half_handshake)
        thread.start()
        with pytest.raises(ConnectionError):
            connect(
                "intersection", ["a"], random.Random(0), "127.0.0.1", port,
                timeout=2.0,
            )
        thread.join()
        listener.close()

    def test_wrong_handshake_tag_rejected(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def bad_handshake():
            conn, _ = listener.accept()
            SocketEndpoint(sock=conn).send(("banner", "hi"))
            conn.close()

        thread = threading.Thread(target=bad_handshake)
        thread.start()
        with pytest.raises(ValueError, match="handshake"):
            connect(
                "intersection", ["a"], random.Random(0), "127.0.0.1", port,
                timeout=2.0,
            )
        thread.join()
        listener.close()


def _run_over_tcp(protocol, v_r, v_s, bits=128, chunk_size=None):
    """Spawn S as a server thread, run R as a client; return both results."""
    params = PublicParams.for_bits(bits)
    port_box: queue.Queue[int] = queue.Queue()
    server_result: dict = {}

    def serve_s():
        server_result["size_v_r"] = serve(
            protocol, v_s, params, random.Random("s"),
            ready_callback=port_box.put, chunk_size=chunk_size,
        )

    thread = threading.Thread(target=serve_s)
    thread.start()
    port = port_box.get(timeout=10)
    answer = connect(
        protocol, v_r, random.Random("r"), "127.0.0.1", port,
        chunk_size=chunk_size,
    )
    thread.join(timeout=10)
    assert not thread.is_alive()
    return answer, server_result["size_v_r"]


#: ``chunk_size=None`` is the legacy whole-round wire format; the
#: chunked runs must produce the same answers over the same schedule.
CHUNKINGS = [None, 4]


@pytest.mark.parametrize("chunk_size", CHUNKINGS)
class TestDistributedIntersection:
    def test_end_to_end(self, chunk_size):
        answer, size_v_r = _run_over_tcp(
            "intersection",
            v_r=["alice", "bob", "carol"],
            v_s=["bob", "carol", "dave", "erin"],
            chunk_size=chunk_size,
        )
        assert answer == {"bob", "carol"}
        assert size_v_r == 3

    def test_disjoint(self, chunk_size):
        answer, _ = _run_over_tcp(
            "intersection", v_r=["a"], v_s=["b"], chunk_size=chunk_size
        )
        assert answer == set()

    def test_larger_run(self, chunk_size):
        v_r = [f"r{i}" for i in range(40)] + [f"c{i}" for i in range(15)]
        v_s = [f"s{i}" for i in range(30)] + [f"c{i}" for i in range(15)]
        answer, size_v_r = _run_over_tcp(
            "intersection", v_r, v_s, chunk_size=chunk_size
        )
        assert answer == {f"c{i}" for i in range(15)}
        assert size_v_r == 55


@pytest.mark.parametrize("chunk_size", CHUNKINGS)
class TestDistributedIntersectionSize:
    def test_end_to_end(self, chunk_size):
        size, size_v_r = _run_over_tcp(
            "intersection-size",
            v_r=["a", "b", "c", "d"],
            v_s=["c", "d", "e"],
            chunk_size=chunk_size,
        )
        assert size == 2
        assert size_v_r == 4

    def test_params_travel_in_handshake(self, chunk_size):
        """The receiver needs no out-of-band parameters: a 64-bit run
        works because the server's handshake carries the modulus."""
        size, _ = _run_over_tcp(
            "intersection-size",
            v_r=["x", "y"],
            v_s=["y"],
            bits=64,
            chunk_size=chunk_size,
        )
        assert size == 1


@pytest.mark.parametrize("chunk_size", CHUNKINGS)
class TestDistributedEquijoin:
    def test_end_to_end(self, chunk_size):
        ext_s = {"b": b"rec-b", "c": b"rec-c", "z": b"rec-z"}
        matches, size_v_r = _run_over_tcp(
            "equijoin",
            v_r=["a", "b", "c"],
            v_s=ext_s,
            chunk_size=chunk_size,
        )
        assert matches == {"b": b"rec-b", "c": b"rec-c"}
        assert size_v_r == 3

    def test_no_matches(self, chunk_size):
        matches, _ = _run_over_tcp(
            "equijoin", v_r=["a"], v_s={"b": b"x"}, chunk_size=chunk_size
        )
        assert matches == {}


@pytest.mark.parametrize("chunk_size", CHUNKINGS)
class TestDistributedEquijoinSize:
    def test_multiset_join_size(self, chunk_size):
        # a matches once (1*1), b matches twice (1*2): join size 3.
        size, size_v_r = _run_over_tcp(
            "equijoin-size",
            v_r=["a", "a", "b", "c"],
            v_s=["a", "b", "b", "e"],
            chunk_size=chunk_size,
        )
        assert size == 2 * 1 + 1 * 2
        assert size_v_r == 4

    def test_agrees_with_driver(self, chunk_size):
        from repro.protocols.base import ProtocolSuite
        from repro.protocols.equijoin_size import run_equijoin_size

        v_r = ["x", "x", "y", "z"]
        v_s = ["x", "y", "y", "w"]
        driver = run_equijoin_size(
            v_r, v_s, ProtocolSuite.default(bits=128, seed=5)
        )
        size, _ = _run_over_tcp(
            "equijoin-size", v_r=v_r, v_s=v_s, chunk_size=chunk_size
        )
        assert size == driver.join_size


class TestDistributedEquijoinSum:
    def test_sum_over_intersection(self):
        # The 4-round aggregate protocol also runs over the generic
        # drivers (chunked: its big m1/m2 rounds stream, the Paillier
        # rounds stay whole-frame).
        total, size_v_r = _run_over_tcp(
            "equijoin-sum",
            v_r=["a", "b", "c"],
            v_s={"b": 10, "c": 32, "z": 99},
            chunk_size=2,
        )
        assert total == 42
        assert size_v_r == 3


class TestBoundPortReporting:
    def test_port_zero_reports_kernel_assigned_port(self):
        """``port=0`` must hand the ready callback the *actual* bound
        port - the suites depend on it to dial the right address."""
        ports: queue.Queue[int] = queue.Queue()

        def serve_s():
            serve(
                "intersection", ["v"], PublicParams.for_bits(64),
                random.Random(1), port=0, ready_callback=ports.put,
            )

        thread = threading.Thread(target=serve_s)
        thread.start()
        port = ports.get(timeout=10)
        assert port != 0
        answer = connect(
            "intersection", ["v"], random.Random(2), "127.0.0.1", port
        )
        thread.join(timeout=10)
        assert answer == {"v"}
