"""Tests for the TCP transport: protocols across a real socket."""

from __future__ import annotations

import queue
import random
import socket
import threading

import pytest

from repro.net.serialization import encode
from repro.net.tcp import (
    SocketEndpoint,
    connect_intersection_receiver,
    connect_intersection_size_receiver,
    serve_intersection_sender,
    serve_intersection_size_sender,
)
from repro.protocols.parties import PublicParams


def _socket_pair():
    a, b = socket.socketpair()
    return SocketEndpoint(sock=a), SocketEndpoint(sock=b)


class TestSocketEndpoint:
    def test_round_trip(self):
        a, b = _socket_pair()
        a.send([1, "two", b"\x00three"])
        assert b.recv() == [1, "two", b"\x00three"]
        a.close()
        b.close()

    def test_multiple_frames_in_order(self):
        a, b = _socket_pair()
        for i in range(5):
            a.send(i)
        assert [b.recv() for _ in range(5)] == list(range(5))
        a.close()
        b.close()

    def test_byte_accounting(self):
        a, b = _socket_pair()
        message = [2**256] * 3
        a.send(message)
        b.recv()
        expected = 4 + len(encode(message))
        assert a.bytes_sent == expected
        assert b.bytes_received == expected
        a.close()
        b.close()

    def test_peer_close_raises(self):
        a, b = _socket_pair()
        a.close()
        with pytest.raises(ConnectionError):
            b.recv()
        b.close()

    def test_large_frame(self):
        a, b = _socket_pair()
        big = [i for i in range(20000)]
        sender = threading.Thread(target=a.send, args=(big,))
        sender.start()
        assert b.recv() == big
        sender.join()
        a.close()
        b.close()


def _run_over_tcp(server_fn, client_fn, v_r, v_s, bits=128):
    """Spawn S as a server thread, run R as a client; return both results."""
    params = PublicParams.for_bits(bits)
    port_box: queue.Queue[int] = queue.Queue()
    server_result: dict = {}

    def serve():
        server_result["size_v_r"] = server_fn(
            v_s, params, random.Random("s"), ready_callback=port_box.put
        )

    thread = threading.Thread(target=serve)
    thread.start()
    port = port_box.get(timeout=10)
    answer = client_fn(v_r, random.Random("r"), "127.0.0.1", port)
    thread.join(timeout=10)
    assert not thread.is_alive()
    return answer, server_result["size_v_r"]


class TestDistributedIntersection:
    def test_end_to_end(self):
        answer, size_v_r = _run_over_tcp(
            serve_intersection_sender,
            connect_intersection_receiver,
            v_r=["alice", "bob", "carol"],
            v_s=["bob", "carol", "dave", "erin"],
        )
        assert answer == {"bob", "carol"}
        assert size_v_r == 3

    def test_disjoint(self):
        answer, _ = _run_over_tcp(
            serve_intersection_sender,
            connect_intersection_receiver,
            v_r=["a"],
            v_s=["b"],
        )
        assert answer == set()

    def test_larger_run(self):
        v_r = [f"r{i}" for i in range(40)] + [f"c{i}" for i in range(15)]
        v_s = [f"s{i}" for i in range(30)] + [f"c{i}" for i in range(15)]
        answer, size_v_r = _run_over_tcp(
            serve_intersection_sender, connect_intersection_receiver, v_r, v_s
        )
        assert answer == {f"c{i}" for i in range(15)}
        assert size_v_r == 55


class TestDistributedIntersectionSize:
    def test_end_to_end(self):
        size, size_v_r = _run_over_tcp(
            serve_intersection_size_sender,
            connect_intersection_size_receiver,
            v_r=["a", "b", "c", "d"],
            v_s=["c", "d", "e"],
        )
        assert size == 2
        assert size_v_r == 4

    def test_params_travel_in_handshake(self):
        """The receiver needs no out-of-band parameters: a 64-bit run
        works because the server's handshake carries the modulus."""
        size, _ = _run_over_tcp(
            serve_intersection_size_sender,
            connect_intersection_size_receiver,
            v_r=["x", "y"],
            v_s=["y"],
            bits=64,
        )
        assert size == 1
