"""Tests for Application 2: medical research (Figure 2)."""

from __future__ import annotations

import random

import pytest

from repro.apps.medical import (
    ContingencyTable,
    plaintext_contingency,
    run_medical_research,
)
from repro.db.table import Table
from repro.workloads.generator import medical_workload


class TestContingencyTable:
    def test_total(self):
        t = ContingencyTable(1, 2, 3, 4)
        assert t.total == 10

    def test_as_dict(self):
        t = ContingencyTable(1, 2, 3, 4)
        assert t.as_dict()[(True, True)] == 1
        assert t.as_dict()[(False, False)] == 4


class TestPlaintextGroundTruth:
    def test_hand_example(self):
        t_r = Table(("person_id", "pattern"), [(1, True), (2, False), (3, True)])
        t_s = Table(
            ("person_id", "drug", "reaction"),
            [(1, True, True), (2, True, False), (3, False, True)],
        )
        table = plaintext_contingency(t_r, t_s)
        # Person 3 did not take the drug: excluded.
        assert table.pattern_reaction == 1      # person 1
        assert table.no_pattern_no_reaction == 1  # person 2
        assert table.pattern_no_reaction == 0
        assert table.no_pattern_reaction == 0

    def test_matches_generator_expectation(self, rng):
        wl = medical_workload(80, rng)
        assert plaintext_contingency(wl.t_r, wl.t_s).as_dict() == wl.expected


class TestProtocolRun:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_plaintext(self, suite, seed):
        wl = medical_workload(50, random.Random(seed))
        result = run_medical_research(wl.t_r, wl.t_s, suite)
        assert result.table.as_dict() == wl.expected

    def test_total_bounded_by_drug_takers(self, suite, rng):
        wl = medical_workload(40, rng)
        result = run_medical_research(wl.t_r, wl.t_s, suite)
        drug_takers = len(wl.t_s.where("drug", True))
        assert result.table.total <= drug_takers

    def test_empty_tables(self, suite):
        t_r = Table(("person_id", "pattern"), [])
        t_s = Table(("person_id", "drug", "reaction"), [])
        result = run_medical_research(t_r, t_s, suite)
        assert result.table.total == 0

    def test_nobody_took_drug(self, suite):
        t_r = Table(("person_id", "pattern"), [(1, True)])
        t_s = Table(("person_id", "drug", "reaction"), [(1, False, False)])
        result = run_medical_research(t_r, t_s, suite)
        assert result.table.total == 0

    def test_custom_column_names(self, suite):
        t_r = Table(("pid", "dna"), [(1, True), (2, False)])
        t_s = Table(("pid", "med", "adverse"), [(1, True, True), (2, True, False)])
        result = run_medical_research(
            t_r, t_s, suite,
            id_column="pid", pattern_column="dna",
            drug_column="med", reaction_column="adverse",
        )
        assert result.table.pattern_reaction == 1
        assert result.table.no_pattern_no_reaction == 1


class TestThirdPartyRouting:
    def test_t_receives_eight_sets(self, suite, rng):
        """Four queries x (Z_R + Z_S) each."""
        wl = medical_workload(30, rng)
        result = run_medical_research(wl.t_r, wl.t_s, suite)
        assert len(result.run.t_view.received) == 8

    def test_rs_channel_carries_singly_encrypted_sets(self, suite, rng):
        wl = medical_workload(30, rng)
        result = run_medical_research(wl.t_r, wl.t_s, suite)
        r_steps = [m.step for m in result.run.r_to_s.r_view.received]
        s_steps = [m.step for m in result.run.r_to_s.s_view.received]
        assert len(s_steps) == 4  # one Y_R per query
        assert len(r_steps) == 4  # one Y_S per query

    def test_all_t_traffic_sorted_and_in_group(self, suite, rng):
        """T sees only lexicographically reordered group elements."""
        wl = medical_workload(25, rng)
        result = run_medical_research(wl.t_r, wl.t_s, suite)
        for message in result.run.t_view.received:
            assert message.payload == sorted(message.payload)
            assert all(x in suite.group for x in message.payload)

    def test_total_bytes_accumulates(self, suite, rng):
        wl = medical_workload(25, rng)
        result = run_medical_research(wl.t_r, wl.t_s, suite)
        assert result.run.total_bytes > 0
