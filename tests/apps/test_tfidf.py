"""Tests for TF-IDF preprocessing."""

from __future__ import annotations

import pytest

from repro.apps.tfidf import TfIdfModel, significant_words, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello WORLD") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert tokenize("a,b;c! d?") == ["a", "b", "c", "d"]

    def test_keeps_digits(self):
        assert tokenize("model 9000") == ["model", "9000"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!!") == []


class TestTfIdfModel:
    @pytest.fixture()
    def corpus(self):
        return [
            "the cat sat on the mat",
            "the dog sat on the log",
            "quantum entanglement laser",
        ]

    def test_fit_counts_documents(self, corpus):
        model = TfIdfModel.fit(corpus)
        assert model.n_documents == 3
        assert model.document_frequency["the"] == 2
        assert model.document_frequency["laser"] == 1

    def test_rare_terms_score_higher(self, corpus):
        model = TfIdfModel.fit(corpus)
        assert model.idf("laser") > model.idf("the")

    def test_unseen_term_max_idf(self, corpus):
        model = TfIdfModel.fit(corpus)
        assert model.idf("zzz") >= model.idf("laser")

    def test_scores_sum_over_distinct_terms(self, corpus):
        model = TfIdfModel.fit(corpus)
        scores = model.scores("the cat sat on the mat")
        assert set(scores) == {"the", "cat", "sat", "on", "mat"}
        assert all(s > 0 for s in scores.values())

    def test_empty_document_scores(self, corpus):
        assert TfIdfModel.fit(corpus).scores("") == {}

    def test_top_k_selects_significant(self, corpus):
        model = TfIdfModel.fit(corpus)
        top = model.top_k("the cat sat on the mat", 2)
        # 'the' is common corpus-wide but frequent in-document; the
        # distinctive words must beat it at small k... 'cat'/'mat' are
        # unique to this doc.
        assert len(top) == 2
        assert top <= {"cat", "mat", "sat", "the"}

    def test_top_k_larger_than_vocab(self, corpus):
        model = TfIdfModel.fit(corpus)
        top = model.top_k("one two", 50)
        assert top == {"one", "two"}

    def test_top_k_deterministic_ties(self, corpus):
        model = TfIdfModel.fit(corpus)
        assert model.top_k("x y z", 2) == model.top_k("x y z", 2)


class TestSignificantWords:
    def test_one_set_per_document(self):
        corpus = ["alpha beta", "gamma delta epsilon"]
        sets = significant_words(corpus, 2)
        assert len(sets) == 2
        assert all(isinstance(s, frozenset) for s in sets)
        assert all(len(s) <= 2 for s in sets)
