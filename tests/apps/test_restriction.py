"""Tests for the Section 2.3 multi-query defenses."""

from __future__ import annotations

import pytest

from repro.apps.restriction import QueryAuditor, QueryRefused


class TestSizeRestriction:
    def test_small_result_refused(self):
        auditor = QueryAuditor(min_result_size=3)
        with pytest.raises(QueryRefused, match="below minimum"):
            auditor.review("q", ["a", "b"], result_size=2)

    def test_adequate_result_answered(self):
        auditor = QueryAuditor(min_result_size=3)
        auditor.review("q", ["a", "b"], result_size=3)
        assert len(auditor.answered_queries()) == 1

    def test_size_check_skipped_when_unknown(self):
        auditor = QueryAuditor(min_result_size=100)
        auditor.review("q", ["a"], result_size=None)  # no refusal


class TestOverlapRestriction:
    def test_tracker_attack_refused(self):
        """The classic tracker: re-query with one element removed."""
        auditor = QueryAuditor(max_overlap_fraction=0.75, min_result_size=0)
        auditor.review("q1", [f"v{i}" for i in range(10)])
        with pytest.raises(QueryRefused, match="overlap"):
            auditor.review("q2", [f"v{i}" for i in range(9)])

    def test_disjoint_queries_fine(self):
        auditor = QueryAuditor(max_overlap_fraction=0.5)
        auditor.review("q1", ["a", "b"], result_size=5)
        auditor.review("q2", ["c", "d"], result_size=5)
        assert len(auditor.answered_queries()) == 2

    def test_overlap_exactly_at_threshold_allowed(self):
        auditor = QueryAuditor(max_overlap_fraction=0.5, min_result_size=0)
        auditor.review("q1", ["a", "b", "c", "d"])
        auditor.review("q2", ["a", "b", "x", "y"])  # overlap = 0.5, not >

    def test_overlap_relative_to_smaller_set(self):
        auditor = QueryAuditor(max_overlap_fraction=0.6, min_result_size=0)
        auditor.review("q1", [f"v{i}" for i in range(100)])
        # A tiny probe fully inside the first query: overlap 1.0.
        with pytest.raises(QueryRefused):
            auditor.review("q2", ["v1", "v2"])

    def test_refused_query_not_remembered(self):
        """A refused query must not count as answered for later checks."""
        auditor = QueryAuditor(max_overlap_fraction=0.5, min_result_size=5)
        with pytest.raises(QueryRefused):
            auditor.review("q1", ["a", "b"], result_size=1)  # size refusal
        # q2 overlaps the *refused* q1 heavily; must still be admitted.
        auditor.review("q2", ["a", "b"], result_size=10)


class TestBudget:
    def test_query_budget_exhausts(self):
        auditor = QueryAuditor(max_queries=2, min_result_size=0,
                               max_overlap_fraction=1.1)
        auditor.review("q1", ["a"])
        auditor.review("q2", ["b"])
        with pytest.raises(QueryRefused, match="budget"):
            auditor.review("q3", ["c"])


class TestAuditTrail:
    def test_trail_records_both_outcomes(self):
        auditor = QueryAuditor(min_result_size=3)
        auditor.review("good", ["a", "b"], result_size=5)
        with pytest.raises(QueryRefused):
            auditor.review("bad", ["c"], result_size=1)
        assert [e.decision for e in auditor.trail] == ["answered", "refused"]
        assert auditor.trail[1].reason != ""
        assert auditor.refused_queries()[0].query_id == "bad"

    def test_trail_entries_carry_sizes(self):
        auditor = QueryAuditor(min_result_size=0)
        auditor.review("q", ["a", "b", "c"], result_size=7)
        entry = auditor.trail[0]
        assert entry.input_size == 3
        assert entry.result_size == 7
        assert entry.timestamp > 0
