"""Tests for Application 1: selective document sharing."""

from __future__ import annotations

import random

import pytest

from repro.apps.document_sharing import (
    dice_similarity,
    run_document_sharing,
)
from repro.apps.tfidf import significant_words
from repro.workloads.generator import document_corpus


@pytest.fixture()
def docs():
    docs_r = [frozenset({"a", "b", "c", "d"}), frozenset({"x", "y"})]
    docs_s = [frozenset({"c", "d", "e"}), frozenset({"p", "q"})]
    return docs_r, docs_s


class TestSimilarity:
    def test_dice_example(self):
        assert dice_similarity(2, 4, 3) == pytest.approx(2 / 7)

    def test_zero_sizes(self):
        assert dice_similarity(0, 0, 0) == 0.0


class TestRun:
    def test_matches_plaintext_similarity(self, docs, suite):
        docs_r, docs_s = docs
        result = run_document_sharing(docs_r, docs_s, threshold=0.2, suite=suite)
        expected = set()
        for i, d_r in enumerate(docs_r):
            for j, d_s in enumerate(docs_s):
                if dice_similarity(len(d_r & d_s), len(d_r), len(d_s)) > 0.2:
                    expected.add((i, j))
        assert result.matched_pairs() == expected

    def test_pair_overlaps_are_exact(self, docs, suite):
        docs_r, docs_s = docs
        result = run_document_sharing(docs_r, docs_s, threshold=0.9, suite=suite)
        for (i, j), overlap in result.pair_overlaps.items():
            assert overlap == len(docs_r[i] & docs_s[j])

    def test_runs_one_protocol_per_pair(self, docs, suite):
        docs_r, docs_s = docs
        result = run_document_sharing(docs_r, docs_s, threshold=0.5, suite=suite)
        assert result.protocol_runs == 4
        assert len(result.pair_overlaps) == 4

    def test_threshold_is_strict(self, suite):
        d = frozenset({"a", "b"})
        # similarity = 2 / 4 = 0.5 exactly
        result = run_document_sharing([d], [d], threshold=0.5, suite=suite)
        assert result.matches == []
        result = run_document_sharing([d], [d], threshold=0.49, suite=suite)
        assert len(result.matches) == 1

    def test_match_fields(self, suite):
        d_r = frozenset({"a", "b", "c"})
        d_s = frozenset({"b", "c"})
        result = run_document_sharing([d_r], [d_s], threshold=0.1, suite=suite)
        (match,) = result.matches
        assert match.common_words == 2
        assert match.similarity == pytest.approx(2 / 5)
        assert (match.r_index, match.s_index) == (0, 0)

    def test_accounting_positive(self, docs, suite):
        docs_r, docs_s = docs
        result = run_document_sharing(docs_r, docs_s, threshold=0.5, suite=suite)
        assert result.total_bytes > 0
        assert result.total_encryptions == sum(
            2 * (len(r) + len(s)) for r in docs_r for s in docs_s
        )

    def test_custom_similarity_function(self, docs, suite):
        docs_r, docs_s = docs
        jaccard = lambda c, nr, ns: c / (nr + ns - c) if nr + ns - c else 0.0
        result = run_document_sharing(
            docs_r, docs_s, threshold=0.3, suite=suite, similarity=jaccard
        )
        assert result.matched_pairs() == {(0, 0)}  # 2/5 = 0.4 > 0.3

    def test_end_to_end_with_tfidf_corpus(self, suite):
        """Planted-topic corpora produce at least one similar pair."""
        rng = random.Random(11)
        corpus_r = document_corpus(
            2, rng, vocabulary_size=400, words_per_doc=60,
            topic_words=[f"topic{i}" for i in range(12)], topic_rate=0.95,
        )
        corpus_s = document_corpus(
            2, rng, vocabulary_size=400, words_per_doc=60,
            topic_words=[f"topic{i}" for i in range(12)], topic_rate=0.95,
        )
        docs_r = significant_words(corpus_r, 25)
        docs_s = significant_words(corpus_s, 25)
        result = run_document_sharing(docs_r, docs_s, threshold=0.02, suite=suite)
        assert len(result.matches) >= 1
