"""Tests for the synthetic workload generators."""

from __future__ import annotations

import random

import pytest

from repro.apps.medical import plaintext_contingency
from repro.workloads.generator import (
    document_corpus,
    medical_workload,
    multiset_pair,
    overlapping_sets,
    zipf_multiplicities,
)


class TestOverlappingSets:
    def test_exact_sizes_and_overlap(self, rng):
        v_r, v_s, shared = overlapping_sets(20, 30, 7, rng)
        assert len(v_r) == 20 and len(set(v_r)) == 20
        assert len(v_s) == 30 and len(set(v_s)) == 30
        assert set(v_r) & set(v_s) == shared
        assert len(shared) == 7

    def test_zero_overlap(self, rng):
        v_r, v_s, shared = overlapping_sets(5, 5, 0, rng)
        assert shared == set()
        assert not (set(v_r) & set(v_s))

    def test_full_overlap(self, rng):
        v_r, v_s, shared = overlapping_sets(5, 8, 5, rng)
        assert set(v_r) <= set(v_s)

    def test_overlap_too_large_rejected(self, rng):
        with pytest.raises(ValueError):
            overlapping_sets(3, 5, 4, rng)

    def test_shuffled(self):
        v_r, _, _ = overlapping_sets(50, 50, 25, random.Random(1))
        ordered = sorted(v_r)
        assert v_r != ordered  # astronomically unlikely to stay sorted

    def test_deterministic_per_seed(self):
        a = overlapping_sets(10, 10, 5, random.Random(3))
        b = overlapping_sets(10, 10, 5, random.Random(3))
        assert a == b


class TestZipfMultiplicities:
    def test_range(self, rng):
        counts = zipf_multiplicities(500, rng, max_count=20)
        assert len(counts) == 500
        assert all(1 <= c <= 20 for c in counts)

    def test_heavy_head(self, rng):
        counts = zipf_multiplicities(2000, rng, alpha=1.5)
        ones = sum(1 for c in counts if c == 1)
        assert ones > len(counts) * 0.4  # count 1 dominates


class TestMultisetPair:
    def test_distinct_sizes(self, rng):
        ms_r, ms_s = multiset_pair(10, 15, 4, rng)
        assert ms_r.distinct_size == 10
        assert ms_s.distinct_size == 15
        assert ms_r.intersection_size(ms_s) == 4

    def test_uniform_count_mode(self, rng):
        ms_r, ms_s = multiset_pair(6, 6, 3, rng, uniform_count=4)
        assert ms_r.duplicate_distribution() == {4: 6}
        assert ms_s.duplicate_distribution() == {4: 6}


class TestDocumentCorpus:
    def test_shape(self, rng):
        docs = document_corpus(5, rng, vocabulary_size=100, words_per_doc=40)
        assert len(docs) == 5
        assert all(len(d.split()) == 40 for d in docs)

    def test_topic_planting(self, rng):
        docs = document_corpus(
            20, rng, topic_words=["needle"], topic_rate=1.0
        )
        assert all("needle" in d.split() for d in docs)

    def test_no_topic_by_default(self, rng):
        docs = document_corpus(5, rng, vocabulary_size=50, words_per_doc=10)
        assert all(w.startswith("word") for d in docs for w in d.split())


class TestMedicalWorkload:
    def test_tables_consistent_with_expected(self, rng):
        wl = medical_workload(120, rng)
        assert plaintext_contingency(wl.t_r, wl.t_s).as_dict() == wl.expected

    def test_schema(self, rng):
        wl = medical_workload(10, rng)
        assert wl.t_r.columns == ("person_id", "pattern")
        assert wl.t_s.columns == ("person_id", "drug", "reaction")
        assert len(wl.t_r) == len(wl.t_s) == 10

    def test_reaction_requires_drug(self, rng):
        wl = medical_workload(200, rng)
        for _, drug, reaction in wl.t_s.rows:
            if reaction:
                assert drug

    def test_planted_association(self):
        """Reaction rate among drug takers is higher with the pattern."""
        wl = medical_workload(5000, random.Random(0))
        e = wl.expected
        with_pattern = e[(True, True)] / max(e[(True, True)] + e[(True, False)], 1)
        without = e[(False, True)] / max(e[(False, True)] + e[(False, False)], 1)
        assert with_pattern > without + 0.2
