"""Tests for the Section 6.1 protocol cost model."""

from __future__ import annotations

import math

import pytest

from repro.analysis.costmodel import (
    CostConstants,
    PAPER_CONSTANTS,
    ProtocolCostModel,
)


@pytest.fixture()
def model():
    return ProtocolCostModel()


class TestPaperConstants:
    def test_ce_is_2001_pentium(self):
        assert PAPER_CONSTANTS.ce_seconds == 0.02

    def test_two_e5_exponentiations_per_hour(self):
        """'This corresponds to around 2e5 exponentiations per hour.'"""
        per_hour = 3600 / PAPER_CONSTANTS.ce_seconds
        assert per_hour == pytest.approx(1.8e5, rel=0.1)

    def test_t1_link(self):
        assert PAPER_CONSTANTS.link.bandwidth_bps == pytest.approx(1.544e6)

    def test_default_parallelism(self):
        assert PAPER_CONSTANTS.processors == 10


class TestComputationFormulas:
    def test_intersection_approx(self, model):
        """~2 C_e (n_S + n_R)."""
        assert model.intersection_seconds(100, 50, exact=False) == pytest.approx(
            2 * 0.02 * 150
        )

    def test_intersection_exact_reduces_to_approx_with_zero_minors(self, model):
        """With C_h = C_s = 0 (paper defaults) exact == approximate."""
        assert model.intersection_seconds(100, 50, exact=True) == pytest.approx(
            model.intersection_seconds(100, 50, exact=False)
        )

    def test_intersection_exact_with_minors(self):
        constants = CostConstants(
            ce_seconds=1.0, ch_seconds=0.5, cs_seconds=0.01
        )
        model = ProtocolCostModel(constants)
        n_s, n_r = 16, 8
        expected = (
            (0.5 + 2 * 1.0) * (n_s + n_r)
            + 2 * 0.01 * n_s * math.log2(n_s)
            + 3 * 0.01 * n_r * math.log2(n_r)
        )
        assert model.intersection_seconds(n_s, n_r) == pytest.approx(expected)

    def test_join_approx(self, model):
        """~2 C_e n_S + 5 C_e n_R."""
        assert model.join_seconds(100, 50, exact=False) == pytest.approx(
            0.02 * (2 * 100 + 5 * 50)
        )

    def test_join_exact_with_k_encryptions(self):
        constants = CostConstants(ce_seconds=1.0, ck_seconds=0.25)
        model = ProtocolCostModel(constants)
        seconds = model.join_seconds(10, 6, n_common=4)
        expected = (2 * 10 + 5 * 6) * 1.0 + (10 + 4) * 0.25
        assert seconds == pytest.approx(expected)

    def test_join_costlier_per_r_element(self, model):
        """5 C_e per R element vs 2 C_e in the intersection protocol."""
        assert model.join_seconds(0, 100, exact=False) > model.intersection_seconds(
            0, 100, exact=False
        )

    def test_operation_counts(self, model):
        ops = model.intersection_ops(7, 5)
        assert ops.encryptions == 24
        assert ops.hashes == 12
        ops = model.join_ops(7, 5)
        assert ops.encryptions == 2 * 7 + 5 * 5
        assert ops.k_encryptions == 7 + 5

    def test_parallel_seconds(self, model):
        assert model.parallel_seconds(100.0) == pytest.approx(10.0)

    def test_edge_zero_sizes(self, model):
        assert model.intersection_seconds(0, 0) == 0.0
        assert model.join_seconds(0, 0) == 0.0


class TestCommunicationFormulas:
    def test_intersection_bits(self, model):
        assert model.intersection_bits(100, 50) == (100 + 2 * 50) * 1024

    def test_join_bits(self, model):
        assert model.join_bits(100, 50) == (100 + 3 * 50) * 1024 + 100 * 1024

    def test_transfer_seconds(self, model):
        assert model.transfer_seconds(1.544e6) == pytest.approx(1.0)

    def test_custom_k_bits(self):
        model = ProtocolCostModel(CostConstants(k_bits=512, k_prime_bits=256))
        assert model.intersection_bits(10, 10) == 30 * 512
        assert model.join_bits(10, 10) == 40 * 512 + 10 * 256
