"""Tests for on-machine cost calibration."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import calibrate


@pytest.fixture(scope="module")
def result():
    # Small modulus + few samples: calibration mechanics, not accuracy.
    return calibrate(bits=128, samples=5)


class TestCalibrate:
    def test_all_constants_positive(self, result):
        c = result.constants
        assert c.ce_seconds > 0
        assert c.ch_seconds > 0
        assert c.ck_seconds > 0
        assert c.cs_seconds > 0

    def test_metadata(self, result):
        assert result.bits == 128
        assert result.samples == 5
        assert result.constants.k_bits == 128

    def test_exponentiation_dominates_sort_per_item(self, result):
        """The paper's assumption n C_e >> n lg n C_s must hold on any
        real machine: one modexp costs far more than one comparison."""
        assert result.constants.ce_seconds > 10 * result.constants.cs_seconds

    def test_exponentiations_per_hour(self, result):
        assert result.exponentiations_per_hour() == pytest.approx(
            3600 / result.constants.ce_seconds
        )

    def test_larger_modulus_slower(self):
        small = calibrate(bits=128, samples=5)
        large = calibrate(bits=1024, samples=5)
        assert large.constants.ce_seconds > small.constants.ce_seconds

    def test_deterministic_inputs(self):
        """Same seed draws the same calibration inputs (timings differ)."""
        a = calibrate(bits=64, samples=3, seed=1)
        b = calibrate(bits=64, samples=3, seed=1)
        assert a.bits == b.bits  # structural; timing values may vary
