"""Tests for the multi-query composition analyzer (Section 2.3)."""

from __future__ import annotations

import pytest

from repro.analysis.composition import CompositionAnalyzer
from repro.apps.restriction import QueryAuditor, QueryRefused
from repro.protocols.base import ProtocolSuite
from repro.protocols.intersection_size import run_intersection_size


class TestIntersectionObservations:
    def test_single_query_determines_queried_values(self):
        analyzer = CompositionAnalyzer()
        analyzer.observe_intersection(["a", "b", "c"], ["b"])
        assert analyzer.knowledge.status("b") is True
        assert analyzer.knowledge.status("a") is False
        assert analyzer.knowledge.status("zzz") is None

    def test_answer_must_be_subset(self):
        with pytest.raises(ValueError):
            CompositionAnalyzer().observe_intersection(["a"], ["b"])

    def test_accumulates_across_queries(self):
        analyzer = CompositionAnalyzer()
        analyzer.observe_intersection(["a", "b"], ["a"])
        analyzer.observe_intersection(["c", "d"], ["d"])
        assert analyzer.knowledge.members == {"a", "d"}
        assert analyzer.knowledge.non_members == {"b", "c"}


class TestSizeConstraintInference:
    def test_zero_size_collapses_to_nonmembers(self):
        analyzer = CompositionAnalyzer()
        analyzer.observe_intersection_size(["a", "b", "c"], 0)
        assert analyzer.knowledge.non_members == {"a", "b", "c"}

    def test_full_size_collapses_to_members(self):
        analyzer = CompositionAnalyzer()
        analyzer.observe_intersection_size(["a", "b"], 2)
        assert analyzer.knowledge.members == {"a", "b"}

    def test_partial_size_alone_determines_nothing(self):
        analyzer = CompositionAnalyzer()
        analyzer.observe_intersection_size(["a", "b", "c"], 1)
        assert analyzer.knowledge.determined == set()

    def test_impossible_size_rejected(self):
        with pytest.raises(ValueError):
            CompositionAnalyzer().observe_intersection_size(["a"], 2)

    def test_tracker_attack_two_queries(self):
        """The classic tracker: |Q ∩ V_S| and |Q−{v} ∩ V_S| differ by
        one -> v's membership is revealed despite both answers being
        'just sizes'."""
        analyzer = CompositionAnalyzer()
        q = ["a", "b", "c", "d"]
        analyzer.observe_intersection_size(q, 2)       # say V_S ∩ Q = {a, c}
        analyzer.observe_intersection_size(["b", "c", "d"], 1)
        analyzer.observe_intersection_size(["c", "d"], 1)
        analyzer.observe_intersection_size(["d"], 0)
        # Backward collapse: d out; then c in; then b out; then a in.
        assert analyzer.knowledge.status("d") is False
        assert analyzer.knowledge.status("c") is True
        assert analyzer.knowledge.status("b") is False
        assert analyzer.knowledge.status("a") is True

    def test_constraints_interact_with_direct_knowledge(self):
        analyzer = CompositionAnalyzer()
        analyzer.observe_intersection_size(["a", "b"], 1)
        analyzer.observe_intersection(["a"], ["a"])  # a is a member
        assert analyzer.knowledge.status("b") is False  # size forces it


class TestLiveProtocolComposition:
    def test_tracker_against_real_protocol_runs(self):
        """Mount the tracker with actual intersection-size executions."""
        suite = ProtocolSuite.default(bits=128, seed=17)
        v_s = ["s1", "s2", "s3", "shared"]
        probe = ["shared", "x1", "x2"]
        analyzer = CompositionAnalyzer()

        full = run_intersection_size(probe, v_s, suite)
        analyzer.observe_intersection_size(probe, full.size)
        reduced = run_intersection_size(["x1", "x2"], v_s, suite)
        analyzer.observe_intersection_size(["x1", "x2"], reduced.size)

        # Sizes were 1 and 0: composition pins 'shared' as a member.
        assert analyzer.knowledge.status("shared") is True

    def test_auditor_blocks_the_same_tracker(self):
        """The Section 2.3 defense: the overlap rule refuses the
        second, almost-identical probe."""
        auditor = QueryAuditor(max_overlap_fraction=0.6, min_result_size=0)
        probe = ["shared", "x1", "x2"]
        auditor.review("q1", probe)
        with pytest.raises(QueryRefused):
            auditor.review("q2", ["x1", "x2"])


class TestReporting:
    def test_determined_fraction(self):
        analyzer = CompositionAnalyzer()
        analyzer.observe_intersection(["a", "b"], ["a"])
        assert analyzer.determined_fraction(["a", "b", "c", "d"]) == 0.5
        assert analyzer.determined_fraction([]) == 0.0

    def test_excess_over_single_query(self):
        analyzer = CompositionAnalyzer()
        analyzer.observe_intersection_size(["a", "b"], 2)
        excess = analyzer.excess_over_single_query(single_query_determined=[])
        assert excess == {"a", "b"}
