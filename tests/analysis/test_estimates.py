"""Tests that the Section 6.2 estimates reproduce the paper's numbers."""

from __future__ import annotations

import pytest

from repro.analysis.estimates import (
    document_sharing_estimate,
    medical_research_estimate,
)


class TestDocumentSharing:
    """Section 6.2.1: |D_R|=10, |D_S|=100, 1000 words/doc."""

    def test_total_encryptions(self):
        est = document_sharing_estimate()
        assert est.encryptions_ce == pytest.approx(4e6)

    def test_computation_about_two_hours(self):
        """'4e6 C_e / P ~ 2 hour' (exactly 2.22 h at P=10)."""
        est = document_sharing_estimate()
        assert est.computation_hours == pytest.approx(2.22, abs=0.05)

    def test_communication_bits(self):
        """'3e6 k ~ 3 Gbits'."""
        est = document_sharing_estimate()
        assert est.communication_bits == pytest.approx(3e6 * 1024)

    def test_transfer_about_35_minutes(self):
        est = document_sharing_estimate()
        assert est.communication_minutes == pytest.approx(33, abs=3)

    def test_scales_linearly_in_pairs(self):
        double = document_sharing_estimate(n_docs_r=20)
        single = document_sharing_estimate(n_docs_r=10)
        assert double.encryptions_ce == pytest.approx(2 * single.encryptions_ce)
        assert double.communication_bits == pytest.approx(
            2 * single.communication_bits
        )

    def test_summary_mentions_name(self):
        assert "document sharing" in document_sharing_estimate().round_trip_summary()


class TestMedicalResearch:
    """Section 6.2.2: |V_R| = |V_S| = 1 million."""

    def test_total_encryptions(self):
        est = medical_research_estimate()
        assert est.encryptions_ce == pytest.approx(8e6)

    def test_computation_about_four_hours(self):
        """'8e6 C_e / P ~ 4 hours' (exactly 4.44 h at P=10)."""
        est = medical_research_estimate()
        assert est.computation_hours == pytest.approx(4.44, abs=0.1)

    def test_communication_bits(self):
        """'8e6 k ~ 8 Gbits'."""
        est = medical_research_estimate()
        assert est.communication_bits == pytest.approx(8e6 * 1024)

    def test_transfer_about_90_minutes(self):
        """'~1.5 hours'."""
        est = medical_research_estimate()
        assert est.communication_hours == pytest.approx(1.47, abs=0.1)

    def test_asymmetric_sizes(self):
        est = medical_research_estimate(n_r=10**6, n_s=2 * 10**6)
        assert est.encryptions_ce == pytest.approx(2 * (3 * 10**6) * 2)
