"""Tests for the Section 5.2 leakage characterization."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.leakage import leakage_profile, overlap_matrix
from repro.db.multiset import ValueMultiset
from repro.workloads.generator import multiset_pair

occurrences = st.lists(st.integers(min_value=0, max_value=10), max_size=25)


def ms(values):
    return ValueMultiset.from_values(values)


class TestOverlapMatrix:
    def test_example(self):
        m = overlap_matrix(ms(["a", "a", "b"]), ms(["a", "b", "b", "c"]))
        assert m == {(2, 1): 1, (1, 2): 1}  # a: (2,1); b: (1,2)

    def test_empty_when_disjoint(self):
        assert overlap_matrix(ms(["a"]), ms(["b"])) == {}

    @given(occurrences, occurrences)
    @settings(max_examples=150)
    def test_total_equals_intersection_size(self, a, b):
        matrix = overlap_matrix(ms(a), ms(b))
        assert sum(matrix.values()) == len(set(a) & set(b))

    @given(occurrences, occurrences)
    @settings(max_examples=150)
    def test_join_size_recoverable_from_matrix(self, a, b):
        matrix = overlap_matrix(ms(a), ms(b))
        from_matrix = sum(dr * ds * c for (dr, ds), c in matrix.items())
        assert from_matrix == ms(a).join_size(ms(b))


class TestProfileExtremes:
    def test_uniform_duplicates_identify_nothing_with_partial_overlap(self):
        """The benign extreme: equal counts + partial overlap -> R cannot
        pin any individual value."""
        rng = random.Random(1)
        ms_r, ms_s = multiset_pair(10, 12, 5, rng, uniform_count=2)
        profile = leakage_profile(ms_r, ms_s)
        assert profile.identified == set()

    def test_all_distinct_counts_identify_everything(self):
        """The worst-case extreme: all counts distinct -> every class is
        a singleton, so membership of every R value is determined."""
        v_r = ["a"] * 1 + ["b"] * 2 + ["c"] * 3
        v_s = ["a"] * 4 + ["c"] * 5 + ["q"] * 6
        profile = leakage_profile(ms(v_r), ms(v_s))
        assert profile.certain_members == {"a", "c"}
        assert profile.certain_nonmembers == {"b"}
        assert profile.identified_fraction(3) == 1.0

    def test_full_overlap_identifies_even_uniform(self):
        """Inherent: if |∩| = |V_R| then knowing the size reveals all."""
        profile = leakage_profile(ms(["a", "b"]), ms(["a", "b", "c"]))
        assert profile.certain_members == {"a", "b"}

    def test_zero_overlap_identifies_nonmembers(self):
        profile = leakage_profile(ms(["a", "b"]), ms(["x"]))
        assert profile.certain_nonmembers == {"a", "b"}


class TestProfileInternals:
    def test_r_class_sizes(self):
        profile = leakage_profile(ms(["a", "a", "b", "c"]), ms([]))
        assert profile.r_class_sizes == {2: 1, 1: 2}

    def test_identified_fraction_empty(self):
        profile = leakage_profile(ms([]), ms([]))
        assert profile.identified_fraction(0) == 0.0

    @given(occurrences, occurrences)
    @settings(max_examples=100)
    def test_certainty_is_sound(self, a, b):
        """Everything declared certain must actually be true."""
        profile = leakage_profile(ms(a), ms(b))
        truth = set(a) & set(b)
        assert profile.certain_members <= truth
        assert profile.certain_nonmembers.isdisjoint(truth)

    @given(occurrences, occurrences)
    @settings(max_examples=100)
    def test_partition_coverage(self, a, b):
        profile = leakage_profile(ms(a), ms(b))
        assert profile.identified <= set(a)
