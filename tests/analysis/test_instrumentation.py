"""Tests that live protocol runs perform *exactly* the operation counts
the Section 6.1 cost model predicts - the strongest validation of the
model short of wall-clock timing."""

from __future__ import annotations

import json
import random

import pytest

from repro.analysis.costmodel import ProtocolCostModel
from repro.analysis.instrumentation import MetricsRecorder, counting_suite
from repro.crypto.engine import create_engine
from repro.protocols.equijoin import run_equijoin
from repro.protocols.intersection import run_intersection
from repro.protocols.intersection_size import run_intersection_size
from repro.protocols.parties import IntersectionReceiver, IntersectionSender, PublicParams


@pytest.fixture()
def model():
    return ProtocolCostModel()


class TestIntersectionOpCounts:
    @pytest.mark.parametrize("n_r, n_s", [(5, 8), (1, 1), (10, 3), (0, 4)])
    def test_encryptions_match_model(self, model, n_r, n_s):
        cs = counting_suite(bits=64)
        run_intersection(
            [f"r{i}" for i in range(n_r)], [f"s{i}" for i in range(n_s)], cs.suite
        )
        predicted = model.intersection_ops(n_s, n_r)
        assert cs.counter.encryptions == predicted.encryptions  # 2(nS+nR)
        assert cs.counter.hashes == predicted.hashes            # nS+nR

    def test_intersection_size_same_counts(self, model):
        cs = counting_suite(bits=64)
        run_intersection_size(
            [f"r{i}" for i in range(7)], [f"s{i}" for i in range(9)], cs.suite
        )
        predicted = model.intersection_ops(9, 7)
        assert cs.counter.encryptions == predicted.encryptions


class TestJoinOpCounts:
    @pytest.mark.parametrize("n_r, n_s, common", [(5, 8, 3), (4, 4, 4), (6, 2, 0)])
    def test_encryptions_match_model(self, model, n_r, n_s, common):
        """The paper's join count: 2 Ce nS + 5 Ce nR."""
        cs = counting_suite(bits=64)
        shared = [f"c{i}" for i in range(common)]
        v_r = shared + [f"r{i}" for i in range(n_r - common)]
        ext = {v: b"x" for v in shared + [f"s{i}" for i in range(n_s - common)]}
        run_equijoin(v_r, ext, cs.suite)
        predicted = model.join_ops(n_s, n_r, common)
        assert cs.counter.encryptions == predicted.encryptions  # 2nS + 5nR
        assert cs.counter.hashes == predicted.hashes
        assert cs.counter.k_encryptions == predicted.k_encryptions  # nS + n∩


class TestCounterMechanics:
    def test_reset(self):
        cs = counting_suite(bits=64)
        run_intersection(["a"], ["a"], cs.suite)
        assert cs.counter.encryptions > 0
        cs.counter.reset()
        assert cs.counter.encryptions == 0
        assert cs.counter.hashes == 0

    def test_every_hash_call_counted(self):
        """A value in both sets is hashed by both parties - the model's
        C_h (n_S + n_R) term counts calls, not distinct values."""
        cs = counting_suite(bits=64)
        cs.suite.hash.hash_value("v")
        cs.suite.hash.hash_value("v")
        assert cs.counter.hashes == 2


class TestMetricsRecorder:
    def test_phases_and_attribution(self):
        rec = MetricsRecorder()
        with rec.phase("a"):
            rec.count_modexp(3)
        with rec.phase("b"):
            rec.count_modexp(2)
        rec.count_modexp(5)  # outside any phase
        assert rec.phases["a"].modexp == 3
        assert rec.phases["b"].modexp == 2
        assert rec.unattributed_modexp == 5
        assert rec.total_modexp == 10

    def test_nested_phase_attributes_innermost(self):
        rec = MetricsRecorder()
        with rec.phase("outer"):
            with rec.phase("inner"):
                rec.count_modexp(4)
            rec.count_modexp(1)
        assert rec.phases["inner"].modexp == 4
        assert rec.phases["outer"].modexp == 1

    def test_phase_reentry_accumulates(self):
        rec = MetricsRecorder()
        for _ in range(3):
            with rec.phase("loop"):
                rec.count_modexp(1)
        stats = rec.phases["loop"]
        assert stats.calls == 3
        assert stats.modexp == 3
        assert stats.wall_s > 0

    def test_report_is_json_dumpable(self):
        rec = MetricsRecorder()
        engine = create_engine(1, on_modexp=rec.count_modexp)
        rec.attach_engine(engine)
        with rec.phase("p"):
            engine.pow_many([2, 3], 5, 23)
        report = json.loads(json.dumps(rec.report()))
        assert report["engine"]["engine"] == "SerialEngine"
        assert report["total_modexp"] == 2
        assert report["unattributed_modexp"] == 0
        assert report["phases"]["p"]["modexp"] == 2
        assert report["phases"]["p"]["calls"] == 1
        assert report["total_wall_s"] >= 0

    def test_protocol_run_attributes_every_modexp(self):
        """A metered protocol run leaves nothing unattributed, and the
        per-phase counts sum to the cost model's 2(nS + nR)."""
        rec = MetricsRecorder()
        engine = create_engine(1, on_modexp=rec.count_modexp)
        rec.attach_engine(engine)
        params = PublicParams.for_bits(64)
        n = 6
        receiver = IntersectionReceiver(
            [f"r{i}" for i in range(n)], params, random.Random(1), engine=engine
        )
        sender = IntersectionSender(
            [f"s{i}" for i in range(n)], params, random.Random(2), engine=engine
        )
        with rec.phase("r.round1"):
            m1 = receiver.round1()
        with rec.phase("s.round1"):
            m2 = sender.round1(m1)
        with rec.phase("r.finish"):
            receiver.finish(m2)
        assert rec.unattributed_modexp == 0
        assert rec.total_modexp == 2 * (n + n)
        assert rec.phases["r.round1"].modexp == n
        assert rec.phases["s.round1"].modexp == 2 * n
        assert rec.phases["r.finish"].modexp == n
