"""Tests that live protocol runs perform *exactly* the operation counts
the Section 6.1 cost model predicts - the strongest validation of the
model short of wall-clock timing."""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import ProtocolCostModel
from repro.analysis.instrumentation import counting_suite
from repro.protocols.equijoin import run_equijoin
from repro.protocols.intersection import run_intersection
from repro.protocols.intersection_size import run_intersection_size


@pytest.fixture()
def model():
    return ProtocolCostModel()


class TestIntersectionOpCounts:
    @pytest.mark.parametrize("n_r, n_s", [(5, 8), (1, 1), (10, 3), (0, 4)])
    def test_encryptions_match_model(self, model, n_r, n_s):
        cs = counting_suite(bits=64)
        run_intersection(
            [f"r{i}" for i in range(n_r)], [f"s{i}" for i in range(n_s)], cs.suite
        )
        predicted = model.intersection_ops(n_s, n_r)
        assert cs.counter.encryptions == predicted.encryptions  # 2(nS+nR)
        assert cs.counter.hashes == predicted.hashes            # nS+nR

    def test_intersection_size_same_counts(self, model):
        cs = counting_suite(bits=64)
        run_intersection_size(
            [f"r{i}" for i in range(7)], [f"s{i}" for i in range(9)], cs.suite
        )
        predicted = model.intersection_ops(9, 7)
        assert cs.counter.encryptions == predicted.encryptions


class TestJoinOpCounts:
    @pytest.mark.parametrize("n_r, n_s, common", [(5, 8, 3), (4, 4, 4), (6, 2, 0)])
    def test_encryptions_match_model(self, model, n_r, n_s, common):
        """The paper's join count: 2 Ce nS + 5 Ce nR."""
        cs = counting_suite(bits=64)
        shared = [f"c{i}" for i in range(common)]
        v_r = shared + [f"r{i}" for i in range(n_r - common)]
        ext = {v: b"x" for v in shared + [f"s{i}" for i in range(n_s - common)]}
        run_equijoin(v_r, ext, cs.suite)
        predicted = model.join_ops(n_s, n_r, common)
        assert cs.counter.encryptions == predicted.encryptions  # 2nS + 5nR
        assert cs.counter.hashes == predicted.hashes
        assert cs.counter.k_encryptions == predicted.k_encryptions  # nS + n∩


class TestCounterMechanics:
    def test_reset(self):
        cs = counting_suite(bits=64)
        run_intersection(["a"], ["a"], cs.suite)
        assert cs.counter.encryptions > 0
        cs.counter.reset()
        assert cs.counter.encryptions == 0
        assert cs.counter.hashes == 0

    def test_every_hash_call_counted(self):
        """A value in both sets is hashed by both parties - the model's
        C_h (n_S + n_R) term counts calls, not distinct values."""
        cs = counting_suite(bits=64)
        cs.suite.hash.hash_value("v")
        cs.suite.hash.hash_value("v")
        assert cs.counter.hashes == 2
