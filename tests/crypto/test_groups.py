"""Tests for the QR_p group: membership, sampling, message encoding."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.groups import QRGroup
from repro.crypto.numtheory import is_quadratic_residue


class TestConstruction:
    def test_for_bits(self, group128):
        assert group128.bits == 128
        assert group128.p == 2 * group128.q + 1

    def test_rejects_p_not_3_mod_4(self):
        with pytest.raises(ValueError):
            QRGroup(13)  # 13 % 4 == 1

    def test_checked_accepts_safe_prime(self):
        assert QRGroup.checked(23).p == 23

    def test_checked_rejects_unsafe(self):
        with pytest.raises(ValueError):
            QRGroup.checked(19)  # prime but (19-1)/2 = 9 composite

    def test_order_and_len(self, group64):
        assert group64.order == group64.q
        assert len(group64) == group64.q


class TestMembership:
    def test_small_group_exhaustive(self):
        group = QRGroup(23)
        members = {x for x in range(1, 23) if x in group}
        expected = {x * x % 23 for x in range(1, 23)}
        assert members == expected
        assert len(members) == group.q == 11

    def test_non_integers_excluded(self, group64):
        assert "4" not in group64
        assert None not in group64

    def test_bounds_excluded(self, group64):
        assert 0 not in group64
        assert group64.p not in group64
        assert group64.p + 4 not in group64

    def test_generator_is_member(self, group64):
        assert group64.generator in group64


class TestOperations:
    def test_mul_inv(self, group128, rng):
        a = group128.random_element(rng)
        assert group128.mul(a, group128.inv(a)) == 1

    def test_pow_matches_builtin(self, group128, rng):
        x = group128.random_element(rng)
        e = group128.random_exponent(rng)
        assert group128.pow(x, e) == pow(x, e, group128.p)

    def test_closure(self, group128, rng):
        for _ in range(20):
            a = group128.random_element(rng)
            b = group128.random_element(rng)
            assert group128.mul(a, b) in group128

    def test_exponent_range(self, group128, rng):
        for _ in range(50):
            e = group128.random_exponent(rng)
            assert 1 <= e < group128.q


class TestSampling:
    def test_random_elements_are_members(self, group128, rng):
        for _ in range(50):
            assert group128.random_element(rng) in group128

    def test_small_group_sampling_covers(self):
        group = QRGroup(23)
        rng = random.Random(3)
        seen = {group.random_element(rng) for _ in range(500)}
        assert seen == {x * x % 23 for x in range(1, 23)}


class TestEncoding:
    def test_round_trip_small_values(self, group128):
        for m in [0, 1, 2, 255, 10**9]:
            assert group128.decode(group128.encode(m)) == m

    def test_encoded_is_member(self, group128):
        for m in range(0, 200, 7):
            assert group128.encode(m) in group128

    def test_capacity_bounds(self, group128):
        top = group128.message_capacity
        assert group128.decode(group128.encode(top)) == top
        with pytest.raises(ValueError):
            group128.encode(top + 1)
        with pytest.raises(ValueError):
            group128.encode(-1)

    def test_decode_rejects_non_member(self, group128):
        non_member = next(
            x
            for x in range(2, 100)
            if not is_quadratic_residue(x, group128.p)
        )
        with pytest.raises(ValueError):
            group128.decode(non_member)

    def test_encode_injective_small_group(self):
        group = QRGroup(23)
        images = [group.encode(m) for m in range(group.message_capacity + 1)]
        assert len(set(images)) == len(images)
        for m, image in enumerate(images):
            assert image in group
            assert group.decode(image) == m

    @given(st.integers(min_value=0, max_value=2**100))
    @settings(max_examples=200)
    def test_round_trip_property(self, m):
        group = QRGroup.for_bits(128)
        assert group.decode(group.encode(m)) == m

    def test_capacity_bytes_consistent(self, group128):
        assert 8 * group128.message_capacity_bytes <= group128.message_capacity.bit_length()
        assert group128.message_capacity_bytes >= 14  # 128-bit group
