"""Tests for the explicit random oracle."""

from __future__ import annotations

import pytest

from repro.crypto.oracle import RandomOracle


class TestRandomOracle:
    def test_memoized(self, group128):
        oracle = RandomOracle(group128, seed=1)
        assert oracle.hash_value("v") == oracle.hash_value("v")

    def test_deterministic_per_seed(self, group128):
        a = RandomOracle(group128, seed=5)
        b = RandomOracle(group128, seed=5)
        assert [a.hash_value(i) for i in range(10)] == [
            b.hash_value(i) for i in range(10)
        ]

    def test_different_seeds_differ(self, group128):
        a = RandomOracle(group128, seed=5)
        b = RandomOracle(group128, seed=6)
        assert [a.hash_value(i) for i in range(5)] != [
            b.hash_value(i) for i in range(5)
        ]

    def test_outputs_in_group(self, group128):
        oracle = RandomOracle(group128, seed=2)
        for v in ("a", 1, b"x"):
            assert oracle.hash_value(v) in group128

    def test_queries_counter(self, group128):
        oracle = RandomOracle(group128, seed=3)
        assert oracle.queries == 0
        oracle.hash_value("a")
        oracle.hash_value("a")
        oracle.hash_value("b")
        assert oracle.queries == 2

    def test_programmed_flag(self, group128):
        oracle = RandomOracle(group128, seed=4)
        assert not oracle.programmed("a")
        oracle.hash_value("a")
        assert oracle.programmed("a")


class TestProgramming:
    def test_program_then_query(self, group128, rng):
        oracle = RandomOracle(group128, seed=7)
        element = group128.random_element(rng)
        oracle.program("target", element)
        assert oracle.hash_value("target") == element

    def test_program_conflict_raises(self, group128, rng):
        oracle = RandomOracle(group128, seed=8)
        fixed = oracle.hash_value("v")
        other = group128.random_element(rng)
        if other == fixed:  # pragma: no cover - 2^-127
            return
        with pytest.raises(ValueError):
            oracle.program("v", other)

    def test_program_same_value_ok(self, group128):
        oracle = RandomOracle(group128, seed=9)
        fixed = oracle.hash_value("v")
        oracle.program("v", fixed)  # idempotent

    def test_program_rejects_non_element(self, group128):
        oracle = RandomOracle(group128, seed=10)
        with pytest.raises(ValueError):
            oracle.program("v", 0)

    def test_programmed_collision_enables_collision_test(self, group128, rng):
        """Programming two values to one element forges a collision -
        used to exercise the protocols' collision check."""
        oracle = RandomOracle(group128, seed=11)
        element = group128.random_element(rng)
        oracle.program("a", element)
        oracle.program("b", element)
        assert oracle.hash_value("a") == oracle.hash_value("b")
