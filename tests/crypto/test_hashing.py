"""Tests for domain hashing, collision bounds and the collision check."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.groups import QRGroup
from repro.crypto.hashing import (
    SquareHash,
    TryIncrementHash,
    collision_probability,
    find_collisions,
    value_to_bytes,
)

values = st.one_of(
    st.integers(min_value=-(2**64), max_value=2**64),
    st.text(max_size=30),
    st.binary(max_size=30),
)


class TestValueToBytes:
    def test_type_tagging_disambiguates(self):
        assert value_to_bytes(1) != value_to_bytes("1")
        assert value_to_bytes("1") != value_to_bytes(b"1")
        assert value_to_bytes(True) != value_to_bytes(1)
        assert value_to_bytes(False) != value_to_bytes(0)

    def test_rejects_unsupported(self):
        with pytest.raises(TypeError):
            value_to_bytes(3.14)
        with pytest.raises(TypeError):
            value_to_bytes(["a"])

    @given(values, values)
    @settings(max_examples=200)
    def test_injective(self, a, b):
        if a != b or type(a) is not type(b):
            if value_to_bytes(a) == value_to_bytes(b):
                assert a == b and type(a) is type(b)


class TestTryIncrementHash:
    def test_output_in_group(self, group128):
        h = TryIncrementHash(group128)
        for v in ["alice", 42, b"\x00\x01", "", 0, -5]:
            assert h.hash_value(v) in group128

    def test_deterministic(self, group128):
        h1 = TryIncrementHash(group128)
        h2 = TryIncrementHash(group128)
        assert h1.hash_value("x") == h2.hash_value("x")

    def test_label_separates(self, group128):
        h1 = TryIncrementHash(group128, label=b"a")
        h2 = TryIncrementHash(group128, label=b"b")
        assert h1.hash_value("x") != h2.hash_value("x")

    def test_distinct_values_distinct_hashes(self, group128):
        h = TryIncrementHash(group128)
        vals = [f"v{i}" for i in range(200)] + list(range(200))
        hashes = h.hash_set(vals)
        assert len(set(hashes)) == len(vals)

    def test_hash_set_preserves_order(self, group128):
        h = TryIncrementHash(group128)
        vals = ["c", "a", "b"]
        assert h.hash_set(vals) == [h.hash_value(v) for v in vals]

    @given(values)
    @settings(max_examples=100)
    def test_membership_property(self, v):
        group = QRGroup.for_bits(64)
        assert TryIncrementHash(group).hash_value(v) in group


class TestSquareHash:
    def test_output_in_group(self, group128):
        h = SquareHash(group128)
        for v in ["alice", 42, b"raw"]:
            assert h.hash_value(v) in group128

    def test_differs_from_try_increment(self, group128):
        vals = [f"v{i}" for i in range(10)]
        a = TryIncrementHash(group128).hash_set(vals)
        b = SquareHash(group128).hash_set(vals)
        assert a != b

    def test_deterministic(self, group128):
        h = SquareHash(group128)
        assert h.hash_value(7) == h.hash_value(7)


class TestCollisionProbability:
    def test_zero_for_tiny_n(self):
        assert collision_probability(0, 100) == 0.0
        assert collision_probability(1, 100) == 0.0

    def test_paper_number(self):
        """Section 3.2.2: n = 1e6, N ~ 2^1024 / 2 gives ~1e-295."""
        n, big_n = 10**6, 2**1023
        p = collision_probability(n, big_n)
        # 1 - exp(-x) ~ x for tiny x; the paper rounds the bound to
        # ~10^-295 (it plugs N = 10^307 and n(n-1)/2 = 10^12); the
        # exact exponent is -296.25.
        expected = n * (n - 1) / (2 * big_n)
        assert p == pytest.approx(expected, rel=1e-6)
        assert -297.0 < math.log10(expected) < -295.0

    def test_birthday_paradox_magnitude(self):
        # 23 people, 365 days: ~50.6% (the exponential bound gives ~50%)
        assert collision_probability(23, 365) == pytest.approx(0.5, abs=0.02)

    def test_monotone_in_n(self):
        big_n = 10**9
        probabilities = [collision_probability(n, big_n) for n in (10, 100, 1000)]
        assert probabilities == sorted(probabilities)


class TestFindCollisions:
    def test_no_collisions(self):
        assert find_collisions([5, 3, 1]) == []

    def test_single_collision(self):
        assert find_collisions([3, 1, 3]) == [3]

    def test_multiple_and_triplicate(self):
        assert find_collisions([2, 2, 2, 7, 7, 9]) == [2, 7]

    def test_empty(self):
        assert find_collisions([]) == []

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=60))
    @settings(max_examples=200)
    def test_matches_counter(self, hashes):
        from collections import Counter

        expected = sorted(v for v, c in Counter(hashes).items() if c > 1)
        assert find_collisions(hashes) == expected
