"""Tests for parallel batch exponentiation (Section 6.2's P model)."""

from __future__ import annotations

import random

import pytest

from repro.crypto.batch import (
    measure_speedup,
    parallel_pow,
    sequential_pow,
)
from repro.crypto.engine import shared_engine, shutdown_shared_engines
from repro.crypto.groups import QRGroup


@pytest.fixture(scope="module")
def group():
    return QRGroup.for_bits(128)


@pytest.fixture(scope="module")
def batch(group):
    rng = random.Random(1)
    xs = [group.random_element(rng) for _ in range(40)]
    e = group.random_exponent(rng)
    return xs, e, group.p


class TestCorrectness:
    def test_matches_sequential(self, batch):
        xs, e, p = batch
        assert parallel_pow(xs, e, p, processors=2) == sequential_pow(xs, e, p)

    def test_order_preserved(self, batch):
        xs, e, p = batch
        out = parallel_pow(xs, e, p, processors=3, chunk_size=4)
        assert out == [pow(x, e, p) for x in xs]

    def test_empty_batch(self, group):
        assert parallel_pow([], 3, group.p, processors=2) == []

    def test_single_processor_falls_back(self, batch):
        xs, e, p = batch
        assert parallel_pow(xs, e, p, processors=1) == sequential_pow(xs, e, p)

    def test_tiny_batch_falls_back(self, group):
        # Fewer items than 2*processors: no pool spun up.
        xs = [group.generator]
        assert parallel_pow(xs, 5, group.p, processors=8) == [
            pow(group.generator, 5, group.p)
        ]

    def test_explicit_chunk_size(self, batch):
        xs, e, p = batch
        for chunk in (1, 7, 100):
            assert parallel_pow(xs, e, p, processors=2, chunk_size=chunk) == (
                sequential_pow(xs, e, p)
            )


class TestMeasurement:
    def test_measure_speedup_fields(self, batch):
        xs, e, p = batch
        result = measure_speedup(xs, e, p, processors=2)
        assert result.batch == len(xs)
        assert result.processors == 2
        assert result.sequential_s > 0
        assert result.parallel_s > 0
        assert result.ideal == 2.0

    def test_speedup_ratio_positive(self, batch):
        xs, e, p = batch
        result = measure_speedup(xs, e, p, processors=2)
        # Tiny batches are overhead-dominated; we only require sanity.
        assert result.speedup > 0

    def test_pool_startup_reported_separately(self, batch):
        xs, e, p = batch
        shutdown_shared_engines()  # force a cold pool for this measurement
        try:
            result = measure_speedup(xs, e, p, processors=2)
            # Spawning worker processes takes real time, and it must be
            # excluded from the steady-state parallel figure.
            assert result.pool_startup_s > 0
            assert result.parallel_s > 0
        finally:
            shutdown_shared_engines()

    def test_serial_measurement_has_no_startup(self, batch):
        xs, e, p = batch
        result = measure_speedup(xs, e, p, processors=1)
        assert result.pool_startup_s == 0.0


class TestSharedExecutor:
    def test_repeated_calls_reuse_one_pool(self, batch):
        xs, e, p = batch
        try:
            parallel_pow(xs, e, p, processors=2)
            engine = shared_engine(2)
            pool = engine._pool
            assert pool is not None
            parallel_pow(xs, e, p, processors=2)
            assert shared_engine(2) is engine
            assert engine._pool is pool
            assert engine.parallel_batches >= 2
        finally:
            shutdown_shared_engines()
