"""Tests for 1-out-of-n oblivious transfer."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.groups import QRGroup
from repro.crypto.ot_n import OneOfNReceiver, OneOfNSender, run_ot_1_of_n


@pytest.fixture(scope="module")
def group():
    return QRGroup.for_bits(64)


class TestCorrectness:
    def test_every_index_small_n(self, group):
        rng = random.Random(1)
        messages = [f"msg-{i}".encode().ljust(8) for i in range(5)]
        for i in range(5):
            assert run_ot_1_of_n(group, messages, i, rng) == messages[i]

    def test_single_message(self, group):
        rng = random.Random(2)
        assert run_ot_1_of_n(group, [b"only"], 0, rng) == b"only"

    def test_power_of_two_boundary(self, group):
        rng = random.Random(3)
        for n in (2, 4, 8, 9, 15, 16, 17):
            messages = [bytes([j]) * 4 for j in range(n)]
            index = n - 1
            assert run_ot_1_of_n(group, messages, index, rng) == messages[index]

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_property(self, n, seed):
        group = QRGroup.for_bits(64)
        rng = random.Random(seed)
        messages = [rng.randbytes(6) for _ in range(n)]
        index = rng.randrange(n)
        assert run_ot_1_of_n(group, messages, index, rng) == messages[index]


class TestValidation:
    def test_empty_messages_rejected(self, group):
        with pytest.raises(ValueError):
            OneOfNSender(group, [], random.Random(1))

    def test_unequal_lengths_rejected(self, group):
        with pytest.raises(ValueError):
            OneOfNSender(group, [b"ab", b"abc"], random.Random(1))

    def test_index_bounds(self, group):
        with pytest.raises(ValueError):
            OneOfNReceiver(group, 4, 4, random.Random(1))
        with pytest.raises(ValueError):
            OneOfNReceiver(group, 4, -1, random.Random(1))

    def test_wrong_first_message_count_rejected(self, group):
        sender = OneOfNSender(group, [b"a" * 4] * 4, random.Random(1))
        with pytest.raises(ValueError):
            sender.respond([group.generator])  # needs 2 for n=4


class TestSecurityShape:
    def test_receiver_traffic_independent_of_index(self, group):
        """S sees one group element per bit position - same shape for
        every index (what hides the selection)."""
        for index in (0, 3, 6):
            sender = OneOfNSender(group, [b"m" * 4] * 7, random.Random(5))
            receiver = OneOfNReceiver(group, 7, index, random.Random(index))
            pk0s = receiver.first_messages(sender.c_points)
            assert len(pk0s) == 3  # ceil(log2 7)
            assert all(pk in group for pk in pk0s)

    def test_non_selected_messages_stay_hidden(self, group):
        """Decrypting another index's ciphertext with the receiver's
        key chain yields garbage."""
        from repro.crypto.ot_n import _combine_keys, _xor

        rng = random.Random(6)
        messages = [bytes([j]) * 8 for j in range(4)]
        sender = OneOfNSender(group, messages, rng)
        receiver = OneOfNReceiver(group, 4, 1, rng)
        transfer = sender.respond(receiver.first_messages(sender.c_points))
        keys = [
            r.receive(t) for r, t in zip(receiver._receivers, transfer.ot_transfers)
        ]
        # Keys are for index 1; try message 2 (differs in both bits).
        pad = _combine_keys(keys, 2, 8, b"enc")
        assert _xor(transfer.ciphertexts[2], pad) != messages[2]

    def test_ciphertext_count_is_n(self, group):
        sender = OneOfNSender(group, [b"m" * 4] * 9, random.Random(7))
        receiver = OneOfNReceiver(group, 9, 0, random.Random(8))
        transfer = sender.respond(receiver.first_messages(sender.c_points))
        assert len(transfer.ciphertexts) == 9
        assert len(transfer.ot_transfers) == 4  # ceil(log2 9)
