"""Tests for the pluggable crypto execution engine (Section 6.2's P)."""

from __future__ import annotations

import random

import pytest

from repro.crypto.engine import (
    DEFAULT_MIN_PARALLEL,
    MeteredEngine,
    ProcessPoolEngine,
    SerialEngine,
    create_engine,
    shared_engine,
    shutdown_shared_engines,
)
from repro.crypto.groups import QRGroup


@pytest.fixture(scope="module")
def group():
    return QRGroup.for_bits(128)


@pytest.fixture(scope="module")
def batch(group):
    rng = random.Random(11)
    xs = [group.random_element(rng) for _ in range(DEFAULT_MIN_PARALLEL + 8)]
    e = group.random_exponent(rng)
    return xs, e, group.p


def expected(xs, e, p):
    return [pow(x, e, p) for x in xs]


class TestSerialEngine:
    def test_matches_pow(self, batch):
        xs, e, p = batch
        assert SerialEngine().pow_many(xs, e, p) == expected(xs, e, p)

    def test_empty(self, group):
        assert SerialEngine().pow_many([], 3, group.p) == []

    def test_describe(self):
        assert SerialEngine().describe() == {
            "engine": "SerialEngine",
            "workers": 1,
        }


class TestProcessPoolEngine:
    def test_order_preserved_odd_chunks(self, batch):
        # Chunk sizes that do not divide the batch exercise the
        # flatten-in-order path (last chunk short).
        xs, e, p = batch
        with ProcessPoolEngine(processors=2) as engine:
            for chunk in (1, 3, 7, len(xs) - 1, len(xs), len(xs) + 5):
                assert engine.pow_many(xs, e, p, chunk_size=chunk) == expected(
                    xs, e, p
                )
            assert engine.parallel_batches == 6

    def test_tiny_batch_serial_no_pool(self, group):
        engine = ProcessPoolEngine(processors=4)
        xs = [group.generator] * (engine._threshold() - 1)
        assert engine.pow_many(xs, 5, group.p) == expected(xs, 5, group.p)
        assert engine._pool is None  # never spun up
        assert engine.serial_batches == 1
        assert engine.parallel_batches == 0

    def test_single_processor_stays_serial(self, batch):
        xs, e, p = batch
        engine = ProcessPoolEngine(processors=1)
        assert engine.pow_many(xs, e, p) == expected(xs, e, p)
        assert engine._pool is None

    def test_pool_reused_across_calls(self, batch):
        xs, e, p = batch
        with ProcessPoolEngine(processors=2) as engine:
            engine.pow_many(xs, e, p)
            first_pool = engine._pool
            engine.pow_many(xs, e, p)
            assert engine._pool is first_pool
            assert engine.parallel_batches == 2

    def test_broken_pool_degrades_to_serial(self, batch, monkeypatch):
        xs, e, p = batch
        engine = ProcessPoolEngine(processors=2)

        def boom():
            raise OSError("no forks for you")

        monkeypatch.setattr(engine, "_ensure_pool", boom)
        assert engine.pow_many(xs, e, p) == expected(xs, e, p)
        assert engine.pool_failures == 1
        assert engine._broken
        monkeypatch.undo()
        # Once broken, stays serial even though the pool would work now.
        assert engine.pow_many(xs, e, p) == expected(xs, e, p)
        assert engine._pool is None
        assert engine.serial_batches == 2

    def test_close_idempotent(self, batch):
        xs, e, p = batch
        engine = ProcessPoolEngine(processors=2)
        engine.pow_many(xs, e, p)
        engine.close()
        engine.close()
        assert engine._pool is None
        # A later batch transparently restarts the pool.
        assert engine.pow_many(xs, e, p) == expected(xs, e, p)
        engine.close()

    def test_warm_up_starts_workers(self):
        with ProcessPoolEngine(processors=2) as engine:
            engine.warm_up()
            assert engine._pool is not None

    def test_describe_counters(self, batch):
        xs, e, p = batch
        with ProcessPoolEngine(processors=2) as engine:
            engine.pow_many(xs, e, p)
            engine.pow_many(xs[:4], e, p)
            info = engine.describe()
        assert info["engine"] == "ProcessPoolEngine"
        assert info["workers"] == 2
        assert info["parallel_batches"] == 1
        assert info["serial_batches"] == 1
        assert info["pool_failures"] == 0


class TestMeteredEngine:
    def test_counts_and_delegates(self, batch):
        xs, e, p = batch
        seen = []
        engine = MeteredEngine(SerialEngine(), seen.append)
        assert engine.pow_many(xs, e, p) == expected(xs, e, p)
        assert engine.pow_many(xs[:5], e, p) == expected(xs[:5], e, p)
        assert seen == [len(xs), 5]
        assert engine.workers == 1
        assert engine.describe()["engine"] == "SerialEngine"


class TestCreateEngine:
    @pytest.mark.parametrize("workers", [None, 0, 1])
    def test_serial_for_small_workers(self, workers):
        assert isinstance(create_engine(workers), SerialEngine)

    def test_pool_for_many_workers(self):
        engine = create_engine(3)
        assert isinstance(engine, ProcessPoolEngine)
        assert engine.workers == 3
        engine.close()

    def test_metered_wrapping(self, batch):
        xs, e, p = batch
        seen = []
        engine = create_engine(1, on_modexp=seen.append)
        assert isinstance(engine, MeteredEngine)
        engine.pow_many(xs[:3], e, p)
        assert seen == [3]


class TestSharedEngines:
    def test_same_instance_per_processor_count(self):
        try:
            assert shared_engine(2) is shared_engine(2)
            assert shared_engine(2) is not shared_engine(3)
            assert isinstance(shared_engine(1), SerialEngine)
        finally:
            shutdown_shared_engines()

    def test_shutdown_clears_registry(self):
        first = shared_engine(2)
        shutdown_shared_engines()
        assert shared_engine(2) is not first
        shutdown_shared_engines()
