"""Unit and property tests for repro.crypto.numtheory."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.numtheory import (
    crt,
    egcd,
    is_probable_prime,
    is_quadratic_residue,
    jacobi,
    legendre,
    modinv,
    next_probable_prime,
    sqrt_mod,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [1, 4, 6, 9, 100, 7917, 2**31, 2**61 - 2]
# Carmichael numbers fool Fermat tests; Miller-Rabin must reject them.
CARMICHAEL = [561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265]


class TestPrimality:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        assert not is_probable_prime(n)

    @pytest.mark.parametrize("n", CARMICHAEL)
    def test_carmichael_numbers_rejected(self, n):
        assert not is_probable_prime(n)

    def test_negative_and_small(self):
        assert not is_probable_prime(-7)
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)

    def test_large_prime_product_rejected(self):
        p, q = 2**61 - 1, 2**31 - 1
        assert not is_probable_prime(p * q)

    def test_agrees_with_sieve_below_10000(self):
        sieve = [True] * 10000
        sieve[0] = sieve[1] = False
        for i in range(2, 100):
            if sieve[i]:
                for j in range(i * i, 10000, i):
                    sieve[j] = False
        for n in range(10000):
            assert is_probable_prime(n) == sieve[n], n

    def test_probabilistic_branch_large(self):
        # Above the deterministic-witness bound (~3.3e24).
        p = 2**89 - 1  # Mersenne prime
        assert is_probable_prime(p, rounds=20, rng=random.Random(1))
        assert not is_probable_prime(p + 2, rounds=20, rng=random.Random(1))


class TestNextPrime:
    def test_simple(self):
        assert next_probable_prime(1) == 2
        assert next_probable_prime(2) == 3
        assert next_probable_prime(3) == 5
        assert next_probable_prime(14) == 17

    def test_strictly_greater(self):
        assert next_probable_prime(17) == 19

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50)
    def test_result_is_prime_and_greater(self, n):
        p = next_probable_prime(n)
        assert p > n
        assert is_probable_prime(p)


class TestEgcdModinv:
    @given(st.integers(min_value=0, max_value=10**12), st.integers(min_value=1, max_value=10**12))
    @settings(max_examples=200)
    def test_egcd_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g

    @given(st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=100)
    def test_modinv_against_prime(self, a):
        p = 1_000_000_007
        inverse = modinv(a, p)
        assert (a * inverse) % p == 1
        assert 0 <= inverse < p

    def test_modinv_noninvertible_raises(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    def test_modinv_of_negative(self):
        assert ((-3) * modinv(-3, 17)) % 17 == 1


class TestJacobiLegendre:
    def test_requires_odd_positive(self):
        with pytest.raises(ValueError):
            jacobi(3, 4)
        with pytest.raises(ValueError):
            jacobi(3, 0)

    @pytest.mark.parametrize("p", [7, 11, 13, 101, 7919])
    def test_legendre_matches_brute_force(self, p):
        residues = {x * x % p for x in range(1, p)}
        for a in range(p):
            expected = 0 if a == 0 else (1 if a in residues else -1)
            assert legendre(a, p) == expected, (a, p)

    def test_multiplicativity(self):
        p = 1009
        rng = random.Random(0)
        for _ in range(100):
            a, b = rng.randrange(1, p), rng.randrange(1, p)
            assert jacobi(a * b % p, p) == jacobi(a, p) * jacobi(b, p)

    def test_is_quadratic_residue(self):
        assert is_quadratic_residue(4, 7)
        assert not is_quadratic_residue(3, 7)


class TestSqrtMod:
    @pytest.mark.parametrize("p", [7, 11, 103, 10007])  # p % 4 == 3
    def test_fast_path(self, p):
        assert p % 4 == 3
        for x in range(1, min(p, 60)):
            a = x * x % p
            root = sqrt_mod(a, p)
            assert root * root % p == a

    @pytest.mark.parametrize("p", [13, 17, 101, 10009])  # p % 4 == 1
    def test_tonelli_shanks_path(self, p):
        assert p % 4 == 1
        for x in range(1, min(p, 60)):
            a = x * x % p
            root = sqrt_mod(a, p)
            assert root * root % p == a

    def test_zero(self):
        assert sqrt_mod(0, 13) == 0

    def test_non_residue_raises(self):
        with pytest.raises(ValueError):
            sqrt_mod(3, 7)

    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=100)
    def test_roundtrip_property(self, x):
        p = 1_000_003  # prime, p % 4 == 3
        a = x * x % p
        if a == 0:
            return
        root = sqrt_mod(a, p)
        assert root * root % p == a


class TestCrt:
    def test_pair(self):
        x = crt([2, 3], [3, 5])
        assert x % 3 == 2 and x % 5 == 3

    def test_triple(self):
        x = crt([1, 2, 3], [5, 7, 11])
        assert x % 5 == 1 and x % 7 == 2 and x % 11 == 3

    def test_single(self):
        assert crt([4], [9]) == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            crt([], [])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            crt([1, 2], [3])

    def test_non_coprime_raises(self):
        with pytest.raises(ValueError):
            crt([1, 2], [4, 6])

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=100)
    def test_reconstruction_property(self, x):
        moduli = [101, 103, 107]
        residues = [x % m for m in moduli]
        product = 101 * 103 * 107
        assert crt(residues, moduli) == x % product
