"""Tests for the Paillier additively homomorphic cipher."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import generate_keypair


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=256, rng=random.Random(99))


@pytest.fixture(scope="module")
def rng():
    return random.Random(7)


class TestRoundTrip:
    @pytest.mark.parametrize("m", [0, 1, 2, 255, 10**9, 2**64])
    def test_encrypt_decrypt(self, keypair, rng, m):
        pk, sk = keypair
        assert sk.decrypt(pk.encrypt(m, rng)) == m

    def test_message_reduced_mod_n(self, keypair, rng):
        pk, sk = keypair
        assert sk.decrypt(pk.encrypt(pk.n + 5, rng)) == 5

    def test_randomized_encryption(self, keypair, rng):
        pk, _ = keypair
        assert pk.encrypt(42, rng) != pk.encrypt(42, rng)

    def test_decrypt_rejects_out_of_range(self, keypair):
        _, sk = keypair
        with pytest.raises(ValueError):
            sk.decrypt(0)
        with pytest.raises(ValueError):
            sk.decrypt(sk.public.n_squared)

    @given(st.integers(min_value=0, max_value=2**128))
    @settings(max_examples=50)
    def test_round_trip_property(self, m):
        pk, sk = generate_keypair(bits=128, rng=random.Random(1))
        assert sk.decrypt(pk.encrypt(m, random.Random(m))) == m % pk.n


class TestHomomorphisms:
    def test_addition(self, keypair, rng):
        pk, sk = keypair
        c = pk.add(pk.encrypt(1000, rng), pk.encrypt(234, rng))
        assert sk.decrypt(c) == 1234

    def test_add_plain(self, keypair, rng):
        pk, sk = keypair
        assert sk.decrypt(pk.add_plain(pk.encrypt(40, rng), 2, rng)) == 42

    def test_multiply_plain(self, keypair, rng):
        pk, sk = keypair
        assert sk.decrypt(pk.multiply_plain(pk.encrypt(6, rng), 7)) == 42

    def test_addition_wraps_mod_n(self, keypair, rng):
        pk, sk = keypair
        c = pk.add(pk.encrypt(pk.n - 1, rng), pk.encrypt(2, rng))
        assert sk.decrypt(c) == 1

    def test_sum_of_many(self, keypair, rng):
        pk, sk = keypair
        values = [rng.randrange(1000) for _ in range(30)]
        acc = pk.encrypt_zero(rng)
        for v in values:
            acc = pk.add(acc, pk.encrypt(v, rng))
        assert sk.decrypt(acc) == sum(values)

    @given(
        st.integers(min_value=0, max_value=2**60),
        st.integers(min_value=0, max_value=2**60),
    )
    @settings(max_examples=40)
    def test_additive_property(self, a, b):
        pk, sk = generate_keypair(bits=128, rng=random.Random(2))
        rng = random.Random(a ^ b)
        c = pk.add(pk.encrypt(a, rng), pk.encrypt(b, rng))
        assert sk.decrypt(c) == (a + b) % pk.n


class TestRerandomize:
    def test_same_plaintext_new_ciphertext(self, keypair, rng):
        pk, sk = keypair
        c = pk.encrypt(77, rng)
        c2 = pk.rerandomize(c, rng)
        assert c2 != c
        assert sk.decrypt(c2) == 77


class TestSignedDecrypt:
    def test_negative_representation(self, keypair, rng):
        pk, sk = keypair
        c = pk.add(pk.encrypt(5, rng), pk.encrypt(pk.n - 8, rng))  # 5 - 8
        assert sk.decrypt_signed(c) == -3

    def test_positive_passthrough(self, keypair, rng):
        pk, sk = keypair
        assert sk.decrypt_signed(pk.encrypt(9, rng)) == 9


class TestKeygen:
    def test_distinct_keys_per_rng(self):
        pk1, _ = generate_keypair(bits=128, rng=random.Random(1))
        pk2, _ = generate_keypair(bits=128, rng=random.Random(2))
        assert pk1.n != pk2.n

    def test_deterministic_per_seed(self):
        pk1, _ = generate_keypair(bits=128, rng=random.Random(3))
        pk2, _ = generate_keypair(bits=128, rng=random.Random(3))
        assert pk1.n == pk2.n

    def test_modulus_size(self):
        pk, _ = generate_keypair(bits=256, rng=random.Random(4))
        assert 250 <= pk.n.bit_length() <= 258
