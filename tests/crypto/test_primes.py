"""Tests for safe-prime generation and the embedded moduli table."""

from __future__ import annotations

import random

import pytest

from repro.crypto.numtheory import is_probable_prime
from repro.crypto.primes import (
    EMBEDDED_SAFE_PRIMES,
    generate_safe_prime,
    is_safe_prime,
    safe_prime,
    sophie_germain_order,
)


class TestEmbeddedTable:
    def test_expected_sizes_present(self):
        for bits in (64, 128, 256, 512, 768, 1024, 1536, 2048):
            assert bits in EMBEDDED_SAFE_PRIMES

    @pytest.mark.parametrize("bits", sorted(EMBEDDED_SAFE_PRIMES))
    def test_bit_length_matches_key(self, bits):
        assert EMBEDDED_SAFE_PRIMES[bits].bit_length() == bits

    @pytest.mark.parametrize("bits", [64, 96, 128, 160, 192, 256])
    def test_small_embedded_are_safe_primes(self, bits):
        assert is_safe_prime(EMBEDDED_SAFE_PRIMES[bits])

    @pytest.mark.parametrize("bits", [384, 512, 768, 1024])
    def test_medium_embedded_are_safe_primes(self, bits):
        # Fewer Miller-Rabin rounds: error < 4**-8 per test, plenty here.
        assert is_safe_prime(EMBEDDED_SAFE_PRIMES[bits], rounds=8)

    @pytest.mark.parametrize("bits", [1536, 2048])
    def test_rfc_moduli_are_safe_primes(self, bits):
        assert is_safe_prime(EMBEDDED_SAFE_PRIMES[bits], rounds=4)

    @pytest.mark.parametrize("bits", sorted(EMBEDDED_SAFE_PRIMES))
    def test_all_congruent_3_mod_4(self, bits):
        # Safe primes > 5 are always 3 mod 4 (q odd); the group encode
        # trick depends on it.
        assert EMBEDDED_SAFE_PRIMES[bits] % 4 == 3


class TestIsSafePrime:
    def test_accepts_small_safe_primes(self):
        for p in (7, 11, 23, 47, 59, 83, 107, 167, 179):
            assert is_safe_prime(p), p

    def test_rejects_primes_that_are_not_safe(self):
        # 13 is prime, (13-1)/2 = 6 is not.
        for p in (13, 17, 29, 31, 37, 41):
            assert not is_safe_prime(p), p

    def test_rejects_composites_and_small(self):
        for n in (0, 1, 2, 3, 4, 5, 9, 15, 21):
            assert not is_safe_prime(n), n


class TestGeneration:
    def test_generate_small(self):
        rng = random.Random(7)
        p = generate_safe_prime(24, rng)
        assert p.bit_length() == 24
        assert is_safe_prime(p)

    def test_generate_deterministic_given_rng(self):
        assert generate_safe_prime(20, random.Random(5)) == generate_safe_prime(
            20, random.Random(5)
        )

    def test_too_few_bits_raises(self):
        with pytest.raises(ValueError):
            generate_safe_prime(3)

    def test_safe_prime_serves_embedded(self):
        assert safe_prime(128) == EMBEDDED_SAFE_PRIMES[128]

    def test_safe_prime_generates_nonstandard_size(self):
        p = safe_prime(40, random.Random(11))
        assert p.bit_length() == 40
        assert is_safe_prime(p)


class TestOrder:
    def test_sophie_germain_order(self):
        p = EMBEDDED_SAFE_PRIMES[64]
        q = sophie_germain_order(p)
        assert 2 * q + 1 == p
        assert is_probable_prime(q)
