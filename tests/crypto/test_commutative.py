"""Tests for the commutative power cipher (Definition 2 properties)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.commutative import PowerCipher
from repro.crypto.groups import QRGroup

keys = st.integers(min_value=1)
seeds = st.integers(min_value=0, max_value=2**32)


def _cipher(bits=128):
    return PowerCipher(QRGroup.for_bits(bits))


class TestProperty1Commutativity:
    """f_e ∘ f_e' == f_e' ∘ f_e (Definition 2, Property 1)."""

    @given(seeds)
    @settings(max_examples=100)
    def test_commutes(self, seed):
        cipher = _cipher()
        rng = random.Random(seed)
        e1, e2 = cipher.sample_key(rng), cipher.sample_key(rng)
        x = cipher.group.random_element(rng)
        assert cipher.encrypt(e1, cipher.encrypt(e2, x)) == cipher.encrypt(
            e2, cipher.encrypt(e1, x)
        )

    def test_three_way(self, cipher128, rng):
        e = [cipher128.sample_key(rng) for _ in range(3)]
        x = cipher128.group.random_element(rng)
        orders = [
            (0, 1, 2), (0, 2, 1), (1, 0, 2), (1, 2, 0), (2, 0, 1), (2, 1, 0),
        ]
        results = set()
        for order in orders:
            y = x
            for i in order:
                y = cipher128.encrypt(e[i], y)
            results.add(y)
        assert len(results) == 1


class TestProperty2Bijection:
    """Each f_e is a bijection (Property 2)."""

    def test_bijection_on_small_group(self):
        cipher = PowerCipher(QRGroup(23))
        rng = random.Random(9)
        domain = sorted({x * x % 23 for x in range(1, 23)})
        for _ in range(10):
            e = cipher.sample_key(rng)
            image = sorted(cipher.encrypt(e, x) for x in domain)
            assert image == domain  # permutation of the domain

    def test_injective_on_samples(self, cipher128, rng):
        e = cipher128.sample_key(rng)
        xs = {cipher128.group.random_element(rng) for _ in range(64)}
        images = {cipher128.encrypt(e, x) for x in xs}
        assert len(images) == len(xs)

    def test_stays_in_group(self, cipher128, rng):
        e = cipher128.sample_key(rng)
        for _ in range(20):
            x = cipher128.group.random_element(rng)
            assert cipher128.encrypt(e, x) in cipher128.group


class TestProperty3Inversion:
    """f_e^{-1} computable given e (Property 3)."""

    @given(seeds)
    @settings(max_examples=100)
    def test_decrypt_inverts(self, seed):
        cipher = _cipher()
        rng = random.Random(seed)
        e = cipher.sample_key(rng)
        x = cipher.group.random_element(rng)
        assert cipher.decrypt(e, cipher.encrypt(e, x)) == x

    def test_invert_key(self, cipher128, rng):
        e = cipher128.sample_key(rng)
        e_inv = cipher128.invert_key(e)
        assert (e * e_inv) % cipher128.group.q == 1

    def test_inverse_key_is_decryption_key(self, cipher128, rng):
        e = cipher128.sample_key(rng)
        x = cipher128.group.random_element(rng)
        y = cipher128.encrypt(e, x)
        assert cipher128.encrypt(cipher128.invert_key(e), y) == x


class TestBatchHelpers:
    def test_encrypt_many_preserves_order(self, cipher128, rng):
        e = cipher128.sample_key(rng)
        xs = [cipher128.group.random_element(rng) for _ in range(10)]
        assert cipher128.encrypt_many(e, xs) == [cipher128.encrypt(e, x) for x in xs]

    def test_decrypt_many_roundtrip(self, cipher128, rng):
        e = cipher128.sample_key(rng)
        xs = [cipher128.group.random_element(rng) for _ in range(10)]
        assert cipher128.decrypt_many(e, cipher128.encrypt_many(e, xs)) == xs

    def test_encrypt_sorted_is_sorted(self, cipher128, rng):
        e = cipher128.sample_key(rng)
        xs = [cipher128.group.random_element(rng) for _ in range(16)]
        out = cipher128.encrypt_sorted(e, xs)
        assert out == sorted(out)
        assert sorted(out) == sorted(cipher128.encrypt_many(e, xs))


class TestValidation:
    def test_rejects_out_of_range_plaintext(self, cipher128, rng):
        e = cipher128.sample_key(rng)
        with pytest.raises(ValueError):
            cipher128.encrypt(e, 0)
        with pytest.raises(ValueError):
            cipher128.encrypt(e, cipher128.group.p)

    def test_for_bits_constructor(self):
        cipher = PowerCipher.for_bits(64)
        assert cipher.group.bits == 64


class TestKeySpace:
    def test_distinct_keys_distinct_ciphertexts_whp(self, cipher128, rng):
        x = cipher128.group.random_element(rng)
        images = {
            cipher128.encrypt(cipher128.sample_key(rng), x) for _ in range(32)
        }
        # 32 random keys on a 127-bit-order group: collisions impossible
        # in practice; equality here would indicate a broken keyspace.
        assert len(images) == 32
