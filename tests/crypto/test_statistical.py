"""Statistical sanity checks on the cryptographic substrate.

Property 4 (indistinguishability) cannot be tested, but gross
statistical defects can: over a *small* group the exact distributions
are enumerable, and chi-square tests catch any visible bias in the
hash, the sampler or the cipher. A failure here would not prove the
construction insecure - but it would prove the implementation wrong.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest
from scipy import stats

from repro.crypto.commutative import PowerCipher
from repro.crypto.groups import QRGroup
from repro.crypto.hashing import SquareHash, TryIncrementHash

# p = 2*83 + 1: a safe prime with 83 quadratic residues - small enough
# to enumerate, large enough for a meaningful chi-square.
SMALL_SAFE_PRIME = 167


@pytest.fixture(scope="module")
def small_group():
    return QRGroup.checked(SMALL_SAFE_PRIME)


@pytest.fixture(scope="module")
def domain(small_group):
    return sorted(x for x in range(1, small_group.p) if x in small_group)


def _chi_square_uniform(counts: Counter, categories: list) -> float:
    observed = [counts.get(c, 0) for c in categories]
    return stats.chisquare(observed).pvalue


class TestSamplerUniformity:
    def test_random_element_uniform(self, small_group, domain):
        rng = random.Random(1)
        counts = Counter(small_group.random_element(rng) for _ in range(20000))
        assert set(counts) <= set(domain)
        assert _chi_square_uniform(counts, domain) > 0.001

    def test_random_exponent_uniform(self, small_group):
        rng = random.Random(2)
        counts = Counter(small_group.random_exponent(rng) for _ in range(20000))
        categories = list(range(1, small_group.q))
        assert _chi_square_uniform(counts, categories) > 0.001


class TestHashUniformity:
    @pytest.mark.parametrize("hash_cls", [TryIncrementHash, SquareHash])
    def test_hash_outputs_uniform_over_residues(
        self, small_group, domain, hash_cls
    ):
        h = hash_cls(small_group)
        counts = Counter(h.hash_value(f"input-{i}") for i in range(20000))
        assert set(counts) <= set(domain)
        assert _chi_square_uniform(counts, domain) > 0.001


class TestCipherDistribution:
    def test_fixed_key_is_exact_permutation(self, small_group, domain):
        """f_e must hit every residue exactly once - zero tolerance."""
        cipher = PowerCipher(small_group)
        rng = random.Random(3)
        for _ in range(20):
            e = cipher.sample_key(rng)
            image = Counter(cipher.encrypt(e, x) for x in domain)
            assert all(count == 1 for count in image.values())
            assert set(image) == set(domain)

    def test_random_key_ciphertext_uniform(self, small_group, domain):
        """For fixed x and uniform e, f_e(x) is uniform on QR_p \\ {1}
        ... actually on the full group when x generates it (prime
        order: every non-identity x is a generator)."""
        cipher = PowerCipher(small_group)
        rng = random.Random(4)
        x = next(d for d in domain if d != 1)
        counts = Counter(
            cipher.encrypt(cipher.sample_key(rng), x) for _ in range(20000)
        )
        # Exponents 1..q-1 hit every power of x except x^0 = 1.
        categories = [d for d in domain if d != 1]
        assert 1 not in counts
        assert _chi_square_uniform(counts, categories) > 0.001

    def test_double_encryption_still_uniform(self, small_group, domain):
        cipher = PowerCipher(small_group)
        rng = random.Random(5)
        x = next(d for d in domain if d != 1)
        counts = Counter(
            cipher.encrypt(
                cipher.sample_key(rng), cipher.encrypt(cipher.sample_key(rng), x)
            )
            for _ in range(20000)
        )
        categories = [d for d in domain if d != 1]
        assert _chi_square_uniform(counts, categories) > 0.001


class TestEncodingBalance:
    def test_encode_image_covers_residues(self, small_group, domain):
        """encode() maps 0..q-2 onto distinct residues - near-total
        coverage of QR_p (all but one element)."""
        images = {
            small_group.encode(m) for m in range(small_group.message_capacity + 1)
        }
        assert len(images) == small_group.message_capacity + 1
        assert images <= set(domain)
        assert len(set(domain) - images) == 1
