"""Tests for 1-out-of-2 oblivious transfer and its cost model."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.groups import QRGroup
from repro.crypto.ot import NaorPinkasCostModel, OTReceiver, OTSender, run_ot


class TestOTCorrectness:
    @pytest.mark.parametrize("choice", [0, 1])
    def test_receiver_gets_chosen_message(self, group128, rng, choice):
        m0, m1 = b"message-zero!!", b"message-one!!!"
        assert run_ot(group128, m0, m1, choice, rng) == (m0, m1)[choice]

    def test_many_random_transfers(self, group128):
        rng = random.Random(77)
        for i in range(20):
            m0 = rng.randbytes(24)
            m1 = rng.randbytes(24)
            choice = rng.randrange(2)
            assert run_ot(group128, m0, m1, choice, rng) == (m0, m1)[choice]

    def test_unequal_lengths_rejected(self, group128, rng):
        with pytest.raises(ValueError):
            OTSender(group128, b"ab", b"abc", rng)

    def test_invalid_choice_rejected(self, group128, rng):
        with pytest.raises(ValueError):
            OTReceiver(group128, 2, rng)

    @given(st.binary(min_size=1, max_size=40), st.binary(min_size=1, max_size=40),
           st.integers(min_value=0, max_value=1), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30)
    def test_correctness_property(self, m0, m1, choice, seed):
        group = QRGroup.for_bits(64)
        padded = max(len(m0), len(m1))
        m0, m1 = m0.ljust(padded, b"\0"), m1.ljust(padded, b"\0")
        assert run_ot(group, m0, m1, choice, random.Random(seed)) == (m0, m1)[choice]


class TestOTSecurityShape:
    def test_other_message_not_recovered(self, group128, rng):
        """Decrypting the wrong ciphertext with the receiver's key must
        not yield the other message (structural sanity, not a proof)."""
        from repro.crypto.ot import _mask, _xor

        m0, m1 = b"0" * 16, b"1" * 16
        sender = OTSender(group128, m0, m1, rng)
        receiver = OTReceiver(group128, 0, rng)
        transfer = sender.respond(receiver.first_message(sender.c_point))
        # Receiver knows k for PK_0 = g^k; try using it on branch 1.
        wrong_key = group128.pow(transfer.g_r1, receiver._k)
        guess = _xor(transfer.c1, _mask(wrong_key, group128, len(m1), b"1"))
        assert guess != m1

    def test_first_message_uniform_looking(self, group128, rng):
        """PK_0 is a group element regardless of the choice bit."""
        for choice in (0, 1):
            sender = OTSender(group128, b"x" * 8, b"y" * 8, rng)
            receiver = OTReceiver(group128, choice, rng)
            assert receiver.first_message(sender.c_point) in group128


class TestNaorPinkasCostModel:
    """The Appendix A.1.1 numbers."""

    def test_optimal_l_is_8(self):
        assert NaorPinkasCostModel(ce_over_cx=1000.0).optimal_l() == 8

    def test_amortized_cost_at_optimum(self):
        model = NaorPinkasCostModel(ce_over_cx=1000.0)
        assert model.computation_cost(8) == pytest.approx(0.157, abs=1e-3)

    def test_communication_at_optimum(self):
        model = NaorPinkasCostModel(k1_bits=100)
        assert model.communication_bits(8) == pytest.approx(32 * 100)

    def test_cost_formula(self):
        model = NaorPinkasCostModel(ce_over_cx=1000.0)
        for l in (1, 2, 4, 8, 16):
            expected = 1 / l + (2**l / l) / 1000.0
            assert model.computation_cost(l) == pytest.approx(expected)

    def test_invalid_l(self):
        with pytest.raises(ValueError):
            NaorPinkasCostModel().computation_cost(0)

    def test_optimum_shifts_with_cheaper_multiplication(self):
        fast_mul = NaorPinkasCostModel(ce_over_cx=10**6)
        assert fast_mul.optimal_l() > 8
