"""Tests for the ext-information cipher K (Section 4.2)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ext_cipher import BlockExtCipher, MultiplicativeExtCipher
from repro.crypto.groups import QRGroup


@pytest.fixture()
def single(group128):
    return MultiplicativeExtCipher(group128)


@pytest.fixture()
def block(group128):
    return BlockExtCipher(group128)


class TestMultiplicative:
    def test_round_trip(self, single, group128, rng):
        kappa = group128.random_element(rng)
        for payload in (b"", b"x", b"hello world", b"\x00\x00\x01"):
            assert single.decrypt(kappa, single.encrypt(kappa, payload)) == payload

    def test_leading_zero_bytes_preserved(self, single, group128, rng):
        kappa = group128.random_element(rng)
        payload = b"\x00\x00\x00abc"
        assert single.decrypt(kappa, single.encrypt(kappa, payload)) == payload

    def test_capacity_enforced(self, single, group128, rng):
        kappa = group128.random_element(rng)
        too_big = b"x" * (single.capacity_bytes + 1)
        with pytest.raises(ValueError):
            single.encrypt(kappa, too_big)

    def test_max_capacity_payload(self, single, group128, rng):
        kappa = group128.random_element(rng)
        payload = b"\xff" * single.capacity_bytes
        assert single.decrypt(kappa, single.encrypt(kappa, payload)) == payload

    def test_key_must_be_residue(self, single, group128):
        non_member = next(x for x in range(2, 100) if x not in group128)
        with pytest.raises(ValueError):
            single.encrypt(non_member, b"m")

    def test_ciphertext_is_group_element(self, single, group128, rng):
        kappa = group128.random_element(rng)
        assert single.encrypt(kappa, b"payload") in group128

    def test_wrong_key_gives_wrong_plaintext(self, single, group128, rng):
        k1 = group128.random_element(rng)
        k2 = group128.random_element(rng)
        if k1 == k2:  # pragma: no cover
            return
        c = single.encrypt(k1, b"secret!")
        try:
            recovered = single.decrypt(k2, c)
        except ValueError:
            return  # frame check failed - fine, plaintext not revealed
        assert recovered != b"secret!"

    def test_perfect_secrecy_shape(self, group128):
        """Same plaintext under uniform keys covers many ciphertexts;
        two plaintexts have identically-distributed ciphertext sets
        (both are cosets of the full group)."""
        cipher = MultiplicativeExtCipher(group128)
        rng = random.Random(6)
        kappas = [group128.random_element(rng) for _ in range(64)]
        c_a = {cipher.encrypt(k, b"aaaa") for k in kappas}
        c_b = {cipher.encrypt(k, b"bbbb") for k in kappas}
        assert len(c_a) == 64  # one distinct ciphertext per key
        assert len(c_b) == 64

    @given(st.binary(max_size=13), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=100)
    def test_round_trip_property(self, payload, seed):
        group = QRGroup.for_bits(128)
        cipher = MultiplicativeExtCipher(group)
        kappa = group.random_element(random.Random(seed))
        assert cipher.decrypt(kappa, cipher.encrypt(kappa, payload)) == payload


class TestBlock:
    def test_round_trip_long_payloads(self, block, group128, rng):
        kappa = group128.random_element(rng)
        for size in (0, 1, 13, 14, 15, 100, 1000):
            payload = bytes(range(256)) * (size // 256 + 1)
            payload = payload[:size]
            assert block.decrypt(kappa, block.encrypt(kappa, payload)) == payload

    def test_block_boundary_exact_multiple(self, block, group128, rng):
        kappa = group128.random_element(rng)
        chunk = group128.message_capacity_bytes - 2
        payload = b"A" * (3 * chunk)
        ciphertext = block.encrypt(kappa, payload)
        assert len(ciphertext) == 3
        assert block.decrypt(kappa, ciphertext) == payload

    def test_empty_payload_one_block(self, block, group128, rng):
        kappa = group128.random_element(rng)
        ciphertext = block.encrypt(kappa, b"")
        assert len(ciphertext) == 1
        assert block.decrypt(kappa, ciphertext) == b""

    def test_blocks_are_group_elements(self, block, group128, rng):
        kappa = group128.random_element(rng)
        for element in block.encrypt(kappa, b"z" * 100):
            assert element in group128

    def test_key_must_be_residue(self, block, group128):
        non_member = next(x for x in range(2, 100) if x not in group128)
        with pytest.raises(ValueError):
            block.encrypt(non_member, b"m")

    def test_same_payload_different_keys_differ(self, block, group128, rng):
        k1, k2 = group128.random_element(rng), group128.random_element(rng)
        if k1 == k2:  # pragma: no cover
            return
        assert block.encrypt(k1, b"payload") != block.encrypt(k2, b"payload")

    def test_label_separation(self, group128, rng):
        kappa = group128.random_element(rng)
        a = BlockExtCipher(group128, label=b"one").encrypt(kappa, b"data")
        b = BlockExtCipher(group128, label=b"two").encrypt(kappa, b"data")
        assert a != b

    @given(st.binary(max_size=200), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50)
    def test_round_trip_property(self, payload, seed):
        group = QRGroup.for_bits(128)
        cipher = BlockExtCipher(group)
        kappa = group.random_element(random.Random(seed))
        assert cipher.decrypt(kappa, cipher.encrypt(kappa, payload)) == payload
