"""Cross-session isolation under concurrency (the async-server stress).

Satellite acceptance for the event-loop refactor: 100+ concurrent
sessions through the sharded async server, asserting that no session
ever observes another's frames, journals, or results, and that
reconnect routing keeps working while the rest of the herd is in
flight.

Isolation is asserted the strong way: every session carries *distinct*
private data, so any cross-session frame or result leak shows up as a
wrong answer (the session layer's CRC seals and per-session sequence
cursors would turn a misrouted frame into a nak or a mismatched
answer, never silence). Journal isolation is asserted on disk: each
shard's journal directory must contain exactly the sessions whose ids
route to it.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time

import pytest

from repro.net import tcp
from repro.net.aio import connect_receiver_async
from repro.net.session import (
    ReceiverSession,
    RetryPolicy,
    ServerBusyError,
    SessionConfig,
    busy_backoff_s,
)
from repro.net.shard import ShardedProtocolServer
from repro.protocols.parties import PublicParams
from repro.protocols.spec import get_spec

BITS = 96
SESSIONS = 104
SHARDS = 4


@pytest.fixture(scope="module")
def params():
    return PublicParams.for_bits(BITS)


def _config(timeout_s=15.0):
    return SessionConfig(
        timeout_s=timeout_s,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.02, max_delay_s=0.2),
        max_reconnects=8,
        fin_grace_s=0.05,
    )


def _sender_values(sessions: int) -> list[str]:
    return ["shared"] + [f"item-{i}" for i in range(sessions)]


def _receiver_values(i: int) -> list[str]:
    # Distinct per session: "secret-i" never intersects, "item-i" is
    # session i's private marker inside the intersection.
    return ["shared", f"item-{i}", f"secret-{i}"]


def _expected(i: int) -> list[str]:
    return sorted(["shared", f"item-{i}"])


def test_isolated_answers_and_journals_at_scale(params, tmp_path):
    """104 concurrent streaming sessions, 4 shards, journaled.

    Each session must get exactly its own intersection back, and each
    shard's journal directory must hold exactly the session ids that
    ``sid % shards`` routes to it.
    """
    journal_root = tmp_path / "journals"
    server = ShardedProtocolServer(
        {"intersection": (_sender_values(SESSIONS), params)},
        shards=SHARDS,
        config=_config(),
        max_sessions=64,
        chunk_size=2,
        journal_dir=journal_root,
        busy_retry_hint_s=0.05,
        backlog=256,
    )

    async def one(i: int) -> tuple[int, list]:
        # Session ids are random, so sid % shards is only uniform in
        # expectation - a busy refusal from an unlucky shard is part of
        # the contract, and the client waits out the hint and redials.
        rng = random.Random(10_000 + i)
        while True:
            try:
                answer, _stats = await connect_receiver_async(
                    "intersection", _receiver_values(i), rng,
                    "127.0.0.1", server.port, config=_config(),
                    chunk_size=2,
                )
                return i, sorted(answer)
            except ServerBusyError as exc:
                await asyncio.sleep(busy_backoff_s(exc.retry_after_s, rng))

    async def herd() -> list:
        return await asyncio.gather(*(one(i) for i in range(SESSIONS)))

    with server:
        outcomes = asyncio.run(herd())
        rows = server.results()

    # Results: every session saw exactly its own intersection.
    assert len(outcomes) == SESSIONS
    for i, answer in outcomes:
        assert answer == _expected(i), f"session {i} got a foreign answer"

    # Supervision: one record per session, all done, shard == sid % N.
    done = [r for r in rows if r["status"] == "done"]
    assert len(done) == SESSIONS
    assert len({r["session_id"] for r in done}) == SESSIONS
    for row in done:
        assert row["shard"] == row["session_id"] % SHARDS

    # Journals: each shard directory holds exactly its own sessions,
    # every one rotated to .done (completed cleanly, never shared).
    seen_ids = set()
    for shard_index in range(SHARDS):
        shard_dir = journal_root / f"shard-{shard_index}"
        wals = list(shard_dir.glob("*.wal"))
        assert wals == [], f"unrotated journals on shard {shard_index}"
        for path in shard_dir.glob("sender-intersection-*.done"):
            sid = int(path.name.split("-")[-1].split(".")[0], 16)
            assert sid % SHARDS == shard_index, (
                f"journal {path.name} leaked onto shard {shard_index}"
            )
            seen_ids.add(sid)
    assert seen_ids == {r["session_id"] for r in done}


def test_reconnect_routing_while_the_herd_is_in_flight(params):
    """Sessions that lose their connection mid-run must resume on the
    worker that owns them while dozens of other sessions are active."""
    flaky = 12
    steady = 48
    server = ShardedProtocolServer(
        {"intersection": (_sender_values(flaky + steady), params)},
        shards=SHARDS,
        config=_config(),
        max_sessions=64,
        busy_retry_hint_s=0.05,
        backlog=256,
    )

    def make_receiver(i):
        def factory(wire):
            return get_spec("intersection").make_receiver(
                _receiver_values(i),
                PublicParams.from_wire(tuple(wire)),
                random.Random(20_000 + i),
            )
        return factory

    results: dict[int, list] = {}
    session_ids: dict[int, int] = {}
    errors: list = []

    def run_flaky(i: int) -> None:
        try:
            session = ReceiverSession(
                "intersection", make_receiver(i),
                config=_config(), rng=random.Random(30_000 + i),
            )
            dials = {"count": 0}

            def dial():
                dials["count"] += 1
                endpoint = tcp._dial(
                    "127.0.0.1", server.port, timeout=10.0
                )
                if dials["count"] == 1:
                    original_recv = endpoint.recv

                    def recv_once_then_die():
                        original_recv()
                        endpoint.close()
                        raise ConnectionError("injected drop")

                    endpoint.recv = recv_once_then_die
                return endpoint

            answer = session.run(dial)
            assert dials["count"] >= 2
            results[i] = sorted(answer)
            session_ids[i] = session.session_id
        except BaseException as exc:  # surfaced by the main thread
            errors.append((i, exc))

    async def steady_one(i: int) -> tuple[int, list]:
        answer, _stats = await connect_receiver_async(
            "intersection", _receiver_values(i), random.Random(40_000 + i),
            "127.0.0.1", server.port, config=_config(),
        )
        return i, sorted(answer)

    with server:
        threads = [
            threading.Thread(target=run_flaky, args=(i,), daemon=True)
            for i in range(flaky)
        ]
        for thread in threads:
            thread.start()

        async def herd():
            return await asyncio.gather(
                *(steady_one(i) for i in range(flaky, flaky + steady))
            )

        steady_outcomes = asyncio.run(herd())
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        deadline = time.monotonic() + 10.0
        while True:
            rows = server.results()
            done = {
                r["session_id"] for r in rows if r["status"] == "done"
            }
            if len(done) >= flaky + steady:
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)

    assert errors == []
    for i, answer in steady_outcomes:
        assert answer == _expected(i)
    for i in range(flaky):
        assert results[i] == _expected(i)
    # Each flaky session resumed on its owning worker: exactly one
    # record, landed on sid % SHARDS.
    by_sid = {r["session_id"]: r for r in rows}
    for i, sid in session_ids.items():
        assert by_sid[sid]["status"] == "done"
        assert by_sid[sid]["shard"] == sid % SHARDS
