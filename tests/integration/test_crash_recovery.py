"""Chaos tests: SIGKILL the journaled sender mid-run, restart, recover.

The sender runs as a real subprocess (``_server_main.py``) with an
on-disk journal, armed to hang right after journaling its first
outbound round - durable on disk, never shipped. The test SIGKILLs it
there (the worst crash point: the client has no idea the round
exists), restarts it against the same journal directory, and asserts:

* the receiver still obtains the exact protocol answer, and
* every frame the client saw - including all post-resume frames - is
  byte-identical to an uninterrupted run (the PR 3 golden fixture).

Run for equijoin and equijoin-sum, the two protocols whose sender
round payloads carry per-value state worth losing.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.net import tcp
from repro.net.journal import DONE_SUFFIX, WAL_SUFFIX
from repro.net.serialization import (
    decode,
    encode,
    fold_chunk_frames,
    is_chunk_end,
    is_chunk_frame,
)
from repro.net.session import ReceiverSession, RetryPolicy, SessionConfig
from repro.protocols.parties import PublicParams
from repro.protocols.spec import PROTOCOLS

SERVER_MAIN = Path(__file__).with_name("_server_main.py")
FIXTURE = json.loads(
    (Path(__file__).parent.parent / "protocols" / "golden_transcripts.json")
    .read_text()
)
BITS = FIXTURE["bits"]
N = FIXTURE["n"]


def _receiver_inputs(name: str):
    half = N // 2
    v_r = [f"r{i}" for i in range(N - half)] + [f"c{i}" for i in range(half)]
    if name == "equijoin-size":
        return v_r + v_r[:5]
    return v_r


def _canonical_answer(name, answer, match_count=None):
    if name == "intersection":
        return sorted(answer, key=repr)
    if name == "equijoin":
        return [(v, answer[v]) for v in sorted(answer, key=repr)]
    if name == "equijoin-sum":
        return [answer, match_count]
    return answer


def _digest(payload) -> str:
    return hashlib.sha256(encode(payload)).hexdigest()


class _FrameLog:
    """Transport wrapper logging msg-frame payload bytes by sequence."""

    def __init__(self, transport, frames):
        self._transport = transport
        self.frames = frames

    def send(self, frame):
        if isinstance(frame, tuple) and frame and frame[0] == "msg":
            self.frames.setdefault(("sent", frame[1]), frame[2])
        self._transport.send(frame)

    def recv(self):
        frame = self._transport.recv()
        if isinstance(frame, tuple) and frame and frame[0] == "msg":
            self.frames.setdefault(("received", frame[1]), frame[2])
        return frame

    def settimeout(self, timeout):
        self._transport.settimeout(timeout)

    def close(self):
        self._transport.close()


def _spawn_sender(name, journal_dir, port_file, stall_marker=None,
                  chunk_size=None, stall_round=0):
    cmd = [
        sys.executable, str(SERVER_MAIN),
        "--protocol", name,
        "--journal-dir", str(journal_dir),
        "--port-file", str(port_file),
        "--bits", str(BITS),
        "--n", str(N),
    ]
    if chunk_size is not None:
        cmd += ["--chunk-size", str(chunk_size)]
    if stall_marker is not None:
        cmd += ["--stall-marker", str(stall_marker),
                "--stall-round", str(stall_round)]
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )


def _wait_for(predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.mark.parametrize("name", ["equijoin", "equijoin-sum"])
def test_sigkill_mid_run_recovers_byte_identical(name, tmp_path):
    journal_dir = tmp_path / "journal"
    port_file = tmp_path / "port"
    stall_marker = tmp_path / "stall"
    spec = PROTOCOLS[name]
    config = SessionConfig(
        timeout_s=2.0,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.02, max_delay_s=0.2),
        max_reconnects=60,
        fin_grace_s=0.1,
    )

    victim = _spawn_sender(name, journal_dir, port_file, stall_marker)
    restarted = None
    try:
        _wait_for(port_file.exists, 30.0, "the sender to bind")

        frames: dict = {}
        session = ReceiverSession(
            name,
            lambda wire: spec.make_receiver(
                _receiver_inputs(name),
                PublicParams.from_wire(tuple(wire)),
                random.Random("R"),
            ),
            config=config,
            rng=random.Random(2),
        )

        def dial():
            port = int(port_file.read_text())
            sock_endpoint = tcp._dial("127.0.0.1", port, config.timeout_s)
            return _FrameLog(sock_endpoint, frames)

        answer_box: dict = {}

        def client():
            answer_box["answer"] = session.run(dial)

        thread = threading.Thread(target=client)
        thread.start()

        # The sender hangs right after journaling its first outbound
        # round (durable, unshipped): the worst-case crash point.
        _wait_for(stall_marker.exists, 60.0, "the stall marker")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10)

        restarted = _spawn_sender(name, journal_dir, port_file)
        thread.join(timeout=120)
        assert not thread.is_alive(), "receiver never completed"
        out, err = restarted.communicate(timeout=60)
        assert restarted.returncode == 0, err
        assert "recovered rounds=" in out, (
            f"restart did not recover from the journal: {out!r}"
        )

        # Exact answer despite the crash.
        record = FIXTURE["protocols"][name]
        answer = answer_box["answer"]
        match_count = getattr(session._machine.state, "match_count", None)
        assert _digest(
            _canonical_answer(name, answer, match_count)
        ) == record["answer"]
        if name == "equijoin":
            half = N // 2
            assert answer == {
                f"c{i}": f"payload:c{i}".encode() for i in range(half)
            }
        assert f"DONE size_v_r={record['size_v_r']}" in out
        assert session.stats.reconnects >= 1

        # Every frame - pre-crash and post-resume - byte-identical to
        # an uninterrupted run.
        digests = {}
        sent = received = 0
        for i, rnd in enumerate(spec.rounds, start=1):
            if rnd.source == "R":
                wire_bytes = frames[("sent", sent)]
                sent += 1
            else:
                wire_bytes = frames[("received", received)]
                received += 1
            digests[f"m{i}"] = hashlib.sha256(wire_bytes).hexdigest()
        assert digests == record["wires"], (
            f"post-resume transcript diverges for {name}"
        )

        # The completed journal rotated out of the recovery scan.
        assert not list(journal_dir.glob(f"sender-*{WAL_SUFFIX}"))
        assert list(journal_dir.glob(f"sender-*{DONE_SUFFIX}"))
    finally:
        for proc in (victim, restarted):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


# ----------------------------------------------------------------------
# Chunked streams: the resume cursor is (round, chunk), not just round.
# ----------------------------------------------------------------------
def _group_chunk_rounds(frames):
    """Split one direction's decoded frame stream on chunk-end marks."""
    rounds, current = [], []
    for frame in frames:
        if is_chunk_frame(frame):
            current.append(frame)
        elif is_chunk_end(frame):
            current.append(frame)
            rounds.append(current)
            current = []
        else:
            assert not current, "whole frame interleaved with chunks"
            rounds.append([frame])
    assert not current, "chunk run never terminated"
    return rounds


def _stream_digest(frames) -> str:
    stream = hashlib.sha256()
    for frame in frames:
        stream.update(encode(frame))
    return stream.hexdigest()


def test_sigkill_mid_chunk_resumes_byte_identical(tmp_path):
    """SIGKILL the sender *inside* a streaming round - after journaling
    chunk 2 of m2, before shipping it - and restart it. The (round,
    chunk) cursor must pick the stream back up so the client observes
    the exact pinned chunk-frame transcript, chunk for chunk."""
    name = "equijoin"
    chunk_size = FIXTURE["chunk_size"]
    journal_dir = tmp_path / "journal"
    port_file = tmp_path / "port"
    stall_marker = tmp_path / "stall"
    spec = PROTOCOLS[name]
    config = SessionConfig(
        timeout_s=2.0,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.02, max_delay_s=0.2),
        max_reconnects=60,
        fin_grace_s=0.1,
    )

    victim = _spawn_sender(
        name, journal_dir, port_file, stall_marker,
        chunk_size=chunk_size, stall_round=2,
    )
    restarted = None
    try:
        _wait_for(port_file.exists, 30.0, "the sender to bind")

        frames: dict = {}
        session = ReceiverSession(
            name,
            lambda wire: spec.make_receiver(
                _receiver_inputs(name),
                PublicParams.from_wire(tuple(wire)),
                random.Random("R"),
            ),
            config=config,
            rng=random.Random(2),
            chunk_size=chunk_size,
        )

        def dial():
            port = int(port_file.read_text())
            sock_endpoint = tcp._dial("127.0.0.1", port, config.timeout_s)
            return _FrameLog(sock_endpoint, frames)

        answer_box: dict = {}

        def client():
            answer_box["answer"] = session.run(dial)

        thread = threading.Thread(target=client)
        thread.start()

        # The sender hangs after journaling m2 chunk 2 - durable,
        # unshipped, mid-round (equijoin m2 streams 12 chunks at
        # chunk_size=7 for n=40). The crash lands between chunks.
        _wait_for(stall_marker.exists, 60.0, "the stall marker")
        assert stall_marker.read_text() == "2", "stall missed mid-round"
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10)

        restarted = _spawn_sender(
            name, journal_dir, port_file, chunk_size=chunk_size
        )
        thread.join(timeout=120)
        assert not thread.is_alive(), "receiver never completed"
        out, err = restarted.communicate(timeout=60)
        assert restarted.returncode == 0, err
        assert "recovered rounds=" in out, (
            f"restart did not recover from the journal: {out!r}"
        )

        # Exact answer despite the mid-stream crash.
        record = FIXTURE["protocols"][name]
        answer = answer_box["answer"]
        assert _digest(_canonical_answer(name, answer)) == record["answer"]
        assert session.stats.reconnects >= 1
        assert session.stats.chunks_sent > 0
        assert session.stats.chunks_received > 0

        # Every chunk frame the client saw - pre-crash and post-resume
        # - reassembles into the pinned logical rounds AND matches the
        # pinned chunk-frame stream byte for byte.
        sent = [
            decode(data) for (_d, _s), data in sorted(
                (key, data) for key, data in frames.items()
                if key[0] == "sent"
            )
        ]
        received = [
            decode(data) for (_d, _s), data in sorted(
                (key, data) for key, data in frames.items()
                if key[0] == "received"
            )
        ]
        sent_iter = iter(_group_chunk_rounds(sent))
        recv_iter = iter(_group_chunk_rounds(received))
        logical, streamed = {}, {}
        for i, rnd in enumerate(spec.rounds, start=1):
            group = next(sent_iter if rnd.source == "R" else recv_iter)
            status, payload, used = fold_chunk_frames(group)
            assert used == len(group)
            wire = (
                payload if status == "single"
                else rnd.message.from_wire_chunks(payload).to_wire()
            )
            logical[f"m{i}"] = _digest(wire)
            streamed[f"m{i}"] = _stream_digest(group)
        assert logical == record["wires"], (
            f"post-resume logical transcript diverges for {name}"
        )
        assert streamed == record["chunked_wires"], (
            f"post-resume chunk stream diverges for {name}"
        )

        # The completed journal rotated out of the recovery scan.
        assert not list(journal_dir.glob(f"sender-*{WAL_SUFFIX}"))
        assert list(journal_dir.glob(f"sender-*{DONE_SUFFIX}"))
    finally:
        for proc in (victim, restarted):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
