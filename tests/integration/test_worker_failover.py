"""Acceptance suite for self-healing shard supervision (the issue bar).

A herd of 64+ concurrent journaled sessions runs against a sharded
server with forked, supervised workers while the schedule SIGKILLs
two workers and wedges one past its heartbeat deadline. Every session
must finish with bytes identical to a fault-free reference run, no
client may ever see a raw ``ConnectionResetError``, and exhausting a
shard's restart budget must degrade *only* that shard.

The generated-schedule sweep size is controlled by
``REPRO_WORKER_CRASH_SCHEDULES`` (default 2 - each schedule forks and
murders real processes, so the tier-1 default stays small). A failing
seed replays with
``run_worker_crash_schedule(WorkerCrashSchedule.generate(seed))``.
"""

from __future__ import annotations

import os
import random
import socket

import pytest

from repro.net import tcp
from repro.net.chaos import (
    WorkerCrashSchedule,
    run_worker_crash_schedule,
)
from repro.net.session import (
    SESSION_VERSION,
    RetryPolicy,
    SessionConfig,
    seal,
    unseal,
)
from repro.net.shard import ShardedProtocolServer
from repro.protocols.parties import PublicParams

SWEEP = int(os.environ.get("REPRO_WORKER_CRASH_SCHEDULES", "2"))


# ----------------------------------------------------------------------
# The headline acceptance run: 64 sessions, 2 SIGKILLs, 1 hang
# ----------------------------------------------------------------------
def test_herd_of_64_survives_two_kills_and_a_hang_byte_identical():
    schedule = WorkerCrashSchedule(
        seed=20030609,
        sessions=64,
        shards=2,
        kills=((1.2, 0), (2.6, 1)),
        hangs=((1.8, 0, 0.6),),
    )
    result = run_worker_crash_schedule(schedule, wall_timeout_s=120.0)
    assert result.ok, result.describe()
    # ok already demands: every session answered, every answer
    # byte-identical to the fault-free reference, zero raw resets.
    # The schedule must also have actually drawn blood.
    assert result.worker_deaths >= 3, result.describe()  # 2 kills + hang
    assert result.hung_workers >= 1, result.describe()
    assert result.respawns >= 3, result.describe()
    kills = [e for e in result.injected if e["event"] == "kill"]
    hangs = [e for e in result.injected if e["event"] == "hang"]
    assert len(kills) == 2 and all(e["pid"] for e in kills)
    assert len(hangs) == 1 and hangs[0]["sent"]
    # And some sessions must have lived through a loss, not around it.
    assert sum(o.worker_lost for o in result.outcomes) >= 1
    assert sum(o.reconnects for o in result.outcomes) >= 1
    assert all(r["state"] == "alive" for r in result.health)


# ----------------------------------------------------------------------
# Generated-schedule sweep: any seed's murder plan holds the invariant
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(SWEEP))
def test_generated_worker_crash_schedule_holds_invariant(seed):
    schedule = WorkerCrashSchedule.generate(seed, sessions=8)
    result = run_worker_crash_schedule(schedule, wall_timeout_s=90.0)
    assert result.ok, result.describe()


# ----------------------------------------------------------------------
# Budget exhaustion: the failed shard degrades, the rest keep serving
# ----------------------------------------------------------------------
def test_budget_exhaustion_is_contained_to_the_failed_shard(tmp_path):
    params = PublicParams.for_bits(96)
    config = SessionConfig(
        timeout_s=2.0,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01,
                          max_delay_s=0.05),
        max_reconnects=8,
        fin_grace_s=0.05,
    )
    server = ShardedProtocolServer(
        {"intersection": (["b", "c", "x"], params)},
        shards=2, worker_processes=True, config=config, max_sessions=4,
        journal_dir=tmp_path, journal_fsync=False,
        heartbeat_s=0.05, respawn_backoff_s=0.05, restart_budget=0,
    )
    with server:
        assert server.kill_worker(0) is not None
        import time

        deadline = time.monotonic() + 15.0
        while server.health()[0]["state"] != "failed":
            assert time.monotonic() < deadline
            time.sleep(0.02)

        def hello(session_id):
            sock = socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            )
            endpoint = tcp.SocketEndpoint(sock=sock)
            endpoint.settimeout(5.0)
            endpoint.send(
                seal("hello", SESSION_VERSION, "intersection",
                     session_id, 0, 0)
            )
            fields = unseal(endpoint.recv())
            sock.close()
            return fields

        # Every even session id (shard 0): permanent typed reject.
        for sid in (0, 2, 4):
            fields = hello(sid)
            assert fields[0] == "reject"
            assert "restart budget" in fields[2]
        # Every odd session id (shard 1): served as if nothing happened.
        for sid in (1, 3, 5):
            assert hello(sid)[0] == "welcome"

        # A full client run on the healthy shard completes end to end.
        from repro.protocols.spec import get_spec
        from repro.net.session import ReceiverSession

        session = ReceiverSession(
            "intersection",
            lambda wire: get_spec("intersection").make_receiver(
                ["a", "b", "c"],
                PublicParams.from_wire(tuple(wire)),
                random.Random(3),
            ),
            config=config,
            rng=random.Random(3),
            session_id=11,  # odd: shard 1
        )
        answer = session.run(
            lambda: tcp._dial("127.0.0.1", server.port, timeout=5.0)
        )
        assert sorted(answer) == ["b", "c"]
    states = {r["shard"]: r["state"] for r in server.drain_report}
    assert states == {0: "failed", 1: "drained"}
