"""Chaos: crashes mid-delta-round must recover to the exact answer.

The delta schedules are registered ProtocolSpecs, so the chaos
harness runs them unchanged: both parties journal their resumable
sessions, the schedule SIGKILLs one mid-round, the supervisor
respawns it from the journal, and the finished journals must be
byte-identical to a clean reference run.  ``intersection+delta`` is
the deterministic representative (``equijoin-sum``'s delta draws
fresh Paillier randomness per query and is documented as not
journal-replay-safe).
"""

from __future__ import annotations

import random

import pytest

from repro.net.chaos import ChaosSchedule, run_schedule
from repro.protocols.delta import DeltaExchange
from repro.protocols.parties import PublicParams, ReceiverMachine, SenderMachine
from repro.protocols.spec import get_spec

PARAMS = PublicParams.for_bits(128)
V_R = [f"v{i}" for i in range(10)]
V_S = [f"v{i}" for i in range(5, 15)]


def _base_states():
    """Complete one full intersection run; return both parties' states."""
    spec = get_spec("intersection")
    receiver = ReceiverMachine(spec, V_R, PARAMS, random.Random("base-r"))
    sender = SenderMachine(spec, V_S, PARAMS, random.Random("base-s"))
    for rnd in spec.rounds:
        producer, consumer = (
            (receiver, sender) if rnd.source == "R" else (sender, receiver)
        )
        consumer.consume(rnd, producer.produce(rnd).to_wire())
    assert receiver.finish() == set(V_R) & set(V_S)
    return receiver.state, sender.state


def _delta_data():
    r_state, s_state = _base_states()
    r_exchange = DeltaExchange(
        state=r_state, inserts=(("v20", None),), deletes=("v0",)
    )
    s_exchange = DeltaExchange(
        state=s_state, inserts=(("v20", None),), deletes=("v14",)
    )
    return r_exchange, s_exchange


EXPECTED_DELTA = (set(V_R) | {"v20"}) - {"v0"}
EXPECTED_DELTA &= (set(V_S) | {"v20"}) - {"v14"}


@pytest.mark.parametrize(
    "crash_side,point",
    [
        ("sender_crash", ("session.ship.frame", 1)),
        ("receiver_crash", ("session.ship.frame", 1)),
        ("sender_crash", ("journal.append.post", 2)),
    ],
)
def test_delta_round_survives_crash(tmp_path, crash_side, point):
    """Kill one party mid-delta-round; the respawned session must
    finish with the mutated-table answer and byte-identical journals."""
    schedule = ChaosSchedule(seed=71, chunk_size=None, **{crash_side: point})
    result = run_schedule(
        schedule,
        protocol="intersection+delta",
        params=PARAMS,
        data=_delta_data(),
        journal_root=tmp_path,
        wall_timeout_s=30.0,
    )
    assert result.ok, result.describe()
    assert result.answer == EXPECTED_DELTA
    assert result.journals_ok, result.describe()
    crashed = result.sender if crash_side == "sender_crash" else result.receiver
    assert crashed.restarts >= 1


def test_delta_round_with_disk_and_net_faults(tmp_path):
    """Seeded network flakiness + fsync faults on top of a crash."""
    schedule = ChaosSchedule.generate(
        seed=203, protocol="intersection+delta"
    )
    schedule = ChaosSchedule(
        seed=203,
        chunk_size=None,
        client_net=schedule.client_net,
        server_net=schedule.server_net,
        sender_crash=("session.ship.frame", 2),
        max_restarts=6,
    )
    result = run_schedule(
        schedule,
        protocol="intersection+delta",
        params=PARAMS,
        data=_delta_data(),
        journal_root=tmp_path,
        wall_timeout_s=30.0,
    )
    assert result.ok, result.describe()
    assert result.answer == EXPECTED_DELTA


def test_clean_delta_schedule_runs_every_protocol(tmp_path):
    """Without faults, the chaos harness runs the delta schedule end
    to end - the same machines the Catalog layer drives."""
    schedule = ChaosSchedule(seed=5, chunk_size=None)
    result = run_schedule(
        schedule,
        protocol="intersection+delta",
        params=PARAMS,
        data=_delta_data(),
        journal_root=tmp_path,
        wall_timeout_s=30.0,
    )
    assert result.ok, result.describe()
    assert result.answer == EXPECTED_DELTA
    assert result.journals_ok
    assert result.receiver.restarts == 0
    assert result.sender.restarts == 0
