"""Integration tests: protocols composed with every substrate at once."""

from __future__ import annotations

import random

import pytest

from repro.db import engine
from repro.db.multiset import ValueMultiset
from repro.db.table import Table
from repro.net.serialization import encoded_size
from repro.protocols import (
    ProtocolSuite,
    audit_view,
    join_tables,
    run_equijoin_size,
    run_intersection,
    run_intersection_size,
)
from repro.workloads.generator import medical_workload, overlapping_sets


class TestCrossProtocolConsistency:
    """The four protocols must agree with each other on shared inputs."""

    @pytest.fixture(scope="class")
    def workload(self):
        rng = random.Random(123)
        v_r, v_s, expected = overlapping_sets(25, 35, 11, rng)
        return v_r, v_s, expected

    def test_intersection_vs_size(self, workload):
        v_r, v_s, expected = workload
        suite = ProtocolSuite.default(bits=128, seed=8)
        inter = run_intersection(v_r, v_s, suite)
        size = run_intersection_size(v_r, v_s, suite)
        assert len(inter.intersection) == size.size == len(expected)

    def test_sets_vs_multisets_degenerate(self, workload):
        """Equijoin size over duplicate-free multisets equals the
        intersection size."""
        v_r, v_s, expected = workload
        suite = ProtocolSuite.default(bits=128, seed=9)
        join_size = run_equijoin_size(v_r, v_s, suite)
        assert join_size.join_size == len(expected)

    def test_table_join_vs_value_protocols(self, workload):
        v_r, v_s, expected = workload
        suite = ProtocolSuite.default(bits=128, seed=10)
        t_r = Table(("id",), [(v,) for v in v_r])
        t_s = Table(("id", "extra"), [(v, f"row-{v}") for v in v_s])
        joined, result = join_tables(t_r, t_s, "id", suite=suite)
        assert result.intersection == expected
        assert len(joined) == len(expected)


class TestRealisticPipeline:
    def test_512bit_full_stack(self):
        """A run at a realistic-ish modulus exercising hash, cipher,
        channel, table and engine layers together."""
        suite = ProtocolSuite.default(bits=512, seed=5)
        rng = random.Random(5)
        v_r, v_s, expected = overlapping_sets(12, 15, 6, rng)
        result = run_intersection(v_r, v_s, suite)
        assert result.intersection == expected
        # Wire codewords are 512-bit numbers -> 69 bytes each encoded.
        y_r = next(result.run.s_view.payloads("3:Y_R"))
        assert encoded_size(y_r[0]) == 512 // 8 + 5

    def test_medical_pipeline_with_audits(self):
        suite = ProtocolSuite.default(bits=128, seed=6)
        wl = medical_workload(60, random.Random(6))
        from repro.apps.medical import plaintext_contingency, run_medical_research

        result = run_medical_research(wl.t_r, wl.t_s, suite)
        assert result.table.as_dict() == plaintext_contingency(wl.t_r, wl.t_s).as_dict()
        # T's view passes the structural audit: only sorted codewords.
        ids = [row[0] for row in wl.t_r.rows]
        report = audit_view(
            result.run.t_view, suite.group, suite.hash, counterpart_values=ids,
            value_domain=ids,
        )
        assert report.passed, report.failures()


class TestSection6WireAccounting:
    """Measured wire traffic vs the Section 6.1 communication model."""

    def test_intersection_codeword_totals(self):
        suite = ProtocolSuite.default(bits=128, seed=11)
        n_r, n_s = 10, 14
        v_r = [f"r{i}" for i in range(n_r)]
        v_s = [f"s{i}" for i in range(n_s)]
        result = run_intersection(v_r, v_s, suite)
        # Paper accounting: (n_S + 2 n_R) codewords of k bits. Our wire
        # resends the y's in step 4(b) (pairs), so measured payload =
        # model + n_R extra codewords; both are checked.
        k_bytes = 128 // 8 + 5
        modelled_payload = (n_s + 2 * n_r) * k_bytes
        measured = result.run.total_bytes
        overhead = measured - modelled_payload - n_r * k_bytes
        # Remaining overhead is exactly the framing: a 5-byte list
        # header per message (3 messages) plus a 5-byte tuple header per
        # step-4(b) pair (n_R pairs).
        assert overhead == 3 * 5 + n_r * 5

    def test_intersection_size_matches_model_exactly_in_codewords(self):
        suite = ProtocolSuite.default(bits=128, seed=12)
        n_r, n_s = 9, 13
        result = run_intersection_size(
            [f"r{i}" for i in range(n_r)], [f"s{i}" for i in range(n_s)], suite
        )
        codewords = 0
        for view in (result.run.r_view, result.run.s_view):
            codewords += len(view.flat_integers())
        assert codewords == n_s + 2 * n_r  # the paper's count, exactly

    def test_traffic_scales_linearly(self):
        suite = ProtocolSuite.default(bits=128, seed=13)
        sizes = []
        for n in (5, 10, 20):
            result = run_intersection_size(
                [f"r{i}" for i in range(n)], [f"s{i}" for i in range(n)], suite
            )
            sizes.append(result.run.total_bytes)
        # Doubling n roughly doubles traffic (within framing slack).
        assert sizes[1] / sizes[0] == pytest.approx(2.0, rel=0.1)
        assert sizes[2] / sizes[1] == pytest.approx(2.0, rel=0.1)


class TestMultisetIntegration:
    def test_equijoin_size_with_table_multisets(self):
        suite = ProtocolSuite.default(bits=128, seed=14)
        t_r = Table(("a",), [(v,) for v in "aabbbc"])
        t_s = Table(("a",), [(v,) for v in "abbccc"])
        ms_r = ValueMultiset.from_table(t_r, "a")
        ms_s = ValueMultiset.from_table(t_s, "a")
        result = run_equijoin_size(ms_r, ms_s, suite)
        assert result.join_size == engine.equijoin_size(t_s, t_r, "a")
