"""Chaos tests: every protocol completes over TCP under injected faults.

Each run wires a seeded :class:`FaultInjector` into the resumable
session helpers and asserts (a) the protocol answer is still exactly
correct and (b) the session stats show the faults were actually hit
and recovered from - retransmits for drops and corruption, reconnects
and replayed frames for mid-frame disconnects.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.net.faults import FaultInjector, FaultPlan
from repro.net.session import RetryPolicy, SessionConfig
from repro.net.tcp import (
    connect_resumable_receiver,
    serve_resumable_sender,
)
from repro.protocols.parties import PublicParams

#: protocol -> (R's data, S's data, expected answer for R)
CASES = {
    "intersection": (
        ["a", "b", "c"], ["b", "c", "d"], {"b", "c"},
    ),
    "intersection-size": (
        ["a", "b", "c", "d"], ["c", "d", "e"], 2,
    ),
    "equijoin": (
        ["a", "b", "c"],
        {"b": b"rec-b", "c": b"rec-c", "z": b"rec-z"},
        {"b": b"rec-b", "c": b"rec-c"},
    ),
    "equijoin-size": (
        ["a", "a", "b", "c"], ["a", "b", "b", "e"], 2 * 1 + 1 * 2,
    ),
}

#: fault class -> plan applied to the *client's* sends
FAULT_CLASSES = {
    "none": FaultPlan(),
    "drop": FaultPlan(seed=3, drop_rate=0.4, max_faults=3),
    "corrupt": FaultPlan(seed=4, corrupt_rate=0.4, max_faults=3),
    "delay": FaultPlan(seed=13, delay_rate=1.0, delay_s=0.002, max_faults=2),
    "disconnect": FaultPlan(seed=8, disconnect_rate=0.3, max_faults=2),
    "mixed": FaultPlan(
        seed=13, drop_rate=0.15, corrupt_rate=0.15, disconnect_rate=0.15,
        max_faults=4,
    ),
}


def _config() -> SessionConfig:
    return SessionConfig(
        timeout_s=0.3,
        retry=RetryPolicy(max_attempts=6, base_delay_s=0.01,
                          max_delay_s=0.05),
        max_reconnects=12,
        fin_grace_s=0.1,
    )


def _run(protocol, client_injector=None, server_injector=None, seed=0,
         chunk_size=None):
    v_r, v_s, expected = CASES[protocol]
    config = _config()
    params = PublicParams.for_bits(128)
    ready = threading.Event()
    box: dict = {}

    def serve():
        try:
            box["server"] = serve_resumable_sender(
                protocol, v_s, params, random.Random(seed + 1),
                ready_callback=lambda port: (
                    box.__setitem__("port", port), ready.set()
                ),
                config=config,
                endpoint_wrapper=server_injector,
                chunk_size=chunk_size,
            )
        except Exception as exc:  # surfaced in the main thread below
            box["error"] = exc
            ready.set()

    thread = threading.Thread(target=serve)
    thread.start()
    assert ready.wait(timeout=10)
    if "error" in box:
        raise box["error"]
    answer, client_stats = connect_resumable_receiver(
        protocol, v_r, random.Random(seed + 2), "127.0.0.1", box["port"],
        config=config, endpoint_wrapper=client_injector,
        chunk_size=chunk_size,
    )
    thread.join(timeout=30)
    assert not thread.is_alive()
    if "error" in box:
        raise box["error"]
    size_v_r, server_stats = box["server"]
    assert answer == expected, f"{protocol} answered {answer!r}"
    assert size_v_r == len(set(v_r)) if protocol != "equijoin-size" else True
    return client_stats, server_stats


@pytest.mark.parametrize("fault_class", sorted(FAULT_CLASSES))
@pytest.mark.parametrize("protocol", sorted(CASES))
def test_protocol_completes_under_faults(protocol, fault_class):
    plan = FAULT_CLASSES[fault_class]
    injector = FaultInjector(plan)
    client_stats, server_stats = _run(protocol, client_injector=injector)

    if fault_class == "none":
        assert injector.stats.injected == 0
        assert client_stats.reconnects == 0
        assert client_stats.retransmits == 0
        return
    assert injector.stats.injected > 0, "fault plan never fired"
    if fault_class in ("drop", "corrupt", "mixed"):
        recovered = (
            client_stats.retransmits
            + server_stats.retransmits
            + client_stats.reconnects
        )
        assert recovered > 0, "faults injected but no recovery recorded"
    if fault_class == "corrupt":
        assert (
            server_stats.checksum_failures + client_stats.checksum_failures
            > 0
        )
    if fault_class == "delay":
        assert injector.stats.delayed == plan.max_faults
    if fault_class == "disconnect":
        assert injector.stats.disconnects > 0
        assert client_stats.reconnects > 0


class TestScriptedResume:
    """Deterministically place one disconnect and watch the resume."""

    def test_server_m2_disconnect_replays_cached_round(self):
        # skip=2: welcome and the m1-ack deliver cleanly, the third
        # server send (the m2 data frame) dies mid-frame.
        injector = FaultInjector(
            FaultPlan(seed=4, disconnect_rate=1.0, max_faults=1, skip=2)
        )
        client_stats, server_stats = _run(
            "intersection", server_injector=injector
        )
        assert injector.stats.disconnects == 1
        assert server_stats.reconnects == 1
        assert client_stats.reconnects == 1
        assert server_stats.rounds_resumed == 1
        assert server_stats.replayed_frames >= 1
        # The crypto ran once: the resume came from the round log.
        assert server_stats.rounds_computed == 1
        assert client_stats.rounds_computed == 1

    def test_client_m1_disconnect_resumes(self):
        # skip=1: the hello delivers, the m1 data frame dies mid-frame.
        injector = FaultInjector(
            FaultPlan(seed=6, disconnect_rate=1.0, max_faults=1, skip=1)
        )
        client_stats, server_stats = _run(
            "intersection-size", client_injector=injector
        )
        assert injector.stats.disconnects == 1
        assert client_stats.reconnects >= 1
        assert client_stats.rounds_computed == 1
        assert server_stats.rounds_computed == 1

#: chunk size for the streaming chaos runs; 1 puts every element in
#: its own chunk frame, so every injected fault lands on (or inside) a
#: chunk boundary rather than a whole-round frame.
CHUNK_SIZE = 1


@pytest.mark.parametrize("fault_class", sorted(FAULT_CLASSES))
@pytest.mark.parametrize("protocol", ["intersection", "equijoin"])
def test_chunked_stream_completes_under_faults(protocol, fault_class):
    """Every fault class, injected into a chunk-frame stream, still
    yields the exact answer - drops, corruption and disconnects at
    chunk boundaries retransmit or resume mid-round."""
    plan = FAULT_CLASSES[fault_class]
    injector = FaultInjector(plan)
    client_stats, server_stats = _run(
        protocol, client_injector=injector, chunk_size=CHUNK_SIZE
    )

    # The rounds genuinely streamed: both directions shipped multiple
    # chunk frames (m1 alone is 3 values -> 3 chunks at size 1).
    assert client_stats.chunks_sent >= 3
    assert server_stats.chunks_sent >= 3
    assert client_stats.chunks_received >= 3
    assert server_stats.chunks_received >= 3

    if fault_class == "none":
        assert injector.stats.injected == 0
        assert client_stats.reconnects == 0
        assert client_stats.retransmits == 0
        return
    assert injector.stats.injected > 0, "fault plan never fired"
    if fault_class in ("drop", "corrupt", "mixed"):
        recovered = (
            client_stats.retransmits
            + server_stats.retransmits
            + client_stats.reconnects
        )
        assert recovered > 0, "faults injected but no recovery recorded"
    if fault_class == "corrupt":
        assert (
            server_stats.checksum_failures + client_stats.checksum_failures
            > 0
        )
    if fault_class == "disconnect":
        assert injector.stats.disconnects > 0
        assert client_stats.reconnects > 0


class TestScriptedChunkBoundaryResume:
    """Place one disconnect on a specific mid-round chunk frame."""

    def test_server_mid_chunk_disconnect_resumes_stream(self):
        # chunk_size=1 on the 3-element intersection case: the server
        # sends welcome, four m1 acks (3 chunks + chunk-end), then 7 m2
        # frames (3 y_s chunks + 3 pair chunks + chunk-end). skip=6
        # delivers m2 chunk 0 cleanly and kills chunk 1 mid-frame - a
        # crash inside a streaming round, not at a round edge.
        injector = FaultInjector(
            FaultPlan(seed=4, disconnect_rate=1.0, max_faults=1, skip=6)
        )
        client_stats, server_stats = _run(
            "intersection", server_injector=injector, chunk_size=CHUNK_SIZE
        )
        assert injector.stats.disconnects == 1
        assert server_stats.reconnects == 1
        assert client_stats.reconnects == 1
        # The (round, chunk) cursor did its job: the already-shipped
        # chunk replays from the log and the round's crypto ran once.
        assert server_stats.replayed_frames >= 1
        assert server_stats.rounds_computed == 1
        assert client_stats.rounds_computed == 1
        assert server_stats.chunks_sent >= 6

    def test_client_mid_chunk_disconnect_resumes_stream(self):
        # skip=2: hello and m1 chunk 0 deliver, m1 chunk 1 dies.
        injector = FaultInjector(
            FaultPlan(seed=6, disconnect_rate=1.0, max_faults=1, skip=2)
        )
        client_stats, server_stats = _run(
            "intersection-size", client_injector=injector,
            chunk_size=CHUNK_SIZE,
        )
        assert injector.stats.disconnects == 1
        assert client_stats.reconnects >= 1
        assert client_stats.rounds_computed == 1
        assert server_stats.rounds_computed == 1
        assert client_stats.replayed_frames >= 1


class TestScriptedResumeStats:
    def test_stats_surface_in_as_dict(self):
        injector = FaultInjector(
            FaultPlan(seed=4, disconnect_rate=1.0, max_faults=1, skip=2)
        )
        _client, server_stats = _run(
            "intersection", server_injector=injector
        )
        record = server_stats.as_dict()
        assert record["protocol"] == "intersection"
        assert record["reconnects"] == 1
        assert record["replayed_frames"] >= 1
        assert record["elapsed_s"] > 0
