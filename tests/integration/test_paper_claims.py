"""Every quantitative claim in the paper, asserted in one place.

This file is the test-suite mirror of EXPERIMENTS.md: each test quotes
the claim and checks our reproduction of it. Tolerances reflect the
paper's own rounding.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.costmodel import PAPER_CONSTANTS, ProtocolCostModel
from repro.analysis.estimates import (
    document_sharing_estimate,
    medical_research_estimate,
)
from repro.circuits.costmodel import CircuitCostModel
from repro.crypto.hashing import collision_probability
from repro.crypto.ot import NaorPinkasCostModel


class TestSection3Claims:
    def test_collision_probability_1e295(self):
        """S3.2.2: 'With 1024-bit hash values ... for n = 1 million,
        Pr[collision] ~ 1e-295.'"""
        p = collision_probability(10**6, 2**1024 // 2)
        assert p < 1e-290
        assert -298 < math.log10(p) < -294


class TestSection6Claims:
    def test_intersection_cost_formula(self):
        """S6.1: intersection ~ 2 Ce (|V_S| + |V_R|)."""
        model = ProtocolCostModel(PAPER_CONSTANTS)
        assert model.intersection_seconds(10**6, 10**6) == pytest.approx(
            2 * 0.02 * 2 * 10**6
        )

    def test_join_cost_formula(self):
        """S6.1: join ~ 2 Ce |V_S| + 5 Ce |V_R|."""
        model = ProtocolCostModel(PAPER_CONSTANTS)
        assert model.join_seconds(10**6, 10**6, exact=False) == pytest.approx(
            0.02 * 7 * 10**6
        )

    def test_intersection_communication(self):
        """S6.1: (|V_S| + 2 |V_R|) k bits."""
        model = ProtocolCostModel(PAPER_CONSTANTS)
        assert model.intersection_bits(10**6, 10**6) == 3 * 10**6 * 1024

    def test_document_sharing_estimates(self):
        """S6.2.1: 4e6 Ce/P ~ 2h; 3e6 k ~ 3 Gbits ~ 35 minutes."""
        est = document_sharing_estimate()
        assert est.encryptions_ce == pytest.approx(4e6)
        assert 2.0 <= est.computation_hours <= 2.5
        assert est.communication_bits == pytest.approx(3.07e9, rel=0.01)
        assert 30 <= est.communication_minutes <= 36

    def test_medical_estimates(self):
        """S6.2.2: 8e6 Ce/P ~ 4 hours; 8 Gbits ~ 1.5 hours."""
        est = medical_research_estimate()
        assert est.encryptions_ce == pytest.approx(8e6)
        assert 4.0 <= est.computation_hours <= 4.7
        assert est.communication_bits == pytest.approx(8.19e9, rel=0.01)
        assert 1.3 <= est.communication_hours <= 1.6


class TestAppendixAClaims:
    @pytest.fixture(scope="class")
    def model(self):
        return CircuitCostModel()

    def test_ot_amortization(self):
        """A.1.1: 'the best choice ... is l = 8, and the costs become
        C_ot = 0.157 Ce, C'_ot >= 32 k1.'"""
        ot = NaorPinkasCostModel(ce_over_cx=1000.0, k1_bits=100)
        assert ot.optimal_l() == 8
        assert ot.computation_cost(8) == pytest.approx(0.157, abs=1e-3)
        assert ot.communication_bits(8) == 3200

    def test_input_coding_totals(self, model):
        """A.1.1: 32 n x 0.157 Ce ~ 5 n Ce; 32 n x 32 k1 ~ 1e5 n."""
        assert model.input_coding_ce(1) == pytest.approx(5.0, abs=0.03)
        assert model.input_coding_bits(1) == pytest.approx(1.02e5, rel=0.01)

    def test_partitioning_table(self, model):
        """A.2 table: (1e4, 11, 2.3e8), (1e6, 19, 7.3e10), (1e8, 32, 1.9e13)."""
        expected = {10**4: (11, 2.3e8), 10**6: (19, 7.3e10), 10**8: (32, 1.9e13)}
        for row in model.circuit_size_table():
            m, f = expected[row.n]
            assert row.m == m
            assert row.gates == pytest.approx(f, rel=0.05)

    def test_brute_force_row(self, model):
        """'The brute force circuit does much worse, with 6.3e9, 6.3e13,
        and 6.3e17 respectively.'"""
        for n, expected in [(10**4, 6.3e9), (10**6, 6.3e13), (10**8, 6.3e17)]:
            assert model.brute_force_gates(n, n) == pytest.approx(expected, rel=0.01)

    def test_computation_comparison(self, model):
        """A.2: circuit input 5e4..5e8 Ce, evaluation 4.7e8..3.8e13 Cr,
        ours 4e4..4e8 Ce."""
        rows = {r.n: r for r in model.comparison_table()}
        for n, (inp, ev, ours) in {
            10**4: (5e4, 4.7e8, 4e4),
            10**6: (5e6, 1.5e11, 4e6),
            10**8: (5e8, 3.8e13, 4e8),
        }.items():
            assert rows[n].circuit_input_ce == pytest.approx(inp, rel=0.02)
            assert rows[n].circuit_eval_cr == pytest.approx(ev, rel=0.05)
            assert rows[n].ours_ce == pytest.approx(ours)

    def test_communication_comparison(self, model):
        """A.2: circuit 1e9..1e13 (OT) + 6.0e10..4.9e15 (tables) bits,
        ours 3e7..3e11 bits."""
        rows = {r.n: r for r in model.comparison_table()}
        for n, (inp, tables, ours) in {
            10**4: (1e9, 6.0e10, 3e7),
            10**6: (1e11, 1.8e13, 3e9),
            10**8: (1e13, 4.9e15, 3e11),
        }.items():
            assert rows[n].circuit_input_bits == pytest.approx(inp, rel=0.03)
            assert rows[n].circuit_tables_bits == pytest.approx(tables, rel=0.05)
            assert rows[n].ours_bits == pytest.approx(ours, rel=0.03)

    def test_headline(self, model):
        """'144 days (using a T1 line), versus 0.5 hours'."""
        row = {r.n: r for r in model.comparison_table()}[10**6]
        assert model.t1_transfer_days(row.circuit_tables_bits) == pytest.approx(
            144, rel=0.05
        )
        ours_hours = model.t1_transfer_days(row.ours_bits) * 24
        assert ours_hours == pytest.approx(0.5, rel=0.15)

    def test_cr_call_ratio(self, model):
        """'there are 1e4 to 1e5 as many calls to Cr as there are to Ce'."""
        for row in model.comparison_table():
            ratio = row.circuit_eval_cr / row.circuit_input_ce
            assert 5e3 <= ratio <= 2e5
