"""The full audit matrix: every protocol, both views, all checks.

For each protocol this runs a realistic workload and audits each
recorded view with the strongest applicable configuration - structural
signature from the proof's simulator (where one exists), group-domain
checks, reorder checks, plaintext-leak scan, and the dictionary attack
over the full value domain. This is the "audits on everything" promise
of DESIGN.md in one place.
"""

from __future__ import annotations

import random

import pytest

from repro.protocols.aggregate import run_equijoin_sum
from repro.protocols.audit import audit_view
from repro.protocols.equijoin import run_equijoin
from repro.protocols.equijoin_size import run_equijoin_size
from repro.protocols.intersection import run_intersection
from repro.protocols.intersection_size import run_intersection_size
from repro.protocols.simulators import (
    simulate_r_view_equijoin,
    simulate_r_view_intersection,
    simulate_r_view_intersection_size,
    simulate_s_view_intersection,
)

DOMAIN = [f"id-{i:03d}" for i in range(60)]
V_R = DOMAIN[:25]
V_S = DOMAIN[15:45]
INTERSECTION = set(V_R) & set(V_S)


@pytest.fixture()
def sim_rng():
    return random.Random(2024)


def _audit_s(result, suite, **kwargs):
    return audit_view(
        result.run.s_view, suite.group, suite.hash,
        counterpart_values=V_R, value_domain=DOMAIN, **kwargs,
    )


def _audit_r(result, suite, allowed=(), **kwargs):
    return audit_view(
        result.run.r_view, suite.group, suite.hash,
        counterpart_values=V_S, allowed_plain_values=allowed,
        value_domain=DOMAIN, **kwargs,
    )


class TestIntersectionFullAudit:
    def test_both_views_with_simulators(self, suite, sim_rng):
        result = run_intersection(V_R, V_S, suite)
        assert result.intersection == INTERSECTION

        s_sim = simulate_s_view_intersection(suite.group, len(V_R), sim_rng)
        s_report = _audit_s(result, suite, expected_signature=s_sim.signature())
        assert s_report.passed, s_report.failures()

        r_sim = simulate_r_view_intersection(
            suite.group, suite.hash, suite.cipher.sample_key(sim_rng),
            V_R, result.intersection, result.size_v_s, sim_rng,
        )
        r_report = _audit_r(
            result, suite, allowed=result.intersection,
            expected_signature=r_sim.signature(),
        )
        assert r_report.passed, r_report.failures()


class TestIntersectionSizeFullAudit:
    def test_both_views_with_simulators(self, suite, sim_rng):
        result = run_intersection_size(V_R, V_S, suite)
        assert result.size == len(INTERSECTION)

        s_sim = simulate_s_view_intersection(
            suite.group, len(V_R), sim_rng, protocol="intersection_size"
        )
        s_report = _audit_s(result, suite, expected_signature=s_sim.signature())
        assert s_report.passed, s_report.failures()

        r_sim = simulate_r_view_intersection_size(
            suite.group, result.size_v_s, result.size_v_r, result.size,
            suite.cipher.sample_key(sim_rng), sim_rng,
        )
        r_report = _audit_r(result, suite, expected_signature=r_sim.signature())
        assert r_report.passed, r_report.failures()


class TestEquijoinFullAudit:
    def test_both_views_with_simulators(self, suite, sim_rng):
        ext = {v: v.encode() for v in V_S}  # fixed-length payloads
        result = run_equijoin(V_R, ext, suite)
        assert set(result.matches) == INTERSECTION

        s_report = _audit_s(result, suite)
        assert s_report.passed, s_report.failures()

        r_sim = simulate_r_view_equijoin(
            suite.group, suite.hash, suite.cipher.sample_key(sim_rng),
            V_R, result.matches, result.size_v_s, sim_rng, suite.ext_cipher,
        )
        r_report = _audit_r(
            result, suite, allowed=result.intersection,
            expected_signature=r_sim.signature(),
        )
        assert r_report.passed, r_report.failures()


class TestEquijoinSizeFullAudit:
    def test_both_views(self, suite):
        result = run_equijoin_size(V_R, V_S, suite)
        assert result.join_size == len(INTERSECTION)
        assert _audit_s(result, suite).passed
        assert _audit_r(result, suite).passed


class TestEquijoinSumFullAudit:
    def test_both_views(self, suite):
        values_s = {v: 10 for v in V_S}
        result = run_equijoin_sum(V_R, values_s, suite, paillier_bits=128)
        assert result.total == 10 * len(INTERSECTION)
        # The Paillier ciphertexts are not QR_p elements, so the
        # group-domain check does not apply to R's view; audit S's
        # (which carries only Y_R plus one Paillier ciphertext - also
        # outside the group, so restrict to the leak/attack checks).
        s_view_ints = set(result.run.s_view.flat_integers())
        from repro.protocols.naive_hash import dictionary_attack

        recovered = dictionary_attack(s_view_ints, DOMAIN, suite.hash)
        assert recovered == set()
        r_view_ints = set(result.run.r_view.flat_integers())
        recovered = dictionary_attack(r_view_ints, DOMAIN, suite.hash)
        assert recovered == set()
