"""Property suite: seeded chaos schedules never break the invariant.

Every schedule - any composition of network faults, disk faults, and
crash points on either party - must end in either the correct protocol
answer (with journals byte-identical to a fault-free reference run) or
a typed, clean failure. Never a wrong answer, an untyped escape, a
hang, or an undetected-corrupt journal.

The sweep size is controlled by ``REPRO_CHAOS_SCHEDULES`` (default 32
so the tier-1 suite stays fast; CI runs a fixed larger subset, and a
full local sweep is ``REPRO_CHAOS_SCHEDULES=500 pytest
tests/integration/test_chaos_schedules.py``). A failing seed is its own
reproduction: ``run_schedule(ChaosSchedule.generate(seed))`` replays
the identical schedule.
"""

from __future__ import annotations

import os

import pytest

from repro.net.chaos import (
    SCHEDULABLE_POINTS,
    ChaosSchedule,
    run_schedule,
)
from repro.net.diskfaults import DiskFaultPlan
from repro.net.faults import FaultPlan

SWEEP = int(os.environ.get("REPRO_CHAOS_SCHEDULES", "32"))
WALL = 30.0


# ----------------------------------------------------------------------
# The generated-schedule sweep (the headline property)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(SWEEP))
def test_generated_schedule_holds_invariant(seed):
    """Composed chaos drawn from ``seed``: correct answer or typed error."""
    result = run_schedule(ChaosSchedule.generate(seed), wall_timeout_s=WALL)
    assert result.ok, result.describe()


# ----------------------------------------------------------------------
# Clean schedules: every protocol completes with the right answer
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "protocol",
    ["intersection", "intersection-size", "equijoin", "equijoin-size",
     "equijoin-sum"],
)
def test_clean_schedule_every_protocol(protocol):
    result = run_schedule(
        ChaosSchedule(seed=0, protocol=protocol), wall_timeout_s=WALL
    )
    assert result.ok, result.describe()
    assert result.receiver.kind == "answer"
    assert result.sender.kind == "answer"
    assert result.answer == result.expected
    assert result.receiver.restarts == 0
    assert result.sender.restarts == 0
    assert result.journals_ok


# ----------------------------------------------------------------------
# Crash-point matrix: every schedulable point, on either party
# ----------------------------------------------------------------------
@pytest.mark.parametrize("point", SCHEDULABLE_POINTS)
@pytest.mark.parametrize("party", ["sender", "receiver"])
def test_single_crash_point_recovers(point, party):
    """A single scripted crash at each point: the supervisor restarts
    the party and the run still ends with the correct answer."""
    chunk = 1 if point.startswith("streaming.") else None
    crash = (point, 1)
    schedule = ChaosSchedule(
        seed=101,
        protocol="intersection",
        chunk_size=chunk,
        sender_crash=crash if party == "sender" else None,
        receiver_crash=crash if party == "receiver" else None,
    )
    result = run_schedule(schedule, wall_timeout_s=WALL)
    assert result.ok, result.describe()
    # A completed receiver must have the exact answer; a typed error is
    # the other legal outcome (e.g. the crash landed after the peer
    # finished and left, so the restarted party had nobody to resume
    # with - the driver's peer does not serve resumes after finishing).
    if result.receiver.kind == "answer":
        assert result.answer == result.expected, result.describe()
    crashed = result.sender if party == "sender" else result.receiver
    fired = (result.crash_stats.get(party) or {}).get("fired", False)
    # The hook only fires if that party's thread reached the point
    # (streaming points need chunking, rotate points need completion);
    # when it fired, the supervisor must have restarted the party.
    if fired:
        assert crashed.restarts >= 1, result.describe()


# ----------------------------------------------------------------------
# Composition and deterministic replay
# ----------------------------------------------------------------------
def _composed_schedule() -> ChaosSchedule:
    """Every axis at once: chunked wire, lossy links, torn disks, and a
    scripted crash on each party."""
    return ChaosSchedule(
        seed=7001,
        protocol="equijoin",
        chunk_size=2,
        client_net=FaultPlan(seed=1, drop_rate=0.1, corrupt_rate=0.1,
                             max_faults=2),
        server_net=FaultPlan(seed=2, delay_rate=0.2, delay_s=0.002,
                             max_faults=2),
        sender_disk=DiskFaultPlan(seed=3, fsync_error_rate=0.4,
                                  max_faults=1, skip=6),
        receiver_disk=DiskFaultPlan(seed=4, torn_write_rate=0.4,
                                    max_faults=1, skip=6),
        sender_crash=("journal.append.post", 3),
        receiver_crash=("session.ship.frame", 2),
    )


def test_all_axes_composed_schedule_holds_invariant():
    result = run_schedule(_composed_schedule(), wall_timeout_s=WALL)
    assert result.ok, result.describe()


def test_crash_schedule_replays_deterministically():
    """The reproduction handle: the same schedule twice, byte-equal
    observable outcome (crash-only schedules have no timing axis)."""
    schedule = ChaosSchedule(
        seed=4242,
        protocol="intersection-size",
        sender_crash=("journal.append.post", 2),
        receiver_crash=("journal.rotate.pre", 1),
    )
    first = run_schedule(schedule, wall_timeout_s=WALL)
    again = run_schedule(schedule, wall_timeout_s=WALL)
    assert first.ok, first.describe()
    assert again.ok, again.describe()
    assert first.as_dict() == again.as_dict()


def test_generated_schedules_are_pure_functions_of_the_seed():
    for seed in (0, 1, 99, 4096):
        assert ChaosSchedule.generate(seed) == ChaosSchedule.generate(seed)
    assert ChaosSchedule.generate(1) != ChaosSchedule.generate(2)


# ----------------------------------------------------------------------
# Worker-crash axis: schedules are pure, seeded, and override-stable
# ----------------------------------------------------------------------
def test_worker_crash_schedules_are_pure_functions_of_the_seed():
    from repro.net.chaos import WorkerCrashSchedule

    for seed in (0, 1, 99, 4096):
        assert (
            WorkerCrashSchedule.generate(seed)
            == WorkerCrashSchedule.generate(seed)
        )
    assert WorkerCrashSchedule.generate(1) != WorkerCrashSchedule.generate(2)


def test_worker_crash_schedule_overrides_keep_the_draws():
    """Overriding sessions/shards must not shift any random draw - the
    same seed keeps the same kill/hang times, with shard indices
    re-folded into the overridden shard count."""
    from repro.net.chaos import WorkerCrashSchedule

    for seed in (3, 17, 2024):
        base = WorkerCrashSchedule.generate(seed)
        overridden = WorkerCrashSchedule.generate(seed, sessions=8, shards=2)
        assert overridden.sessions == 8 and overridden.shards == 2
        assert [d for d, _ in overridden.kills] == [d for d, _ in base.kills]
        assert [(d, w) for d, _, w in overridden.hangs] == [
            (d, w) for d, _, w in base.hangs
        ]
        assert all(s < 2 for _, s in overridden.kills)


def test_worker_crash_schedule_describes_every_event():
    from repro.net.chaos import WorkerCrashSchedule

    schedule = WorkerCrashSchedule(
        seed=5, kills=((0.1, 0), (0.3, 1)), hangs=((0.2, 1, 0.5),)
    )
    text = schedule.describe()
    assert "seed 5" in text
    assert text.count("kill(") == 2
    assert text.count("hang(") == 1
