"""Smoke tests: every example script must run end to end.

The examples are user-facing documentation; a broken example is a
broken deliverable, so each one executes in-process (patched to small
moduli where needed for speed) and its assertions must hold.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    """Run the example as __main__; any uncaught exception fails."""
    # Examples default to 512-bit groups; shrink for test speed by
    # intercepting ProtocolSuite.default and PublicParams.for_bits.
    from repro.protocols import base as base_mod
    from repro.protocols import parties as parties_mod

    original_default = base_mod.ProtocolSuite.default.__func__
    monkeypatch.setattr(
        base_mod.ProtocolSuite,
        "default",
        classmethod(
            lambda cls, bits=1024, seed=None, hash_cls=base_mod.TryIncrementHash:
            original_default(cls, min(bits, 128), seed, hash_cls)
        ),
    )
    original_for_bits = parties_mod.PublicParams.for_bits.__func__
    monkeypatch.setattr(
        parties_mod.PublicParams,
        "for_bits",
        classmethod(lambda cls, bits: original_for_bits(cls, min(bits, 128))),
    )
    # calibrate() at 1024 bits is fine (fast); document corpora are small.
    monkeypatch.setattr(sys, "argv", [script])

    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
