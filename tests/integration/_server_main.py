"""Subprocess entrypoint for the crash-recovery chaos tests.

Runs party S of one protocol under the session layer with an on-disk
journal, announcing its bound port through ``--port-file``. On startup
it first looks for an incomplete journal in ``--journal-dir`` and
recovers it (the restart-after-SIGKILL path); otherwise it starts a
fresh journaled session.

``--stall-marker`` arms the crash window: after journaling outbound
round ``--stall-round`` (i.e. durable on disk but *not yet shipped*),
the process writes the marker file and sleeps forever, waiting for the
parent test to SIGKILL it mid-run.

The sender factory is seeded ``random.Random("S")`` - exactly how the
golden transcript fixture was captured - so the parent can assert the
post-resume frames byte-identical against that fixture.
"""

from __future__ import annotations

import argparse
import random
import socket
import sys
import time
from pathlib import Path

from repro.net import tcp
from repro.net.journal import JournalDir, SessionJournal, recover_sender_session
from repro.net.session import RetryPolicy, SenderSession, SessionConfig
from repro.protocols.parties import PublicParams
from repro.protocols.spec import get_spec


def _inputs(name: str, n: int):
    """Sender data for the golden-fixture inputs (see test_golden_transcripts)."""
    half = n // 2
    v_s = [f"s{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    if name == "equijoin":
        return {v: f"payload:{v}".encode() for v in v_s}
    if name == "equijoin-size":
        return v_s + v_s[:3]
    if name == "equijoin-sum":
        return {v: (i * 7) % 23 for i, v in enumerate(v_s)}
    return v_s


def _arm_stall(marker: str, stall_round: int) -> None:
    """After journaling outbound ``stall_round``, signal and hang."""
    original = SessionJournal.record_outbound

    def stalling(self, index: int, data: bytes) -> None:
        original(self, index, data)
        if index == stall_round:
            Path(marker).write_text(str(index))
            time.sleep(600)  # parent SIGKILLs us here

    SessionJournal.record_outbound = stalling


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--protocol", required=True)
    parser.add_argument("--journal-dir", required=True)
    parser.add_argument("--port-file", required=True)
    parser.add_argument("--stall-marker", default=None)
    parser.add_argument("--stall-round", type=int, default=0)
    parser.add_argument("--bits", type=int, default=128)
    parser.add_argument("--n", type=int, default=40)
    parser.add_argument("--chunk-size", type=int, default=None)
    args = parser.parse_args()

    if args.stall_marker:
        _arm_stall(args.stall_marker, args.stall_round)

    spec = get_spec(args.protocol)
    params = PublicParams.for_bits(args.bits)
    data = _inputs(args.protocol, args.n)
    config = SessionConfig(
        timeout_s=2.0,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.02, max_delay_s=0.1),
        max_reconnects=20,
        fin_grace_s=0.1,
    )
    make_sender = lambda: spec.make_sender(  # noqa: E731
        data, params, random.Random("S")
    )
    journal_dir = JournalDir(args.journal_dir)
    stale = journal_dir.incomplete("sender", args.protocol)
    if stale:
        session = recover_sender_session(
            stale[0], params, make_sender, config=config,
            chunk_size=args.chunk_size,
        )
        print(f"recovered rounds={session.stats.rounds_recovered}", flush=True)
    else:
        session = SenderSession(
            args.protocol, params, make_sender,
            config=config, rng=random.Random(1), journal=journal_dir,
            chunk_size=args.chunk_size,
        )

    listener = tcp._listen("127.0.0.1", 0, 30.0)
    try:
        port = listener.getsockname()[1]
        Path(args.port_file).write_text(str(port))
        print(f"port={port}", flush=True)

        def accept():
            try:
                conn, _addr = listener.accept()
            except socket.timeout as exc:
                raise TimeoutError("no client (re)connected") from exc
            conn.settimeout(config.timeout_s)
            return tcp.SocketEndpoint(sock=conn)

        state = session.run(accept)
        print(f"DONE size_v_r={state.size_v_r}", flush=True)
        return 0
    finally:
        listener.close()


if __name__ == "__main__":
    sys.exit(main())
