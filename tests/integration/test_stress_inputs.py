"""Adversarial and unusual inputs through the full protocol stack.

The protocols must behave identically for *any* hashable value the
library supports - exotic unicode, huge integers, long byte strings,
values that collide textually across types - because the first thing
a real deployment feeds them is messy identifiers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.base import ProtocolSuite
from repro.protocols.equijoin import run_equijoin
from repro.protocols.intersection import run_intersection
from repro.protocols.intersection_size import run_intersection_size

WEIRD_VALUES = [
    "",                         # empty string
    " ",                        # whitespace only
    "naïve-ünïcode-🎲",          # multibyte unicode
    "line\nbreak\tand\ttabs",
    "a" * 5000,                 # long string
    0,
    -1,
    2**256,                     # bignum value
    -(2**256),
    b"",
    b"\x00" * 64,               # null bytes
    bytes(range(256)),
    True,
    False,
]


class TestWeirdValues:
    def test_intersection_with_weird_values(self, suite):
        v_r = WEIRD_VALUES[::2] + ["common-1", "common-2"]
        v_s = WEIRD_VALUES[1::2] + ["common-1", "common-2"]
        result = run_intersection(v_r, v_s, suite)
        assert result.intersection == {"common-1", "common-2"}

    def test_all_weird_values_shared(self, suite):
        result = run_intersection(WEIRD_VALUES, WEIRD_VALUES, suite)
        assert result.intersection == set(WEIRD_VALUES)

    def test_bool_int_distinguished_unlike_python_sets(self, suite):
        """Deliberate deviation from Python set semantics: the value
        encoding type-tags bool separately from int, so False does NOT
        match 0 across parties (matching on type-punned values would be
        a correctness hazard in a cross-organization protocol)."""
        v_r = [0, 1, "0", "1", b"0", b"1"]
        v_s = [False, True]
        result = run_intersection(v_r, v_s, suite)
        assert result.intersection == set()
        result = run_intersection([False, True, 2], [True, 2], suite)
        assert result.intersection == {True, 2}

    def test_textually_colliding_types_distinct(self, suite):
        """'1', b'1' and 1 are different values and must not match."""
        result = run_intersection(["1"], [1], suite)
        assert result.intersection == set()
        result = run_intersection([b"1"], ["1"], suite)
        assert result.intersection == set()

    def test_equijoin_weird_payloads(self, suite):
        ext = {
            "k1": b"\x00" * 100,
            "k2": bytes(range(256)) * 2,
            "k3": b"",
        }
        result = run_equijoin(["k1", "k2", "k3"], ext, suite)
        assert result.matches == ext

    def test_huge_sets_of_tiny_values(self):
        """A few hundred single-character-ish values at 64-bit: the
        smallest group still separates them (hash has 63 bits)."""
        suite = ProtocolSuite.default(bits=64, seed=1)
        v_r = [f"{i}" for i in range(300)]
        v_s = [f"{i}" for i in range(150, 450)]
        result = run_intersection_size(v_r, v_s, suite)
        assert result.size == 150


class TestUnhashableValuesRejected:
    def test_list_value_raises(self, suite):
        with pytest.raises(TypeError):
            run_intersection([["not", "hashable-by-design"]], ["x"], suite)

    def test_float_value_raises(self, suite):
        with pytest.raises(TypeError):
            run_intersection([3.14], ["x"], suite)


class TestPropertyMixedTypes:
    # Booleans excluded: the protocol's type tagging deliberately
    # distinguishes False from 0 (see the test above), so Python set
    # intersection is not the reference semantics for bool/int mixes.
    mixed = st.one_of(
        st.integers(min_value=-(2**64), max_value=2**64),
        st.text(max_size=12),
        st.binary(max_size=12),
    )

    @given(st.sets(mixed, max_size=10), st.sets(mixed, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_mixed_type_sets(self, v_r, v_s):
        suite = ProtocolSuite.default(bits=64, seed=9)
        result = run_intersection(list(v_r), list(v_s), suite)
        assert result.intersection == (v_r & v_s)
