"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def value_files(tmp_path):
    r = tmp_path / "r.txt"
    s = tmp_path / "s.txt"
    r.write_text("alice\nbob\ncarol\n\n")
    s.write_text("bob\ncarol\ndave\n")
    return str(r), str(s)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--bits", "128", "--seed", "7", "estimate"]
        )
        assert args.bits == 128
        assert args.seed == 7


class TestIntersectionCommands:
    def test_intersection(self, value_files, capsys):
        r, s = value_files
        code = main(["--bits", "128", "--seed", "1", "intersection",
                     "--receiver", r, "--sender", s])
        assert code == 0
        out = capsys.readouterr()
        assert out.out.splitlines() == ["bob", "carol"]
        assert "|intersection|=2" in out.err

    def test_intersection_size(self, value_files, capsys):
        r, s = value_files
        code = main(["--bits", "128", "intersection-size",
                     "--receiver", r, "--sender", s])
        assert code == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_equijoin_size_counts_duplicates(self, tmp_path, capsys):
        r = tmp_path / "r.txt"
        s = tmp_path / "s.txt"
        r.write_text("a\na\nb\n")
        s.write_text("a\nb\nb\nb\n")
        code = main(["--bits", "128", "equijoin-size",
                     "--receiver", str(r), "--sender", str(s)])
        assert code == 0
        assert capsys.readouterr().out.strip() == str(2 * 1 + 1 * 3)


class TestEquijoinSum:
    def test_sum_with_tab_and_comma(self, tmp_path, capsys):
        r = tmp_path / "r.txt"
        s = tmp_path / "s.csv"
        r.write_text("a\nb\nc\n")
        s.write_text("b\t10\nc,32\nz,999\n")
        code = main(["--bits", "128", "--seed", "2", "equijoin-sum",
                     "--receiver", str(r), "--sender", str(s)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sum over intersection: 42" in out
        assert "matches: 2" in out


class TestInfoCommands:
    def test_estimate(self, capsys):
        assert main(["estimate"]) == 0
        out = capsys.readouterr().out
        assert "document sharing" in out
        assert "medical research" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "m=11" in out
        assert "days" in out

    def test_calibrate(self, capsys):
        assert main(["--bits", "128", "calibrate", "--samples", "3"]) == 0
        out = capsys.readouterr().out
        assert "C_e" in out
        assert "modexp/hour" in out


class TestDistributedCommands:
    def test_serve_and_connect(self, tmp_path, capsys):
        import threading

        r_file = tmp_path / "r.txt"
        s_file = tmp_path / "s.txt"
        r_file.write_text("alice\nbob\ncarol\n")
        s_file.write_text("bob\ncarol\ndave\n")

        # The serve command prints its port via the ready callback; to
        # coordinate in-process we monkey-grab it through a fixed port.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        server_rc = {}

        def serve():
            server_rc["code"] = main(
                ["--bits", "128", "serve", "--sender", str(s_file),
                 "--port", str(port)]
            )

        thread = threading.Thread(target=serve)
        thread.start()
        import time

        from repro.cli import EXIT_TIMEOUT, EXIT_UNREACHABLE

        deadline = time.time() + 10
        while time.time() < deadline:
            code = main(
                ["--bits", "128", "connect", "--receiver", str(r_file),
                 "--host", "127.0.0.1", "--port", str(port)]
            )
            if code not in (EXIT_UNREACHABLE, EXIT_TIMEOUT):
                break
            time.sleep(0.05)
        else:  # pragma: no cover
            raise TimeoutError("server never came up")
        thread.join(timeout=10)
        assert code == 0
        assert server_rc["code"] == 0
        out = capsys.readouterr()
        assert "bob" in out.out and "carol" in out.out
        assert "|V_R| = 3" in out.out


class TestDistributedProtocolOptions:
    def _serve_connect(self, serve_args, connect_args, port):
        import socket
        import threading
        import time

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        server_rc = {}

        def serve():
            server_rc["code"] = main(serve_args + ["--port", str(port)])

        thread = threading.Thread(target=serve)
        thread.start()
        from repro.cli import EXIT_TIMEOUT, EXIT_UNREACHABLE

        deadline = time.time() + 10
        while time.time() < deadline:
            code = main(connect_args + ["--port", str(port)])
            if code not in (EXIT_UNREACHABLE, EXIT_TIMEOUT):
                break
            time.sleep(0.05)
        else:  # pragma: no cover
            raise TimeoutError("server never came up")
        thread.join(timeout=10)
        assert not thread.is_alive()
        return code, server_rc["code"]

    def test_equijoin_over_tcp(self, tmp_path, capsys):
        r_file = tmp_path / "r.txt"
        s_file = tmp_path / "s.csv"
        r_file.write_text("a\nb\nc\n")
        s_file.write_text("b,payload-b\nc\tpayload-c\nz,payload-z\n")
        code, server_code = self._serve_connect(
            ["--bits", "128", "serve", "--protocol", "equijoin",
             "--sender", str(s_file), "--timeout", "10"],
            ["--bits", "128", "connect", "--protocol", "equijoin",
             "--receiver", str(r_file), "--timeout", "10"],
            port=0,
        )
        assert code == 0 and server_code == 0
        out = capsys.readouterr()
        assert "b\tpayload-b" in out.out
        assert "c\tpayload-c" in out.out
        assert "matches=2" in out.err

    def test_resumable_session_prints_stats(self, tmp_path, capsys):
        r_file = tmp_path / "r.txt"
        s_file = tmp_path / "s.txt"
        r_file.write_text("a\na\nb\nc\n")
        s_file.write_text("a\nb\nb\ne\n")
        code, server_code = self._serve_connect(
            ["--bits", "128", "--seed", "1", "serve", "--resumable",
             "--protocol", "equijoin-size", "--sender", str(s_file),
             "--timeout", "5"],
            ["--bits", "128", "--seed", "2", "connect", "--resumable",
             "--protocol", "equijoin-size", "--receiver", str(r_file),
             "--timeout", "5"],
            port=0,
        )
        assert code == 0 and server_code == 0
        out = capsys.readouterr()
        assert out.out.splitlines()[-1] != ""  # join size printed
        assert "4" in out.out  # 2*1 + 1*2 matches
        assert "session stats" in out.err
        assert "'reconnects': 0" in out.err

    def test_parser_accepts_new_options(self):
        args = build_parser().parse_args(
            ["connect", "--receiver", "r.txt", "--protocol",
             "intersection-size", "--port", "9", "--timeout", "2.5",
             "--resumable"]
        )
        assert args.protocol == "intersection-size"
        assert args.timeout == 2.5
        assert args.resumable is True

    def test_parser_accepts_engine_options(self):
        args = build_parser().parse_args(
            ["serve", "--sender", "s.txt", "--workers", "4", "--metrics"]
        )
        assert args.workers == 4
        assert args.metrics is True
        args = build_parser().parse_args(
            ["connect", "--receiver", "r.txt", "--port", "9"]
        )
        assert args.workers == 1
        assert args.metrics is False

    def test_metrics_json_emitted(self, tmp_path, capsys):
        import json

        r_file = tmp_path / "r.txt"
        s_file = tmp_path / "s.txt"
        r_file.write_text("a\nb\nc\n")
        s_file.write_text("b\nc\nd\n")
        code, server_code = self._serve_connect(
            ["--bits", "128", "serve", "--sender", str(s_file),
             "--metrics", "--timeout", "10"],
            ["--bits", "128", "connect", "--receiver", str(r_file),
             "--metrics", "--timeout", "10"],
            port=0,
        )
        assert code == 0 and server_code == 0
        err = capsys.readouterr().err
        reports = [
            json.loads(line) for line in err.splitlines()
            if line.startswith("{")
        ]
        assert len(reports) == 2  # one per endpoint
        for report in reports:
            assert report["engine"]["engine"] == "SerialEngine"
            assert report["total_modexp"] > 0
            assert report["unattributed_modexp"] == 0
            assert report["total_wall_s"] > 0
            for stats in report["phases"].values():
                assert set(stats) == {"wall_s", "modexp", "calls"}
        phase_sets = [set(r["phases"]) for r in reports]
        assert {"s.setup", "s.wait_m1", "s.round1"} in phase_sets
        assert {"r.setup", "r.round1", "r.wait_m2", "r.finish"} in phase_sets

    def test_workers_flag_implies_metrics(self, tmp_path, capsys):
        import json

        r_file = tmp_path / "r.txt"
        s_file = tmp_path / "s.txt"
        r_file.write_text("a\nb\n")
        s_file.write_text("b\nc\n")
        code, server_code = self._serve_connect(
            ["--bits", "128", "serve", "--sender", str(s_file),
             "--workers", "2", "--timeout", "10"],
            ["--bits", "128", "connect", "--receiver", str(r_file),
             "--workers", "2", "--timeout", "10"],
            port=0,
        )
        assert code == 0 and server_code == 0
        out = capsys.readouterr()
        assert "b" in out.out
        reports = [
            json.loads(line) for line in out.err.splitlines()
            if line.startswith("{")
        ]
        assert len(reports) == 2
        for report in reports:
            assert report["engine"]["engine"] == "ProcessPoolEngine"
            assert report["engine"]["workers"] == 2
            # Tiny sets stay under the parallel crossover - routed
            # serially, but still counted.
            assert report["total_modexp"] > 0


class TestFailureExitCodes:
    """Operational failures exit with a code and one stderr line."""

    def _free_port(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_connection_refused_is_unreachable(self, value_files, capsys):
        from repro.cli import EXIT_UNREACHABLE

        r, _ = value_files
        code = main(["--bits", "128", "connect", "--receiver", r,
                     "--port", str(self._free_port()), "--timeout", "2"])
        assert code == EXIT_UNREACHABLE
        err = capsys.readouterr().err
        assert err.startswith("repro: cannot reach the server")
        assert len(err.strip().splitlines()) == 1  # no traceback

    def test_unresponsive_peer_times_out(self, value_files, capsys):
        import socket

        from repro.cli import EXIT_TIMEOUT

        r, _ = value_files
        mute = socket.socket()
        mute.bind(("127.0.0.1", 0))
        mute.listen(1)
        try:
            code = main(["--bits", "128", "connect", "--receiver", r,
                         "--port", str(mute.getsockname()[1]),
                         "--timeout", "0.3"])
        finally:
            mute.close()
        assert code == EXIT_TIMEOUT
        assert capsys.readouterr().err.startswith("repro: timed out")

    @pytest.fixture()
    def busy_server(self):
        from repro.net.server import ProtocolServer
        from repro.protocols.parties import PublicParams

        params = PublicParams.for_bits(128)
        server = ProtocolServer(
            {"intersection": (["b", "c"], params)},
            busy_retry_hint_s=0.05,
        ).start()
        try:
            yield server
        finally:
            server.shutdown(drain_timeout_s=0.1)

    def test_protocol_mismatch_is_handshake(
        self, busy_server, value_files, capsys
    ):
        from repro.cli import EXIT_HANDSHAKE

        r, _ = value_files
        code = main(["--bits", "128", "connect", "--resumable",
                     "--protocol", "intersection-size", "--receiver", r,
                     "--port", str(busy_server.port), "--timeout", "2"])
        assert code == EXIT_HANDSHAKE
        assert capsys.readouterr().err.startswith("repro: handshake failed")

    def test_draining_server_is_busy(self, busy_server, value_files, capsys):
        from repro.cli import EXIT_BUSY

        busy_server._draining.set()
        r, _ = value_files
        code = main(["--bits", "128", "connect", "--resumable",
                     "--receiver", r, "--port", str(busy_server.port),
                     "--timeout", "2"])
        assert code == EXIT_BUSY
        assert capsys.readouterr().err.startswith("repro: server busy")

    def test_retry_busy_honors_server_hint(
        self, busy_server, value_files, capsys
    ):
        import re
        import time

        from repro.cli import EXIT_BUSY

        busy_server._draining.set()
        r, _ = value_files
        start = time.monotonic()
        code = main(["--bits", "128", "connect", "--resumable",
                     "--receiver", r, "--port", str(busy_server.port),
                     "--timeout", "2", "--retry-busy", "2"])
        elapsed = time.monotonic() - start
        assert code == EXIT_BUSY
        err = capsys.readouterr().err
        # Two retries, each waiting the server's 0.05s hint stretched
        # by additive jitter of at most 50% (never shortened below it).
        delays = [
            float(text) for text in re.findall(r"retrying in ([\d.]+)s", err)
        ]
        assert len(delays) == 2
        assert all(0.05 <= d <= 0.075 + 1e-9 for d in delays)
        assert elapsed >= 0.1


class TestRetryPolicyFlag:
    @pytest.fixture()
    def busy_server(self):
        from repro.net.server import ProtocolServer
        from repro.protocols.parties import PublicParams

        params = PublicParams.for_bits(128)
        server = ProtocolServer(
            {"intersection": (["b", "c"], params)},
            busy_retry_hint_s=0.05,
        ).start()
        try:
            yield server
        finally:
            server.shutdown(drain_timeout_s=0.1)

    def test_parser_accepts_retry_policy_and_serve_supervision_flags(self):
        args = build_parser().parse_args(
            ["connect", "--receiver", "r.txt", "--port", "9",
             "--retry-policy", "attempts=3,deadline=10"]
        )
        assert args.retry_policy == "attempts=3,deadline=10"
        args = build_parser().parse_args(
            ["serve", "--sender", "s.txt", "--shards", "2",
             "--restart-budget", "5", "--heartbeat-s", "0.25"]
        )
        assert args.restart_budget == 5
        assert args.heartbeat_s == 0.25
        # Defaults match the server's own.
        args = build_parser().parse_args(["serve", "--sender", "s.txt"])
        assert args.restart_budget == 3
        assert args.heartbeat_s == 1.0

    def test_bad_retry_policy_spec_is_usage_error(self, value_files, capsys):
        r, _ = value_files
        code = main(["connect", "--receiver", r, "--port", "9",
                     "--retry-policy", "attempts=lots"])
        assert code == 2
        assert "bad --retry-policy" in capsys.readouterr().err

    def test_retry_policy_and_retry_busy_are_exclusive(
        self, value_files, capsys
    ):
        r, _ = value_files
        code = main(["connect", "--receiver", r, "--port", "9",
                     "--retry-policy", "attempts=2", "--retry-busy", "3"])
        assert code == 2
        assert "pass only one" in capsys.readouterr().err

    def test_retry_policy_waits_out_busy(
        self, busy_server, value_files, capsys
    ):
        import re

        from repro.cli import EXIT_BUSY

        busy_server._draining.set()
        r, _ = value_files
        code = main(["--bits", "128", "connect", "--resumable",
                     "--receiver", r, "--port", str(busy_server.port),
                     "--timeout", "2",
                     "--retry-policy", "attempts=3,base=0.01,max-delay=0.1"])
        assert code == EXIT_BUSY
        err = capsys.readouterr().err
        # attempts=3: two retries printed, then the typed busy exit.
        delays = re.findall(r"ServerBusyError; retrying in ([\d.]+)s", err)
        assert len(delays) == 2
        # The server's 0.05s hint floors every delay.
        assert all(float(d) >= 0.05 for d in delays)
        assert err.rstrip().endswith("(attempt 2/3)") or "server busy" in err

    def test_retry_policy_busy_off_fails_fast(
        self, busy_server, value_files, capsys
    ):
        from repro.cli import EXIT_BUSY

        busy_server._draining.set()
        r, _ = value_files
        code = main(["--bits", "128", "connect", "--resumable",
                     "--receiver", r, "--port", str(busy_server.port),
                     "--timeout", "2", "--retry-policy", "busy=no"])
        assert code == EXIT_BUSY
        err = capsys.readouterr().err
        assert "retrying" not in err

    def test_retry_policy_connects_on_a_live_server(
        self, value_files, capsys
    ):
        from repro.net.server import ProtocolServer
        from repro.protocols.parties import PublicParams

        params = PublicParams.for_bits(128)
        r, _ = value_files
        with ProtocolServer(
            {"intersection": (["bob", "carol", "dave"], params)}
        ) as server:
            code = main(["--bits", "128", "connect", "--resumable",
                         "--receiver", r, "--port", str(server.port),
                         "--retry-policy", "attempts=4,timeout=5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bob" in out and "carol" in out
