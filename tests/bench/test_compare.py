"""Compare-phase math and the regression-gating CLI exit code."""

from __future__ import annotations

import copy
import json

from repro.bench.cli import main
from repro.bench.compare import (
    Comparison,
    MetricDelta,
    compare_payloads,
    load_baseline,
)
from repro.bench.schema import FILE_SCHEMA


def _payload(elapsed: float = 1.0, *, mode: str = "smoke",
             task_schema: int = 1) -> dict:
    return {
        "schema": FILE_SCHEMA,
        "area": "demo",
        "mode": mode,
        "seed": 1,
        "environment": {"cpu_count": 1},
        "tasks": [{
            "task": "demo.thing",
            "schema": task_schema,
            "source": "benchmarks/bench_demo.py",
            "summary": "",
            "params": {},
            "regress_on": ["elapsed_s"],
            "records": [{
                "id": "only",
                "n": 4,
                "metrics": {"elapsed_s": elapsed, "untracked_s": 99.0},
            }],
        }],
    }


class TestRegressionMath:
    def test_exactly_twenty_percent_passes(self):
        """The boundary is strict: current == baseline*1.2 is stable."""
        comparison = compare_payloads(_payload(1.0), _payload(1.2))
        assert comparison.ok
        assert not comparison.regressions
        assert comparison.stable

    def test_just_over_twenty_percent_fails(self):
        comparison = compare_payloads(_payload(1.0), _payload(1.2001))
        assert not comparison.ok
        (delta,) = comparison.regressions
        assert delta.metric == "elapsed_s"
        assert delta.task == "demo.thing"

    def test_min_abs_damps_fast_metrics(self):
        """A 2x jump on a sub-centisecond metric is noise, not a fail."""
        comparison = compare_payloads(_payload(0.004), _payload(0.008))
        assert comparison.ok

    def test_improvements_are_reported_not_failed(self):
        comparison = compare_payloads(_payload(2.0), _payload(1.0))
        assert comparison.ok
        assert comparison.improvements

    def test_untracked_metrics_never_gate(self):
        """Only regress_on metrics gate; untracked_s is 99.0 both sides
        but even if it moved it would not be compared."""
        current = _payload(1.0)
        current["tasks"][0]["records"][0]["metrics"]["untracked_s"] = 9999.0
        comparison = compare_payloads(_payload(1.0), current)
        assert comparison.ok
        assert not comparison.regressions

    def test_custom_threshold(self):
        comparison = compare_payloads(
            _payload(1.0), _payload(1.6), threshold=0.5
        )
        assert not comparison.ok
        comparison = compare_payloads(
            _payload(1.0), _payload(1.45), threshold=0.5
        )
        assert comparison.ok

    def test_delta_describe_shows_relative_change(self):
        delta = MetricDelta(
            area="a", task="a.t", record_id="r", metric="elapsed_s",
            baseline=1.0, current=1.5,
        )
        assert "+50.0%" in delta.describe()


class TestPayloadDiffing:
    def test_mode_mismatch_noted(self):
        comparison = compare_payloads(
            _payload(1.0, mode="full"), _payload(1.0, mode="smoke")
        )
        assert comparison.ok
        assert any("mode" in note for note in comparison.notes)

    def test_file_schema_mismatch_skips(self):
        baseline = _payload(1.0)
        baseline["schema"] = FILE_SCHEMA - 1
        comparison = compare_payloads(baseline, _payload(99.0))
        assert comparison.ok  # nothing comparable
        assert any("schema" in note for note in comparison.notes)

    def test_task_schema_bump_skips_that_task(self):
        comparison = compare_payloads(
            _payload(1.0, task_schema=1), _payload(99.0, task_schema=2)
        )
        assert comparison.ok
        assert any("schema" in note for note in comparison.notes)

    def test_new_task_and_record_noted_not_failed(self):
        current = _payload(1.0)
        current["tasks"][0]["records"].append(
            {"id": "fresh", "metrics": {"elapsed_s": 500.0}}
        )
        current["tasks"].append({
            "task": "demo.new", "schema": 1, "source": "", "summary": "",
            "params": {}, "regress_on": ["elapsed_s"],
            "records": [{"id": "x", "metrics": {"elapsed_s": 1.0}}],
        })
        comparison = compare_payloads(_payload(1.0), current)
        assert comparison.ok
        assert len(comparison.notes) >= 2

    def test_accumulates_across_payloads(self):
        comparison = Comparison(threshold=0.2, min_abs=0.01)
        compare_payloads(_payload(1.0), _payload(2.0), comparison=comparison)
        other_base, other_cur = _payload(1.0), _payload(1.0)
        for p in (other_base, other_cur):
            p["area"] = "demo2"
            p["tasks"][0]["task"] = "demo2.thing"
        compare_payloads(other_base, other_cur, comparison=comparison)
        assert len(comparison.regressions) == 1
        assert len(comparison.stable) == 1


class TestLoadBaseline:
    def test_directory_source(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(_payload(1.0)))
        assert load_baseline(str(tmp_path), "demo") is not None
        assert load_baseline(str(tmp_path), "missing") is None

    def test_git_ref_source(self):
        """HEAD has the committed robustness numbers."""
        payload = load_baseline("HEAD", "robustness", repo_root=".")
        assert payload is not None
        assert load_baseline("HEAD", "no-such-area", repo_root=".") is None


class TestCompareCli:
    def _write(self, directory, payload):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_demo.json").write_text(json.dumps(payload))

    def test_injected_slowdown_fails_with_exit_1(self, tmp_path, capsys):
        """The acceptance check: >20% slower on a gated metric -> exit 1."""
        self._write(tmp_path / "base", _payload(1.0))
        slower = copy.deepcopy(_payload(1.0))
        slower["tasks"][0]["records"][0]["metrics"]["elapsed_s"] = 1.3
        self._write(tmp_path / "cur", slower)
        code = main([
            "compare", "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_identical_runs_pass(self, tmp_path, capsys):
        self._write(tmp_path / "base", _payload(1.0))
        self._write(tmp_path / "cur", _payload(1.0))
        code = main([
            "compare", "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_no_fail_reports_but_exits_zero(self, tmp_path):
        self._write(tmp_path / "base", _payload(1.0))
        self._write(tmp_path / "cur", _payload(9.0))
        code = main([
            "compare", "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"), "--no-fail",
        ])
        assert code == 0

    def test_missing_current_files_is_usage_error(self, tmp_path):
        code = main(["compare", "--current", str(tmp_path)])
        assert code == 2
