"""One real smoke run of every registered task, through the CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench.cli import main
from repro.bench.registry import all_tasks, areas
from repro.bench.schema import FILE_SCHEMA


@pytest.fixture(scope="module")
def smoke_dir(tmp_path_factory):
    """``run all --smoke`` once; every test inspects the output."""
    out = tmp_path_factory.mktemp("bench-smoke")
    code = main([
        "run", "all", "--smoke", "--quiet", "--out-dir", str(out),
    ])
    assert code == 0
    return out


def _payloads(smoke_dir):
    return [
        json.loads(p.read_text(encoding="utf-8"))
        for p in sorted(smoke_dir.glob("BENCH_*.json"))
    ]


def test_every_area_emits_a_file(smoke_dir):
    produced = {p["area"] for p in _payloads(smoke_dir)}
    assert produced == set(areas())


def test_every_task_emits_records(smoke_dir):
    ran = {
        t["task"]: t
        for p in _payloads(smoke_dir)
        for t in p["tasks"]
    }
    assert set(ran) == {t.name for t in all_tasks()}
    for name, entry in ran.items():
        assert entry["records"], f"{name} produced no records"


def test_schema_tags_present(smoke_dir):
    for payload in _payloads(smoke_dir):
        assert payload["schema"] == FILE_SCHEMA
        assert payload["mode"] == "smoke"
        assert payload["environment"].get("python")
        for entry in payload["tasks"]:
            assert entry["schema"] >= 1
            assert isinstance(entry["regress_on"], list)


def test_smoke_files_match_committed_areas(smoke_dir):
    """The committed trajectory covers exactly the registered areas."""
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    committed = {
        p.name[len("BENCH_"):-len(".json")]
        for p in repo_root.glob("BENCH_*.json")
    }
    assert committed == set(areas())
