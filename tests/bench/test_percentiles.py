"""Unit tests for :func:`repro.bench.schema.percentiles`."""

from __future__ import annotations

import random

import pytest

from repro.bench.schema import percentiles


class TestPercentiles:
    def test_single_sample_is_every_percentile(self):
        assert percentiles([7.0]) == {"p50": 7.0, "p95": 7.0, "p99": 7.0}

    def test_median_of_even_count_interpolates(self):
        assert percentiles([1.0, 2.0, 3.0, 4.0], points=(50,)) == {
            "p50": 2.5
        }

    def test_linear_interpolation_between_closest_ranks(self):
        # 0..100 in steps of 1: pN lands exactly on the value N.
        samples = [float(i) for i in range(101)]
        random.Random(3).shuffle(samples)  # order must not matter
        result = percentiles(samples)
        assert result == {"p50": 50.0, "p95": 95.0, "p99": 99.0}

    def test_interpolates_fractional_rank(self):
        # rank for p95 over 3 samples = 0.95 * 2 = 1.9 -> between the
        # 2nd and 3rd sorted values, 90% of the way.
        result = percentiles([10.0, 20.0, 30.0], points=(95,))
        assert result["p95"] == pytest.approx(29.0)

    def test_extreme_points_clamp_to_min_and_max(self):
        samples = [5.0, 1.0, 9.0]
        assert percentiles(samples, points=(0, 100)) == {
            "p0": 1.0, "p100": 9.0
        }

    def test_key_naming_drops_trailing_zeros(self):
        result = percentiles([1.0, 2.0], points=(99.9,))
        assert list(result) == ["p99.9"]

    def test_empty_samples_raise(self):
        with pytest.raises(ValueError, match="at least one sample"):
            percentiles([])

    def test_out_of_range_point_raises(self):
        with pytest.raises(ValueError):
            percentiles([1.0], points=(101,))
        with pytest.raises(ValueError):
            percentiles([1.0], points=(-1,))
