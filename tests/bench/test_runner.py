"""Runner discipline: determinism, record validation, timing control."""

from __future__ import annotations

import random

import pytest

from repro.bench.registry import BenchTask
from repro.bench.runner import RunContext, run_selection, write_bench_files
from repro.bench.schema import FILE_SCHEMA, load_payload, strip_volatile


def _task(fn, name="demo.thing", **kwargs):
    defaults = dict(
        smoke={"n": 4}, full={"n": 16}, source="benchmarks/bench_demo.py",
        summary="a demo", regress_on=("elapsed_s",),
    )
    defaults.update(kwargs)
    return BenchTask(name=name, fn=fn, **defaults)


def _seeded(ctx):
    return [{
        "id": f"r{i}",
        "draw": ctx.rng.randrange(10**9),
        "n": ctx.param("n"),
        "metrics": {"elapsed_s": random.random()},
    } for i in range(3)]


class TestDeterminism:
    def test_same_seed_same_payload_modulo_volatile(self):
        """The core guarantee: reruns are identical once the
        environment block and wall-clock metrics are stripped."""
        tasks = [_task(_seeded)]
        first = run_selection(tasks, seed=7)["demo"]
        second = run_selection(tasks, seed=7)["demo"]
        assert strip_volatile(first) == strip_volatile(second)
        # ... while the raw payloads differ (random metrics above).
        assert first != second

    def test_different_seed_different_stream(self):
        tasks = [_task(_seeded)]
        a = run_selection(tasks, seed=7)["demo"]
        b = run_selection(tasks, seed=8)["demo"]
        assert strip_volatile(a) != strip_volatile(b)

    def test_task_stream_independent_of_selection(self):
        """Adding a second task must not shift the first one's rng."""

        def draws(payload):
            (entry,) = [
                t for t in payload["tasks"] if t["task"] == "demo.thing"
            ]
            return [r["draw"] for r in entry["records"]]

        other = _task(lambda ctx: [{"id": "x"}], name="demo.other")
        alone = run_selection([_task(_seeded)], seed=7)["demo"]
        together = run_selection([other, _task(_seeded)], seed=7)["demo"]
        assert draws(alone) == draws(together)


class TestRecordValidation:
    def test_missing_id_rejected(self):
        task = _task(lambda ctx: [{"n": 1}])
        with pytest.raises(ValueError, match="needs an 'id'"):
            run_selection([task])

    def test_duplicate_id_rejected(self):
        task = _task(lambda ctx: [{"id": "a"}, {"id": "a"}])
        with pytest.raises(ValueError, match="duplicate record id"):
            run_selection([task])

    def test_non_dict_metrics_rejected(self):
        task = _task(lambda ctx: [{"id": "a", "metrics": 3.0}])
        with pytest.raises(ValueError, match="metrics"):
            run_selection([task])


class TestModesAndTiming:
    def test_mode_selects_params_and_timing_defaults(self):
        seen = {}

        def peek(ctx):
            seen.update(
                n=ctx.param("n"), warmup=ctx.warmup, repeat=ctx.repeat
            )
            return [{"id": "only"}]

        run_selection([_task(peek)], mode="smoke")
        assert seen == {"n": 4, "warmup": 0, "repeat": 1}
        run_selection([_task(peek)], mode="full")
        assert seen == {"n": 16, "warmup": 1, "repeat": 3}

    def test_explicit_warmup_repeat_override(self):
        seen = {}

        def peek(ctx):
            seen.update(warmup=ctx.warmup, repeat=ctx.repeat)
            return [{"id": "only"}]

        run_selection([_task(peek)], mode="smoke", warmup=2, repeat=5)
        assert seen == {"warmup": 2, "repeat": 5}

    def test_timeit_returns_result_and_best_seconds(self):
        ctx = RunContext(params={}, rng=random.Random(0), repeat=3)
        calls = []
        result, best = ctx.timeit(lambda: calls.append(0) or "value")
        assert result == "value"
        assert len(calls) == 3
        assert best >= 0.0


class TestArtifacts:
    def test_payload_shape(self):
        payload = run_selection([_task(_seeded)], seed=7)["demo"]
        assert payload["schema"] == FILE_SCHEMA
        assert payload["area"] == "demo"
        assert payload["mode"] == "smoke"
        assert payload["seed"] == 7
        assert "python" in payload["environment"]
        (task,) = payload["tasks"]
        assert task["task"] == "demo.thing"
        assert task["regress_on"] == ["elapsed_s"]
        assert task["source"] == "benchmarks/bench_demo.py"

    def test_write_bench_files_round_trips(self, tmp_path):
        by_area = run_selection([_task(_seeded)], seed=7)
        (path,) = write_bench_files(by_area, tmp_path)
        assert path.name == "BENCH_demo.json"
        assert load_payload(path) == by_area["demo"]
        # File hygiene: sorted keys, trailing newline (clean diffs).
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert text.index('"area"') < text.index('"schema"')
