"""Registry behavior: naming, collisions, lookup, and selection."""

from __future__ import annotations

import pytest

from repro.bench.registry import (
    DuplicateTaskError,
    UnknownTaskError,
    all_tasks,
    areas,
    get_task,
    register,
    select_tasks,
)
from repro.bench.registry import _REGISTRY


@pytest.fixture
def scratch_registry(monkeypatch):
    """An isolated registry so test registrations never leak.

    The real task modules are imported first: ``load_all_tasks`` relies
    on the import cache for idempotence, so importing them while the
    scratch dict is active would lose their registrations for good.
    """
    from repro.bench.registry import load_all_tasks

    load_all_tasks()
    monkeypatch.setattr("repro.bench.registry._REGISTRY", {})
    return None


def _noop(ctx):
    return [{"id": "only"}]


class TestRegistration:
    def test_register_returns_the_function(self, scratch_registry):
        decorated = register("area.task", smoke={}, full={})(_noop)
        assert decorated is _noop
        assert get_task("area.task").fn is _noop

    def test_duplicate_name_rejected(self, scratch_registry):
        register("area.task", smoke={}, full={})(_noop)
        with pytest.raises(DuplicateTaskError, match="area.task"):
            register("area.task", smoke={}, full={})(_noop)

    @pytest.mark.parametrize("name", [
        "NoDots", "UPPER.case", "area.", ".task", "area.task.extra",
        "area.task_snake", "a rea.task",
    ])
    def test_malformed_names_rejected(self, scratch_registry, name):
        with pytest.raises(ValueError, match="kebab-case"):
            register(name, smoke={}, full={})(_noop)

    def test_area_is_the_prefix(self, scratch_registry):
        register("robustness.chaos-survival", smoke={}, full={})(_noop)
        task = get_task("robustness.chaos-survival")
        assert task.area == "robustness"

    def test_params_for_report_falls_back_to_full(self, scratch_registry):
        register("a.t", smoke={"n": 1}, full={"n": 9})(_noop)
        task = get_task("a.t")
        assert task.params_for("smoke") == {"n": 1}
        assert task.params_for("full") == {"n": 9}
        assert task.params_for("report") == {"n": 9}

    def test_explicit_report_params_win(self, scratch_registry):
        register("a.t", smoke={"n": 1}, full={"n": 9}, report={"n": 5})(_noop)
        assert get_task("a.t").params_for("report") == {"n": 5}


class TestLookup:
    def test_unknown_task_suggests_neighbours(self, scratch_registry):
        register("crypto.collision-bound", smoke={}, full={})(_noop)
        with pytest.raises(UnknownTaskError) as excinfo:
            get_task("crypto.colision-bound")
        assert "crypto.collision-bound" in str(excinfo.value)

    def test_select_by_task_area_and_all(self, scratch_registry):
        for name in ("a.one", "a.two", "b.one"):
            register(name, smoke={}, full={})(_noop)
        assert [t.name for t in select_tasks("a.one")] == ["a.one"]
        assert [t.name for t in select_tasks("a")] == ["a.one", "a.two"]
        assert [t.name for t in select_tasks("all")] == [
            "a.one", "a.two", "b.one"
        ]

    def test_select_comma_union_deduplicates(self, scratch_registry):
        for name in ("a.one", "a.two", "b.one"):
            register(name, smoke={}, full={})(_noop)
        names = [t.name for t in select_tasks("b,a.one,b.one")]
        assert names == ["a.one", "b.one"]

    def test_select_unknown_raises(self, scratch_registry):
        register("a.one", smoke={}, full={})(_noop)
        with pytest.raises(UnknownTaskError):
            select_tasks("nope")


class TestRealRegistry:
    """The shipped task set, loaded for real."""

    def test_loads_and_is_plentiful(self):
        tasks = all_tasks()
        assert len(tasks) >= 20
        assert len(areas()) >= 8
        assert _REGISTRY  # loaded by side effect

    def test_every_task_has_source_and_summary(self):
        for task in all_tasks():
            assert task.summary, task.name
            assert task.source.startswith("benchmarks/"), task.name
            assert task.schema >= 1, task.name

    def test_migrated_robustness_tasks_present(self):
        names = {t.name for t in all_tasks()}
        assert {
            "robustness.fault-tolerance",
            "robustness.journal-overhead",
            "robustness.kill-resume",
            "robustness.chaos-survival",
        } <= names
