"""Shared fixtures: small, fast groups and deterministic suites.

Tests run over 64/128-bit embedded safe primes - far below
cryptographic strength but identical code paths; the benchmark harness
exercises the realistic 512-2048 bit sizes.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.commutative import PowerCipher
from repro.crypto.groups import QRGroup
from repro.crypto.hashing import TryIncrementHash
from repro.protocols.base import ProtocolSuite


@pytest.fixture(scope="session")
def group64() -> QRGroup:
    return QRGroup.for_bits(64)


@pytest.fixture(scope="session")
def group128() -> QRGroup:
    return QRGroup.for_bits(128)


@pytest.fixture(scope="session")
def group256() -> QRGroup:
    return QRGroup.for_bits(256)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(20030609)  # SIGMOD 2003 started June 9


@pytest.fixture()
def cipher128(group128) -> PowerCipher:
    return PowerCipher(group128)


@pytest.fixture()
def hash128(group128) -> TryIncrementHash:
    return TryIncrementHash(group128)


@pytest.fixture()
def suite() -> ProtocolSuite:
    """A deterministic 128-bit suite, fresh per test."""
    return ProtocolSuite.default(bits=128, seed=42)


@pytest.fixture()
def suite64() -> ProtocolSuite:
    """Smallest/fastest suite for property-based protocol tests."""
    return ProtocolSuite.default(bits=64, seed=42)
