"""Executable view simulators from the security proofs.

The proofs of Statements 2, 4 and 6 construct, for each party, a
simulator that reproduces the party's view of the protocol using *only*
the information that party is allowed to learn. Indistinguishability of
real and simulated views is the definition of security in the
semi-honest model [26].

Computational indistinguishability cannot be tested empirically, but
making the simulators executable still buys a lot:

* the simulated view must have exactly the same *structure* (message
  schema, sequence lengths) as the real view - a mismatch means the
  protocol transmits information the proof never accounted for;
* every simulator's input list is a machine-readable statement of what
  the party learns - the audit (:mod:`repro.protocols.audit`) checks
  the real view contains nothing the simulator could not have produced.

Each ``simulate_*`` function mirrors the corresponding proof text and
returns a :class:`~repro.net.transcript.View` with the same step labels
as the real protocol drivers.
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

from ..crypto.commutative import PowerCipher
from ..crypto.groups import QRGroup
from ..crypto.hashing import DomainHash
from ..net.transcript import View
from .spec import PROTOCOLS

__all__ = [
    "simulate_s_view_intersection",
    "simulate_r_view_intersection",
    "simulate_r_view_equijoin",
    "simulate_r_view_intersection_size",
]

# Step labels come from the registered round schedules, so the
# simulated views stay aligned with the real wire by construction.
_STEP_Y_R = PROTOCOLS["intersection"].rounds[0].parts[0]
_STEP_Y_S, _STEP_PAIRS = PROTOCOLS["intersection"].rounds[1].parts
_STEP_TRIPLES, _STEP_EXT_PAIRS = PROTOCOLS["equijoin"].rounds[1].parts
_STEP_SIZE_Y_S, _STEP_Z_R = PROTOCOLS["intersection-size"].rounds[1].parts


def simulate_s_view_intersection(
    group: QRGroup, size_v_r: int, rng: random.Random, protocol: str = "intersection"
) -> View:
    """S's simulator (proof of Statement 2).

    S receives only Step 3's ``Y_R``; the simulator emits ``|V_R|``
    random group elements in lexicographic order. The same simulator
    serves the equijoin and the (equi)join-size protocols, where S's
    incoming traffic is identical.
    """
    view = View(party="S", protocol=protocol)
    z = sorted(group.random_element(rng) for _ in range(size_v_r))
    view.record(_STEP_Y_R, z)
    return view


def simulate_r_view_intersection(
    group: QRGroup,
    hash_fn: DomainHash,
    e_r: int,
    v_r: Sequence[Hashable],
    intersection: set[Hashable],
    size_v_s: int,
    rng: random.Random,
) -> View:
    """R's simulator (proof of Statement 2).

    Inputs are exactly what R may use: its own ``V_R`` and key ``e_R``,
    the hash function, the answer ``V_S ∩ V_R`` and ``|V_S|``. The
    simulator picks its own key ``ẽ_S``; values in ``V_S − V_R`` are
    replaced by uniform random group elements.
    """
    view = View(party="R", protocol="intersection")
    cipher = PowerCipher(group)
    e_s_tilde = cipher.sample_key(rng)

    # Step 4(a): encryptions of intersection hashes under ẽ_S plus
    # |V_S − V_R| random elements, sorted.
    y_s = [cipher.encrypt(e_s_tilde, hash_fn.hash_value(v)) for v in intersection]
    y_s += [group.random_element(rng) for _ in range(size_v_s - len(intersection))]
    view.record(_STEP_Y_S, sorted(y_s))

    # Step 4(b): R's own Y_R re-encrypted with ẽ_S, paired.
    y_r = sorted(cipher.encrypt(e_r, hash_fn.hash_value(v)) for v in set(v_r))
    pairs = [(y, cipher.encrypt(e_s_tilde, y)) for y in y_r]
    view.record(_STEP_PAIRS, pairs)
    return view


def simulate_r_view_equijoin(
    group: QRGroup,
    hash_fn: DomainHash,
    e_r: int,
    v_r: Sequence[Hashable],
    matches: dict[Hashable, bytes],
    size_v_s: int,
    rng: random.Random,
    ext_cipher,
) -> View:
    """R's simulator (proof of Statement 4).

    Uses ``V_R``, ``e_R``, the intersection with its ``ext`` payloads,
    and ``|V_S|``. Values outside the intersection get uniformly random
    codewords paired with ciphertexts of *fresh random keys* - which the
    cipher's perfect secrecy makes distributed exactly like real ones
    (the proof's distribution ``D_ext``); here we sample them the same
    way the protocol would, from random keys, since that *is* ``D_ext``.
    """
    view = View(party="R", protocol="equijoin")
    cipher = PowerCipher(group)

    # Step 4: triples over R's own Y_R, second/third entries random
    # functions of y under simulator keys.
    e_s_tilde = cipher.sample_key(rng)
    e_s_prime_tilde = cipher.sample_key(rng)
    y_r = sorted(cipher.encrypt(e_r, hash_fn.hash_value(v)) for v in set(v_r))
    triples = [
        (y, cipher.encrypt(e_s_tilde, y), cipher.encrypt(e_s_prime_tilde, y))
        for y in y_r
    ]
    view.record(_STEP_TRIPLES, triples)

    # Step 5: pairs for the intersection built from the known ext
    # payloads; |V_S − V_R| filler pairs drawn from D_ext.
    pairs = []
    for v, ext in matches.items():
        codeword = cipher.encrypt(e_s_tilde, hash_fn.hash_value(v))
        kappa = cipher.encrypt(e_s_prime_tilde, hash_fn.hash_value(v))
        pairs.append((codeword, ext_cipher.encrypt(kappa, ext)))
    filler_payload = b"\x00" * (len(next(iter(matches.values()))) if matches else 8)
    for _ in range(size_v_s - len(matches)):
        codeword = group.random_element(rng)
        kappa = group.random_element(rng)
        pairs.append((codeword, ext_cipher.encrypt(kappa, filler_payload)))
    view.record(_STEP_EXT_PAIRS, sorted(pairs))
    return view


def simulate_r_view_intersection_size(
    group: QRGroup,
    size_v_s: int,
    size_v_r: int,
    intersection_size: int,
    e_r: int,
    rng: random.Random,
) -> View:
    """R's simulator (proof of Statement 6).

    Draws ``n = |V_S ∪ V_R|`` random elements ``y_i`` standing for
    ``f_eS(h(v))``; ``Y_S`` is the first ``|V_S|`` of them, ``Z_R`` is
    the encryption under the *real* ``e_R`` of those ``y_i`` with index
    in ``[t+1, n]`` (i.e. R's values), where ``t = |V_S| − |∩|``.
    """
    view = View(party="R", protocol="intersection_size")
    cipher = PowerCipher(group)
    t = size_v_s - intersection_size
    n = size_v_s + size_v_r - intersection_size
    y = [group.random_element(rng) for _ in range(n)]
    view.record(_STEP_SIZE_Y_S, sorted(y[:size_v_s]))
    z_r = [cipher.encrypt(e_r, yi) for yi in y[t:]]
    view.record(_STEP_Z_R, sorted(z_r))
    return view
