"""Incremental (delta) protocol schedules over committed full runs.

A full protocol run is linear in |V| per query: both parties re-hash
and re-encrypt their entire catalogs.  This module closes that gap for
*series* of queries over slowly-changing tables: after one full run,
each party keeps the per-value crypto state the run produced (the
stashes on the :mod:`repro.protocols.parties` classes), and subsequent
queries exchange only the *delta* — newly inserted values encrypted,
removed values tombstoned by their old ciphertexts — spliced into the
cached transcript.  All modexp work per delta query is O(|delta|);
only cheap set/counter bookkeeping touches the full catalogs.

The deltas are ordinary registered :class:`~repro.protocols.spec.ProtocolSpec`
entries (``"<name>+delta"``, marked with ``delta_of``), interpreted by
the same generic machines — so every transport (in-memory, plain TCP,
resumable sessions with journal recovery, the chaos harness) runs them
with zero transport changes.

Wrapper states are built from a :class:`DeltaExchange` (the ``data``
argument of the spec factories) naming the committed base state and
the staged inserts/deletes.  A wrapper never mutates the base state
while the session runs; only an explicit :meth:`commit` — issued by
the catalog layer after the session completed — folds the overlay into
the base.  That keeps the factories idempotent, which the journal
replay and chaos-recovery paths rely on: rebuilding a machine from the
same exchange reproduces byte-identical rounds (for the deterministic
protocols; ``equijoin-sum`` draws Paillier/mask randomness per query
and is therefore not journal-replay-safe — see ``docs/PROTOCOLS.md``).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from ..crypto.hashing import find_collisions
from .base import HashCollisionError, sorted_ciphertexts
from .messages import (
    BlindedSum,
    DeltaAnnounce,
    EquijoinDeltaPatch,
    IntersectionDeltaPatch,
    RevealedSum,
    SizeDeltaPatch,
    SumDeltaPatch,
)
from .spec import (
    ProtocolSpec,
    RoundSpec,
    _finish_m2,
    _finish_m4,
    _receiver_round1,
    _receiver_round2,
    _sender_round1,
    _sender_round2,
    register,
)

__all__ = [
    "DeltaExchange",
    "IntersectionDeltaReceiver",
    "IntersectionDeltaSender",
    "IntersectionSizeDeltaReceiver",
    "IntersectionSizeDeltaSender",
    "EquijoinDeltaReceiver",
    "EquijoinDeltaSender",
    "EquijoinSizeDeltaReceiver",
    "EquijoinSizeDeltaSender",
    "EquijoinSumDeltaReceiver",
    "EquijoinSumDeltaSender",
]


@dataclass
class DeltaExchange:
    """One party's input to a delta session.

    ``state`` is the committed base party state (one that completed a
    full run), or ``make_state`` a zero-argument factory rebuilding it
    deterministically — the factory form is what makes journal replay
    and chaos restarts work: each rebuilt machine resolves the same
    base.  The resolution is cached, so repeated machine factories
    within one process share one base object.

    ``inserts`` is a tuple of ``(value, payload)`` pairs (payload is
    ``None`` for membership-only protocols, the ext bytes for equijoin,
    the integer amount for equijoin-sum; multiset protocols repeat a
    value once per inserted occurrence).  ``deletes`` is a tuple of
    values (repeated per removed occurrence for multisets).
    """

    make_state: Callable[[], Any] | None = None
    state: Any = None
    inserts: tuple = ()
    deletes: tuple = ()

    def resolve(self) -> Any:
        """The base state (building and caching it on first use)."""
        if self.state is None:
            if self.make_state is None:
                raise ValueError("DeltaExchange needs a state or a make_state")
            self.state = self.make_state()
        return self.state


def _require_full_run(base: Any, *attrs: str) -> None:
    """Fail fast when the base state never completed a full query."""
    for attr in attrs:
        if not hasattr(base, attr):
            raise ValueError(
                "delta query requires a committed full run first "
                f"(base state is missing {attr!r})"
            )


def _delta_hashes(base: Any, values: list, removed: Any = ()) -> list[int]:
    """Hash newly inserted values, collision-checked against the
    committed set (the paper's sorted-hash check over the union).
    Values tombstoned in the same delta are excluded from the
    committed side, so a replace doesn't collide with itself."""
    new_hashes = base.hash.hash_set(values)
    kept = [
        h for v, h in base._hash_by_value.items() if v not in removed
    ]
    if find_collisions(kept + new_hashes):
        raise HashCollisionError(
            "hash collision between inserted and committed values"
        )
    return new_hashes


class _DeltaParty:
    """Shared wrapper plumbing for the set-based protocols.

    Splits the staged deltas against the committed value set: deleting
    an absent value and re-inserting a present one (with no payload)
    are dropped as no-ops; inserting a present value *with* a payload
    is a replace (tombstone + insert).  The normalized ``added`` /
    ``removed`` lists are sorted by ``repr`` like party value lists.
    """

    def __init__(
        self,
        exchange: DeltaExchange,
        params: Any,
        rng: random.Random,
        engine: Any = None,
        crypto: Any = None,
    ):
        self.exchange = exchange
        self.base = exchange.resolve()
        self.rng = rng
        base_values = set(self.base.values)
        removed = {v for v in exchange.deletes if v in base_values}
        payloads: dict[Hashable, Any] = {}
        for v, payload in exchange.inserts:
            if v in base_values and v not in removed:
                if payload is None:
                    continue  # membership unchanged: no-op
                removed.add(v)  # replace: tombstone the old entry first
            payloads[v] = payload
        self.added = sorted(payloads, key=repr)
        self.removed = sorted(removed, key=repr)
        self.payloads = payloads

    def _announce(self) -> DeltaAnnounce:
        """Encrypt the inserted values, tombstone the removed ones."""
        base = self.base
        self._new_hashes = _delta_hashes(base, self.added, set(self.removed))
        new_ys = base.cipher.encrypt_many(base._key, self._new_hashes)
        self._new_y_by_value = dict(zip(self.added, new_ys))
        removed_ys = [base._y_by_value[v] for v in self.removed]
        return DeltaAnnounce(
            added=sorted_ciphertexts(new_ys),
            removed=sorted_ciphertexts(removed_ys),
        )

    def _commit_values(self) -> None:
        """Fold the value/ciphertext overlay into the base state."""
        base = self.base
        for v in self.removed:
            base._y_by_value.pop(v, None)
            base._hash_by_value.pop(v, None)
        base._y_by_value.update(self._new_y_by_value)
        base._hash_by_value.update(zip(self.added, self._new_hashes))
        base.values = sorted(base._y_by_value, key=repr)
        base._hashes = [base._hash_by_value[v] for v in base.values]
        if getattr(base, "_cached_y", None) is not None:
            base._cached_y = [base._y_by_value[v] for v in base.values]


# ----------------------------------------------------------------------
# Intersection (Section 3.3)
# ----------------------------------------------------------------------
class IntersectionDeltaReceiver(_DeltaParty):
    """Party R of the incremental intersection."""

    def __init__(self, exchange, params, rng, engine=None, crypto=None):
        super().__init__(exchange, params, rng, engine, crypto)
        _require_full_run(self.base, "_y_by_value", "_z_s", "_double_by_value")

    def round1(self) -> DeltaAnnounce:
        """Delta step 1: announce inserted/tombstoned ciphertexts."""
        return self._announce()

    def finish(self, patch: IntersectionDeltaPatch) -> set[Hashable]:
        """Delta steps 3-4: patch ``Z_S`` and the double-encryption map,
        then recompute the intersection (set ops only, no modexp)."""
        patch = IntersectionDeltaPatch.coerce(patch)
        base = self.base
        z_add = base.cipher.encrypt_many(base._key, list(patch.y_s_added))
        z_del = base.cipher.encrypt_many(base._key, list(patch.y_s_removed))
        self._z_s = (base._z_s | set(z_add)) - set(z_del)
        y_to_value = {y: v for v, y in self._new_y_by_value.items()}
        doubles = dict(base._double_by_value)
        for v in self.removed:
            doubles.pop(v, None)
        for y, double in patch.pairs_added:
            v = y_to_value.get(y)
            if v is not None:
                doubles[v] = double
        self._double_by_value = doubles
        self.size_v_s = (
            base.size_v_s + len(patch.y_s_added) - len(patch.y_s_removed)
        )
        return {v for v, double in doubles.items() if double in self._z_s}

    def commit(self) -> None:
        """Fold the completed delta into the base state."""
        self._commit_values()
        base = self.base
        base._z_s = self._z_s
        base._double_by_value = self._double_by_value
        base.size_v_s = self.size_v_s


class IntersectionDeltaSender(_DeltaParty):
    """Party S of the incremental intersection."""

    def __init__(self, exchange, params, rng, engine=None, crypto=None):
        super().__init__(exchange, params, rng, engine, crypto)
        _require_full_run(self.base, "_y_by_value", "size_v_r")

    def round1(self, announce: DeltaAnnounce) -> IntersectionDeltaPatch:
        """Delta step 2: own churn plus pairs for R's announced inserts."""
        announce = DeltaAnnounce.coerce(announce)
        base = self.base
        self._new_hashes = _delta_hashes(base, self.added, set(self.removed))
        new_ys = base.cipher.encrypt_many(base._key, self._new_hashes)
        self._new_y_by_value = dict(zip(self.added, new_ys))
        removed_ys = [base._y_by_value[v] for v in self.removed]
        announced = list(announce.added)
        pairs_added = list(
            zip(announced, base.cipher.encrypt_many(base._key, announced))
        )
        self.size_v_r = (
            base.size_v_r + len(announce.added) - len(announce.removed)
        )
        return IntersectionDeltaPatch(
            y_s_added=sorted_ciphertexts(new_ys),
            y_s_removed=sorted_ciphertexts(removed_ys),
            pairs_added=pairs_added,
        )

    def commit(self) -> None:
        """Fold the completed delta into the base state."""
        self._commit_values()
        self.base.size_v_r = self.size_v_r


# ----------------------------------------------------------------------
# Intersection size (Section 5.1)
# ----------------------------------------------------------------------
class IntersectionSizeDeltaReceiver(_DeltaParty):
    """Party R of the incremental intersection-size."""

    def __init__(self, exchange, params, rng, engine=None, crypto=None):
        super().__init__(exchange, params, rng, engine, crypto)
        _require_full_run(self.base, "_y_by_value", "_z_s", "_z_r")

    def round1(self) -> DeltaAnnounce:
        """Delta step 1: announce inserted/tombstoned ciphertexts."""
        return self._announce()

    def finish(self, patch: SizeDeltaPatch) -> int:
        """Delta steps 3-4: patch both double-encrypted sets, count."""
        patch = SizeDeltaPatch.coerce(patch)
        base = self.base
        z_add = base.cipher.encrypt_many(base._key, list(patch.y_s_added))
        z_del = base.cipher.encrypt_many(base._key, list(patch.y_s_removed))
        self._z_s = (base._z_s | set(z_add)) - set(z_del)
        self._z_r = (base._z_r | set(patch.z_added)) - set(patch.z_removed)
        self.size_v_s = (
            base.size_v_s + len(patch.y_s_added) - len(patch.y_s_removed)
        )
        return len(self._z_s & self._z_r)

    def commit(self) -> None:
        """Fold the completed delta into the base state."""
        self._commit_values()
        base = self.base
        base._z_s = self._z_s
        base._z_r = self._z_r
        base.size_v_s = self.size_v_s


class IntersectionSizeDeltaSender(_DeltaParty):
    """Party S of the incremental intersection-size."""

    def __init__(self, exchange, params, rng, engine=None, crypto=None):
        super().__init__(exchange, params, rng, engine, crypto)
        _require_full_run(self.base, "_y_by_value", "size_v_r")

    def round1(self, announce: DeltaAnnounce) -> SizeDeltaPatch:
        """Delta step 2: own churn plus doubles of R's announced churn."""
        announce = DeltaAnnounce.coerce(announce)
        base = self.base
        self._new_hashes = _delta_hashes(base, self.added, set(self.removed))
        new_ys = base.cipher.encrypt_many(base._key, self._new_hashes)
        self._new_y_by_value = dict(zip(self.added, new_ys))
        removed_ys = [base._y_by_value[v] for v in self.removed]
        z_added = base.cipher.encrypt_many(base._key, list(announce.added))
        z_removed = base.cipher.encrypt_many(base._key, list(announce.removed))
        self.size_v_r = (
            base.size_v_r + len(announce.added) - len(announce.removed)
        )
        return SizeDeltaPatch(
            y_s_added=sorted_ciphertexts(new_ys),
            y_s_removed=sorted_ciphertexts(removed_ys),
            z_added=sorted_ciphertexts(z_added),
            z_removed=sorted_ciphertexts(z_removed),
        )

    def commit(self) -> None:
        """Fold the completed delta into the base state."""
        self._commit_values()
        self.base.size_v_r = self.size_v_r


# ----------------------------------------------------------------------
# Equijoin (Section 4.3)
# ----------------------------------------------------------------------
class EquijoinDeltaReceiver(_DeltaParty):
    """Party R of the incremental equijoin."""

    def __init__(self, exchange, params, rng, engine=None, crypto=None):
        super().__init__(exchange, params, rng, engine, crypto)
        _require_full_run(
            self.base, "_y_by_value", "_by_codeword", "_pairs_by_codeword"
        )

    def round1(self) -> DeltaAnnounce:
        """Delta step 1: announce inserted/tombstoned ciphertexts."""
        return self._announce()

    def finish(self, patch: EquijoinDeltaPatch) -> dict[Hashable, bytes]:
        """Delta steps 3-4: strip own layer off the new triples, patch
        both codeword maps, re-match and decrypt (O(delta) modexp)."""
        patch = EquijoinDeltaPatch.coerce(patch)
        base = self.base
        ext_cipher = base.crypto.ext()
        inverse = base.cipher.invert_key(base._key)
        y_to_value = {y: v for v, y in self._new_y_by_value.items()}
        mine = [
            (y_to_value[y], second, third)
            for y, second, third in patch.triples_added
            if y in y_to_value
        ]
        codewords = base.cipher.encrypt_many(inverse, [t[1] for t in mine])
        kappas = base.cipher.encrypt_many(inverse, [t[2] for t in mine])
        by_codeword = dict(base._by_codeword)
        codeword_by_value = dict(base._codeword_by_value)
        for v in self.removed:
            codeword = codeword_by_value.pop(v, None)
            if codeword is not None:
                by_codeword.pop(codeword, None)
        for (v, _, _), codeword, kappa in zip(mine, codewords, kappas):
            by_codeword[codeword] = (v, kappa)
            codeword_by_value[v] = codeword
        pairs = dict(base._pairs_by_codeword)
        for codeword in patch.pairs_removed:
            pairs.pop(codeword, None)
        for codeword, ciphertext in patch.pairs_added:
            pairs[codeword] = list(ciphertext)
        matches = {}
        for codeword, ciphertext in pairs.items():
            hit = by_codeword.get(codeword)
            if hit is None:
                continue
            v, kappa = hit
            matches[v] = ext_cipher.decrypt(kappa, list(ciphertext))
        self._by_codeword = by_codeword
        self._codeword_by_value = codeword_by_value
        self._pairs_by_codeword = pairs
        self.size_v_s = len(pairs)
        return matches

    def commit(self) -> None:
        """Fold the completed delta into the base state."""
        self._commit_values()
        base = self.base
        base._by_codeword = self._by_codeword
        base._codeword_by_value = self._codeword_by_value
        base._pairs_by_codeword = self._pairs_by_codeword
        base.size_v_s = self.size_v_s


class EquijoinDeltaSender(_DeltaParty):
    """Party S of the incremental equijoin (two keys + ext payloads)."""

    def __init__(self, exchange, params, rng, engine=None, crypto=None):
        super().__init__(exchange, params, rng, engine, crypto)
        _require_full_run(
            self.base, "_codeword_by_value", "_kappa_by_value", "size_v_r"
        )
        missing = [v for v in self.added if self.payloads[v] is None]
        if missing:
            raise ValueError(
                f"equijoin inserts need an ext payload ({len(missing)} missing)"
            )

    def round1(self, announce: DeltaAnnounce) -> EquijoinDeltaPatch:
        """Delta step 2: triples for R's inserts, pair churn for own."""
        announce = DeltaAnnounce.coerce(announce)
        base = self.base
        announced = list(announce.added)
        triples_added = list(
            zip(
                announced,
                base.cipher.encrypt_many(base._key, announced),
                base.cipher.encrypt_many(base._key_prime, announced),
            )
        )
        self._new_hashes = _delta_hashes(base, self.added, set(self.removed))
        codewords = base.cipher.encrypt_many(base._key, self._new_hashes)
        kappas = base.cipher.encrypt_many(base._key_prime, self._new_hashes)
        self._new_codewords = dict(zip(self.added, codewords))
        self._new_kappas = dict(zip(self.added, kappas))
        pairs_added = sorted(
            (
                codeword,
                base._ext_cipher.encrypt(kappa, bytes(self.payloads[v])),
            )
            for v, codeword, kappa in zip(self.added, codewords, kappas)
        )
        pairs_removed = sorted_ciphertexts(
            [base._codeword_by_value[v] for v in self.removed]
        )
        self.size_v_r = (
            base.size_v_r + len(announce.added) - len(announce.removed)
        )
        return EquijoinDeltaPatch(
            triples_added=triples_added,
            pairs_added=pairs_added,
            pairs_removed=pairs_removed,
        )

    def commit(self) -> None:
        """Fold the completed delta into the base state."""
        base = self.base
        for v in self.removed:
            base.ext.pop(v, None)
            base._codeword_by_value.pop(v, None)
            base._kappa_by_value.pop(v, None)
            base._hash_by_value.pop(v, None)
        for v in self.added:
            base.ext[v] = bytes(self.payloads[v])
        base._codeword_by_value.update(self._new_codewords)
        base._kappa_by_value.update(self._new_kappas)
        base._hash_by_value.update(zip(self.added, self._new_hashes))
        base.values = sorted(base.ext, key=repr)
        base._hashes = [base._hash_by_value[v] for v in base.values]
        if getattr(base, "_cached_cw", None) is not None:
            base._cached_cw = [base._codeword_by_value[v] for v in base.values]
            base._cached_kp = [base._kappa_by_value[v] for v in base.values]
        base.size_v_r = self.size_v_r


# ----------------------------------------------------------------------
# Equijoin size over multisets (Section 5.2)
# ----------------------------------------------------------------------
class _MultisetDelta:
    """Shared wrapper plumbing for the occurrence-counted protocols."""

    def __init__(
        self,
        exchange: DeltaExchange,
        params: Any,
        rng: random.Random,
        engine: Any = None,
        crypto: Any = None,
    ):
        self.exchange = exchange
        self.base = exchange.resolve()
        self.rng = rng
        _require_full_run(self.base, "multiset", "_y_by_value")
        base = self.base
        self.ins_counts = Counter(v for v, _ in exchange.inserts)
        self.del_counts = Counter(exchange.deletes)
        for v, n in self.del_counts.items():
            have = base.multiset.multiplicity(v) + self.ins_counts.get(v, 0)
            if n > have:
                raise ValueError(
                    f"cannot delete {n} occurrences of {v!r} "
                    f"(only {have} present)"
                )
        self.new_values = sorted(
            (v for v in self.ins_counts if v not in base._y_by_value),
            key=repr,
        )

    def _expand(self, counts: Counter, y_map: dict) -> list:
        """One ciphertext per occurrence, in sorted-value order."""
        return [
            y_map[v]
            for v in sorted(counts, key=repr)
            for _ in range(counts[v])
        ]

    def _announce(self) -> DeltaAnnounce:
        base = self.base
        self._new_hashes = _delta_hashes(base, self.new_values)
        new_ys = base.cipher.encrypt_many(base._key, self._new_hashes)
        self._new_y_by_value = dict(zip(self.new_values, new_ys))
        y_map = {**base._y_by_value, **self._new_y_by_value}
        return DeltaAnnounce(
            added=sorted_ciphertexts(self._expand(self.ins_counts, y_map)),
            removed=sorted_ciphertexts(self._expand(self.del_counts, y_map)),
        )

    def _commit_multiset(self) -> None:
        """Fold the occurrence churn into the base multiset state."""
        from ..db.multiset import ValueMultiset

        base = self.base
        counts = Counter(base.multiset.counts)
        counts.update(self.ins_counts)
        counts.subtract(self.del_counts)
        counts = Counter({v: n for v, n in counts.items() if n > 0})
        base.multiset = ValueMultiset(counts)
        base._y_by_value.update(self._new_y_by_value)
        base._hash_by_value.update(zip(self.new_values, self._new_hashes))
        for v in list(base._y_by_value):
            if v not in counts:
                base._y_by_value.pop(v)
                base._hash_by_value.pop(v, None)
        base.values = sorted(counts, key=repr)
        base._hashes = [base._hash_by_value[v] for v in base.values]
        base._y_multiset = [
            base._y_by_value[v] for v in base.values for _ in range(counts[v])
        ]


class EquijoinSizeDeltaReceiver(_MultisetDelta):
    """Party R of the incremental equijoin-size."""

    def __init__(self, exchange, params, rng, engine=None, crypto=None):
        super().__init__(exchange, params, rng, engine, crypto)
        _require_full_run(self.base, "_z_s_counts", "_z_r_counts")

    def round1(self) -> DeltaAnnounce:
        """Delta step 1: announce inserted/removed occurrences."""
        return self._announce()

    def finish(self, patch: SizeDeltaPatch) -> int:
        """Delta steps 3-4: patch both occurrence counters, then the
        answer is the usual sum of multiplicity products."""
        patch = SizeDeltaPatch.coerce(patch)
        base = self.base
        z_s_counts = Counter(base._z_s_counts)
        for z in base.cipher.encrypt_many(base._key, list(patch.y_s_added)):
            z_s_counts[z] += 1
        for z in base.cipher.encrypt_many(base._key, list(patch.y_s_removed)):
            z_s_counts[z] -= 1
        z_s_counts = +z_s_counts
        z_r_counts = Counter(base._z_r_counts)
        z_r_counts.update(patch.z_added)
        z_r_counts.subtract(patch.z_removed)
        z_r_counts = +z_r_counts
        self._z_s_counts = z_s_counts
        self._z_r_counts = z_r_counts
        self.size_v_s = sum(z_s_counts.values())
        return sum(
            count * z_r_counts[codeword]
            for codeword, count in z_s_counts.items()
            if codeword in z_r_counts
        )

    def commit(self) -> None:
        """Fold the completed delta into the base state."""
        self._commit_multiset()
        base = self.base
        base._z_s_counts = self._z_s_counts
        base._z_r_counts = self._z_r_counts
        base.size_v_s = self.size_v_s


class EquijoinSizeDeltaSender(_MultisetDelta):
    """Party S of the incremental equijoin-size."""

    def __init__(self, exchange, params, rng, engine=None, crypto=None):
        super().__init__(exchange, params, rng, engine, crypto)
        _require_full_run(self.base, "size_v_r")

    def round1(self, announce: DeltaAnnounce) -> SizeDeltaPatch:
        """Delta step 2: own occurrence churn plus doubles of R's."""
        announce = DeltaAnnounce.coerce(announce)
        base = self.base
        own = self._announce()  # reuse: own added/removed, expanded
        z_added = base.cipher.encrypt_many(base._key, list(announce.added))
        z_removed = base.cipher.encrypt_many(base._key, list(announce.removed))
        self.size_v_r = (
            base.size_v_r + len(announce.added) - len(announce.removed)
        )
        return SizeDeltaPatch(
            y_s_added=own.added,
            y_s_removed=own.removed,
            z_added=sorted_ciphertexts(z_added),
            z_removed=sorted_ciphertexts(z_removed),
        )

    def commit(self) -> None:
        """Fold the completed delta into the base state."""
        self._commit_multiset()
        self.base.size_v_r = self.size_v_r


# ----------------------------------------------------------------------
# Equijoin sum (aggregate)
# ----------------------------------------------------------------------
class EquijoinSumDeltaReceiver(_DeltaParty):
    """Party R of the incremental equijoin-sum.

    The blinded-sum round trip runs on every query (R never learns the
    plaintext amounts, so the answer cannot be maintained locally), but
    the double-encryption cache keeps the matching O(delta) modexp.
    Draws mask/rerandomization randomness per query, so this delta is
    *not* journal-replay-safe.
    """

    def __init__(self, exchange, params, rng, engine=None, crypto=None):
        super().__init__(exchange, params, rng, engine, crypto)
        _require_full_run(
            self.base, "_y_by_value", "_z_r_set", "_z_by_codeword", "_pk"
        )

    def round1(self) -> DeltaAnnounce:
        """Delta step 1: announce inserted/tombstoned ciphertexts."""
        return self._announce()

    def round2(self, patch: SumDeltaPatch) -> BlindedSum:
        """Delta step 3: patch ``Z_R`` and the pair map, re-match
        against the cached doubles, sum and blind."""
        patch = SumDeltaPatch.coerce(patch)
        base = self.base
        pk = base._pk
        z_r = (base._z_r_set | set(patch.z_added)) - set(patch.z_removed)
        pairs = dict(base._pairs_by_codeword)
        for codeword in patch.pairs_removed:
            pairs.pop(codeword, None)
        z_by_codeword = dict(base._z_by_codeword)
        for codeword, ciphertext in patch.pairs_added:
            pairs[codeword] = ciphertext
            if codeword not in z_by_codeword:
                z_by_codeword[codeword] = base.cipher.encrypt(
                    base._key, codeword
                )
        matched = [
            ciphertext
            for codeword, ciphertext in pairs.items()
            if z_by_codeword[codeword] in z_r
        ]
        accumulator = pk.encrypt_zero(self.rng)
        for ciphertext in matched:
            accumulator = pk.add(accumulator, ciphertext)
        self._mask = self.rng.randrange(pk.n)
        self._z_r_set = z_r
        self._pairs_by_codeword = pairs
        self._z_by_codeword = z_by_codeword
        self.match_count = len(matched)
        self.size_v_s = len(pairs)
        return BlindedSum(pk.add_plain(accumulator, self._mask, self.rng))

    def finish(self, reply: RevealedSum) -> int:
        """Delta step 5: remove the mask from the decrypted sum."""
        reply = RevealedSum.coerce(reply)
        return (reply.value - self._mask) % self.base._pk.n

    def commit(self) -> None:
        """Fold the completed delta into the base state."""
        self._commit_values()
        base = self.base
        base._z_r_set = self._z_r_set
        base._pairs_by_codeword = self._pairs_by_codeword
        base._z_by_codeword = self._z_by_codeword
        base.size_v_s = self.size_v_s


class EquijoinSumDeltaSender(_DeltaParty):
    """Party S of the incremental equijoin-sum (Paillier keyholder)."""

    def __init__(self, exchange, params, rng, engine=None, crypto=None):
        super().__init__(exchange, params, rng, engine, crypto)
        _require_full_run(self.base, "_codeword_by_value", "size_v_r")
        bad = [
            v
            for v in self.added
            if self.payloads[v] is None or int(self.payloads[v]) < 0
        ]
        if bad:
            raise ValueError(
                "equijoin-sum inserts need a non-negative amount "
                f"({len(bad)} invalid)"
            )

    def round1(self, announce: DeltaAnnounce) -> SumDeltaPatch:
        """Delta step 2: doubles of R's churn plus own Paillier churn."""
        announce = DeltaAnnounce.coerce(announce)
        base = self.base
        z_added = base.cipher.encrypt_many(base._key, list(announce.added))
        z_removed = base.cipher.encrypt_many(base._key, list(announce.removed))
        self._new_hashes = _delta_hashes(base, self.added, set(self.removed))
        codewords = base.cipher.encrypt_many(base._key, self._new_hashes)
        self._new_codewords = dict(zip(self.added, codewords))
        pairs_added = sorted(
            (
                codeword,
                base._public.encrypt(int(self.payloads[v]), base.rng),
            )
            for v, codeword in zip(self.added, codewords)
        )
        pairs_removed = sorted_ciphertexts(
            [base._codeword_by_value[v] for v in self.removed]
        )
        self.size_v_r = (
            base.size_v_r + len(announce.added) - len(announce.removed)
        )
        return SumDeltaPatch(
            z_added=sorted_ciphertexts(z_added),
            z_removed=sorted_ciphertexts(z_removed),
            pairs_added=pairs_added,
            pairs_removed=pairs_removed,
        )

    def round2(self, blinded: BlindedSum) -> RevealedSum:
        """Delta step 4: decrypt the blinded accumulator."""
        blinded = BlindedSum.coerce(blinded)
        return RevealedSum(self.base._private.decrypt(blinded.ciphertext))

    def commit(self) -> None:
        """Fold the completed delta into the base state."""
        base = self.base
        for v in self.removed:
            base.amounts.pop(v, None)
            base._codeword_by_value.pop(v, None)
            base._hash_by_value.pop(v, None)
        for v in self.added:
            base.amounts[v] = int(self.payloads[v])
        base._codeword_by_value.update(self._new_codewords)
        base._hash_by_value.update(zip(self.added, self._new_hashes))
        base.values = sorted(base.amounts, key=repr)
        base._hashes = [base._hash_by_value[v] for v in base.values]
        base.size_v_r = self.size_v_r


# ----------------------------------------------------------------------
# Registered delta schedules
#
# Round names reuse the base protocols' "m1".."m4" so the generic step
# helpers, the recorder phase names and the session/journal machinery
# apply unchanged; the part labels carry a "d" prefix so transcripts
# are unambiguous. Delta payloads are O(|delta|), so no round opts
# into chunking.
# ----------------------------------------------------------------------
INTERSECTION_DELTA = register(
    ProtocolSpec(
        name="intersection+delta",
        run_label="intersection_delta",
        rounds=(
            RoundSpec(
                "m1", "R", DeltaAnnounce, _receiver_round1,
                ("d1a:added", "d1b:removed"),
            ),
            RoundSpec(
                "m2", "S", IntersectionDeltaPatch, _sender_round1,
                ("d2a:Y_S+", "d2b:Y_S-", "d2c:pairs+"),
            ),
        ),
        make_receiver=IntersectionDeltaReceiver,
        make_sender=IntersectionDeltaSender,
        finish=_finish_m2,
        sender_input="values",
        answer_kind="set",
        doc="incremental intersection over staged inserts/deletes",
        delta_of="intersection",
    )
)

INTERSECTION_SIZE_DELTA = register(
    ProtocolSpec(
        name="intersection-size+delta",
        run_label="intersection_size_delta",
        rounds=(
            RoundSpec(
                "m1", "R", DeltaAnnounce, _receiver_round1,
                ("d1a:added", "d1b:removed"),
            ),
            RoundSpec(
                "m2", "S", SizeDeltaPatch, _sender_round1,
                ("d2a:Y_S+", "d2b:Y_S-", "d2c:Z_R+", "d2d:Z_R-"),
            ),
        ),
        make_receiver=IntersectionSizeDeltaReceiver,
        make_sender=IntersectionSizeDeltaSender,
        finish=_finish_m2,
        sender_input="values",
        answer_kind="number",
        doc="incremental intersection size over staged inserts/deletes",
        delta_of="intersection-size",
    )
)

EQUIJOIN_DELTA = register(
    ProtocolSpec(
        name="equijoin+delta",
        run_label="equijoin_delta",
        rounds=(
            RoundSpec(
                "m1", "R", DeltaAnnounce, _receiver_round1,
                ("d1a:added", "d1b:removed"),
            ),
            RoundSpec(
                "m2", "S", EquijoinDeltaPatch, _sender_round1,
                ("d2a:triples+", "d2b:pairs+", "d2c:pairs-"),
            ),
        ),
        make_receiver=EquijoinDeltaReceiver,
        make_sender=EquijoinDeltaSender,
        finish=_finish_m2,
        sender_input="ext",
        answer_kind="ext-map",
        doc="incremental equijoin over staged inserts/deletes",
        delta_of="equijoin",
    )
)

EQUIJOIN_SIZE_DELTA = register(
    ProtocolSpec(
        name="equijoin-size+delta",
        run_label="equijoin_size_delta",
        rounds=(
            RoundSpec(
                "m1", "R", DeltaAnnounce, _receiver_round1,
                ("d1a:added", "d1b:removed"),
            ),
            RoundSpec(
                "m2", "S", SizeDeltaPatch, _sender_round1,
                ("d2a:Y_S+", "d2b:Y_S-", "d2c:Z_R+", "d2d:Z_R-"),
            ),
        ),
        make_receiver=EquijoinSizeDeltaReceiver,
        make_sender=EquijoinSizeDeltaSender,
        finish=_finish_m2,
        sender_input="values",
        answer_kind="number",
        doc="incremental equijoin size over staged occurrence churn",
        delta_of="equijoin-size",
    )
)

EQUIJOIN_SUM_DELTA = register(
    ProtocolSpec(
        name="equijoin-sum+delta",
        run_label="equijoin_sum_delta",
        rounds=(
            RoundSpec(
                "m1", "R", DeltaAnnounce, _receiver_round1,
                ("d1a:added", "d1b:removed"),
            ),
            RoundSpec(
                "m2", "S", SumDeltaPatch, _sender_round1,
                ("d2a:Z_R+", "d2b:Z_R-", "d2c:pairs+", "d2d:pairs-"),
            ),
            RoundSpec("m3", "R", BlindedSum, _receiver_round2, ("d3:blinded",)),
            RoundSpec(
                "m4", "S", RevealedSum, _sender_round2, ("d4:blinded_sum",),
            ),
        ),
        make_receiver=EquijoinSumDeltaReceiver,
        make_sender=EquijoinSumDeltaSender,
        finish=_finish_m4,
        sender_input="amounts",
        answer_kind="number",
        doc="incremental sum over the intersection (fresh blind per query)",
        delta_of="equijoin-sum",
    )
)
