"""Private selection (the operation Section 2.4 points PIR at).

Related work, Section 2.4: "In the problem of private information
retrieval, the receiver R obtains the i-th record from a set of n
records held by the sender S without revealing i to S. With the
additional restriction that R should only learn the value of one
record, the problem becomes symmetric private information retrieval.
This literature will be useful for developing protocols for the
selection operation in our setting."

This module builds exactly that selection operation on the library's
own substrate: a symmetric-PIR-style protocol from 1-out-of-n
oblivious transfer over the quadratic-residue group. Communication is
O(n) (the OT ships all n ciphertexts) - fine at database-row scale and
honest about what the simple construction costs; sublinear PIR is out
of scope.

Guarantees (semi-honest, like the rest of the library):

* S learns nothing about the index ``i`` (the per-bit OT first
  messages are single uniform group elements);
* R learns record ``i``, the record count ``n`` and the (padded)
  record length, and nothing about the other records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..crypto.ot_n import OneOfNReceiver, OneOfNSender
from ..net.runner import ProtocolRun
from .base import ProtocolSuite

__all__ = ["SelectionResult", "run_selection"]


@dataclass
class SelectionResult:
    """Outcome of one private selection."""

    record: bytes
    n_records: int
    run: ProtocolRun


def run_selection(
    index: int,
    records: Sequence[bytes],
    suite: ProtocolSuite | None = None,
) -> SelectionResult:
    """R retrieves ``records[index]`` from S without revealing ``index``.

    Records are padded to the maximum length before encryption so their
    sizes do not distinguish them; the 2-byte length prefix restores the
    original payload.
    """
    suite = suite or ProtocolSuite.default()
    run = ProtocolRun(protocol="selection")

    if not records:
        raise ValueError("selection over an empty record set")
    if not 0 <= index < len(records):
        raise ValueError(f"index {index} outside [0, {len(records)})")

    # S pads its records to uniform length (R may learn the maximum
    # record size - declared).
    width = max(len(r) for r in records)
    padded = [
        len(r).to_bytes(2, "big") + bytes(r).ljust(width, b"\0") for r in records
    ]

    sender = OneOfNSender(suite.group, padded, suite.rng_s)
    receiver = OneOfNReceiver(suite.group, len(records), index, suite.rng_r)

    # S -> R: the public OT points (one per index bit).
    c_points = run.to_r("1:C", sender.c_points)

    # R -> S: per-bit OT first messages (uniform group elements; this
    # is everything S ever sees, so S learns nothing about the index).
    pk0s = run.to_s("2:PK0", receiver.first_messages(c_points))

    # S -> R: the per-bit OT answers plus all n encrypted records.
    transfer = sender.respond(pk0s)
    payload = run.to_r(
        "3:transfer",
        (
            [(t.g_r0, t.c0, t.g_r1, t.c1) for t in transfer.ot_transfers],
            transfer.ciphertexts,
        ),
    )

    # R reconstructs its one record locally from the received material.
    from ..crypto.ot import OTTransfer

    received = type(transfer)(
        c_points=c_points,
        ot_transfers=[
            OTTransfer(g_r0=a, c0=b, g_r1=c, c1=d) for a, b, c, d in payload[0]
        ],
        ciphertexts=list(payload[1]),
    )
    framed = receiver.receive(received)
    length = int.from_bytes(framed[:2], "big")
    record = framed[2 : 2 + length]

    run.finish()
    return SelectionResult(record=record, n_records=len(records), run=run)
