"""The intersection protocol (Section 3.3).

Party R (receiver) and party S (sender) hold value sets ``V_R`` and
``V_S``. At the end R learns ``V_S ∩ V_R`` and ``|V_S|``; S learns only
``|V_R|`` (Statements 1 and 2).

The six steps of Section 3.3 live in the party state machines
(:class:`~repro.protocols.parties.IntersectionReceiver` /
``IntersectionSender``); this driver executes the registered
``"intersection"`` spec over in-memory channels, so simulation, TCP
and resumable execution all share one code path. The step labels on
the wire messages match the paper's numbering so the recorded views
can be compared against the proof's simulators.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..net.runner import ProtocolRun, run_spec
from .base import IntersectionResult, ProtocolSuite
from .parties import CryptoContext, PublicParams, ReceiverMachine, SenderMachine
from .spec import PROTOCOLS

__all__ = ["run_intersection"]


def run_intersection(
    v_r: Sequence[Hashable],
    v_s: Sequence[Hashable],
    suite: ProtocolSuite | None = None,
) -> IntersectionResult:
    """Execute the Section 3.3 protocol.

    Args:
        v_r: R's value set (duplicates are removed, as the paper's
            ``V_R`` is a set).
        v_s: S's value set.
        suite: agreed parameters; a fresh 1024-bit default when omitted.

    Returns:
        The intersection together with the sizes each side learned and
        the recorded run.
    """
    suite = suite or ProtocolSuite.default()
    spec = PROTOCOLS["intersection"]
    run = ProtocolRun(protocol=spec.run_label)
    crypto = CryptoContext.from_suite(suite)
    params = PublicParams(p=suite.group.p)
    receiver = ReceiverMachine(spec, v_r, params, suite.rng_r, crypto=crypto)
    sender = SenderMachine(spec, v_s, params, suite.rng_s, crypto=crypto)
    answer = run_spec(spec, receiver, sender, run)
    # Both parties also learn the set sizes (the allowed information I).
    return IntersectionResult(
        intersection=answer,
        size_v_s=receiver.state.size_v_s,
        size_v_r=sender.state.size_v_r,
        run=run,
    )
