"""The intersection protocol (Section 3.3).

Party R (receiver) and party S (sender) hold value sets ``V_R`` and
``V_S``. At the end R learns ``V_S ∩ V_R`` and ``|V_S|``; S learns only
``|V_R|`` (Statements 1 and 2).

The six steps of Section 3.3 map one-to-one onto the code below; the
step labels on the wire messages match the paper's numbering so the
recorded views can be compared against the proof's simulators.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..net.runner import ProtocolRun
from .base import IntersectionResult, ProtocolSuite, sorted_ciphertexts

__all__ = ["run_intersection"]


def run_intersection(
    v_r: Sequence[Hashable],
    v_s: Sequence[Hashable],
    suite: ProtocolSuite | None = None,
) -> IntersectionResult:
    """Execute the Section 3.3 protocol.

    Args:
        v_r: R's value set (duplicates are removed, as the paper's
            ``V_R`` is a set).
        v_s: S's value set.
        suite: agreed parameters; a fresh 1024-bit default when omitted.

    Returns:
        The intersection together with the sizes each side learned and
        the recorded run.
    """
    suite = suite or ProtocolSuite.default()
    run = ProtocolRun(protocol="intersection")

    r_values = sorted(set(v_r), key=repr)
    s_values = sorted(set(v_s), key=repr)

    # Step 1 - both parties hash their sets (collision check included)
    # and choose secret keys.
    x_r = suite.hash_side("R", r_values)
    x_s = suite.hash_side("S", s_values)
    e_r = suite.cipher.sample_key(suite.rng_r)
    e_s = suite.cipher.sample_key(suite.rng_s)

    # Step 2 - both parties encrypt their hashed sets.
    y_r_by_value = {v: suite.cipher.encrypt(e_r, x) for v, x in zip(r_values, x_r)}
    y_s = suite.cipher.encrypt_many(e_s, x_s)

    # Step 3 - R ships Y_R = f_eR(h(V_R)), reordered lexicographically.
    y_r_received = run.to_s("3:Y_R", sorted_ciphertexts(list(y_r_by_value.values())))

    # Step 4(a) - S ships Y_S = f_eS(h(V_S)), reordered lexicographically.
    y_s_received = run.to_r("4a:Y_S", sorted_ciphertexts(y_s))

    # Step 4(b) - S encrypts each y in Y_R with e_S and returns the
    # pairs <y, f_eS(y)>.
    pairs = [(y, suite.cipher.encrypt(e_s, y)) for y in y_r_received]
    pairs_received = run.to_r("4b:pairs", pairs)

    # Step 5 - R encrypts each y in Y_S with e_R obtaining
    # Z_S = f_eR(f_eS(h(V_S))), and replaces first components of the
    # step-4(b) pairs with the matching plaintext values.
    z_s = set(suite.cipher.encrypt_many(e_r, y_s_received))
    y_to_value = {y: v for v, y in y_r_by_value.items()}
    doubly_encrypted_by_value = {
        y_to_value[y]: z for y, z in pairs_received if y in y_to_value
    }

    # Step 6 - R selects every v in V_R whose double encryption lies in Z_S.
    answer = {v for v, z in doubly_encrypted_by_value.items() if z in z_s}

    run.finish()
    # Both parties also learn the set sizes (the allowed information I).
    return IntersectionResult(
        intersection=answer,
        size_v_s=len(y_s_received),
        size_v_r=len(y_r_received),
        run=run,
    )
