"""Typed wire messages for the declarative protocol specs.

Each round of a protocol ships exactly one :class:`Message`.  A message
is a frozen dataclass whose fields are the round's wire *parts* in
transmission order; the in-memory runner records each part separately
(preserving the historical per-part transcript labels) while the TCP
and resumable paths ship the assembled :meth:`Message.to_wire` payload
as a single frame.

The wire encoding is pinned for backward compatibility with the
pre-spec per-protocol helpers: a single-part message is encoded as the
bare part payload, a multi-part message as the tuple of parts.  The
serialization layer distinguishes lists from tuples, so these
container choices are load-bearing — the golden-transcript fixture
(``tests/protocols/golden_transcripts.json``) asserts the exact bytes.

Messages iterate over their parts, so legacy tuple unpacking such as
``y_s, pairs = sender.round1(m1)`` keeps working on typed replies.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Iterator

__all__ = [
    "Message",
    "CipherList",
    "IntersectionReply",
    "SizeReply",
    "EquijoinReply",
    "SumReply",
    "BlindedSum",
    "RevealedSum",
]


class Message:
    """Base class for round payloads.

    Subclasses are frozen dataclasses whose fields are the wire parts
    of one round, in order.  The base class derives part/wire
    conversion from the dataclass fields.
    """

    def to_parts(self) -> tuple[Any, ...]:
        """The message as its ordered wire parts."""
        return tuple(getattr(self, f.name) for f in fields(self))  # type: ignore[arg-type]

    @classmethod
    def from_parts(cls, parts: tuple[Any, ...]) -> "Message":
        """Rebuild a message from its ordered wire parts."""
        return cls(*parts)

    def to_wire(self) -> Any:
        """The single-frame wire payload.

        A one-part message ships its bare part; a multi-part message
        ships the tuple of parts.  This reproduces the exact bytes the
        pre-spec helpers put on the wire.
        """
        parts = self.to_parts()
        return parts[0] if len(parts) == 1 else parts

    @classmethod
    def from_wire(cls, wire: Any) -> "Message":
        """Decode :meth:`to_wire` output back into a typed message."""
        if len(fields(cls)) == 1:  # type: ignore[arg-type]
            return cls.from_parts((wire,))
        return cls.from_parts(tuple(wire))

    @classmethod
    def coerce(cls, payload: Any) -> "Message":
        """Accept either an instance of this class or its raw wire form."""
        if isinstance(payload, cls):
            return payload
        return cls.from_wire(payload)

    def __iter__(self) -> Iterator[Any]:
        """Iterate over wire parts (legacy tuple-unpacking support)."""
        return iter(self.to_parts())


@dataclass(frozen=True)
class CipherList(Message):
    """A lexicographically reordered list of ciphertexts (e.g. ``Y_R``)."""

    values: list

    def __iter__(self) -> Iterator[int]:
        """Iterate over the ciphertexts themselves.

        Pre-spec code treated the first round payload as a plain list,
        so this message iterates its elements (not its single part).
        """
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CipherList):
            return self.values == other.values
        return self.values == other

    def to_wire(self) -> list:
        """Ship the bare list, exactly as the legacy helpers did."""
        return self.values


@dataclass(frozen=True)
class IntersectionReply(Message):
    """Intersection round 2: sender's own set and the doubly-encrypted pairs.

    ``y_s`` carries ``f_S(h(V_S))`` in lexicographic order;  ``pairs``
    maps each received ``y in Y_R`` to ``f_S(y)``.
    """

    y_s: list
    pairs: list


@dataclass(frozen=True)
class SizeReply(Message):
    """Intersection-size / equijoin-size round 2.

    ``y_s`` is the sender's (multiset-expanded) encrypted set and
    ``z_r`` the receiver's set doubly encrypted and reordered, so the
    receiver learns only the overlap cardinality.
    """

    y_s: list
    z_r: list


@dataclass(frozen=True)
class EquijoinReply(Message):
    """Equijoin round 2: codeword triples plus encrypted ext payloads.

    ``triples`` holds ``(y, f_S(y), f'_S(y))`` for every received
    ``y in Y_R``; ``pairs`` holds ``(f_S(h(v)), K(kappa(v), ext(v)))``
    for the sender's own values, sorted for order independence.
    """

    triples: list
    pairs: list


@dataclass(frozen=True)
class SumReply(Message):
    """Equijoin-sum round 2: ``(Z_R, paillier modulus)`` plus codeword pairs.

    The first part bundles the doubly-encrypted receiver set with the
    sender's Paillier public modulus (one frame part, as the legacy
    driver shipped it); ``pairs`` maps commutative codewords to
    Paillier-encrypted amounts.
    """

    z_r_pk: tuple
    pairs: list

    @property
    def z_r(self) -> list:
        """The doubly-encrypted, reordered receiver set ``Z_R``."""
        return self.z_r_pk[0]

    @property
    def n(self) -> int:
        """The sender's Paillier public modulus."""
        return self.z_r_pk[1]


@dataclass(frozen=True)
class BlindedSum(Message):
    """Equijoin-sum round 3: the receiver's masked Paillier accumulator."""

    ciphertext: int


@dataclass(frozen=True)
class RevealedSum(Message):
    """Equijoin-sum round 4: the decrypted (still masked) total."""

    value: int
