"""Typed wire messages for the declarative protocol specs.

Each round of a protocol ships exactly one :class:`Message`.  A message
is a frozen dataclass whose fields are the round's wire *parts* in
transmission order; the in-memory runner records each part separately
(preserving the historical per-part transcript labels) while the TCP
and resumable paths ship the assembled :meth:`Message.to_wire` payload
as a single frame.

The wire encoding is pinned for backward compatibility with the
pre-spec per-protocol helpers: a single-part message is encoded as the
bare part payload, a multi-part message as the tuple of parts.  The
serialization layer distinguishes lists from tuples, so these
container choices are load-bearing — the golden-transcript fixture
(``tests/protocols/golden_transcripts.json``) asserts the exact bytes.

Messages iterate over their parts, so legacy tuple unpacking such as
``y_s, pairs = sender.round1(m1)`` keeps working on typed replies.

Streaming: every message can also be split into an ordered sequence of
*chunk payloads* (:meth:`Message.to_wire_chunks`) and reassembled from
them (:meth:`Message.from_wire_chunks` / :class:`ChunkAssembler`).  A
chunk payload is ``(part_index, kind, body)``: list-typed parts ship as
``"seg"`` slices of at most ``chunk_size`` elements, scalar parts as a
single ``"one"`` chunk, and messages with composite parts (e.g.
:class:`SumReply`) define their own kinds.  Reassembly is exact: the
message rebuilt from chunks has byte-identical :meth:`Message.to_wire`
output, which the golden-transcript suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Iterable, Iterator

__all__ = [
    "Message",
    "ChunkAssembler",
    "CipherList",
    "IntersectionReply",
    "SizeReply",
    "EquijoinReply",
    "SumReply",
    "BlindedSum",
    "RevealedSum",
    "DeltaAnnounce",
    "IntersectionDeltaPatch",
    "SizeDeltaPatch",
    "EquijoinDeltaPatch",
    "SumDeltaPatch",
]


class Message:
    """Base class for round payloads.

    Subclasses are frozen dataclasses whose fields are the wire parts
    of one round, in order.  The base class derives part/wire
    conversion from the dataclass fields.
    """

    def to_parts(self) -> tuple[Any, ...]:
        """The message as its ordered wire parts."""
        return tuple(getattr(self, f.name) for f in fields(self))  # type: ignore[arg-type]

    @classmethod
    def from_parts(cls, parts: tuple[Any, ...]) -> "Message":
        """Rebuild a message from its ordered wire parts."""
        return cls(*parts)

    def to_wire(self) -> Any:
        """The single-frame wire payload.

        A one-part message ships its bare part; a multi-part message
        ships the tuple of parts.  This reproduces the exact bytes the
        pre-spec helpers put on the wire.
        """
        parts = self.to_parts()
        return parts[0] if len(parts) == 1 else parts

    @classmethod
    def from_wire(cls, wire: Any) -> "Message":
        """Decode :meth:`to_wire` output back into a typed message."""
        if len(fields(cls)) == 1:  # type: ignore[arg-type]
            return cls.from_parts((wire,))
        return cls.from_parts(tuple(wire))

    @classmethod
    def coerce(cls, payload: Any) -> "Message":
        """Accept either an instance of this class or its raw wire form."""
        if isinstance(payload, cls):
            return payload
        return cls.from_wire(payload)

    def __iter__(self) -> Iterator[Any]:
        """Iterate over wire parts (legacy tuple-unpacking support)."""
        return iter(self.to_parts())

    # ------------------------------------------------------------------
    # Chunked (streamed) wire form
    # ------------------------------------------------------------------
    def to_part_chunks(
        self, index: int, value: Any, chunk_size: int
    ) -> Iterator[tuple[str, Any]]:
        """Split one part into ``(kind, body)`` chunks.

        List parts yield ``"seg"`` slices of at most ``chunk_size``
        elements (an empty list yields one empty segment, so every part
        contributes at least one chunk); any other part ships whole as
        a single ``"one"`` chunk. Messages with composite parts
        override this per part.
        """
        if isinstance(value, list):
            if not value:
                yield ("seg", [])
                return
            for start in range(0, len(value), chunk_size):
                yield ("seg", value[start : start + chunk_size])
            return
        yield ("one", value)

    @classmethod
    def from_part_chunks(cls, index: int, chunks: list[tuple[str, Any]]) -> Any:
        """Rebuild one part value from its ``(kind, body)`` chunks."""
        if not chunks:
            raise ValueError(f"no chunks received for part {index}")
        if chunks[0][0] == "one":
            if len(chunks) != 1:
                raise ValueError(f"part {index}: extra chunks after 'one'")
            return chunks[0][1]
        part: list = []
        for kind, body in chunks:
            if kind != "seg" or not isinstance(body, list):
                raise ValueError(f"part {index}: unknown chunk kind {kind!r}")
            part.extend(body)
        return part

    def to_wire_chunks(self, chunk_size: int) -> Iterator[tuple[int, str, Any]]:
        """The message as an ordered stream of chunk payloads.

        Parts are emitted in wire order; each chunk payload is
        ``(part_index, kind, body)``. Reassembling the stream with
        :meth:`from_wire_chunks` reproduces this message exactly.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for index, value in enumerate(self.to_parts()):
            for kind, body in self.to_part_chunks(index, value, chunk_size):
                yield (index, kind, body)

    @classmethod
    def from_wire_chunks(cls, payloads: Iterable[tuple]) -> "Message":
        """Reassemble a message from :meth:`to_wire_chunks` output."""
        assembler = ChunkAssembler(cls)
        for payload in payloads:
            assembler.add(payload)
        return assembler.message()


class ChunkAssembler:
    """Incremental consumer of one round's chunk payload stream.

    Feed chunk payloads in arrival order with :meth:`add`; call
    :meth:`message` once the round's terminal frame has been seen.
    Validates part ordering (chunks of part ``k`` may not arrive after
    part ``k+1`` opened) but leaves chunk *sequencing* to the transport
    - frames arrive in order under both the plain TCP driver and the
    session layer's seq-ack machinery.
    """

    def __init__(self, message_cls: type[Message]):
        self.message_cls = message_cls
        self._n_parts = len(fields(message_cls))  # type: ignore[arg-type]
        self._chunks: list[list[tuple[str, Any]]] = [
            [] for _ in range(self._n_parts)
        ]
        self._open_part = 0

    def add(self, payload: Any) -> None:
        """Accept one ``(part_index, kind, body)`` chunk payload."""
        if not isinstance(payload, tuple) or len(payload) != 3:
            raise ValueError(f"malformed chunk payload: {payload!r}")
        index, kind, body = payload
        if not isinstance(index, int) or not 0 <= index < self._n_parts:
            raise ValueError(
                f"chunk part index {index!r} outside "
                f"{self.message_cls.__name__}'s {self._n_parts} parts"
            )
        if not isinstance(kind, str):
            raise ValueError(f"chunk kind must be a string, got {kind!r}")
        if index < self._open_part:
            raise ValueError(
                f"chunk for part {index} after part {self._open_part} opened"
            )
        self._open_part = index
        self._chunks[index].append((kind, body))

    def message(self) -> Message:
        """Assemble the completed message (all parts present)."""
        parts = tuple(
            self.message_cls.from_part_chunks(index, chunks)
            for index, chunks in enumerate(self._chunks)
        )
        return self.message_cls.from_parts(parts)


@dataclass(frozen=True)
class CipherList(Message):
    """A lexicographically reordered list of ciphertexts (e.g. ``Y_R``)."""

    values: list

    def __iter__(self) -> Iterator[int]:
        """Iterate over the ciphertexts themselves.

        Pre-spec code treated the first round payload as a plain list,
        so this message iterates its elements (not its single part).
        """
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CipherList):
            return self.values == other.values
        return self.values == other

    def to_wire(self) -> list:
        """Ship the bare list, exactly as the legacy helpers did."""
        return self.values


@dataclass(frozen=True)
class IntersectionReply(Message):
    """Intersection round 2: sender's own set and the doubly-encrypted pairs.

    ``y_s`` carries ``f_S(h(V_S))`` in lexicographic order;  ``pairs``
    maps each received ``y in Y_R`` to ``f_S(y)``.
    """

    y_s: list
    pairs: list


@dataclass(frozen=True)
class SizeReply(Message):
    """Intersection-size / equijoin-size round 2.

    ``y_s`` is the sender's (multiset-expanded) encrypted set and
    ``z_r`` the receiver's set doubly encrypted and reordered, so the
    receiver learns only the overlap cardinality.
    """

    y_s: list
    z_r: list


@dataclass(frozen=True)
class EquijoinReply(Message):
    """Equijoin round 2: codeword triples plus encrypted ext payloads.

    ``triples`` holds ``(y, f_S(y), f'_S(y))`` for every received
    ``y in Y_R``; ``pairs`` holds ``(f_S(h(v)), K(kappa(v), ext(v)))``
    for the sender's own values, sorted for order independence.
    """

    triples: list
    pairs: list


@dataclass(frozen=True)
class SumReply(Message):
    """Equijoin-sum round 2: ``(Z_R, paillier modulus)`` plus codeword pairs.

    The first part bundles the doubly-encrypted receiver set with the
    sender's Paillier public modulus (one frame part, as the legacy
    driver shipped it); ``pairs`` maps commutative codewords to
    Paillier-encrypted amounts.
    """

    z_r_pk: tuple
    pairs: list

    @property
    def z_r(self) -> list:
        """The doubly-encrypted, reordered receiver set ``Z_R``."""
        return self.z_r_pk[0]

    @property
    def n(self) -> int:
        """The sender's Paillier public modulus."""
        return self.z_r_pk[1]

    def to_part_chunks(
        self, index: int, value: Any, chunk_size: int
    ) -> Iterator[tuple[str, Any]]:
        """Stream the composite first part: ``Z_R`` as segments, then
        the Paillier modulus as its own ``"pk"`` chunk - keeping every
        frame O(chunk_size) even though the part is a tuple."""
        if index != 0:
            yield from super().to_part_chunks(index, value, chunk_size)
            return
        z_r, n = value
        if not z_r:
            yield ("seg", [])
        else:
            for start in range(0, len(z_r), chunk_size):
                yield ("seg", z_r[start : start + chunk_size])
        yield ("pk", n)

    @classmethod
    def from_part_chunks(cls, index: int, chunks: list[tuple[str, Any]]) -> Any:
        if index != 0:
            return super().from_part_chunks(index, chunks)
        z_r: list = []
        n = None
        for kind, body in chunks:
            if kind == "seg" and isinstance(body, list):
                z_r.extend(body)
            elif kind == "pk":
                n = body
            else:
                raise ValueError(f"part 0: unknown chunk kind {kind!r}")
        if n is None:
            raise ValueError("part 0: missing 'pk' chunk")
        return (z_r, n)


@dataclass(frozen=True)
class DeltaAnnounce(Message):
    """Delta round 1: the receiver's inserted and tombstoned ciphertexts.

    ``added`` carries ``f_eR(h(v))`` for every value R inserted since
    the last completed query, ``removed`` the same for deletions — both
    lexicographically reordered so individual ciphertexts stay
    unlinkable to insertion order (though not to the *fact* of churn;
    see ``docs/PROTOCOLS.md`` on tombstone linkability).  Multiset
    protocols repeat a ciphertext once per inserted/removed occurrence.
    """

    added: list
    removed: list


@dataclass(frozen=True)
class IntersectionDeltaPatch(Message):
    """Intersection delta round 2: S's own churn plus the new pairs.

    ``y_s_added``/``y_s_removed`` extend and tombstone ``Y_S``;
    ``pairs_added`` maps each ciphertext R announced as inserted to its
    double encryption ``f_eS(y)``, keyed by ``y`` exactly like the full
    run's pairs part.
    """

    y_s_added: list
    y_s_removed: list
    pairs_added: list


@dataclass(frozen=True)
class SizeDeltaPatch(Message):
    """Intersection-size / equijoin-size delta round 2.

    ``y_s_added``/``y_s_removed`` patch S's encrypted (multiset) set;
    ``z_added``/``z_removed`` are the double encryptions of the
    ciphertexts R announced, reordered so R learns the membership
    effect but not the pairing (beyond what the delta size leaks).
    """

    y_s_added: list
    y_s_removed: list
    z_added: list
    z_removed: list


@dataclass(frozen=True)
class EquijoinDeltaPatch(Message):
    """Equijoin delta round 2: triples for R's inserts, pair churn for S's.

    ``triples_added`` holds ``(y, f_eS(y), f'_eS(y))`` for each
    announced insert; ``pairs_added`` new ``(codeword, K(kappa, ext))``
    entries; ``pairs_removed`` the codewords S tombstoned.
    """

    triples_added: list
    pairs_added: list
    pairs_removed: list


@dataclass(frozen=True)
class SumDeltaPatch(Message):
    """Equijoin-sum delta round 2: ``Z_R`` churn plus Paillier pair churn."""

    z_added: list
    z_removed: list
    pairs_added: list
    pairs_removed: list


@dataclass(frozen=True)
class BlindedSum(Message):
    """Equijoin-sum round 3: the receiver's masked Paillier accumulator."""

    ciphertext: int


@dataclass(frozen=True)
class RevealedSum(Message):
    """Equijoin-sum round 4: the decrypted (still masked) total."""

    value: int
