"""Disclosure audit: checks recorded views against the paper's claims.

The audit does not (cannot) prove computational indistinguishability;
it mechanically verifies the *necessary* conditions every run must
satisfy, catching the classes of bugs that actually break such
protocols in practice:

* structure: each party's view has exactly the message schema and
  cardinalities the proof's simulator produces - nothing extra crossed
  the wire;
* domain: every shipped codeword is a quadratic residue (an element
  outside QR_p would stick out and can carry side information);
* unlinkability: ciphertext sets that the paper requires to be shipped
  "reordered lexicographically" really are sorted (footnote 3);
* no plaintext leakage: no raw hash ``h(v)`` of either side's values
  appears anywhere in the counterpart's view;
* dictionary resistance: the Section 3.1 attack, run against the view
  with full knowledge of the value domain, recovers nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from ..crypto.groups import QRGroup
from ..crypto.hashing import DomainHash
from ..net.transcript import View
from .naive_hash import dictionary_attack

__all__ = ["AuditCheck", "AuditReport", "audit_view"]


@dataclass(frozen=True)
class AuditCheck:
    """One verified property of a view."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class AuditReport:
    """Outcome of auditing one party's view of one run."""

    party: str
    protocol: str
    checks: list[AuditCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failures(self) -> list[AuditCheck]:
        """The checks that did not pass."""
        return [check for check in self.checks if not check.passed]

    def add(self, name: str, passed: bool, detail: str = "") -> None:
        """Append one check result."""
        self.checks.append(AuditCheck(name=name, passed=passed, detail=detail))


def audit_view(
    view: View,
    group: QRGroup,
    hash_fn: DomainHash,
    counterpart_values: Sequence[Hashable],
    allowed_plain_values: Iterable[Hashable] = (),
    expected_signature: tuple | None = None,
    value_domain: Iterable[Hashable] | None = None,
) -> AuditReport:
    """Audit one recorded view.

    Args:
        view: the party's recorded view of the run.
        group: the protocol group (domain checks).
        hash_fn: the protocol hash (leak scanning).
        counterpart_values: the *other* party's private values - used
            to scan for leaked hashes; the real party of course does
            not have these, the audit runs with a global perspective.
        allowed_plain_values: values whose hashes may legitimately be
            derivable from the view (e.g. the intersection for R).
        expected_signature: structural signature from the proof's
            simulator, when available.
        value_domain: when given, the Section 3.1 dictionary attack is
            mounted over this domain against every integer in the view.
    """
    report = AuditReport(party=view.party, protocol=view.protocol)
    integers = set(view.flat_integers())

    # 1. Every integer shipped is a group element.
    outsiders = [x for x in integers if x not in group]
    report.add(
        "codewords_in_group",
        not outsiders,
        f"{len(outsiders)} elements outside QR_p" if outsiders else "",
    )

    # 2. Ciphertext *sets* are shipped sorted (unlinkability).
    for message in view.received:
        payload = message.payload
        if isinstance(payload, list) and payload and all(
            isinstance(x, int) for x in payload
        ):
            report.add(
                f"sorted:{message.step}",
                payload == sorted(payload),
                "ciphertext set not lexicographically reordered",
            )

    # 3. No forbidden plaintext hash appears in the view.
    allowed = set(allowed_plain_values)
    leaked = [
        v
        for v in counterpart_values
        if v not in allowed and hash_fn.hash_value(v) in integers
    ]
    report.add(
        "no_plaintext_hash_leak",
        not leaked,
        f"hashes of {len(leaked)} private values visible" if leaked else "",
    )

    # 4. Structural signature matches the simulator's.
    if expected_signature is not None:
        report.add(
            "signature_matches_simulator",
            view.signature() == expected_signature,
            f"real={view.signature()!r} simulated={expected_signature!r}",
        )

    # 5. Dictionary attack recovers only what the party may know.
    if value_domain is not None:
        recovered = dictionary_attack(integers, value_domain, hash_fn)
        illegitimate = recovered - allowed
        report.add(
            "dictionary_attack_resisted",
            not illegitimate,
            f"attack recovered {len(illegitimate)} private values"
            if illegitimate
            else "",
        )

    return report
