"""The simple-but-broken hash protocol (Section 3.1) and its attack.

The naive protocol - S ships ``h(V_S)`` and R intersects locally - does
compute the right answer, but a semi-honest R can evaluate ``h`` on any
candidate value and test membership in S's set. Over a small domain R
recovers ``V_S`` completely.

Both the protocol and the dictionary attack are kept as executable
artifacts: the attack *succeeds* against this protocol and *fails*
against the commutative-encryption protocol (the hash alone is useless
without S's key), which the test suite demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..crypto.hashing import DomainHash
from ..net.runner import ProtocolRun
from .base import ProtocolSuite

__all__ = ["NaiveIntersectionResult", "run_naive_intersection", "dictionary_attack"]


@dataclass
class NaiveIntersectionResult:
    """Answer plus everything R retains from the broken protocol."""

    intersection: set[Hashable]
    observed_hashes: set[int]
    run: ProtocolRun


def run_naive_intersection(
    v_r: Sequence[Hashable],
    v_s: Sequence[Hashable],
    suite: ProtocolSuite | None = None,
) -> NaiveIntersectionResult:
    """Execute the Section 3.1 protocol (insecure; for study only)."""
    suite = suite or ProtocolSuite.default()
    run = ProtocolRun(protocol="naive_hash_intersection")

    # Step 1 - both parties hash their sets.
    x_s = {suite.hash.hash_value(v) for v in set(v_s)}

    # Step 2 - S sends its hashed set to R.
    x_s_received = run.to_r("2:X_S", sorted(x_s))

    # Step 3 - R keeps every v whose hash appears in X_S.
    observed = set(x_s_received)
    answer = {v for v in set(v_r) if suite.hash.hash_value(v) in observed}

    run.finish()
    return NaiveIntersectionResult(
        intersection=answer, observed_hashes=observed, run=run
    )


def dictionary_attack(
    observed: Iterable[int],
    candidate_domain: Iterable[Hashable],
    hash_fn: DomainHash,
) -> set[Hashable]:
    """The honest-but-curious attack of Section 3.1.

    For every candidate value in the (small) domain, compute ``h(v)``
    and test membership in the observed hash set. Against the naive
    protocol this recovers ``V_S`` exactly; against the
    commutative-encryption protocols the observed values are
    ``f_e(h(v))`` for an unknown key ``e``, so the attack recovers
    nothing beyond chance.
    """
    observed_set = set(observed)
    return {
        v for v in candidate_domain if hash_fn.hash_value(v) in observed_set
    }
