"""Separable party state machines and the generic spec interpreters.

The driver functions in :mod:`repro.protocols.intersection` etc. are
convenient for simulation and analysis, but they hold both parties'
secrets in one stack frame. A downstream deployment needs each party
as its *own* object that sees only its inputs, its randomness and the
messages addressed to it - so it can sit behind any transport
(the in-memory channels, the TCP transport in :mod:`repro.net.tcp`,
or a message queue).

Message flow (intersection, Section 3.3):

    receiver = IntersectionReceiver(v_r, params, rng)
    sender   = IntersectionSender(v_s, params, rng)
    m1 = receiver.round1()            # Y_R            (R -> S)
    m2 = sender.round1(m1)            # Y_S + pairs    (S -> R)
    answer = receiver.finish(m2)

and for the size variant the same shape with an unpaired ``Z_R``.
Every round payload is a typed dataclass from
:mod:`repro.protocols.messages`; raw wire payloads are also accepted
and coerced, so pre-spec callers keep working.

Parameters travel as :class:`PublicParams` - everything public both
sides must agree on (the modulus and the hash construction).  Private
per-party machinery (group, hash, cipher and optional ext cipher
instances) can instead be injected as a :class:`CryptoContext`, which
is how the in-memory drivers share one counting suite across both
parties.

On top of the concrete parties sit :class:`SenderMachine` and
:class:`ReceiverMachine`: generic interpreters that execute any
:class:`~repro.protocols.spec.ProtocolSpec` round schedule, threading
the ``engine=``/``recorder=`` hooks.  All three transports (in-memory,
plain TCP, resumable sessions) drive protocols exclusively through
these two machines.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Mapping, Sequence

from ..crypto.commutative import PowerCipher
from ..crypto.engine import CryptoEngine
from ..crypto.ext_cipher import BlockExtCipher, ExtCipher
from ..crypto.groups import QRGroup
from ..crypto.hashing import (
    DomainHash,
    SquareHash,
    TryIncrementHash,
    find_collisions,
)
from ..crypto.paillier import PaillierPublicKey, generate_keypair
from .base import HashCollisionError, sorted_ciphertexts
from .messages import (
    BlindedSum,
    ChunkAssembler,
    CipherList,
    EquijoinReply,
    IntersectionReply,
    Message,
    RevealedSum,
    SizeReply,
    SumReply,
)

__all__ = [
    "PublicParams",
    "CryptoContext",
    "PartyCache",
    "IntersectionReceiver",
    "IntersectionSender",
    "IntersectionSizeReceiver",
    "IntersectionSizeSender",
    "EquijoinReceiver",
    "EquijoinSender",
    "EquijoinSizeReceiver",
    "EquijoinSizeSender",
    "EquijoinSumReceiver",
    "EquijoinSumSender",
    "ReceiverMachine",
    "SenderMachine",
]

_HASH_REGISTRY: dict[str, type[DomainHash]] = {
    "try-increment": TryIncrementHash,
    "square": SquareHash,
}


@dataclass(frozen=True)
class PublicParams:
    """The public protocol parameters both parties must share."""

    p: int
    hash_name: str = "try-increment"

    @classmethod
    def for_bits(cls, bits: int) -> "PublicParams":
        """Params over the embedded safe prime of the given size."""
        return cls(p=QRGroup.for_bits(bits).p)

    def build(
        self, engine: CryptoEngine | None = None
    ) -> tuple[QRGroup, DomainHash, PowerCipher]:
        """Instantiate the group, hash and cipher these params name.

        ``engine`` selects the batch execution strategy for the cipher
        (a local choice - it never crosses the wire and has no effect
        on the transcript).
        """
        group = QRGroup(self.p)
        hash_cls = _HASH_REGISTRY.get(self.hash_name)
        if hash_cls is None:
            raise ValueError(f"unknown hash construction {self.hash_name!r}")
        return group, hash_cls(group), PowerCipher(group, engine=engine)

    def to_wire(self) -> tuple[int, str]:
        """Encodable form for the transport handshake."""
        return (self.p, self.hash_name)

    @classmethod
    def from_wire(cls, payload: tuple[int, str]) -> "PublicParams":
        """Inverse of :meth:`to_wire`."""
        p, hash_name = payload
        return cls(p=int(p), hash_name=str(hash_name))


@dataclass(frozen=True)
class CryptoContext:
    """Concrete crypto machinery one party computes with.

    Normally derived from :class:`PublicParams` (each party builds its
    own instances), but injectable so the in-memory drivers can route
    both parties through one shared suite - e.g. the counting suite
    used by :mod:`repro.analysis.instrumentation`.
    """

    group: QRGroup
    hash: DomainHash
    cipher: PowerCipher
    ext_cipher: ExtCipher | None = None

    @classmethod
    def from_params(
        cls, params: PublicParams, engine: CryptoEngine | None = None
    ) -> "CryptoContext":
        """Instantiate fresh machinery from the shared public params."""
        group, hash_, cipher = params.build(engine=engine)
        return cls(group=group, hash=hash_, cipher=cipher)

    @classmethod
    def from_suite(cls, suite: Any) -> "CryptoContext":
        """Adopt a :class:`~repro.protocols.base.ProtocolSuite`'s instances."""
        return cls(
            group=suite.group,
            hash=suite.hash,
            cipher=suite.cipher,
            ext_cipher=suite.ext_cipher,
        )

    def ext(self) -> ExtCipher:
        """The ext-payload cipher (a default block cipher if not injected)."""
        if self.ext_cipher is not None:
            return self.ext_cipher
        return BlockExtCipher(self.group)


@dataclass(frozen=True)
class PartyCache:
    """Previously persisted per-party crypto state (a catalog-cache hit).

    ``keys`` holds the party's commutative-cipher keys in draw order;
    ``entries`` maps each value to ``(hash, ciphertexts)`` where
    ``ciphertexts`` carries one encryption of the hash per key, in key
    order.  Injecting a cache skips both the rng key draw and the
    O(|V|) hash + modexp setup.  The ciphertexts are only valid under
    the same public params and keys they were produced with — the
    catalog layer verifies the key fingerprint before injecting.
    """

    keys: tuple
    entries: Mapping[Hashable, tuple]

    def hashes_for(self, values: Sequence[Hashable]) -> list[int]:
        """The cached hashes aligned to ``values`` (all must be covered)."""
        missing = [v for v in values if v not in self.entries]
        if missing:
            raise ValueError(
                f"party cache is missing {len(missing)} of the party's values"
            )
        return [self.entries[v][0] for v in values]

    def ciphertexts_for(
        self, values: Sequence[Hashable], key_index: int = 0
    ) -> list[int]:
        """The cached ciphertexts under key ``key_index``, aligned to
        ``values``."""
        return [self.entries[v][1][key_index] for v in values]


def _cached_or_encrypt(
    cipher: PowerCipher, key: int, hashes: list[int], cached: list[int] | None
) -> list[int]:
    """The cached ciphertext list if present, else one encryption batch.

    The cipher is deterministic, so under the same key the two paths
    produce identical ciphertexts — a cache hit changes only the cost.
    """
    if cached is not None:
        return list(cached)
    return cipher.encrypt_many(key, hashes)


def _checked_hashes(hash_: DomainHash, values: Sequence[Hashable]) -> list[int]:
    """Hash a value list, running the paper's sorted-hash collision check."""
    hashes = hash_.hash_set(values)
    collisions = find_collisions(hashes)
    if collisions:
        raise HashCollisionError(
            "hash collision within the party's set "
            f"({len(collisions)} colliding values)"
        )
    return hashes


def _resolve_crypto(
    params: PublicParams,
    engine: CryptoEngine | None,
    crypto: CryptoContext | None,
) -> CryptoContext:
    """The injected context, or fresh machinery from the params."""
    if crypto is not None:
        return crypto
    return CryptoContext.from_params(params, engine=engine)


class _Party:
    """Common setup: hash own values (collision-checked), draw a key.

    With an injected :class:`PartyCache` the key and hashes come from
    the cache instead (no rng draw, no hashing), and the party's own
    round-1 encryption batch is skipped in favour of the cached
    ciphertexts.  The collision check still runs — it is cheap and the
    cache may have been produced by an older code path.
    """

    def __init__(
        self,
        values: Sequence[Hashable],
        params: PublicParams,
        rng: random.Random,
        engine: CryptoEngine | None = None,
        crypto: CryptoContext | None = None,
        cached: PartyCache | None = None,
    ):
        self.params = params
        self.crypto = _resolve_crypto(params, engine, crypto)
        self.group, self.hash, self.cipher = (
            self.crypto.group,
            self.crypto.hash,
            self.crypto.cipher,
        )
        self.values = sorted(set(values), key=repr)
        self.rng = rng
        if cached is not None:
            (self._key,) = cached.keys
            self._hashes = cached.hashes_for(self.values)
            if find_collisions(self._hashes):
                raise HashCollisionError(
                    "hash collision within the party's cached set"
                )
            self._cached_y = cached.ciphertexts_for(self.values)
        else:
            self._key = self.cipher.sample_key(rng)
            self._hashes = _checked_hashes(self.hash, self.values)
            self._cached_y = None
        self._hash_by_value = dict(zip(self.values, self._hashes))

    def cache_keys(self) -> tuple:
        """The party's cipher keys in draw order (for catalog caching)."""
        return (self._key,)

    def cache_entries(self) -> dict | None:
        """Per-value ``(hash, ciphertexts)`` for catalog caching, or
        ``None`` before the party has encrypted its own set."""
        y_by_value = getattr(self, "_y_by_value", None)
        if y_by_value is None:
            return None
        return {
            v: (self._hash_by_value[v], (y_by_value[v],)) for v in self.values
        }


class IntersectionReceiver(_Party):
    """Party R of the Section 3.3 protocol."""

    def round1(self) -> CipherList:
        """Step 3: ``Y_R``, reordered lexicographically."""
        self._y_by_value = dict(
            zip(
                self.values,
                _cached_or_encrypt(
                    self.cipher, self._key, self._hashes, self._cached_y
                ),
            )
        )
        return CipherList(sorted_ciphertexts(list(self._y_by_value.values())))

    def finish(self, reply: IntersectionReply) -> set[Hashable]:
        """Steps 5-6: recover the intersection from S's reply."""
        reply = IntersectionReply.coerce(reply)
        z_s = set(self.cipher.encrypt_many(self._key, reply.y_s))
        self.size_v_s = len(reply.y_s)
        y_to_value = {y: v for v, y in self._y_by_value.items()}
        # Stashed for delta queries: S-side membership (Z_S) and each
        # own value's double encryption survive across sessions.
        self._z_s = z_s
        self._double_by_value = {
            y_to_value[y]: double
            for y, double in reply.pairs
            if y in y_to_value
        }
        return {
            v for v, double in self._double_by_value.items() if double in z_s
        }


class IntersectionSender(_Party):
    """Party S of the Section 3.3 protocol."""

    def round1(self, y_r: CipherList) -> IntersectionReply:
        """Steps 4(a)+(b): ``Y_S`` reordered plus the ``⟨y, f_eS(y)⟩`` pairs."""
        y_r = list(CipherList.coerce(y_r))
        self.size_v_r = len(y_r)
        encrypted = _cached_or_encrypt(
            self.cipher, self._key, self._hashes, self._cached_y
        )
        self._y_by_value = dict(zip(self.values, encrypted))
        y_s = sorted_ciphertexts(encrypted)
        pairs = list(zip(y_r, self.cipher.encrypt_many(self._key, y_r)))
        return IntersectionReply(y_s=y_s, pairs=pairs)


class IntersectionSizeReceiver(_Party):
    """Party R of the Section 5.1 protocol."""

    def round1(self) -> CipherList:
        """Step 3: ``Y_R``, reordered lexicographically."""
        self._y_r = _cached_or_encrypt(
            self.cipher, self._key, self._hashes, self._cached_y
        )
        self._y_by_value = dict(zip(self.values, self._y_r))
        return CipherList(sorted_ciphertexts(self._y_r))

    def finish(self, reply: SizeReply) -> int:
        """Steps 5-6: count ``|Z_S ∩ Z_R|`` from S's reply."""
        reply = SizeReply.coerce(reply)
        self.size_v_s = len(reply.y_s)
        z_s = set(self.cipher.encrypt_many(self._key, reply.y_s))
        z_r = set(reply.z_r)
        # Stashed for delta queries.
        self._z_s = z_s
        self._z_r = z_r
        return len(z_s & z_r)


class IntersectionSizeSender(_Party):
    """Party S of the Section 5.1 protocol."""

    def round1(self, y_r: CipherList) -> SizeReply:
        """Steps 4(a)+(b): ``Y_S`` plus the unpaired, reordered ``Z_R``."""
        y_r = list(CipherList.coerce(y_r))
        self.size_v_r = len(y_r)
        encrypted = _cached_or_encrypt(
            self.cipher, self._key, self._hashes, self._cached_y
        )
        self._y_by_value = dict(zip(self.values, encrypted))
        y_s = sorted_ciphertexts(encrypted)
        z_r = sorted_ciphertexts(self.cipher.encrypt_many(self._key, y_r))
        return SizeReply(y_s=y_s, z_r=z_r)


class EquijoinReceiver(_Party):
    """Party R of the Section 4.3 protocol."""

    def round1(self) -> CipherList:
        """Step 3: ``Y_R``, reordered lexicographically."""
        self._y_by_value = dict(
            zip(
                self.values,
                _cached_or_encrypt(
                    self.cipher, self._key, self._hashes, self._cached_y
                ),
            )
        )
        return CipherList(sorted_ciphertexts(list(self._y_by_value.values())))

    def finish(self, reply: EquijoinReply) -> dict[Hashable, bytes]:
        """Steps 6-7: strip own layer, match pairs, decrypt ext."""
        reply = EquijoinReply.coerce(reply)
        ext_cipher = self.crypto.ext()
        inverse = self.cipher.invert_key(self._key)
        y_to_value = {y: v for v, y in self._y_by_value.items()}
        mine = [
            (y_to_value[y], second, third)
            for y, second, third in reply.triples
            if y in y_to_value
        ]
        codewords = self.cipher.encrypt_many(inverse, [t[1] for t in mine])
        kappas = self.cipher.encrypt_many(inverse, [t[2] for t in mine])
        by_codeword = {
            codeword: (v, kappa)
            for (v, _, _), codeword, kappa in zip(mine, codewords, kappas)
        }
        # Stashed for delta queries: codeword maps for both sides.
        self._by_codeword = by_codeword
        self._codeword_by_value = {
            v: codeword for codeword, (v, _) in by_codeword.items()
        }
        self._pairs_by_codeword = {
            codeword: list(ciphertext) for codeword, ciphertext in reply.pairs
        }
        matches = {}
        for codeword, ciphertext in reply.pairs:
            hit = by_codeword.get(codeword)
            if hit is None:
                continue
            v, kappa = hit
            matches[v] = ext_cipher.decrypt(kappa, list(ciphertext))
        self.size_v_s = len(reply.pairs)
        return matches


class EquijoinSender:
    """Party S of the Section 4.3 protocol (two keys + ext payloads)."""

    def __init__(
        self,
        ext: Mapping[Hashable, bytes],
        params: PublicParams,
        rng: random.Random,
        engine: CryptoEngine | None = None,
        crypto: CryptoContext | None = None,
        cached: PartyCache | None = None,
    ):
        self.params = params
        self.crypto = _resolve_crypto(params, engine, crypto)
        self.group, self.hash, self.cipher = (
            self.crypto.group,
            self.crypto.hash,
            self.crypto.cipher,
        )
        self.ext = {v: bytes(payload) for v, payload in ext.items()}
        self.values = sorted(self.ext, key=repr)
        if cached is not None:
            self._hashes = cached.hashes_for(self.values)
            if find_collisions(self._hashes):
                raise HashCollisionError(
                    "hash collision within the party's cached set"
                )
            self._key, self._key_prime = cached.keys
            self._cached_cw = cached.ciphertexts_for(self.values, 0)
            self._cached_kp = cached.ciphertexts_for(self.values, 1)
        else:
            self._hashes = _checked_hashes(self.hash, self.values)
            self._key = self.cipher.sample_key(rng)
            self._key_prime = self.cipher.sample_key(rng)
            self._cached_cw = None
            self._cached_kp = None
        self._hash_by_value = dict(zip(self.values, self._hashes))
        self._ext_cipher = self.crypto.ext()

    def cache_keys(self) -> tuple:
        """Both cipher keys in draw order (for catalog caching)."""
        return (self._key, self._key_prime)

    def cache_entries(self) -> dict | None:
        """Per-value ``(hash, (codeword, kappa))`` after round 1."""
        codeword_by_value = getattr(self, "_codeword_by_value", None)
        if codeword_by_value is None:
            return None
        return {
            v: (
                self._hash_by_value[v],
                (codeword_by_value[v], self._kappa_by_value[v]),
            )
            for v in self.values
        }

    def round1(self, y_r: CipherList) -> EquijoinReply:
        """Steps 4-5: triples over Y_R plus the ⟨codeword, K(...)⟩ pairs."""
        y_r = list(CipherList.coerce(y_r))
        self.size_v_r = len(y_r)
        triples = list(
            zip(
                y_r,
                self.cipher.encrypt_many(self._key, y_r),
                self.cipher.encrypt_many(self._key_prime, y_r),
            )
        )
        codewords = _cached_or_encrypt(
            self.cipher, self._key, self._hashes, self._cached_cw
        )
        kappas = _cached_or_encrypt(
            self.cipher, self._key_prime, self._hashes, self._cached_kp
        )
        self._codeword_by_value = dict(zip(self.values, codewords))
        self._kappa_by_value = dict(zip(self.values, kappas))
        pairs = [
            (codeword, self._ext_cipher.encrypt(kappa, self.ext[v]))
            for v, codeword, kappa in zip(self.values, codewords, kappas)
        ]
        return EquijoinReply(triples=triples, pairs=sorted(pairs))


class _MultisetParty:
    """Common setup for the Section 5.2 parties: one codeword per
    *occurrence*, duplicates preserved under the deterministic cipher."""

    def __init__(
        self,
        values: Iterable[Hashable],
        params: PublicParams,
        rng: random.Random,
        engine: CryptoEngine | None = None,
        crypto: CryptoContext | None = None,
        cached: PartyCache | None = None,
    ):
        from ..db.multiset import ValueMultiset

        self.params = params
        self.crypto = _resolve_crypto(params, engine, crypto)
        self.group, self.hash, self.cipher = (
            self.crypto.group,
            self.crypto.hash,
            self.crypto.cipher,
        )
        ms = (
            values
            if isinstance(values, ValueMultiset)
            else ValueMultiset.from_values(values)
        )
        self.multiset = ms
        distinct = sorted(ms.distinct(), key=repr)
        self.values = distinct
        if cached is not None:
            hashes = cached.hashes_for(distinct)
            if find_collisions(hashes):
                raise HashCollisionError(
                    "hash collision within the party's cached set"
                )
            (self._key,) = cached.keys
            encrypted = cached.ciphertexts_for(distinct)
        else:
            hashes = _checked_hashes(self.hash, distinct)
            self._key = self.cipher.sample_key(rng)
            # Hash and encrypt each distinct value once (one batch),
            # then expand by multiplicity.
            encrypted = self.cipher.encrypt_many(self._key, hashes)
        self._hashes = hashes
        self._hash_by_value = dict(zip(distinct, hashes))
        self._y_by_value = dict(zip(distinct, encrypted))
        self._y_multiset = [
            y
            for v, y in zip(distinct, encrypted)
            for _ in range(ms.multiplicity(v))
        ]

    def cache_keys(self) -> tuple:
        """The party's cipher key (for catalog caching)."""
        return (self._key,)

    def cache_entries(self) -> dict:
        """Per-distinct-value ``(hash, ciphertexts)`` for catalog caching."""
        return {
            v: (self._hash_by_value[v], (self._y_by_value[v],))
            for v in self.values
        }


class EquijoinSizeReceiver(_MultisetParty):
    """Party R of the Section 5.2 protocol; learns ``|T_S ⋈ T_R|``."""

    def round1(self) -> CipherList:
        """Step 3: the encrypted multiset ``Y_R``, reordered."""
        return CipherList(sorted_ciphertexts(list(self._y_multiset)))

    def finish(self, reply: SizeReply) -> int:
        """Steps 5-6: matched codewords contribute the product of
        their multiplicities on the two sides."""
        reply = SizeReply.coerce(reply)
        self.size_v_s = len(reply.y_s)
        z_s_counts = Counter(self.cipher.encrypt_many(self._key, reply.y_s))
        z_r_counts = Counter(reply.z_r)
        # Stashed for the leakage diagnostics in the driver wrapper
        # (duplicate distributions, partition overlap) and for delta
        # queries (occurrence counters on both sides).
        self._z_s_counts = z_s_counts
        self._z_r_counts = z_r_counts
        self._z_r_received = list(reply.z_r)
        return sum(
            count * z_r_counts[codeword]
            for codeword, count in z_s_counts.items()
            if codeword in z_r_counts
        )


class EquijoinSizeSender(_MultisetParty):
    """Party S of the Section 5.2 protocol."""

    def round1(self, y_r: CipherList) -> SizeReply:
        """Steps 4(a)+(b): ``Y_S`` plus the unpaired, reordered ``Z_R``."""
        y_r = list(CipherList.coerce(y_r))
        self.size_v_r = len(y_r)
        self._y_r_received = y_r
        y_s = sorted_ciphertexts(list(self._y_multiset))
        z_r = sorted_ciphertexts(self.cipher.encrypt_many(self._key, y_r))
        return SizeReply(y_s=y_s, z_r=z_r)


class EquijoinSumReceiver(_Party):
    """Party R of the equijoin-sum aggregate (paper future work).

    Runs the intersection-size flow, then homomorphically sums the
    Paillier ciphertexts S attached to matched codewords, blinded with
    a uniform mask so S decrypts without learning the true sum.
    """

    def round1(self) -> CipherList:
        """Step 2: ``Y_R``, reordered (as in Section 5.1)."""
        self._y_r = _cached_or_encrypt(
            self.cipher, self._key, self._hashes, self._cached_y
        )
        self._y_by_value = dict(zip(self.values, self._y_r))
        return CipherList(sorted_ciphertexts(self._y_r))

    def round2(self, reply: SumReply) -> BlindedSum:
        """Step 5: match against the unlinkable ``Z_R``, sum and blind."""
        reply = SumReply.coerce(reply)
        pk = PaillierPublicKey(reply.n)
        z_r_set = set(reply.z_r)
        z_by_codeword = {}
        matched = []
        for codeword, ciphertext in reply.pairs:
            z = self.cipher.encrypt(self._key, codeword)
            z_by_codeword[codeword] = z
            if z in z_r_set:
                matched.append(ciphertext)
        # Stashed for delta queries: the double-encryption cache keeps
        # repeat matching O(delta) instead of O(|V_S|) modexp.
        self._z_r_set = z_r_set
        self._z_by_codeword = z_by_codeword
        self._pairs_by_codeword = dict(reply.pairs)
        accumulator = pk.encrypt_zero(self.rng)
        for ciphertext in matched:
            accumulator = pk.add(accumulator, ciphertext)
        self._mask = self.rng.randrange(pk.n)
        self._pk = pk
        self.match_count = len(matched)
        self.size_v_s = len(reply.pairs)
        return BlindedSum(pk.add_plain(accumulator, self._mask, self.rng))

    def finish(self, reply: RevealedSum) -> int:
        """Step 7: remove the mask from S's decrypted blinded sum."""
        reply = RevealedSum.coerce(reply)
        return (reply.value - self._mask) % self._pk.n


class EquijoinSumSender:
    """Party S of the equijoin-sum aggregate (Paillier keypair holder)."""

    def __init__(
        self,
        values_s: Mapping[Hashable, int],
        params: PublicParams,
        rng: random.Random,
        engine: CryptoEngine | None = None,
        crypto: CryptoContext | None = None,
        paillier_bits: int = 256,
    ):
        self.params = params
        self.crypto = _resolve_crypto(params, engine, crypto)
        self.group, self.hash, self.cipher = (
            self.crypto.group,
            self.crypto.hash,
            self.crypto.cipher,
        )
        self.amounts = dict(values_s)
        self.values = sorted(self.amounts, key=repr)
        self._hashes = _checked_hashes(self.hash, self.values)
        self._hash_by_value = dict(zip(self.values, self._hashes))
        self._key = self.cipher.sample_key(rng)
        self._public, self._private = generate_keypair(paillier_bits, rng)
        self.rng = rng

    def round1(self, y_r: CipherList) -> SumReply:
        """Steps 3-4: unlinkable ``Z_R`` + Paillier modulus, then the
        ``⟨f_eS(h(v)), Enc_pkS(val(v))⟩`` pairs, reordered."""
        y_r = list(CipherList.coerce(y_r))
        self.size_v_r = len(y_r)
        z_r = sorted_ciphertexts(self.cipher.encrypt_many(self._key, y_r))
        pairs = []
        self._codeword_by_value = {}
        for v, x in zip(self.values, self._hashes):
            codeword = self.cipher.encrypt(self._key, x)
            self._codeword_by_value[v] = codeword
            amount = int(self.amounts[v])
            if amount < 0:
                raise ValueError("aggregated values must be non-negative")
            pairs.append((codeword, self._public.encrypt(amount, self.rng)))
        return SumReply(z_r_pk=(z_r, self._public.n), pairs=sorted(pairs))

    def round2(self, blinded: BlindedSum) -> RevealedSum:
        """Step 6: decrypt the rerandomized blinded ciphertext."""
        blinded = BlindedSum.coerce(blinded)
        return RevealedSum(self._private.decrypt(blinded.ciphertext))


class _Machine:
    """Shared core of the two spec interpreters.

    Holds the lazily-built party state, the inbox of typed messages
    keyed by round name, and the recorder-phase plumbing.  Subclasses
    fix the role prefix and which spec factory builds the state.
    """

    role = ""
    _factory_attr = ""

    def __init__(
        self,
        spec: Any,
        data: Any,
        params: PublicParams,
        rng: random.Random,
        engine: CryptoEngine | None = None,
        crypto: CryptoContext | None = None,
        recorder: Any = None,
        **options: Any,
    ):
        factory = getattr(spec, self._factory_attr)
        self._init(
            spec,
            lambda: factory(data, params, rng, engine=engine, crypto=crypto, **options),
            recorder,
        )

    def _init(self, spec: Any, make_state: Callable[[], Any], recorder: Any) -> None:
        self.spec = spec
        self.recorder = recorder
        self._make_state = make_state
        self._state: Any = None
        self.inbox: dict[str, Message] = {}
        self._rounds_produced = 0

    @classmethod
    def from_factory(
        cls, spec: Any, make_state: Callable[[], Any], recorder: Any = None
    ) -> "_Machine":
        """Build a machine around a ready state factory.

        The resumable sessions use this: their pinned constructor
        signatures take a zero-argument ``make_sender`` / a
        params-taking ``make_receiver`` closure rather than raw data.
        """
        machine = object.__new__(cls)
        machine._init(spec, make_state, recorder)
        return machine

    def _phase(self, name: str):
        if self.recorder is None:
            return nullcontext()
        return self.recorder.phase(f"{self.role}.{name}")

    def ensure_state(self) -> Any:
        """Build the party state on first use (under the setup phase)."""
        if self._state is None:
            with self._phase("setup"):
                self._state = self._make_state()
        return self._state

    @property
    def state(self) -> Any:
        """The underlying party state (built on first access)."""
        return self.ensure_state()

    def wait(self, rnd: Any):
        """Context manager timing the blocking receive of round ``rnd``."""
        return self._phase(f"wait_{rnd.name}")

    def produce(self, rnd: Any) -> Message:
        """Compute this role's next outgoing round message."""
        state = self.ensure_state()
        self._rounds_produced += 1
        with self._phase(f"round{self._rounds_produced}"):
            message = rnd.step(state, self.inbox)
        if not isinstance(message, rnd.message):
            message = rnd.message.coerce(message)
        self.inbox[rnd.name] = message
        return message

    def produce_chunks(self, rnd: Any, chunk_size: int) -> Any:
        """Compute this role's next round as a stream of chunk payloads.

        Yields ``(part_index, kind, body)`` chunk payloads in wire
        order. Rounds with a registered ``chunk_step`` stream
        incrementally - the chunk for segment *k+1* is only computed
        when the consumer pulls it, so a double-buffering transport
        overlaps its crypto with the wire. Rounds without one compute
        the full message first and split it. Either way the assembled
        message lands in the inbox exactly as :meth:`produce` would
        have put it (the generator must be driven to exhaustion).
        """
        state = self.ensure_state()
        self._rounds_produced += 1
        phase = f"round{self._rounds_produced}"
        chunk_step = getattr(rnd, "chunk_step", None)
        if chunk_step is None:
            with self._phase(phase):
                message = rnd.step(state, self.inbox)
                if not isinstance(message, rnd.message):
                    message = rnd.message.coerce(message)
            self.inbox[rnd.name] = message
            yield from message.to_wire_chunks(chunk_size)
            return
        source = chunk_step(state, self.inbox, chunk_size)
        assembler = ChunkAssembler(rnd.message)
        while True:
            # Re-enter the round phase per chunk so the recorder
            # attributes each chunk's crypto individually (its call
            # count is the chunk count).
            with self._phase(phase):
                try:
                    payload = next(source)
                except StopIteration:
                    break
            assembler.add(payload)
            yield payload
        self.inbox[rnd.name] = assembler.message()

    def consume(self, rnd: Any, wire: Any) -> Message:
        """Decode a received single-frame wire payload into the inbox."""
        message = rnd.message.from_wire(wire)
        self.inbox[rnd.name] = message
        return message

    def consume_chunks(self, rnd: Any, payloads: Sequence[Any]) -> Message:
        """Reassemble a received chunk payload stream into the inbox."""
        message = rnd.message.from_wire_chunks(payloads)
        self.inbox[rnd.name] = message
        return message

    def consume_parts(self, rnd: Any, parts: Sequence[Any]) -> Message:
        """Assemble a received round from its per-part payloads."""
        message = rnd.message.from_parts(tuple(parts))
        self.inbox[rnd.name] = message
        return message


class SenderMachine(_Machine):
    """Generic party S: interprets any registered protocol spec."""

    role = "s"
    _factory_attr = "make_sender"


class ReceiverMachine(_Machine):
    """Generic party R: interprets any registered protocol spec and
    computes the protocol answer."""

    role = "r"
    _factory_attr = "make_receiver"

    def finish(self) -> Any:
        """Compute the protocol answer from the completed inbox."""
        state = self.ensure_state()
        with self._phase("finish"):
            return self.spec.finish(state, self.inbox)
