"""Separable party state machines, for real two-party deployment.

The driver functions in :mod:`repro.protocols.intersection` etc. are
convenient for simulation and analysis, but they hold both parties'
secrets in one stack frame. A downstream deployment needs each party
as its *own* object that sees only its inputs, its randomness and the
messages addressed to it - so it can sit behind any transport
(the in-memory channels, the TCP transport in :mod:`repro.net.tcp`,
or a message queue).

Message flow (intersection, Section 3.3):

    receiver = IntersectionReceiver(v_r, params, rng)
    sender   = IntersectionSender(v_s, params, rng)
    m1 = receiver.round1()            # Y_R            (R -> S)
    m2 = sender.round1(m1)            # Y_S + pairs    (S -> R)
    answer = receiver.finish(m2)

and for the size variant the same shape with an unpaired ``Z_R``.
Parameters travel as :class:`PublicParams` - everything public both
sides must agree on (the modulus and the hash construction).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..crypto.commutative import PowerCipher
from ..crypto.engine import CryptoEngine
from ..crypto.groups import QRGroup
from ..crypto.hashing import DomainHash, SquareHash, TryIncrementHash
from .base import sorted_ciphertexts

__all__ = [
    "PublicParams",
    "IntersectionReceiver",
    "IntersectionSender",
    "IntersectionSizeReceiver",
    "IntersectionSizeSender",
    "EquijoinReceiver",
    "EquijoinSender",
    "EquijoinSizeReceiver",
    "EquijoinSizeSender",
]

_HASH_REGISTRY: dict[str, type[DomainHash]] = {
    "try-increment": TryIncrementHash,
    "square": SquareHash,
}


@dataclass(frozen=True)
class PublicParams:
    """The public protocol parameters both parties must share."""

    p: int
    hash_name: str = "try-increment"

    @classmethod
    def for_bits(cls, bits: int) -> "PublicParams":
        """Params over the embedded safe prime of the given size."""
        return cls(p=QRGroup.for_bits(bits).p)

    def build(
        self, engine: CryptoEngine | None = None
    ) -> tuple[QRGroup, DomainHash, PowerCipher]:
        """Instantiate the group, hash and cipher these params name.

        ``engine`` selects the batch execution strategy for the cipher
        (a local choice - it never crosses the wire and has no effect
        on the transcript).
        """
        group = QRGroup(self.p)
        hash_cls = _HASH_REGISTRY.get(self.hash_name)
        if hash_cls is None:
            raise ValueError(f"unknown hash construction {self.hash_name!r}")
        return group, hash_cls(group), PowerCipher(group, engine=engine)

    def to_wire(self) -> tuple[int, str]:
        """Encodable form for the transport handshake."""
        return (self.p, self.hash_name)

    @classmethod
    def from_wire(cls, payload: tuple[int, str]) -> "PublicParams":
        """Inverse of :meth:`to_wire`."""
        p, hash_name = payload
        return cls(p=int(p), hash_name=str(hash_name))


class _Party:
    """Common setup: hash own values, draw a key."""

    def __init__(
        self,
        values: Sequence[Hashable],
        params: PublicParams,
        rng: random.Random,
        engine: CryptoEngine | None = None,
    ):
        self.params = params
        self.group, self.hash, self.cipher = params.build(engine=engine)
        self.values = sorted(set(values), key=repr)
        self.rng = rng
        self._key = self.cipher.sample_key(rng)
        self._hashes = self.hash.hash_set(self.values)


class IntersectionReceiver(_Party):
    """Party R of the Section 3.3 protocol."""

    def round1(self) -> list[int]:
        """Step 3: ``Y_R``, reordered lexicographically."""
        self._y_by_value = dict(
            zip(self.values, self.cipher.encrypt_many(self._key, self._hashes))
        )
        return sorted_ciphertexts(list(self._y_by_value.values()))

    def finish(self, reply: tuple[list[int], list[tuple[int, int]]]) -> set[Hashable]:
        """Steps 5-6: recover the intersection from S's reply."""
        y_s, pairs = reply
        z_s = set(self.cipher.encrypt_many(self._key, y_s))
        self.size_v_s = len(y_s)
        y_to_value = {y: v for v, y in self._y_by_value.items()}
        return {
            y_to_value[y]
            for y, double in pairs
            if y in y_to_value and double in z_s
        }


class IntersectionSender(_Party):
    """Party S of the Section 3.3 protocol."""

    def round1(
        self, y_r: list[int]
    ) -> tuple[list[int], list[tuple[int, int]]]:
        """Steps 4(a)+(b): ``Y_S`` reordered plus the ``⟨y, f_eS(y)⟩`` pairs."""
        self.size_v_r = len(y_r)
        y_s = sorted_ciphertexts(self.cipher.encrypt_many(self._key, self._hashes))
        pairs = list(zip(y_r, self.cipher.encrypt_many(self._key, y_r)))
        return y_s, pairs


class IntersectionSizeReceiver(_Party):
    """Party R of the Section 5.1 protocol."""

    def round1(self) -> list[int]:
        """Step 3: ``Y_R``, reordered lexicographically."""
        self._y_r = self.cipher.encrypt_many(self._key, self._hashes)
        return sorted_ciphertexts(self._y_r)

    def finish(self, reply: tuple[list[int], list[int]]) -> int:
        """Steps 5-6: count ``|Z_S ∩ Z_R|`` from S's reply."""
        y_s, z_r = reply
        self.size_v_s = len(y_s)
        z_s = set(self.cipher.encrypt_many(self._key, y_s))
        return len(z_s & set(z_r))


class IntersectionSizeSender(_Party):
    """Party S of the Section 5.1 protocol."""

    def round1(self, y_r: list[int]) -> tuple[list[int], list[int]]:
        """Steps 4(a)+(b): ``Y_S`` plus the unpaired, reordered ``Z_R``."""
        self.size_v_r = len(y_r)
        y_s = sorted_ciphertexts(self.cipher.encrypt_many(self._key, self._hashes))
        z_r = sorted_ciphertexts(self.cipher.encrypt_many(self._key, y_r))
        return y_s, z_r


class EquijoinReceiver(_Party):
    """Party R of the Section 4.3 protocol."""

    def round1(self) -> list[int]:
        """Step 3: ``Y_R``, reordered lexicographically."""
        self._y_by_value = dict(
            zip(self.values, self.cipher.encrypt_many(self._key, self._hashes))
        )
        return sorted_ciphertexts(list(self._y_by_value.values()))

    def finish(self, reply) -> dict:
        """Steps 6-7: strip own layer, match pairs, decrypt ext."""
        from ..crypto.ext_cipher import BlockExtCipher

        triples, pairs = reply
        ext_cipher = BlockExtCipher(self.group)
        inverse = self.cipher.invert_key(self._key)
        y_to_value = {y: v for v, y in self._y_by_value.items()}
        mine = [
            (y_to_value[y], second, third)
            for y, second, third in triples
            if y in y_to_value
        ]
        codewords = self.cipher.encrypt_many(inverse, [t[1] for t in mine])
        kappas = self.cipher.encrypt_many(inverse, [t[2] for t in mine])
        by_codeword = {
            codeword: (v, kappa)
            for (v, _, _), codeword, kappa in zip(mine, codewords, kappas)
        }
        matches = {}
        for codeword, ciphertext in pairs:
            hit = by_codeword.get(codeword)
            if hit is None:
                continue
            v, kappa = hit
            matches[v] = ext_cipher.decrypt(kappa, list(ciphertext))
        self.size_v_s = len(pairs)
        return matches


class EquijoinSender:
    """Party S of the Section 4.3 protocol (two keys + ext payloads)."""

    def __init__(
        self,
        ext,
        params: PublicParams,
        rng: random.Random,
        engine: CryptoEngine | None = None,
    ):
        from ..crypto.ext_cipher import BlockExtCipher

        self.params = params
        self.group, self.hash, self.cipher = params.build(engine=engine)
        self.ext = {v: bytes(payload) for v, payload in ext.items()}
        self.values = sorted(self.ext, key=repr)
        self._hashes = self.hash.hash_set(self.values)
        self._key = self.cipher.sample_key(rng)
        self._key_prime = self.cipher.sample_key(rng)
        self._ext_cipher = BlockExtCipher(self.group)

    def round1(self, y_r: list[int]):
        """Steps 4-5: triples over Y_R plus the ⟨codeword, K(...)⟩ pairs."""
        self.size_v_r = len(y_r)
        triples = list(
            zip(
                y_r,
                self.cipher.encrypt_many(self._key, y_r),
                self.cipher.encrypt_many(self._key_prime, y_r),
            )
        )
        codewords = self.cipher.encrypt_many(self._key, self._hashes)
        kappas = self.cipher.encrypt_many(self._key_prime, self._hashes)
        pairs = [
            (codeword, self._ext_cipher.encrypt(kappa, self.ext[v]))
            for v, codeword, kappa in zip(self.values, codewords, kappas)
        ]
        return triples, sorted(pairs)


class _MultisetParty:
    """Common setup for the Section 5.2 parties: one codeword per
    *occurrence*, duplicates preserved under the deterministic cipher."""

    def __init__(
        self,
        values: Iterable[Hashable],
        params: PublicParams,
        rng: random.Random,
        engine: CryptoEngine | None = None,
    ):
        from ..db.multiset import ValueMultiset

        self.params = params
        self.group, self.hash, self.cipher = params.build(engine=engine)
        ms = (
            values
            if isinstance(values, ValueMultiset)
            else ValueMultiset.from_values(values)
        )
        self.multiset = ms
        distinct = sorted(ms.distinct(), key=repr)
        hashes = self.hash.hash_set(distinct)
        self._key = self.cipher.sample_key(rng)
        # Hash and encrypt each distinct value once (one batch), then
        # expand by multiplicity.
        encrypted = self.cipher.encrypt_many(self._key, hashes)
        self._y_multiset = [
            y
            for v, y in zip(distinct, encrypted)
            for _ in range(ms.multiplicity(v))
        ]


class EquijoinSizeReceiver(_MultisetParty):
    """Party R of the Section 5.2 protocol; learns ``|T_S ⋈ T_R|``."""

    def round1(self) -> list[int]:
        """Step 3: the encrypted multiset ``Y_R``, reordered."""
        return sorted_ciphertexts(list(self._y_multiset))

    def finish(self, reply: tuple[list[int], list[int]]) -> int:
        """Steps 5-6: matched codewords contribute the product of
        their multiplicities on the two sides."""
        y_s, z_r = reply
        self.size_v_s = len(y_s)
        z_s_counts = Counter(self.cipher.encrypt_many(self._key, y_s))
        z_r_counts = Counter(z_r)
        return sum(
            count * z_r_counts[codeword]
            for codeword, count in z_s_counts.items()
            if codeword in z_r_counts
        )


class EquijoinSizeSender(_MultisetParty):
    """Party S of the Section 5.2 protocol."""

    def round1(self, y_r: list[int]) -> tuple[list[int], list[int]]:
        """Steps 4(a)+(b): ``Y_S`` plus the unpaired, reordered ``Z_R``."""
        self.size_v_r = len(y_r)
        y_s = sorted_ciphertexts(list(self._y_multiset))
        z_r = sorted_ciphertexts(self.cipher.encrypt_many(self._key, y_r))
        return y_s, z_r
