"""The intersection-size protocol (Section 5.1).

Identical to the intersection protocol except for Step 4(b): S returns
only the lexicographically reordered double encryptions ``Z_R``,
*without* pairing them to the ``y`` values, so R can count matches but
cannot tell *which* of its values matched (Statements 5 and 6).

The steps live in :class:`~repro.protocols.parties.IntersectionSizeReceiver`
/ ``IntersectionSizeSender``; this driver executes the registered
``"intersection-size"`` spec over in-memory channels.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..net.runner import ProtocolRun, run_spec
from .base import IntersectionSizeResult, ProtocolSuite
from .parties import CryptoContext, PublicParams, ReceiverMachine, SenderMachine
from .spec import PROTOCOLS

__all__ = ["run_intersection_size"]


def run_intersection_size(
    v_r: Sequence[Hashable],
    v_s: Sequence[Hashable],
    suite: ProtocolSuite | None = None,
) -> IntersectionSizeResult:
    """Execute the Section 5.1.1 protocol; R learns ``|V_S ∩ V_R|``."""
    suite = suite or ProtocolSuite.default()
    spec = PROTOCOLS["intersection-size"]
    run = ProtocolRun(protocol=spec.run_label)
    crypto = CryptoContext.from_suite(suite)
    params = PublicParams(p=suite.group.p)
    receiver = ReceiverMachine(spec, v_r, params, suite.rng_r, crypto=crypto)
    sender = SenderMachine(spec, v_s, params, suite.rng_s, crypto=crypto)
    size = run_spec(spec, receiver, sender, run)
    return IntersectionSizeResult(
        size=size,
        size_v_s=receiver.state.size_v_s,
        size_v_r=sender.state.size_v_r,
        run=run,
    )
