"""The intersection-size protocol (Section 5.1).

Identical to the intersection protocol except for Step 4(b): S returns
only the lexicographically reordered double encryptions ``Z_R``,
*without* pairing them to the ``y`` values, so R can count matches but
cannot tell *which* of its values matched (Statements 5 and 6).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..net.runner import ProtocolRun
from .base import IntersectionSizeResult, ProtocolSuite, sorted_ciphertexts

__all__ = ["run_intersection_size"]


def run_intersection_size(
    v_r: Sequence[Hashable],
    v_s: Sequence[Hashable],
    suite: ProtocolSuite | None = None,
) -> IntersectionSizeResult:
    """Execute the Section 5.1.1 protocol; R learns ``|V_S ∩ V_R|``."""
    suite = suite or ProtocolSuite.default()
    run = ProtocolRun(protocol="intersection_size")

    r_values = sorted(set(v_r), key=repr)
    s_values = sorted(set(v_s), key=repr)

    # Step 1 - hash the sets and choose secret keys.
    x_r = suite.hash_side("R", r_values)
    x_s = suite.hash_side("S", s_values)
    e_r = suite.cipher.sample_key(suite.rng_r)
    e_s = suite.cipher.sample_key(suite.rng_s)

    # Step 2 - encrypt the hashed sets.
    y_r = suite.cipher.encrypt_many(e_r, x_r)
    y_s = suite.cipher.encrypt_many(e_s, x_s)

    # Step 3 - R ships Y_R reordered lexicographically.
    y_r_received = run.to_s("3:Y_R", sorted_ciphertexts(y_r))

    # Step 4(a) - S ships Y_S reordered lexicographically.
    y_s_received = run.to_r("4a:Y_S", sorted_ciphertexts(y_s))

    # Step 4(b) - S returns Z_R = f_eS(Y_R) reordered lexicographically
    # and *unpaired*, which is the entire difference from Section 3.
    z_r = sorted_ciphertexts(suite.cipher.encrypt_many(e_s, y_r_received))
    z_r_received = run.to_r("4b:Z_R", z_r)

    # Step 5 - R computes Z_S = f_eR(Y_S).
    z_s = suite.cipher.encrypt_many(e_r, y_s_received)

    # Step 6 - the answer is |Z_S ∩ Z_R|.
    size = len(set(z_s) & set(z_r_received))

    run.finish()
    return IntersectionSizeResult(
        size=size,
        size_v_s=len(y_s_received),
        size_v_r=len(y_r_received),
        run=run,
    )
