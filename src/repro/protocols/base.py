"""Shared protocol machinery: parameter suites and result objects.

A :class:`ProtocolSuite` fixes everything both parties agree on before
a protocol starts - the group (safe prime), the hash ``h`` into the
group, the commutative cipher family, and *independent* randomness for
each party. Results carry the answer, the extra information ``I`` each
party legitimately learned (set sizes), and the full
:class:`~repro.net.runner.ProtocolRun` with byte counts and recorded
views for the security audit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable

from ..crypto.commutative import PowerCipher
from ..crypto.ext_cipher import BlockExtCipher, ExtCipher
from ..crypto.groups import QRGroup
from ..crypto.hashing import DomainHash, TryIncrementHash, find_collisions
from ..net.runner import ProtocolRun

__all__ = [
    "HashCollisionError",
    "ProtocolSuite",
    "IntersectionResult",
    "IntersectionSizeResult",
    "EquijoinResult",
    "EquijoinSizeResult",
    "DEFAULT_BITS",
]

#: Default modulus size for library users; tests use smaller groups.
DEFAULT_BITS = 1024


class HashCollisionError(Exception):
    """Raised when the pre-protocol sorted-hash check finds a collision.

    Section 3.2.2: "a collision within V_S or V_R can be detected by
    the server at the start of each protocol by sorting the hashes".
    With >= 512-bit moduli the probability is negligible; the error
    exists so the condition is loud rather than silently corrupting the
    answer.
    """


@dataclass
class ProtocolSuite:
    """Agreed public parameters plus per-party private randomness."""

    group: QRGroup
    hash: DomainHash
    cipher: PowerCipher
    ext_cipher: ExtCipher
    rng_r: random.Random
    rng_s: random.Random

    @classmethod
    def default(
        cls,
        bits: int = DEFAULT_BITS,
        seed: int | None = None,
        hash_cls: type[DomainHash] = TryIncrementHash,
    ) -> "ProtocolSuite":
        """A ready-to-use suite over an embedded safe prime.

        Args:
            bits: modulus size (embedded safe primes exist for
                64..512, 768, 1024, 1536, 2048).
            seed: derives *distinct* seeds for R's and S's randomness;
                None gives nondeterministic randomness.
            hash_cls: domain-hash construction (ablation point).
        """
        group = QRGroup.for_bits(bits)
        if seed is None:
            rng_r, rng_s = random.Random(), random.Random()
        else:
            rng_r, rng_s = random.Random(f"{seed}/R"), random.Random(f"{seed}/S")
        return cls(
            group=group,
            hash=hash_cls(group),
            cipher=PowerCipher(group),
            ext_cipher=BlockExtCipher(group),
            rng_r=rng_r,
            rng_s=rng_s,
        )

    def hash_side(self, label: str, values: list[Hashable]) -> list[int]:
        """Hash one party's value list, running the collision check."""
        hashes = self.hash.hash_set(values)
        collisions = find_collisions(hashes)
        if collisions:
            raise HashCollisionError(
                f"hash collision within {label}'s set ({len(collisions)} colliding values)"
            )
        return hashes


@dataclass
class IntersectionResult:
    """Outcome of the Section 3 protocol.

    Attributes:
        intersection: ``V_S ∩ V_R`` - R's answer.
        size_v_s: ``|V_S|`` - extra information R learns.
        size_v_r: ``|V_R|`` - extra information S learns.
        run: channels + views of this execution.
    """

    intersection: set[Hashable]
    size_v_s: int
    size_v_r: int
    run: ProtocolRun


@dataclass
class IntersectionSizeResult:
    """Outcome of the Section 5.1 protocol."""

    size: int
    size_v_s: int
    size_v_r: int
    run: ProtocolRun


@dataclass
class EquijoinResult:
    """Outcome of the Section 4 protocol.

    ``matches`` maps each ``v`` in the intersection to the decrypted
    ``ext(v)`` payload S attached to it.
    """

    intersection: set[Hashable]
    matches: dict[Hashable, bytes]
    size_v_s: int
    size_v_r: int
    run: ProtocolRun


@dataclass
class EquijoinSizeResult:
    """Outcome of the Section 5.2 protocol, with its characterized leak.

    Attributes:
        join_size: ``|T_S ⋈ T_R|``.
        r_learns_s_duplicates: S's duplicate distribution ``d -> |V_S(d)|``
            as observable by R from the multiset ``Y_S``.
        s_learns_r_duplicates: R's duplicate distribution, observable by S.
        partition_overlap: ``(d_R, d_S) -> overlap count`` - what R can
            deduce by matching duplicate classes (Section 5.2).
    """

    join_size: int
    size_v_s: int
    size_v_r: int
    r_learns_s_duplicates: dict[int, int]
    s_learns_r_duplicates: dict[int, int]
    partition_overlap: dict[tuple[int, int], int]
    run: ProtocolRun


def sorted_ciphertexts(values: list[int]) -> list[int]:
    """Lexicographic reordering before shipping a ciphertext set.

    Footnote 3 of the paper: sending ciphertexts in input order would
    reveal the correspondence with the (sorted or otherwise known)
    plaintext order.
    """
    return sorted(values)
