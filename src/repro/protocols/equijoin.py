"""The equijoin protocol (Section 4.3).

Extends the intersection protocol so that R additionally obtains
``ext(v)`` - S's records joining on ``v`` - for every ``v`` in the
intersection, while still learning nothing about ``ext(v)`` for
``v ∈ V_S − V_R`` (Statements 3 and 4).

S uses *two* keys: ``e_S`` for the match codewords and ``e'_S`` to
derive the per-value ext-encryption key ``κ(v) = f_{e'_S}(h(v))``.
R recovers ``κ(v)`` only for its own values by stripping its own
encryption: ``f_eR^{-1}(f_{e'_S}(f_eR(h(v)))) = f_{e'_S}(h(v))``.

The module offers two levels:

* :func:`run_equijoin` - the raw protocol on value sets plus an
  ``ext`` byte-payload map (exactly the paper's objects);
* :func:`join_tables` - a convenience wrapper joining two
  :class:`~repro.db.table.Table` relations, serializing S's record
  groups into ``ext(v)`` and materializing the joined table at R.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from ..db.table import Table
from ..net import serialization
from ..net.runner import ProtocolRun, run_spec
from .base import EquijoinResult, ProtocolSuite
from .parties import CryptoContext, PublicParams, ReceiverMachine, SenderMachine
from .spec import PROTOCOLS

__all__ = ["run_equijoin", "join_tables"]


def run_equijoin(
    v_r: Sequence[Hashable],
    ext_s: Mapping[Hashable, bytes],
    suite: ProtocolSuite | None = None,
) -> EquijoinResult:
    """Execute the Section 4.3 protocol.

    The steps live in :class:`~repro.protocols.parties.EquijoinReceiver`
    / ``EquijoinSender``; this driver executes the registered
    ``"equijoin"`` spec over in-memory channels. Step 8 (computing
    ``T_S ⋈ T_R`` from ext) is the caller's job; see
    :func:`join_tables` for the table-level wrapper.

    Args:
        v_r: R's value set.
        ext_s: S's side as a map ``v -> ext(v)`` (the values are
            ``V_S``, the payloads the joined extra information).
        suite: agreed parameters; fresh 1024-bit default when omitted.
    """
    suite = suite or ProtocolSuite.default()
    spec = PROTOCOLS["equijoin"]
    run = ProtocolRun(protocol=spec.run_label)
    crypto = CryptoContext.from_suite(suite)
    params = PublicParams(p=suite.group.p)
    receiver = ReceiverMachine(spec, v_r, params, suite.rng_r, crypto=crypto)
    sender = SenderMachine(spec, ext_s, params, suite.rng_s, crypto=crypto)
    matches = run_spec(spec, receiver, sender, run)
    return EquijoinResult(
        intersection=set(matches),
        matches=matches,
        size_v_s=receiver.state.size_v_s,
        size_v_r=sender.state.size_v_r,
        run=run,
    )


def serialize_rows(rows: Sequence[tuple]) -> bytes:
    """Encode a group of S-records as one ``ext(v)`` payload."""
    return serialization.encode([list(row) for row in rows])


def deserialize_rows(payload: bytes) -> list[tuple]:
    """Inverse of :func:`serialize_rows`."""
    return [tuple(row) for row in serialization.decode(payload)]


def join_tables(
    t_r: Table,
    t_s: Table,
    r_attr: str,
    s_attr: str | None = None,
    suite: ProtocolSuite | None = None,
) -> tuple[Table, EquijoinResult]:
    """Privately compute ``T_S ⋈ T_R`` and materialize it at R.

    R contributes the distinct values of ``T_R.r_attr``; S contributes
    ``ext(v)`` = its records grouped by ``T_S.s_attr``. The returned
    table has R's columns followed by S's (renamed on collision),
    mirroring the plaintext :func:`repro.db.engine.equijoin` so results
    can be compared directly.
    """
    s_attr = s_attr or r_attr
    ext = {
        v: serialize_rows(rows) for v, rows in t_s.group_rows_by(s_attr).items()
    }
    result = run_equijoin(list(t_r.distinct_values(r_attr)), ext, suite)

    taken = set(t_r.columns)
    s_out_cols = tuple(c if c not in taken else f"s_{c}" for c in t_s.columns)
    out_columns = t_r.columns + s_out_cols

    r_idx = t_r.column_index(r_attr)
    out_rows = []
    for r_row in t_r.rows:
        payload = result.matches.get(r_row[r_idx])
        if payload is None:
            continue
        for s_row in deserialize_rows(payload):
            out_rows.append(r_row + s_row)
    joined = Table(out_columns, out_rows, name="private_join")
    return joined, result
