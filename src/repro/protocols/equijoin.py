"""The equijoin protocol (Section 4.3).

Extends the intersection protocol so that R additionally obtains
``ext(v)`` - S's records joining on ``v`` - for every ``v`` in the
intersection, while still learning nothing about ``ext(v)`` for
``v ∈ V_S − V_R`` (Statements 3 and 4).

S uses *two* keys: ``e_S`` for the match codewords and ``e'_S`` to
derive the per-value ext-encryption key ``κ(v) = f_{e'_S}(h(v))``.
R recovers ``κ(v)`` only for its own values by stripping its own
encryption: ``f_eR^{-1}(f_{e'_S}(f_eR(h(v)))) = f_{e'_S}(h(v))``.

The module offers two levels:

* :func:`run_equijoin` - the raw protocol on value sets plus an
  ``ext`` byte-payload map (exactly the paper's objects);
* :func:`join_tables` - a convenience wrapper joining two
  :class:`~repro.db.table.Table` relations, serializing S's record
  groups into ``ext(v)`` and materializing the joined table at R.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from ..db.table import Table
from ..net import serialization
from ..net.runner import ProtocolRun
from .base import EquijoinResult, ProtocolSuite, sorted_ciphertexts

__all__ = ["run_equijoin", "join_tables"]


def run_equijoin(
    v_r: Sequence[Hashable],
    ext_s: Mapping[Hashable, bytes],
    suite: ProtocolSuite | None = None,
) -> EquijoinResult:
    """Execute the Section 4.3 protocol.

    Args:
        v_r: R's value set.
        ext_s: S's side as a map ``v -> ext(v)`` (the values are
            ``V_S``, the payloads the joined extra information).
        suite: agreed parameters; fresh 1024-bit default when omitted.
    """
    suite = suite or ProtocolSuite.default()
    run = ProtocolRun(protocol="equijoin")

    r_values = sorted(set(v_r), key=repr)
    s_values = sorted(ext_s, key=repr)

    # Step 1 - hash both sets; R picks e_R, S picks e_S and e'_S.
    x_r = suite.hash_side("R", r_values)
    x_s = suite.hash_side("S", s_values)
    e_r = suite.cipher.sample_key(suite.rng_r)
    e_s = suite.cipher.sample_key(suite.rng_s)
    e_s_prime = suite.cipher.sample_key(suite.rng_s)

    # Step 2 - R encrypts its hashed set.
    y_r_by_value = {v: suite.cipher.encrypt(e_r, x) for v, x in zip(r_values, x_r)}

    # Step 3 - R ships Y_R reordered lexicographically.
    y_r_received = run.to_s("3:Y_R", sorted_ciphertexts(list(y_r_by_value.values())))

    # Step 4 - S returns 3-tuples <y, f_eS(y), f_e'S(y)> for y in Y_R.
    triples = [
        (y, suite.cipher.encrypt(e_s, y), suite.cipher.encrypt(e_s_prime, y))
        for y in y_r_received
    ]
    triples_received = run.to_r("4:triples", triples)

    # Step 5 - for each v in V_S, S forms <f_eS(h(v)), K(f_e'S(h(v)), ext(v))>
    # and ships the pairs in lexicographical order.
    pairs = []
    for v, x in zip(s_values, x_s):
        codeword = suite.cipher.encrypt(e_s, x)          # 5(a)
        kappa = suite.cipher.encrypt(e_s_prime, x)       # 5(b)
        ciphertext = suite.ext_cipher.encrypt(kappa, bytes(ext_s[v]))  # 5(c)
        pairs.append((codeword, ciphertext))             # 5(d)
    pairs_received = run.to_r("5:pairs", sorted(pairs))

    # Step 6 - R strips its own encryption from both S-encrypted entries
    # of each triple, obtaining <h(v), f_eS(h(v)), f_e'S(h(v))> keyed by
    # its own value v (recovered through y).
    y_to_value = {y: v for v, y in y_r_by_value.items()}
    e_r_inverse = suite.cipher.invert_key(e_r)
    by_codeword: dict[int, tuple[Hashable, int]] = {}
    for y, second, third in triples_received:
        v = y_to_value.get(y)
        if v is None:
            continue  # semi-honest S never injects unknown y's
        codeword = suite.cipher.encrypt(e_r_inverse, second)  # f_eS(h(v))
        kappa = suite.cipher.encrypt(e_r_inverse, third)      # f_e'S(h(v))
        by_codeword[codeword] = (v, kappa)

    # Step 7 - R matches the step-5 pairs on the codeword and decrypts
    # ext(v) with κ(v); the matched v's form the intersection.
    matches: dict[Hashable, bytes] = {}
    for codeword, ciphertext in pairs_received:
        hit = by_codeword.get(codeword)
        if hit is None:
            continue
        v, kappa = hit
        matches[v] = suite.ext_cipher.decrypt(kappa, ciphertext)

    run.finish()
    # Step 8 (computing T_S ⋈ T_R from ext) is the caller's job; see
    # join_tables() for the table-level wrapper.
    return EquijoinResult(
        intersection=set(matches),
        matches=matches,
        size_v_s=len(pairs_received),
        size_v_r=len(y_r_received),
        run=run,
    )


def serialize_rows(rows: Sequence[tuple]) -> bytes:
    """Encode a group of S-records as one ``ext(v)`` payload."""
    return serialization.encode([list(row) for row in rows])


def deserialize_rows(payload: bytes) -> list[tuple]:
    """Inverse of :func:`serialize_rows`."""
    return [tuple(row) for row in serialization.decode(payload)]


def join_tables(
    t_r: Table,
    t_s: Table,
    r_attr: str,
    s_attr: str | None = None,
    suite: ProtocolSuite | None = None,
) -> tuple[Table, EquijoinResult]:
    """Privately compute ``T_S ⋈ T_R`` and materialize it at R.

    R contributes the distinct values of ``T_R.r_attr``; S contributes
    ``ext(v)`` = its records grouped by ``T_S.s_attr``. The returned
    table has R's columns followed by S's (renamed on collision),
    mirroring the plaintext :func:`repro.db.engine.equijoin` so results
    can be compared directly.
    """
    s_attr = s_attr or r_attr
    ext = {
        v: serialize_rows(rows) for v, rows in t_s.group_rows_by(s_attr).items()
    }
    result = run_equijoin(list(t_r.distinct_values(r_attr)), ext, suite)

    taken = set(t_r.columns)
    s_out_cols = tuple(c if c not in taken else f"s_{c}" for c in t_s.columns)
    out_columns = t_r.columns + s_out_cols

    r_idx = t_r.column_index(r_attr)
    out_rows = []
    for r_row in t_r.rows:
        payload = result.matches.get(r_row[r_idx])
        if payload is None:
            continue
        for s_row in deserialize_rows(payload):
            out_rows.append(r_row + s_row)
    joined = Table(out_columns, out_rows, name="private_join")
    return joined, result
