"""Declarative protocol specs: each paper protocol as a round schedule.

The paper's four operations (intersection, equijoin, intersection
size, equijoin size) - plus the equijoin-sum aggregate - are all
instances of one commutative-encryption round pattern.  This module
captures that pattern as *data*: a :class:`ProtocolSpec` names the
rounds, types each round's payload (a dataclass from
:mod:`repro.protocols.messages`), and binds per-role step functions
over the concrete party states in :mod:`repro.protocols.parties`.

A single pair of interpreters
(:class:`~repro.protocols.parties.SenderMachine` /
:class:`~repro.protocols.parties.ReceiverMachine`) executes any spec,
and every transport - the in-memory runner, plain TCP, resumable
sessions, the CLI - dispatches through the :data:`PROTOCOLS` registry.
Adding a protocol to the stack is now a registry entry, not five
layers of bespoke plumbing; ``equijoin-sum`` is registered here purely
that way and is reachable over TCP with no transport code of its own.

Round naming is load-bearing: the metrics recorder derives its phase
names from the round names (``s.wait_m1``, ``r.wait_m2``...), and the
per-part transcript labels (``"3:Y_R"``, ``"4a:Y_S"``...) are the
paper's step numbers, pinned by the golden-transcript fixture and the
simulator audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from .messages import (
    BlindedSum,
    CipherList,
    EquijoinReply,
    IntersectionReply,
    Message,
    RevealedSum,
    SizeReply,
    SumReply,
)
from .parties import (
    EquijoinReceiver,
    EquijoinSender,
    EquijoinSizeReceiver,
    EquijoinSizeSender,
    EquijoinSumReceiver,
    EquijoinSumSender,
    IntersectionReceiver,
    IntersectionSender,
    IntersectionSizeReceiver,
    IntersectionSizeSender,
)

__all__ = [
    "RoundSpec",
    "ProtocolSpec",
    "PROTOCOLS",
    "register",
    "get_spec",
]


@dataclass(frozen=True)
class RoundSpec:
    """One named round of a protocol.

    Attributes:
        name: wire-level round name (``"m1"``...); also the inbox key
            and the stem of the recorder phase names.
        source: which role emits the round - ``"R"`` or ``"S"``.
        message: the typed payload class for this round.
        step: ``step(state, inbox) -> message`` computed by the
            emitting party; ``inbox`` maps prior round names to their
            typed messages.
        parts: per-part transcript labels (the paper's step numbers),
            one per message field, in wire order.
    """

    name: str
    source: str
    message: type[Message]
    step: Callable[[Any, Mapping[str, Message]], Message]
    parts: tuple[str, ...]


@dataclass(frozen=True)
class ProtocolSpec:
    """A protocol as data: round schedule plus party factories.

    Attributes:
        name: registry key and CLI name (``"intersection-size"``...).
        run_label: label for :class:`~repro.net.runner.ProtocolRun`
            and recorded views (historically underscored).
        rounds: the ordered round schedule.
        make_receiver: ``(data, params, rng, *, engine=, crypto=, ...)``
            building party R's state.
        make_sender: same, for party S.
        finish: ``finish(receiver_state, inbox) -> answer``.
        sender_input: which CLI reader feeds S - ``"values"``,
            ``"ext"`` or ``"amounts"``.
        answer_kind: how the CLI prints R's answer - ``"set"``,
            ``"ext-map"`` or ``"number"``.
        doc: one-line description (paper section) for ``--help``.
    """

    name: str
    run_label: str
    rounds: tuple[RoundSpec, ...]
    make_receiver: Callable[..., Any]
    make_sender: Callable[..., Any]
    finish: Callable[[Any, Mapping[str, Message]], Any]
    sender_input: str = "values"
    answer_kind: str = "number"
    doc: str = ""

    @property
    def receiver_rounds(self) -> tuple[RoundSpec, ...]:
        """The rounds party R emits, in order."""
        return tuple(r for r in self.rounds if r.source == "R")

    @property
    def sender_rounds(self) -> tuple[RoundSpec, ...]:
        """The rounds party S emits, in order."""
        return tuple(r for r in self.rounds if r.source == "S")

    def part_labels(self) -> tuple[str, ...]:
        """All transcript part labels across the schedule, in order."""
        return tuple(label for rnd in self.rounds for label in rnd.parts)


#: Registered protocol specs, keyed by CLI/registry name.
PROTOCOLS: dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec) -> ProtocolSpec:
    """Add a spec to :data:`PROTOCOLS`; returns it for assignment."""
    PROTOCOLS[spec.name] = spec
    return spec


def get_spec(protocol: str | ProtocolSpec) -> ProtocolSpec:
    """Resolve a registry name (or pass a spec through).

    Raises:
        ValueError: for a name no spec is registered under - raised
            locally, before any network activity.
    """
    if isinstance(protocol, ProtocolSpec):
        return protocol
    try:
        return PROTOCOLS[protocol]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise ValueError(
            f"unknown protocol {protocol!r} (expected one of: {known})"
        ) from None


def _receiver_round1(state: Any, inbox: Mapping[str, Message]) -> Message:
    """R's opening round: its encrypted (reordered) set."""
    return state.round1()


def _sender_round1(state: Any, inbox: Mapping[str, Message]) -> Message:
    """S's reply to ``m1``."""
    return state.round1(inbox["m1"])


def _receiver_round2(state: Any, inbox: Mapping[str, Message]) -> Message:
    """R's second round (aggregates), computed from S's ``m2``."""
    return state.round2(inbox["m2"])


def _sender_round2(state: Any, inbox: Mapping[str, Message]) -> Message:
    """S's second round (aggregates), computed from R's ``m3``."""
    return state.round2(inbox["m3"])


def _finish_m2(state: Any, inbox: Mapping[str, Message]) -> Any:
    """Two-round protocols: the answer comes out of S's ``m2``."""
    return state.finish(inbox["m2"])


def _finish_m4(state: Any, inbox: Mapping[str, Message]) -> Any:
    """Four-round protocols: the answer comes out of S's ``m4``."""
    return state.finish(inbox["m4"])


INTERSECTION = register(
    ProtocolSpec(
        name="intersection",
        run_label="intersection",
        rounds=(
            RoundSpec("m1", "R", CipherList, _receiver_round1, ("3:Y_R",)),
            RoundSpec(
                "m2", "S", IntersectionReply, _sender_round1,
                ("4a:Y_S", "4b:pairs"),
            ),
        ),
        make_receiver=IntersectionReceiver,
        make_sender=IntersectionSender,
        finish=_finish_m2,
        sender_input="values",
        answer_kind="set",
        doc="set intersection (Section 3.3)",
    )
)

INTERSECTION_SIZE = register(
    ProtocolSpec(
        name="intersection-size",
        run_label="intersection_size",
        rounds=(
            RoundSpec("m1", "R", CipherList, _receiver_round1, ("3:Y_R",)),
            RoundSpec(
                "m2", "S", SizeReply, _sender_round1, ("4a:Y_S", "4b:Z_R"),
            ),
        ),
        make_receiver=IntersectionSizeReceiver,
        make_sender=IntersectionSizeSender,
        finish=_finish_m2,
        sender_input="values",
        answer_kind="number",
        doc="intersection size only (Section 5.1)",
    )
)

EQUIJOIN = register(
    ProtocolSpec(
        name="equijoin",
        run_label="equijoin",
        rounds=(
            RoundSpec("m1", "R", CipherList, _receiver_round1, ("3:Y_R",)),
            RoundSpec(
                "m2", "S", EquijoinReply, _sender_round1,
                ("4:triples", "5:pairs"),
            ),
        ),
        make_receiver=EquijoinReceiver,
        make_sender=EquijoinSender,
        finish=_finish_m2,
        sender_input="ext",
        answer_kind="ext-map",
        doc="equijoin with encrypted ext payloads (Section 4.3)",
    )
)

EQUIJOIN_SIZE = register(
    ProtocolSpec(
        name="equijoin-size",
        run_label="equijoin_size",
        rounds=(
            RoundSpec("m1", "R", CipherList, _receiver_round1, ("3:Y_R",)),
            RoundSpec(
                "m2", "S", SizeReply, _sender_round1, ("4a:Y_S", "4b:Z_R"),
            ),
        ),
        make_receiver=EquijoinSizeReceiver,
        make_sender=EquijoinSizeSender,
        finish=_finish_m2,
        sender_input="values",
        answer_kind="number",
        doc="equijoin size over multisets (Section 5.2)",
    )
)

EQUIJOIN_SUM = register(
    ProtocolSpec(
        name="equijoin-sum",
        run_label="equijoin_sum",
        rounds=(
            RoundSpec("m1", "R", CipherList, _receiver_round1, ("1:Y_R",)),
            RoundSpec(
                "m2", "S", SumReply, _sender_round1, ("2:Z_R+pk", "3:pairs"),
            ),
            RoundSpec("m3", "R", BlindedSum, _receiver_round2, ("4:blinded",)),
            RoundSpec(
                "m4", "S", RevealedSum, _sender_round2, ("5:blinded_sum",),
            ),
        ),
        make_receiver=EquijoinSumReceiver,
        make_sender=EquijoinSumSender,
        finish=_finish_m4,
        sender_input="amounts",
        answer_kind="number",
        doc="sum over the intersection (aggregate; paper future work)",
    )
)
