"""Declarative protocol specs: each paper protocol as a round schedule.

The paper's four operations (intersection, equijoin, intersection
size, equijoin size) - plus the equijoin-sum aggregate - are all
instances of one commutative-encryption round pattern.  This module
captures that pattern as *data*: a :class:`ProtocolSpec` names the
rounds, types each round's payload (a dataclass from
:mod:`repro.protocols.messages`), and binds per-role step functions
over the concrete party states in :mod:`repro.protocols.parties`.

A single pair of interpreters
(:class:`~repro.protocols.parties.SenderMachine` /
:class:`~repro.protocols.parties.ReceiverMachine`) executes any spec,
and every transport - the in-memory runner, plain TCP, resumable
sessions, the CLI - dispatches through the :data:`PROTOCOLS` registry.
Adding a protocol to the stack is now a registry entry, not five
layers of bespoke plumbing; ``equijoin-sum`` is registered here purely
that way and is reachable over TCP with no transport code of its own.

Round naming is load-bearing: the metrics recorder derives its phase
names from the round names (``s.wait_m1``, ``r.wait_m2``...), and the
per-part transcript labels (``"3:Y_R"``, ``"4a:Y_S"``...) are the
paper's step numbers, pinned by the golden-transcript fixture and the
simulator audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

from .base import sorted_ciphertexts
from .messages import (
    BlindedSum,
    CipherList,
    EquijoinReply,
    IntersectionReply,
    Message,
    RevealedSum,
    SizeReply,
    SumReply,
)
from .parties import (
    EquijoinReceiver,
    EquijoinSender,
    EquijoinSizeReceiver,
    EquijoinSizeSender,
    EquijoinSumReceiver,
    EquijoinSumSender,
    IntersectionReceiver,
    IntersectionSender,
    IntersectionSizeReceiver,
    IntersectionSizeSender,
)

__all__ = [
    "RoundSpec",
    "ProtocolSpec",
    "PROTOCOLS",
    "register",
    "get_spec",
]


@dataclass(frozen=True)
class RoundSpec:
    """One named round of a protocol.

    Attributes:
        name: wire-level round name (``"m1"``...); also the inbox key
            and the stem of the recorder phase names.
        source: which role emits the round - ``"R"`` or ``"S"``.
        message: the typed payload class for this round.
        step: ``step(state, inbox) -> message`` computed by the
            emitting party; ``inbox`` maps prior round names to their
            typed messages.
        parts: per-part transcript labels (the paper's step numbers),
            one per message field, in wire order.
        chunkable: whether this round's payload may be streamed as
            fixed-size chunks. The logical payload is unchanged - a
            chunked transmission reassembles to byte-identical wire
            form - so only rounds whose payload scales with a set size
            opt in.
        chunk_step: optional streaming producer
            ``chunk_step(state, inbox, chunk_size) -> iterator of
            (part_index, kind, body)`` chunk payloads. When present,
            the interpreters drive it instead of ``step`` on chunked
            runs, so crypto for chunk *k+1* can overlap the transmission
            of chunk *k*. It must reproduce ``step``'s message and state
            side effects exactly (the golden-transcript suite pins
            this); rounds without one fall back to computing the full
            message and splitting it.
    """

    name: str
    source: str
    message: type[Message]
    step: Callable[[Any, Mapping[str, Message]], Message]
    parts: tuple[str, ...]
    chunkable: bool = False
    chunk_step: Callable[[Any, Mapping[str, Message], int], Iterator[tuple]] | None = None


@dataclass(frozen=True)
class ProtocolSpec:
    """A protocol as data: round schedule plus party factories.

    Attributes:
        name: registry key and CLI name (``"intersection-size"``...).
        run_label: label for :class:`~repro.net.runner.ProtocolRun`
            and recorded views (historically underscored).
        rounds: the ordered round schedule.
        make_receiver: ``(data, params, rng, *, engine=, crypto=, ...)``
            building party R's state.
        make_sender: same, for party S.
        finish: ``finish(receiver_state, inbox) -> answer``.
        sender_input: which CLI reader feeds S - ``"values"``,
            ``"ext"`` or ``"amounts"``.
        answer_kind: how the CLI prints R's answer - ``"set"``,
            ``"ext-map"`` or ``"number"``.
        doc: one-line description (paper section) for ``--help``.
        delta_of: for incremental schedules, the base protocol's
            registry name. Delta specs take a
            :class:`~repro.protocols.delta.DeltaExchange` as ``data``
            rather than raw values, so surfaces that feed raw inputs
            (the CLI ``--protocol`` choices, the one-shot facade)
            filter on this field; ``None`` for the full protocols.
    """

    name: str
    run_label: str
    rounds: tuple[RoundSpec, ...]
    make_receiver: Callable[..., Any]
    make_sender: Callable[..., Any]
    finish: Callable[[Any, Mapping[str, Message]], Any]
    sender_input: str = "values"
    answer_kind: str = "number"
    doc: str = ""
    delta_of: str | None = None

    @property
    def receiver_rounds(self) -> tuple[RoundSpec, ...]:
        """The rounds party R emits, in order."""
        return tuple(r for r in self.rounds if r.source == "R")

    @property
    def sender_rounds(self) -> tuple[RoundSpec, ...]:
        """The rounds party S emits, in order."""
        return tuple(r for r in self.rounds if r.source == "S")

    def part_labels(self) -> tuple[str, ...]:
        """All transcript part labels across the schedule, in order."""
        return tuple(label for rnd in self.rounds for label in rnd.parts)


#: Registered protocol specs, keyed by CLI/registry name.
PROTOCOLS: dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec) -> ProtocolSpec:
    """Add a spec to :data:`PROTOCOLS`; returns it for assignment."""
    PROTOCOLS[spec.name] = spec
    return spec


def get_spec(protocol: str | ProtocolSpec) -> ProtocolSpec:
    """Resolve a registry name (or pass a spec through).

    Raises:
        ValueError: for a name no spec is registered under - raised
            locally, before any network activity.
    """
    if isinstance(protocol, ProtocolSpec):
        return protocol
    try:
        return PROTOCOLS[protocol]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise ValueError(
            f"unknown protocol {protocol!r} (expected one of: {known})"
        ) from None


def _receiver_round1(state: Any, inbox: Mapping[str, Message]) -> Message:
    """R's opening round: its encrypted (reordered) set."""
    return state.round1()


def _sender_round1(state: Any, inbox: Mapping[str, Message]) -> Message:
    """S's reply to ``m1``."""
    return state.round1(inbox["m1"])


def _receiver_round2(state: Any, inbox: Mapping[str, Message]) -> Message:
    """R's second round (aggregates), computed from S's ``m2``."""
    return state.round2(inbox["m2"])


def _sender_round2(state: Any, inbox: Mapping[str, Message]) -> Message:
    """S's second round (aggregates), computed from R's ``m3``."""
    return state.round2(inbox["m3"])


def _finish_m2(state: Any, inbox: Mapping[str, Message]) -> Any:
    """Two-round protocols: the answer comes out of S's ``m2``."""
    return state.finish(inbox["m2"])


def _finish_m4(state: Any, inbox: Mapping[str, Message]) -> Any:
    """Four-round protocols: the answer comes out of S's ``m4``."""
    return state.finish(inbox["m4"])


# ----------------------------------------------------------------------
# Streaming chunk producers
#
# Each reproduces its round's ``step`` byte-for-byte (same crypto calls
# on the same inputs - the ciphers are deterministic) while yielding
# the payload as chunk streams, so the transport can ship chunk k while
# the CryptoEngine is still exponentiating chunk k+1. Sorted parts
# (``sorted_ciphertexts``) cannot *emit* before all their crypto is
# done - a privacy requirement, the reorder is what unlinks ciphertexts
# from the inbound order - so their modexp is instead interleaved with
# the emission of earlier parts.
# ----------------------------------------------------------------------
def _segments(items: list, chunk_size: int) -> Iterator[list]:
    """Slices of at most ``chunk_size``; an empty list yields one empty
    segment (every part contributes at least one chunk)."""
    if not items:
        yield []
        return
    for start in range(0, len(items), chunk_size):
        yield items[start : start + chunk_size]


def _size_reply_chunks(
    state: Any, y_s: list, y_r: list, chunk_size: int
) -> Iterator[tuple]:
    """Stream a :class:`SizeReply`: ``y_s`` segments first, with one
    chunk of ``Z_R``'s encryption cranked between each emission so the
    expensive modexp overlaps the wire instead of following it."""
    pending = [y_r[i : i + chunk_size] for i in range(0, len(y_r), chunk_size)]
    z_parts: list = []

    def crank() -> None:
        if pending:
            z_parts.extend(state.cipher.encrypt_many(state._key, pending.pop(0)))

    for segment in _segments(y_s, chunk_size):
        yield (0, "seg", segment)
        crank()
    while pending:
        crank()
    for segment in _segments(sorted_ciphertexts(z_parts), chunk_size):
        yield (1, "seg", segment)


def _intersection_m2_chunks(
    state: Any, inbox: Mapping[str, Message], chunk_size: int
) -> Iterator[tuple]:
    """Stream S's :class:`IntersectionReply`: the sorted ``Y_S`` part,
    then the ``⟨y, f_eS(y)⟩`` pairs encrypted chunk-by-chunk in ``Y_R``
    order - each pairs chunk's modexp overlaps its predecessor's
    transmission."""
    y_r = list(CipherList.coerce(inbox["m1"]))
    state.size_v_r = len(y_r)
    y_s = sorted_ciphertexts(state.cipher.encrypt_many(state._key, state._hashes))
    for segment in _segments(y_s, chunk_size):
        yield (0, "seg", segment)
    for segment in _segments(y_r, chunk_size):
        encrypted = state.cipher.encrypt_many(state._key, segment)
        yield (1, "seg", list(zip(segment, encrypted)))


def _intersection_size_m2_chunks(
    state: Any, inbox: Mapping[str, Message], chunk_size: int
) -> Iterator[tuple]:
    y_r = list(CipherList.coerce(inbox["m1"]))
    state.size_v_r = len(y_r)
    y_s = sorted_ciphertexts(state.cipher.encrypt_many(state._key, state._hashes))
    yield from _size_reply_chunks(state, y_s, y_r, chunk_size)


def _equijoin_size_m2_chunks(
    state: Any, inbox: Mapping[str, Message], chunk_size: int
) -> Iterator[tuple]:
    y_r = list(CipherList.coerce(inbox["m1"]))
    state.size_v_r = len(y_r)
    state._y_r_received = y_r
    y_s = sorted_ciphertexts(list(state._y_multiset))
    yield from _size_reply_chunks(state, y_s, y_r, chunk_size)


def _equijoin_m2_chunks(
    state: Any, inbox: Mapping[str, Message], chunk_size: int
) -> Iterator[tuple]:
    """Stream S's :class:`EquijoinReply`: triples chunk-by-chunk over
    ``Y_R`` (three modexp batches per chunk, overlapping the wire),
    then the sorted codeword pairs."""
    y_r = list(CipherList.coerce(inbox["m1"]))
    state.size_v_r = len(y_r)
    for segment in _segments(y_r, chunk_size):
        second = state.cipher.encrypt_many(state._key, segment)
        third = state.cipher.encrypt_many(state._key_prime, segment)
        yield (0, "seg", list(zip(segment, second, third)))
    codewords = state.cipher.encrypt_many(state._key, state._hashes)
    kappas = state.cipher.encrypt_many(state._key_prime, state._hashes)
    pairs = sorted(
        (codeword, state._ext_cipher.encrypt(kappa, state.ext[v]))
        for v, codeword, kappa in zip(state.values, codewords, kappas)
    )
    for segment in _segments(pairs, chunk_size):
        yield (1, "seg", segment)


INTERSECTION = register(
    ProtocolSpec(
        name="intersection",
        run_label="intersection",
        rounds=(
            RoundSpec(
                "m1", "R", CipherList, _receiver_round1, ("3:Y_R",),
                chunkable=True,
            ),
            RoundSpec(
                "m2", "S", IntersectionReply, _sender_round1,
                ("4a:Y_S", "4b:pairs"),
                chunkable=True, chunk_step=_intersection_m2_chunks,
            ),
        ),
        make_receiver=IntersectionReceiver,
        make_sender=IntersectionSender,
        finish=_finish_m2,
        sender_input="values",
        answer_kind="set",
        doc="set intersection (Section 3.3)",
    )
)

INTERSECTION_SIZE = register(
    ProtocolSpec(
        name="intersection-size",
        run_label="intersection_size",
        rounds=(
            RoundSpec(
                "m1", "R", CipherList, _receiver_round1, ("3:Y_R",),
                chunkable=True,
            ),
            RoundSpec(
                "m2", "S", SizeReply, _sender_round1, ("4a:Y_S", "4b:Z_R"),
                chunkable=True, chunk_step=_intersection_size_m2_chunks,
            ),
        ),
        make_receiver=IntersectionSizeReceiver,
        make_sender=IntersectionSizeSender,
        finish=_finish_m2,
        sender_input="values",
        answer_kind="number",
        doc="intersection size only (Section 5.1)",
    )
)

EQUIJOIN = register(
    ProtocolSpec(
        name="equijoin",
        run_label="equijoin",
        rounds=(
            RoundSpec(
                "m1", "R", CipherList, _receiver_round1, ("3:Y_R",),
                chunkable=True,
            ),
            RoundSpec(
                "m2", "S", EquijoinReply, _sender_round1,
                ("4:triples", "5:pairs"),
                chunkable=True, chunk_step=_equijoin_m2_chunks,
            ),
        ),
        make_receiver=EquijoinReceiver,
        make_sender=EquijoinSender,
        finish=_finish_m2,
        sender_input="ext",
        answer_kind="ext-map",
        doc="equijoin with encrypted ext payloads (Section 4.3)",
    )
)

EQUIJOIN_SIZE = register(
    ProtocolSpec(
        name="equijoin-size",
        run_label="equijoin_size",
        rounds=(
            RoundSpec(
                "m1", "R", CipherList, _receiver_round1, ("3:Y_R",),
                chunkable=True,
            ),
            RoundSpec(
                "m2", "S", SizeReply, _sender_round1, ("4a:Y_S", "4b:Z_R"),
                chunkable=True, chunk_step=_equijoin_size_m2_chunks,
            ),
        ),
        make_receiver=EquijoinSizeReceiver,
        make_sender=EquijoinSizeSender,
        finish=_finish_m2,
        sender_input="values",
        answer_kind="number",
        doc="equijoin size over multisets (Section 5.2)",
    )
)

EQUIJOIN_SUM = register(
    ProtocolSpec(
        name="equijoin-sum",
        run_label="equijoin_sum",
        rounds=(
            RoundSpec(
                "m1", "R", CipherList, _receiver_round1, ("1:Y_R",),
                chunkable=True,
            ),
            # m2 draws Paillier randomness in step order, so it has no
            # incremental chunk_step: the full reply is computed (rng
            # draw order preserved) and then split for the wire.
            RoundSpec(
                "m2", "S", SumReply, _sender_round1, ("2:Z_R+pk", "3:pairs"),
                chunkable=True,
            ),
            RoundSpec("m3", "R", BlindedSum, _receiver_round2, ("4:blinded",)),
            RoundSpec(
                "m4", "S", RevealedSum, _sender_round2, ("5:blinded_sum",),
            ),
        ),
        make_receiver=EquijoinSumReceiver,
        make_sender=EquijoinSumSender,
        finish=_finish_m4,
        sender_input="amounts",
        answer_kind="number",
        doc="sum over the intersection (aggregate; paper future work)",
    )
)


# The incremental (delta) schedules in delta.py register themselves on
# import; importing here ensures every get_spec() caller can resolve
# "<name>+delta" names.  The import sits at module bottom because
# delta.py needs this module's classes and step helpers (a benign
# cycle: whichever module is imported first finishes the other).
from . import delta as _delta  # noqa: E402,F401
