"""Executable fragments of the security proofs (Lemmas 1-4).

Computational indistinguishability cannot be verified by running code,
but each proof in the paper is built from *reductions* whose
correctness rests on concrete algebraic identities - and those can be
executed and checked:

* Lemma 1's reduction turns a DDH-style 4-tuple ``(x, f_e(x), y, u)``
  into the 2xm matrix by sampling keys ``e_i`` and setting
  ``x_i = f_{e_i}(x)``, ``z_i = f_{e_i}(f_e(x))``; its validity needs
  ``f_{e_i}(f_e(x)) == f_e(f_{e_i}(x))`` - commutativity applied
  inside the reduction. :func:`lemma1_reduction` builds the matrix and
  :func:`check_lemma1_identity` verifies the identity row by row.
* Lemma 2 telescopes Lemma 1 across columns; the executable content is
  that the "real" matrix really is ``(x_i, f_e(x_i))`` columns -
  :func:`build_real_matrix` / :func:`build_hybrid_matrix` produce the
  distributions ``D^n_n`` and ``D^n_m`` the proof interpolates between.
* Lemma 4's function ``Q(M)`` maps a 3xn matrix to the 4xn matrix of
  the join proof by appending ``K(z_i, c_i)``; :func:`lemma4_q` applies
  it and the tests confirm both claimed images (real view from ``D_1``,
  simulated view from ``D_2``).

These functions double as teaching artifacts: they are the proofs'
constructions, typed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..crypto.commutative import PowerCipher
from ..crypto.ext_cipher import ExtCipher
from ..crypto.groups import QRGroup

__all__ = [
    "TupleMatrix",
    "lemma1_reduction",
    "check_lemma1_identity",
    "build_real_matrix",
    "build_hybrid_matrix",
    "lemma4_q",
]


@dataclass(frozen=True)
class TupleMatrix:
    """A 2xm matrix ``(x_1..x_m ; z_1..z_m)`` as used by Lemmas 1-2."""

    top: tuple[int, ...]
    bottom: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.top) != len(self.bottom):
            raise ValueError("matrix rows must have equal length")

    @property
    def m(self) -> int:
        return len(self.top)


def lemma1_reduction(
    group: QRGroup,
    x: int,
    fe_x: int,
    y: int,
    u: int,
    m: int,
    rng: random.Random,
) -> TupleMatrix:
    """The proof-of-Lemma-1 algorithm, literally.

    Given the challenge 4-tuple ``(x, f_e(x), y, u)`` - where ``u`` is
    either ``f_e(y)`` or random - produce the 2xm matrix whose
    distribution is ``D_m`` when ``u = f_e(y)`` and ``D_{m-1}``
    otherwise:

        for i in 1..m-1: x_i = f_{e_i}(x), z_i = f_{e_i}(f_e(x))
        x_m = y, z_m = u
    """
    cipher = PowerCipher(group)
    top, bottom = [], []
    for _ in range(m - 1):
        e_i = cipher.sample_key(rng)
        top.append(cipher.encrypt(e_i, x))
        bottom.append(cipher.encrypt(e_i, fe_x))
    top.append(y)
    bottom.append(u)
    return TupleMatrix(top=tuple(top), bottom=tuple(bottom))


def check_lemma1_identity(
    group: QRGroup, e: int, matrix: TupleMatrix, skip_last: bool = True
) -> bool:
    """Verify ``z_i == f_e(x_i)`` for the constructed columns.

    This is the identity the reduction's validity rests on:
    ``f_{e_i}(f_e(x)) = f_e(f_{e_i}(x))`` (commutativity), which makes
    every constructed column a genuine ``(x_i, f_e(x_i))`` pair.
    """
    cipher = PowerCipher(group)
    columns = range(matrix.m - 1 if skip_last else matrix.m)
    return all(
        matrix.bottom[i] == cipher.encrypt(e, matrix.top[i]) for i in columns
    )


def build_real_matrix(
    group: QRGroup, e: int, m: int, rng: random.Random
) -> TupleMatrix:
    """``D^m_m`` of Lemma 2: random ``x_i`` with ``z_i = f_e(x_i)``."""
    cipher = PowerCipher(group)
    top = tuple(group.random_element(rng) for _ in range(m))
    bottom = tuple(cipher.encrypt(e, x) for x in top)
    return TupleMatrix(top=top, bottom=bottom)


def build_hybrid_matrix(
    group: QRGroup, e: int, n: int, m: int, rng: random.Random
) -> TupleMatrix:
    """``D^n_m`` of Lemma 2: first ``m`` columns encrypted, rest random."""
    if not 0 <= m <= n:
        raise ValueError("need 0 <= m <= n")
    cipher = PowerCipher(group)
    top = tuple(group.random_element(rng) for _ in range(n))
    bottom = tuple(
        cipher.encrypt(e, top[i]) if i < m else group.random_element(rng)
        for i in range(n)
    )
    return TupleMatrix(top=top, bottom=bottom)


def lemma4_q(
    matrix_3xn: tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]],
    payloads: list[bytes],
    t: int,
    ext_cipher: ExtCipher,
) -> tuple:
    """The proof-of-Lemma-4 function ``Q(M)``.

    Takes the 3xn matrix ``(x_i; y_i; z_i)`` of Lemma 3 and appends the
    fourth row ``κ_i = K(z_i, c_i)`` for ``i <= m``, blanking
    ``z_1..z_t`` exactly as the lemma's matrix does (positions
    corresponding to ``V_S − (V_S ∩ V_R)``).
    """
    xs, ys, zs = matrix_3xn
    m = len(payloads)
    if m > len(zs):
        raise ValueError("more payloads than columns")
    fourth = tuple(
        ext_cipher.encrypt(zs[i], payloads[i]) for i in range(m)
    )
    blanked_z = tuple(None if i < t else zs[i] for i in range(len(zs)))
    return (xs, ys, blanked_z, fourth)
