"""Equijoin-sum: a minimal-sharing aggregate (the paper's future work).

The conclusions ask for "protocols for other database operations such
as aggregations". This module contributes one, in the paper's own
style: ``R`` learns ``SUM(val_S(v))`` over ``v ∈ V_R ∩ V_S`` - e.g.
"total exposure across our common customers" - with a precisely
characterized disclosure.

Construction. Run the intersection-size flow (so matches are
*unlinkable* for R), but S attaches to each of its codewords a Paillier
encryption of the value under **S's own key**. R finds which
ciphertexts matched (without learning which of its values they belong
to), homomorphically sums them, blinds the sum with a uniform random
mask ρ, and returns one rerandomized ciphertext. S decrypts the blinded
sum and sends it back; R removes ρ.

Disclosure (declared in :class:`~repro.db.query.EquijoinSumQuery`):

* R learns the sum, the match count ``|V_S ∩ V_R|`` and ``|V_S|``;
* S learns ``|V_R|`` and the blinded sum (uniform modulo ``n``, hence
  nothing).

R never holds a decryption key, so individual values stay hidden; the
mask keeps the true sum from S. Both parties stay semi-honest, as
everywhere in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Mapping

from ..crypto.paillier import PaillierPublicKey, generate_keypair
from ..net.runner import ProtocolRun
from .base import ProtocolSuite, sorted_ciphertexts

__all__ = ["EquijoinSumResult", "run_equijoin_sum"]


@dataclass
class EquijoinSumResult:
    """Outcome of the equijoin-sum protocol."""

    total: int
    match_count: int
    size_v_s: int
    size_v_r: int
    run: ProtocolRun


def run_equijoin_sum(
    v_r,
    values_s: Mapping[Hashable, int],
    suite: ProtocolSuite | None = None,
    paillier_bits: int = 256,
) -> EquijoinSumResult:
    """R learns ``sum(values_s[v] for v in V_R ∩ V_S)`` and little else.

    Args:
        v_r: R's value set.
        values_s: S's side - a map from join value to the non-negative
            integer being aggregated (amount, count, exposure...).
        suite: agreed parameters.
        paillier_bits: S's Paillier modulus size (>= 2048 for real use).
    """
    suite = suite or ProtocolSuite.default()
    run = ProtocolRun(protocol="equijoin_sum")

    r_values = sorted(set(v_r), key=repr)
    s_values = sorted(values_s, key=repr)

    # Step 1 - hash both sets; R picks e_R, S picks e_S and a Paillier
    # keypair (sk stays at S).
    x_r = suite.hash_side("R", r_values)
    x_s = suite.hash_side("S", s_values)
    e_r = suite.cipher.sample_key(suite.rng_r)
    e_s = suite.cipher.sample_key(suite.rng_s)
    public, private = generate_keypair(paillier_bits, suite.rng_s)

    # Step 2 - R encrypts and ships Y_R, reordered (as in S5.1).
    y_r = suite.cipher.encrypt_many(e_r, x_r)
    y_r_received = run.to_s("1:Y_R", sorted_ciphertexts(y_r))

    # Step 3 - S returns Z_R = f_eS(Y_R), reordered and *unpaired*
    # (the unlinkability device of the intersection-size protocol),
    # plus its Paillier public key.
    z_r = sorted_ciphertexts(suite.cipher.encrypt_many(e_s, y_r_received))
    z_r_received, n_modulus = run.to_r(
        "2:Z_R+pk", (z_r, public.n)
    )
    pk = PaillierPublicKey(n_modulus)

    # Step 4 - S ships pairs <f_eS(h(v)), Enc_pkS(val(v))>, reordered.
    pairs = []
    for v, x in zip(s_values, x_s):
        codeword = suite.cipher.encrypt(e_s, x)
        amount = int(values_s[v])
        if amount < 0:
            raise ValueError("aggregated values must be non-negative")
        pairs.append((codeword, public.encrypt(amount, suite.rng_s)))
    pairs_received = run.to_r("3:pairs", sorted(pairs))

    # Step 5 - R applies f_eR to each pair's codeword; matches against
    # the unlinkable Z_R; homomorphically sums the matched ciphertexts
    # and blinds with a uniform mask.
    z_r_set = set(z_r_received)
    matched = [
        ciphertext
        for codeword, ciphertext in pairs_received
        if suite.cipher.encrypt(e_r, codeword) in z_r_set
    ]
    accumulator = pk.encrypt_zero(suite.rng_r)
    for ciphertext in matched:
        accumulator = pk.add(accumulator, ciphertext)
    mask = suite.rng_r.randrange(pk.n)
    blinded = pk.add_plain(accumulator, mask, suite.rng_r)

    # Step 6 - R -> S: one rerandomized blinded ciphertext; S decrypts.
    blinded_received = run.to_s("4:blinded", blinded)
    blinded_sum = private.decrypt(blinded_received)

    # Step 7 - S -> R: the blinded plaintext; R removes the mask.
    revealed = run.to_r("5:blinded_sum", blinded_sum)
    total = (revealed - mask) % pk.n

    run.finish()
    return EquijoinSumResult(
        total=total,
        match_count=len(matched),
        size_v_s=len(pairs_received),
        size_v_r=len(y_r_received),
        run=run,
    )
