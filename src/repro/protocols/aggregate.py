"""Equijoin-sum: a minimal-sharing aggregate (the paper's future work).

The conclusions ask for "protocols for other database operations such
as aggregations". This module contributes one, in the paper's own
style: ``R`` learns ``SUM(val_S(v))`` over ``v ∈ V_R ∩ V_S`` - e.g.
"total exposure across our common customers" - with a precisely
characterized disclosure.

Construction. Run the intersection-size flow (so matches are
*unlinkable* for R), but S attaches to each of its codewords a Paillier
encryption of the value under **S's own key**. R finds which
ciphertexts matched (without learning which of its values they belong
to), homomorphically sums them, blinds the sum with a uniform random
mask ρ, and returns one rerandomized ciphertext. S decrypts the blinded
sum and sends it back; R removes ρ.

Disclosure (declared in :class:`~repro.db.query.EquijoinSumQuery`):

* R learns the sum, the match count ``|V_S ∩ V_R|`` and ``|V_S|``;
* S learns ``|V_R|`` and the blinded sum (uniform modulo ``n``, hence
  nothing).

R never holds a decryption key, so individual values stay hidden; the
mask keeps the true sum from S. Both parties stay semi-honest, as
everywhere in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from ..net.runner import ProtocolRun, run_spec
from .base import ProtocolSuite
from .parties import CryptoContext, PublicParams, ReceiverMachine, SenderMachine
from .spec import PROTOCOLS

__all__ = ["EquijoinSumResult", "run_equijoin_sum"]


@dataclass
class EquijoinSumResult:
    """Outcome of the equijoin-sum protocol."""

    total: int
    match_count: int
    size_v_s: int
    size_v_r: int
    run: ProtocolRun


def run_equijoin_sum(
    v_r,
    values_s: Mapping[Hashable, int],
    suite: ProtocolSuite | None = None,
    paillier_bits: int = 256,
) -> EquijoinSumResult:
    """R learns ``sum(values_s[v] for v in V_R ∩ V_S)`` and little else.

    Args:
        v_r: R's value set.
        values_s: S's side - a map from join value to the non-negative
            integer being aggregated (amount, count, exposure...).
        suite: agreed parameters.
        paillier_bits: S's Paillier modulus size (>= 2048 for real use).
    """
    suite = suite or ProtocolSuite.default()
    spec = PROTOCOLS["equijoin-sum"]
    run = ProtocolRun(protocol=spec.run_label)
    crypto = CryptoContext.from_suite(suite)
    params = PublicParams(p=suite.group.p)
    receiver = ReceiverMachine(spec, v_r, params, suite.rng_r, crypto=crypto)
    sender = SenderMachine(
        spec, values_s, params, suite.rng_s, crypto=crypto,
        paillier_bits=paillier_bits,
    )
    total = run_spec(spec, receiver, sender, run)
    r_state, s_state = receiver.state, sender.state
    return EquijoinSumResult(
        total=total,
        match_count=r_state.match_count,
        size_v_s=r_state.size_v_s,
        size_v_r=s_state.size_v_r,
        run=run,
    )
