"""The paper's protocols: intersection (S3), equijoin (S4),
intersection size (S5.1), equijoin size (S5.2), the broken naive-hash
baseline (S3.1), executable proof simulators and the disclosure audit."""

from .aggregate import EquijoinSumResult, run_equijoin_sum
from .audit import AuditCheck, AuditReport, audit_view
from .base import (
    DEFAULT_BITS,
    EquijoinResult,
    EquijoinSizeResult,
    HashCollisionError,
    IntersectionResult,
    IntersectionSizeResult,
    ProtocolSuite,
)
from .equijoin import join_tables, run_equijoin
from .equijoin_size import join_size_tables, run_equijoin_size
from .intersection import run_intersection
from .intersection_size import run_intersection_size
from .parties import (
    IntersectionReceiver,
    IntersectionSender,
    IntersectionSizeReceiver,
    IntersectionSizeSender,
    PublicParams,
)
from .selection import SelectionResult, run_selection
from .naive_hash import (
    NaiveIntersectionResult,
    dictionary_attack,
    run_naive_intersection,
)
from .simulators import (
    simulate_r_view_equijoin,
    simulate_r_view_intersection,
    simulate_r_view_intersection_size,
    simulate_s_view_intersection,
)

__all__ = [
    "ProtocolSuite",
    "DEFAULT_BITS",
    "HashCollisionError",
    "run_intersection",
    "IntersectionResult",
    "run_intersection_size",
    "IntersectionSizeResult",
    "run_equijoin",
    "join_tables",
    "EquijoinResult",
    "run_equijoin_size",
    "join_size_tables",
    "EquijoinSizeResult",
    "run_equijoin_sum",
    "EquijoinSumResult",
    "run_selection",
    "SelectionResult",
    "PublicParams",
    "IntersectionReceiver",
    "IntersectionSender",
    "IntersectionSizeReceiver",
    "IntersectionSizeSender",
    "run_naive_intersection",
    "NaiveIntersectionResult",
    "dictionary_attack",
    "simulate_s_view_intersection",
    "simulate_r_view_intersection",
    "simulate_r_view_equijoin",
    "simulate_r_view_intersection_size",
    "audit_view",
    "AuditReport",
    "AuditCheck",
]
