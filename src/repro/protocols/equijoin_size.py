"""The equijoin-size protocol (Section 5.2).

Runs the intersection-size protocol on the *multisets* of attribute
values (duplicates kept), then computes the join size instead of the
intersection size: every matched codeword contributes the product of
its multiplicities on the two sides.

The paper characterizes exactly what extra information this leaks:

* R learns the distribution of duplicates in ``T_S.A`` and S learns the
  distribution of duplicates in ``T_R.A`` (multiplicities of identical
  ciphertexts are visible);
* partitioning values by duplicate count ``d``, R learns
  ``|V_R(d) ∩ V_S(d')|`` for every pair of partitions - so with all
  counts equal only the size leaks, while with all counts distinct R
  recovers the full intersection.

The result object reports the leak explicitly so applications can
decide whether it is acceptable (see :mod:`repro.analysis.leakage`).
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable

from ..db.multiset import ValueMultiset
from ..net.runner import ProtocolRun, run_spec
from .base import EquijoinSizeResult, ProtocolSuite
from .parties import CryptoContext, PublicParams, ReceiverMachine, SenderMachine
from .spec import PROTOCOLS

__all__ = ["run_equijoin_size", "join_size_tables"]


def run_equijoin_size(
    v_r: Iterable[Hashable] | ValueMultiset,
    v_s: Iterable[Hashable] | ValueMultiset,
    suite: ProtocolSuite | None = None,
) -> EquijoinSizeResult:
    """Execute the Section 5.2 protocol; R learns ``|T_S ⋈ T_R|``.

    The steps live in
    :class:`~repro.protocols.parties.EquijoinSizeReceiver` /
    ``EquijoinSizeSender``; this driver executes the registered
    ``"equijoin-size"`` spec over in-memory channels and then derives
    the leakage diagnostics from the parties' retained observations.

    Args:
        v_r: R's attribute values *with duplicates* (or a multiset).
        v_s: S's attribute values with duplicates.
        suite: agreed parameters; fresh 1024-bit default when omitted.
    """
    suite = suite or ProtocolSuite.default()
    spec = PROTOCOLS["equijoin-size"]
    run = ProtocolRun(protocol=spec.run_label)
    crypto = CryptoContext.from_suite(suite)
    params = PublicParams(p=suite.group.p)
    receiver = ReceiverMachine(spec, v_r, params, suite.rng_r, crypto=crypto)
    sender = SenderMachine(spec, v_s, params, suite.rng_s, crypto=crypto)
    join_size = run_spec(spec, receiver, sender, run)
    r_state, s_state = receiver.state, sender.state

    # What R can further deduce (Section 5.2's characterization):
    # group matched codewords by their (d_R, d_S) duplicate classes.
    # R knows d_R for each of its values and sees d_S per matched
    # codeword, so it learns |V_R(d) ∩ V_S(d')| for all d, d'.
    z_s_counts = r_state._z_s_counts
    z_r_counts = Counter(r_state._z_r_received)
    ms_r = r_state.multiset
    partition_overlap: dict[tuple[int, int], int] = {}
    doubly_r = {
        suite.cipher.encrypt(s_state._key, y): v
        for v, y in r_state._y_by_value.items()
        # R cannot do this itself (it lacks e_S); this mirrors what R
        # infers from multiplicities alone and is validated against the
        # plaintext computation in the tests.
    }
    for codeword, s_count in z_s_counts.items():
        if codeword in z_r_counts:
            v = doubly_r.get(codeword)
            d_r = ms_r.multiplicity(v)
            key = (d_r, s_count)
            partition_overlap[key] = partition_overlap.get(key, 0) + 1

    return EquijoinSizeResult(
        join_size=join_size,
        size_v_s=r_state.size_v_s,
        size_v_r=s_state.size_v_r,
        r_learns_s_duplicates=_distribution(z_s_counts),
        s_learns_r_duplicates=_distribution(Counter(s_state._y_r_received)),
        partition_overlap=partition_overlap,
        run=run,
    )


def _distribution(code_counts: Counter) -> dict[int, int]:
    """Duplicate distribution ``d -> number of values with d copies``."""
    histogram: Counter = Counter(code_counts.values())
    return dict(sorted(histogram.items()))


def join_size_tables(
    t_r,
    t_s,
    r_attr: str,
    s_attr: str | None = None,
    suite: ProtocolSuite | None = None,
) -> EquijoinSizeResult:
    """Table-level convenience: ``|T_S ⋈ T_R|`` on named attributes.

    Extracts each table's attribute multiset (duplicates preserved -
    they are the whole point of this protocol) and runs
    :func:`run_equijoin_size`.
    """
    s_attr = s_attr or r_attr
    ms_r = ValueMultiset.from_table(t_r, r_attr)
    ms_s = ValueMultiset.from_table(t_s, s_attr)
    return run_equijoin_size(ms_r, ms_s, suite)
