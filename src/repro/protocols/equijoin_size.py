"""The equijoin-size protocol (Section 5.2).

Runs the intersection-size protocol on the *multisets* of attribute
values (duplicates kept), then computes the join size instead of the
intersection size: every matched codeword contributes the product of
its multiplicities on the two sides.

The paper characterizes exactly what extra information this leaks:

* R learns the distribution of duplicates in ``T_S.A`` and S learns the
  distribution of duplicates in ``T_R.A`` (multiplicities of identical
  ciphertexts are visible);
* partitioning values by duplicate count ``d``, R learns
  ``|V_R(d) ∩ V_S(d')|`` for every pair of partitions - so with all
  counts equal only the size leaks, while with all counts distinct R
  recovers the full intersection.

The result object reports the leak explicitly so applications can
decide whether it is acceptable (see :mod:`repro.analysis.leakage`).
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable

from ..db.multiset import ValueMultiset
from ..net.runner import ProtocolRun
from .base import EquijoinSizeResult, ProtocolSuite, sorted_ciphertexts

__all__ = ["run_equijoin_size", "join_size_tables"]


def run_equijoin_size(
    v_r: Iterable[Hashable] | ValueMultiset,
    v_s: Iterable[Hashable] | ValueMultiset,
    suite: ProtocolSuite | None = None,
) -> EquijoinSizeResult:
    """Execute the Section 5.2 protocol; R learns ``|T_S ⋈ T_R|``.

    Args:
        v_r: R's attribute values *with duplicates* (or a multiset).
        v_s: S's attribute values with duplicates.
        suite: agreed parameters; fresh 1024-bit default when omitted.
    """
    suite = suite or ProtocolSuite.default()
    run = ProtocolRun(protocol="equijoin_size")

    ms_r = v_r if isinstance(v_r, ValueMultiset) else ValueMultiset.from_values(v_r)
    ms_s = v_s if isinstance(v_s, ValueMultiset) else ValueMultiset.from_values(v_s)

    r_distinct = sorted(ms_r.distinct(), key=repr)
    s_distinct = sorted(ms_s.distinct(), key=repr)

    # Step 1 - hash the distinct values once (equal values share a
    # hash), then expand by multiplicity: the shipped multisets carry
    # one codeword per *occurrence*.
    x_r_by_value = dict(zip(r_distinct, suite.hash_side("R", r_distinct)))
    x_s_by_value = dict(zip(s_distinct, suite.hash_side("S", s_distinct)))
    e_r = suite.cipher.sample_key(suite.rng_r)
    e_s = suite.cipher.sample_key(suite.rng_s)

    # Step 2 - encrypt; duplicates stay duplicates under a deterministic
    # bijection, which is what makes the join size computable (and what
    # leaks the duplicate distributions).
    y_r_by_value = {
        v: suite.cipher.encrypt(e_r, x) for v, x in x_r_by_value.items()
    }
    y_s_multiset = [
        suite.cipher.encrypt(e_s, x_s_by_value[v])
        for v in s_distinct
        for _ in range(ms_s.multiplicity(v))
    ]
    y_r_multiset = [
        y_r_by_value[v] for v in r_distinct for _ in range(ms_r.multiplicity(v))
    ]

    # Step 3 - R ships its encrypted multiset, reordered.
    y_r_received = run.to_s("3:Y_R", sorted_ciphertexts(y_r_multiset))

    # Step 4(a) - S ships its encrypted multiset, reordered.
    y_s_received = run.to_r("4a:Y_S", sorted_ciphertexts(y_s_multiset))

    # Step 4(b) - S returns Z_R = f_eS(Y_R), reordered and unpaired.
    z_r = sorted_ciphertexts(suite.cipher.encrypt_many(e_s, y_r_received))
    z_r_received = run.to_r("4b:Z_R", z_r)

    # Step 5 - R computes Z_S = f_eR(Y_S).
    z_s = suite.cipher.encrypt_many(e_r, y_s_received)

    # Step 6 - join size: matched codewords contribute the product of
    # their multiplicities on the two sides.
    z_s_counts = Counter(z_s)
    z_r_counts = Counter(z_r_received)
    join_size = sum(
        count * z_r_counts[codeword]
        for codeword, count in z_s_counts.items()
        if codeword in z_r_counts
    )

    # What R can further deduce (Section 5.2's characterization):
    # group matched codewords by their (d_R, d_S) duplicate classes.
    # R knows d_R for each of its values and sees d_S per matched
    # codeword, so it learns |V_R(d) ∩ V_S(d')| for all d, d'.
    partition_overlap: dict[tuple[int, int], int] = {}
    doubly_r = {
        suite.cipher.encrypt(e_s, y): v
        for v, y in y_r_by_value.items()
        # R cannot do this itself (it lacks e_S); this mirrors what R
        # infers from multiplicities alone and is validated against the
        # plaintext computation in the tests.
    }
    for codeword, s_count in z_s_counts.items():
        if codeword in z_r_counts:
            v = doubly_r.get(codeword)
            d_r = ms_r.multiplicity(v)
            key = (d_r, s_count)
            partition_overlap[key] = partition_overlap.get(key, 0) + 1

    run.finish()
    return EquijoinSizeResult(
        join_size=join_size,
        size_v_s=len(y_s_received),
        size_v_r=len(y_r_received),
        r_learns_s_duplicates=_distribution(z_s_counts),
        s_learns_r_duplicates=_distribution(Counter(y_r_received)),
        partition_overlap=partition_overlap,
        run=run,
    )


def _distribution(code_counts: Counter) -> dict[int, int]:
    """Duplicate distribution ``d -> number of values with d copies``."""
    histogram: Counter = Counter(code_counts.values())
    return dict(sorted(histogram.items()))


def join_size_tables(
    t_r,
    t_s,
    r_attr: str,
    s_attr: str | None = None,
    suite: ProtocolSuite | None = None,
) -> EquijoinSizeResult:
    """Table-level convenience: ``|T_S ⋈ T_R|`` on named attributes.

    Extracts each table's attribute multiset (duplicates preserved -
    they are the whole point of this protocol) and runs
    :func:`run_equijoin_size`.
    """
    s_attr = s_attr or r_attr
    ms_r = ValueMultiset.from_table(t_r, r_attr)
    ms_s = ValueMultiset.from_table(t_s, s_attr)
    return run_equijoin_size(ms_r, ms_s, suite)
