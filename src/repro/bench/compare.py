"""The compare phase: diff a run against the last committed numbers.

Baselines come from a git ref (``--baseline HEAD`` reads the committed
``BENCH_<area>.json`` files via ``git show``) or from a directory of
previously emitted files (the CI cache). Only the metrics a task
declares in ``regress_on`` are gated; a record regresses when::

    current > baseline * (1 + threshold)   # strictly greater
    and current - baseline > min_abs       # noise floor

so a slowdown of *exactly* the threshold (20% by default) passes, and
microsecond-scale jitter on tiny smoke timings never trips the gate.
Structural drift — tasks or records present on one side only — is
reported but does not fail the comparison (new benchmarks must be
landable).
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from .schema import FILE_SCHEMA, bench_filename

__all__ = [
    "Comparison",
    "DEFAULT_MIN_ABS",
    "DEFAULT_THRESHOLD",
    "MetricDelta",
    "compare_payloads",
    "load_baseline",
]

#: Fail on regressions beyond 20% by default (the CI gate).
DEFAULT_THRESHOLD = 0.20
#: Ignore absolute drifts at or below 10ms — smoke-run timing noise.
DEFAULT_MIN_ABS = 0.01


@dataclass(frozen=True)
class MetricDelta:
    """One gated metric compared across baseline and current."""

    area: str
    task: str
    record_id: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        """current / baseline (inf when the baseline measured zero)."""
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        """One aligned report line for this delta."""
        change = self.ratio - 1.0
        return (
            f"{self.task} [{self.record_id}] {self.metric}: "
            f"{self.baseline:.6g} -> {self.current:.6g} ({change:+.1%})"
        )


@dataclass
class Comparison:
    """Everything the compare phase found, regression verdict included."""

    threshold: float = DEFAULT_THRESHOLD
    min_abs: float = DEFAULT_MIN_ABS
    #: Deltas beyond the gate — any entry fails the comparison.
    regressions: list[MetricDelta] = field(default_factory=list)
    #: Deltas that got faster beyond the same (mirrored) margin.
    improvements: list[MetricDelta] = field(default_factory=list)
    #: Everything else that was matched and within noise.
    stable: list[MetricDelta] = field(default_factory=list)
    #: Structural drift notes (missing/new tasks, records, schemas).
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing regressed beyond the gate."""
        return not self.regressions

    def add(self, delta: MetricDelta) -> None:
        """Classify one delta against the gate."""
        worse = delta.current - delta.baseline
        if (
            delta.current > delta.baseline * (1.0 + self.threshold)
            and worse > self.min_abs
        ):
            self.regressions.append(delta)
        elif (
            delta.baseline > delta.current * (1.0 + self.threshold)
            and -worse > self.min_abs
        ):
            self.improvements.append(delta)
        else:
            self.stable.append(delta)

    def describe(self) -> str:
        """The multi-line human report the CLI prints."""
        lines = [
            f"compared {len(self.regressions) + len(self.improvements) + len(self.stable)} "
            f"gated metrics (fail above {self.threshold:.0%} + {self.min_abs:g}s)"
        ]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for delta in self.improvements:
            lines.append(f"  faster: {delta.describe()}")
        for delta in self.regressions:
            lines.append(f"  REGRESSION: {delta.describe()}")
        lines.append("OK" if self.ok else "FAIL: performance regression")
        return "\n".join(lines)


def load_baseline(
    baseline: str, area: str, repo_root: Path | str = "."
) -> dict | None:
    """Fetch the baseline ``BENCH_<area>.json`` payload, or None.

    ``baseline`` is a directory path (the CI cache) when one exists,
    otherwise a git ref — the file is read from that commit via
    ``git show``, i.e. "the last committed numbers".
    """
    import json

    name = bench_filename(area)
    as_dir = Path(baseline)
    if as_dir.is_dir():
        path = as_dir / name
        if not path.is_file():
            return None
        return json.loads(path.read_text(encoding="utf-8"))
    out = subprocess.run(
        ["git", "show", f"{baseline}:{name}"],
        capture_output=True,
        text=True,
        cwd=str(repo_root),
    )
    if out.returncode != 0:
        return None
    return json.loads(out.stdout)


def _indexed(payload: dict) -> dict[str, dict]:
    """task name -> task result, for one payload."""
    return {t["task"]: t for t in payload.get("tasks", [])}


def compare_payloads(
    baseline: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_abs: float = DEFAULT_MIN_ABS,
    comparison: Comparison | None = None,
) -> Comparison:
    """Diff two same-area payloads record by record, metric by metric."""
    result = comparison or Comparison(threshold=threshold, min_abs=min_abs)
    area = current.get("area", "?")
    if baseline.get("schema") != FILE_SCHEMA:
        result.notes.append(
            f"{area}: baseline file schema "
            f"{baseline.get('schema')!r} != {FILE_SCHEMA}; skipped"
        )
        return result
    if baseline.get("mode") != current.get("mode"):
        result.notes.append(
            f"{area}: comparing mode {current.get('mode')!r} against "
            f"baseline mode {baseline.get('mode')!r}"
        )
    base_tasks = _indexed(baseline)
    for task in current.get("tasks", []):
        name = task["task"]
        base = base_tasks.get(name)
        if base is None:
            result.notes.append(f"{name}: new task (no baseline)")
            continue
        if base.get("schema") != task.get("schema"):
            result.notes.append(
                f"{name}: record schema changed "
                f"{base.get('schema')} -> {task.get('schema')}; skipped"
            )
            continue
        base_records = {r["id"]: r for r in base.get("records", [])}
        for record in task.get("records", []):
            base_record = base_records.get(record["id"])
            if base_record is None:
                result.notes.append(
                    f"{name}: new record {record['id']!r} (no baseline)"
                )
                continue
            for metric in task.get("regress_on", []):
                old = base_record.get("metrics", {}).get(metric)
                new = record.get("metrics", {}).get(metric)
                if old is None or new is None:
                    continue
                result.add(MetricDelta(
                    area=area, task=name, record_id=record["id"],
                    metric=metric, baseline=float(old), current=float(new),
                ))
    return result
