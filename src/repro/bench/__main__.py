"""``python -m repro.bench`` — dispatch to the harness CLI."""

from .cli import main

raise SystemExit(main())
