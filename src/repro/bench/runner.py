"""The run phase: execute tasks, normalize results, emit artifacts.

:func:`run_selection` executes any task subset with a seeded RNG per
task and warmup/repeat timing control, validates the record
discipline, and groups the results into one payload per area;
:func:`write_bench_files` lands them as ``BENCH_<area>.json``.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from .registry import BenchTask
from .schema import (
    FILE_SCHEMA,
    bench_filename,
    capture_environment,
    dump_payload,
)

__all__ = ["RunContext", "run_selection", "write_bench_files"]


@dataclass
class RunContext:
    """What a task body gets handed: parameters, rng, timing control.

    The rng is seeded from (run seed, task name) so every task is
    deterministic in isolation — adding or removing other tasks from a
    run never shifts its stream.
    """

    #: The mode's parameter dict (smoke/full/report, CLI-overridable).
    params: dict[str, Any]
    #: Seeded per-task; the only randomness a task should use.
    rng: random.Random
    #: Which parameter set is running: ``smoke``, ``full`` or ``report``.
    mode: str = "smoke"
    #: Discarded timing calls before measurement.
    warmup: int = 0
    #: Timed calls per measurement; ``timeit`` keeps the best.
    repeat: int = 1

    def param(self, key: str, default: Any = None) -> Any:
        """One parameter, with a default."""
        return self.params.get(key, default)

    def timeit(self, fn: Callable[[], Any]) -> tuple[Any, float]:
        """Run ``fn`` warmup+repeat times; return (last result, best s).

        Best-of-N is the standard noise damper for wall-clock
        microbenchmarks: the minimum is the least-interfered-with run.
        """
        for _ in range(self.warmup):
            fn()
        best = float("inf")
        result = None
        for _ in range(max(1, self.repeat)):
            started = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - started)
        return result, best


def _task_rng(seed: int, name: str) -> random.Random:
    """A stable per-task stream: run seed xor crc32 of the task name."""
    return random.Random(seed ^ zlib.crc32(name.encode("utf-8")))


def _validate_records(task: BenchTask, records: list[dict]) -> None:
    """Enforce the schema discipline before anything lands on disk."""
    seen: set[str] = set()
    for record in records:
        if not isinstance(record, dict) or "id" not in record:
            raise ValueError(f"{task.name}: every record needs an 'id'")
        rid = record["id"]
        if rid in seen:
            raise ValueError(f"{task.name}: duplicate record id {rid!r}")
        seen.add(rid)
        metrics = record.get("metrics", {})
        if not isinstance(metrics, dict):
            raise ValueError(f"{task.name}/{rid}: 'metrics' must be a dict")


def run_selection(
    tasks: list[BenchTask],
    *,
    mode: str = "smoke",
    seed: int = 20030609,
    warmup: int | None = None,
    repeat: int | None = None,
    param_overrides: Mapping[str, Any] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, dict]:
    """Execute tasks and return ``{area: payload}`` per the schema.

    ``warmup``/``repeat`` default per mode (0/1 for smoke, 1/3
    otherwise); ``param_overrides`` lets the CLI poke individual task
    parameters (applied to every selected task that has the key).
    """
    if warmup is None:
        warmup = 0 if mode == "smoke" else 1
    if repeat is None:
        repeat = 1 if mode == "smoke" else 3
    environment = capture_environment()
    by_area: dict[str, dict] = {}
    for task in tasks:
        params = task.params_for(mode)
        for key, value in (param_overrides or {}).items():
            if key in params:
                params[key] = value
        if progress:
            progress(f"run {task.name} [{mode}] params={params}")
        ctx = RunContext(
            params=params, rng=_task_rng(seed, task.name),
            mode=mode, warmup=warmup, repeat=repeat,
        )
        started = time.perf_counter()
        records = task.fn(ctx)
        elapsed = time.perf_counter() - started
        _validate_records(task, records)
        if progress:
            progress(
                f"  -> {len(records)} records in {elapsed:.2f}s"
            )
        payload = by_area.setdefault(task.area, {
            "schema": FILE_SCHEMA,
            "area": task.area,
            "mode": mode,
            "seed": seed,
            "environment": environment,
            "tasks": [],
        })
        payload["tasks"].append({
            "task": task.name,
            "schema": task.schema,
            "source": task.source,
            "summary": task.summary,
            "params": params,
            "regress_on": list(task.regress_on),
            "records": records,
        })
    for payload in by_area.values():
        payload["tasks"].sort(key=lambda t: t["task"])
    return by_area


def write_bench_files(
    by_area: dict[str, dict], out_dir: Path | str
) -> list[Path]:
    """Write one ``BENCH_<area>.json`` per area; return the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for area in sorted(by_area):
        path = out / bench_filename(area)
        dump_payload(by_area[area], path)
        paths.append(path)
    return paths
