"""The unified benchmark harness: a task registry + one runner.

Every experiment in ``benchmarks/`` registers here as a named
:class:`~repro.bench.registry.BenchTask` (``<area>.<task>``), and one
CLI runs any subset with a seeded RNG, warmup/repeat control, and
environment capture::

    python -m repro.bench list
    python -m repro.bench run all --smoke
    python -m repro.bench run robustness --out BENCH_robustness.json
    python -m repro.bench compare --baseline HEAD
    python -m repro.bench report --out EXPERIMENTS.md

Each run emits one normalized, schema-tagged ``BENCH_<area>.json`` per
area; those files are committed per PR so the repo carries its own
perf trajectory, and the ``compare`` phase (plus the ``bench-smoke``
CI job) fails on a >20% regression against the last committed numbers.
See ``docs/BENCHMARKS.md`` for the user guide.
"""

from __future__ import annotations

from .compare import Comparison, MetricDelta, compare_payloads, load_baseline
from .registry import (
    BenchTask,
    DuplicateTaskError,
    UnknownTaskError,
    all_tasks,
    areas,
    get_task,
    load_all_tasks,
    register,
    select_tasks,
)
from .runner import RunContext, run_selection, write_bench_files
from .schema import (
    FILE_SCHEMA,
    capture_environment,
    dump_payload,
    load_payload,
    strip_volatile,
)

__all__ = [
    "BenchTask",
    "Comparison",
    "DuplicateTaskError",
    "FILE_SCHEMA",
    "MetricDelta",
    "RunContext",
    "UnknownTaskError",
    "all_tasks",
    "areas",
    "capture_environment",
    "compare_payloads",
    "dump_payload",
    "get_task",
    "load_all_tasks",
    "load_baseline",
    "load_payload",
    "register",
    "run_selection",
    "select_tasks",
    "strip_volatile",
    "write_bench_files",
]
