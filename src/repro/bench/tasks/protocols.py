"""Area ``protocols`` — end-to-end runs of all four core protocols.

Absorbs ``bench_protocols_scaling.py`` (the scaling validation table)
and ``bench_extensions.py`` (the future-work aggregate and selection
operations the paper asks for).
"""

from __future__ import annotations

import random
import time

from ...protocols.aggregate import run_equijoin_sum
from ...protocols.base import ProtocolSuite
from ...protocols.equijoin import run_equijoin
from ...protocols.equijoin_size import run_equijoin_size
from ...protocols.intersection import run_intersection
from ...protocols.intersection_size import run_intersection_size
from ...protocols.selection import run_selection as _run_selection_protocol
from ...workloads.generator import multiset_pair, overlapping_sets
from ..registry import register

__all__ = ["PROTOCOL_DRIVERS"]

#: Name -> driver over ``(v_r, v_s, suite)`` for the four core protocols.
PROTOCOL_DRIVERS = {
    "intersection": lambda v_r, v_s, suite: run_intersection(v_r, v_s, suite),
    "intersection_size": lambda v_r, v_s, suite: run_intersection_size(
        v_r, v_s, suite
    ),
    "equijoin": lambda v_r, v_s, suite: run_equijoin(
        v_r, {v: b"record" for v in v_s}, suite
    ),
    "equijoin_size": lambda v_r, v_s, suite: run_equijoin_size(
        v_r, v_s, suite
    ),
}


@register(
    "protocols.scaling",
    smoke={"bits": 128, "sizes": [16, 32]},
    full={"bits": 512, "sizes": [16, 32, 64]},
    source="benchmarks/bench_protocols_scaling.py",
    summary="All four protocols end to end at growing n: wall clock, "
            "wire bytes, correctness vs plaintext on every run.",
    regress_on=("elapsed_s",),
)
def scaling(ctx) -> list[dict]:
    """Run every protocol at each n; one record per (protocol, n)."""
    bits = ctx.param("bits")
    records = []
    for name, protocol in sorted(PROTOCOL_DRIVERS.items()):
        for n in ctx.param("sizes"):
            v_r, v_s, expected = overlapping_sets(
                n, n, n // 2, random.Random(n)
            )
            suite = ProtocolSuite.default(bits=bits, seed=n)
            started = time.perf_counter()
            result = protocol(v_r, v_s, suite)
            elapsed = time.perf_counter() - started
            if name == "intersection":
                assert result.intersection == expected
            elif name == "intersection_size":
                assert result.size == len(expected)
            records.append({
                "id": f"{name}-n{n}",
                "protocol": name,
                "n": n,
                "wire_bytes": result.run.total_bytes,
                "metrics": {"elapsed_s": round(elapsed, 6)},
            })
    return records


@register(
    "protocols.multiset-join",
    smoke={"bits": 128, "sizes": [16]},
    full={"bits": 512, "sizes": [16, 48]},
    source="benchmarks/bench_protocols_scaling.py",
    summary="Equijoin-size over Zipf-duplicated multisets, join size "
            "asserted against the plaintext multiset join.",
    regress_on=("elapsed_s",),
)
def multiset_join(ctx) -> list[dict]:
    """Run the multiset size protocol at realistic duplicate skews."""
    bits = ctx.param("bits")
    records = []
    for n in ctx.param("sizes"):
        ms_r, ms_s = multiset_pair(n, n, n // 2, ctx.rng)
        suite = ProtocolSuite.default(bits=bits, seed=n)
        started = time.perf_counter()
        result = run_equijoin_size(ms_r, ms_s, suite)
        elapsed = time.perf_counter() - started
        assert result.join_size == ms_r.join_size(ms_s)
        records.append({
            "id": f"n{n}",
            "n": n,
            "occurrences_r": len(ms_r),
            "occurrences_s": len(ms_s),
            "join_size": result.join_size,
            "wire_bytes": result.run.total_bytes,
            "metrics": {"elapsed_s": round(elapsed, 6)},
        })
    return records


@register(
    "protocols.extensions",
    smoke={"bits": 128, "n_sum": 12, "selection_sizes": [4, 16]},
    full={"bits": 256, "n_sum": 24, "selection_sizes": [4, 16, 64]},
    source="benchmarks/bench_extensions.py",
    summary="Future-work extensions: equijoin-sum overhead over the "
            "size protocol, and selection's amortizing per-record cost.",
    regress_on=("elapsed_s",),
)
def extensions(ctx) -> list[dict]:
    """Cost the aggregate and selection extensions against baselines."""
    bits = ctx.param("bits")
    n = ctx.param("n_sum")
    v_r, v_s, expected = overlapping_sets(n, n, n // 2, ctx.rng)
    values_s = {v: ctx.rng.randrange(10**6) for v in v_s}

    suite = ProtocolSuite.default(bits=bits, seed=21)
    started = time.perf_counter()
    size_result = run_intersection_size(v_r, v_s, suite)
    size_s = time.perf_counter() - started

    suite = ProtocolSuite.default(bits=bits, seed=21)
    started = time.perf_counter()
    sum_result = run_equijoin_sum(v_r, values_s, suite, paillier_bits=256)
    sum_s = time.perf_counter() - started
    assert sum_result.total == sum(values_s[v] for v in expected)
    assert sum_result.match_count == size_result.size == len(expected)

    records = [{
        "id": "equijoin-sum",
        "n": n,
        "size_bytes": size_result.run.total_bytes,
        "sum_bytes": sum_result.run.total_bytes,
        "byte_overhead_x": round(
            sum_result.run.total_bytes / size_result.run.total_bytes, 2
        ),
        "metrics": {
            "elapsed_s": round(sum_s, 6),
            "size_elapsed_s": round(size_s, 6),
        },
    }]

    previous = None
    for sel_n in ctx.param("selection_sizes"):
        suite = ProtocolSuite.default(bits=bits, seed=sel_n)
        rows = [f"row-{i:04d}".encode() * 2 for i in range(sel_n)]
        started = time.perf_counter()
        result = _run_selection_protocol(sel_n // 2, rows, suite)
        elapsed = time.perf_counter() - started
        assert result.record == rows[sel_n // 2]
        per_record = result.run.total_bytes / sel_n
        if previous is not None:
            assert per_record < previous
        previous = per_record
        records.append({
            "id": f"selection-n{sel_n}",
            "n": sel_n,
            "wire_bytes": result.run.total_bytes,
            "bytes_per_record": round(per_record, 1),
            "metrics": {"elapsed_s": round(elapsed, 6)},
        })
    return records
