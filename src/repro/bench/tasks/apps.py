"""Area ``apps`` — the paper's two Section 6.2 applications, live.

Absorbs ``bench_app_docshare.py`` (selective document sharing, S6.2.1)
and ``bench_app_medical.py`` (the Figure 2 medical-research pipeline,
S6.2.2): paper estimates from the cost model, plus real reduced-scale
runs validated against plaintext.
"""

from __future__ import annotations

import random
import time

from ...analysis.estimates import (
    document_sharing_estimate,
    medical_research_estimate,
)
from ...apps.document_sharing import run_document_sharing
from ...apps.medical import plaintext_contingency, run_medical_research
from ...apps.tfidf import significant_words
from ...protocols.base import ProtocolSuite
from ...workloads.generator import document_corpus, medical_workload
from ..registry import register

__all__ = []


def _small_corpus(words_per_doc: int, k: int, n_r: int, n_s: int):
    """Reduced-scale topical corpora, reduced to significant-word sets."""
    rng = random.Random(1)
    topic = [f"topic{i}" for i in range(10)]
    corpus_r = document_corpus(
        n_r, rng, vocabulary_size=500, words_per_doc=words_per_doc,
        topic_words=topic, topic_rate=0.9,
    )
    corpus_s = document_corpus(
        n_s, rng, vocabulary_size=500, words_per_doc=words_per_doc,
        topic_words=topic, topic_rate=0.9,
    )
    return significant_words(corpus_r, k), significant_words(corpus_s, k)


@register(
    "apps.document-sharing",
    smoke={"bits": 128, "words_per_doc": 25, "k": 12, "n_r": 2, "n_s": 4},
    full={"bits": 128, "words_per_doc": 40, "k": 20, "n_r": 3, "n_s": 6},
    source="benchmarks/bench_app_docshare.py",
    summary="S6.2.1: paper headline (4e6 C_e, ~2 h at P=10, ~35 min on "
            "a T1) plus a live TF-IDF + per-pair protocol run.",
    regress_on=("elapsed_s",),
)
def document_sharing(ctx) -> list[dict]:
    """Check the paper estimate, then run the application for real."""
    est = document_sharing_estimate()
    assert abs(est.encryptions_ce - 4e6) < 1e3
    assert 2.0 <= est.computation_hours <= 2.3
    assert 30 <= est.communication_minutes <= 36
    records = [{
        "id": "paper-estimate",
        "encryptions_ce": est.encryptions_ce,
        "computation_hours": round(est.computation_hours, 3),
        "communication_minutes": round(est.communication_minutes, 1),
        "paper": "~2 h compute, ~35 min transfer",
    }]

    docs_r, docs_s = _small_corpus(
        ctx.param("words_per_doc"), ctx.param("k"),
        ctx.param("n_r"), ctx.param("n_s"),
    )
    suite = ProtocolSuite.default(bits=ctx.param("bits"), seed=2)
    started = time.perf_counter()
    result = run_document_sharing(
        docs_r, docs_s, threshold=0.05, suite=suite
    )
    elapsed = time.perf_counter() - started
    formula = sum(
        2 * (len(d_r) + len(d_s)) for d_r in docs_r for d_s in docs_s
    )
    assert result.total_encryptions == formula
    records.append({
        "id": "scaled-run",
        "doc_pairs": result.protocol_runs,
        "encryptions": result.total_encryptions,
        "formula_encryptions": formula,
        "wire_bytes": result.total_bytes,
        "matches": len(result.matches),
        "metrics": {"elapsed_s": round(elapsed, 6)},
    })
    return records


@register(
    "apps.medical",
    smoke={"bits": 128, "people": 60},
    full={"bits": 128, "people": 150},
    source="benchmarks/bench_app_medical.py",
    summary="S6.2.2: paper headline (8e6 C_e, ~4 h at P=10, ~1.5 h "
            "transfer) plus a live Figure 2 three-party pipeline run "
            "checked against plaintext SQL.",
    regress_on=("elapsed_s",),
)
def medical(ctx) -> list[dict]:
    """Check the paper estimate, then run the Figure 2 pipeline."""
    est = medical_research_estimate()
    assert abs(est.encryptions_ce - 8e6) < 1e3
    assert 4.0 <= est.computation_hours <= 4.6
    assert 1.3 <= est.communication_hours <= 1.6
    records = [{
        "id": "paper-estimate",
        "encryptions_ce": est.encryptions_ce,
        "computation_hours": round(est.computation_hours, 3),
        "communication_hours": round(est.communication_hours, 3),
        "paper": "~4 h compute, ~1.5 h transfer",
    }]

    people = ctx.param("people")
    wl = medical_workload(people, random.Random(4))
    suite = ProtocolSuite.default(bits=ctx.param("bits"), seed=4)
    started = time.perf_counter()
    result = run_medical_research(wl.t_r, wl.t_s, suite)
    elapsed = time.perf_counter() - started
    truth = plaintext_contingency(wl.t_r, wl.t_s)
    assert result.table.as_dict() == truth.as_dict()
    assert len(result.run.t_view.received) == 8  # (Z_R, Z_S) x 4 queries
    contingency = {
        f"pattern={p}/reaction={r}": count
        for (p, r), count in result.table.as_dict().items()
    }
    records.append({
        "id": "scaled-run",
        "people": people,
        "contingency": contingency,
        "wire_bytes": result.run.total_bytes,
        "t_received_sets": len(result.run.t_view.received),
        "metrics": {"elapsed_s": round(elapsed, 6)},
    })
    return records
