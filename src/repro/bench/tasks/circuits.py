"""Area ``circuits`` — the garbled-circuit baseline, run for real.

Absorbs ``bench_yao_empirical.py`` (Yao PSI vs our protocol on the
same inputs) and the built-circuit cross-checks from
``bench_appendixA_communication.py`` (garbled-table volume vs the
4-k0-bits-per-gate model).
"""

from __future__ import annotations

import random
import time

from ...circuits.builders import brute_force_intersection_circuit
from ...circuits.costmodel import CircuitCostModel
from ...circuits.garble import garble, yao_intersection
from ...crypto.groups import QRGroup
from ...protocols.base import ProtocolSuite
from ...protocols.intersection import run_intersection
from ..registry import register

__all__ = []


def _inputs(n: int, rng: random.Random, width: int = 16):
    """Sample n-value S and R inputs with ~50% overlap from 2**width."""
    universe = list(range(1 << width))
    v_s = rng.sample(universe, n)
    v_r = rng.sample(v_s, n // 2) + rng.sample(universe, n - n // 2)
    return v_s, list(dict.fromkeys(v_r))[:n]


@register(
    "circuits.yao-empirical",
    smoke={"bits": 256, "sizes": [4, 8], "width": 16},
    full={"bits": 256, "sizes": [4, 8, 16], "width": 16},
    source="benchmarks/bench_yao_empirical.py",
    summary="Appendix A made empirical: Yao PSI vs our protocol on "
            "identical inputs; the communication gap widens with n.",
    regress_on=("yao_s", "ours_s"),
)
def yao_empirical(ctx) -> list[dict]:
    """Run both protocols at each n; assert equal answers, record gap."""
    group = QRGroup.for_bits(ctx.param("bits"))
    width = ctx.param("width")
    records = []
    gaps = []
    for n in ctx.param("sizes"):
        v_s, v_r = _inputs(n, random.Random(n), width=width)
        rng = random.Random(n)

        started = time.perf_counter()
        yao = yao_intersection(v_s, v_r, width=width, group=group, rng=rng)
        yao_s = time.perf_counter() - started

        suite = ProtocolSuite.default(bits=ctx.param("bits"), seed=n)
        started = time.perf_counter()
        ours = run_intersection(v_r, v_s, suite)
        ours_s = time.perf_counter() - started

        assert yao.intersection == ours.intersection == (set(v_s) & set(v_r))
        gap = yao.total_bytes / ours.run.total_bytes
        gaps.append(gap)
        records.append({
            "id": f"n{n}",
            "n": n,
            "yao_bytes": yao.total_bytes,
            "ours_bytes": ours.run.total_bytes,
            "comm_gap_x": round(gap, 1),
            "metrics": {
                "yao_s": round(yao_s, 6),
                "ours_s": round(ours_s, 6),
            },
        })
    # Quadratic vs linear: the gap must widen monotonically with n.
    assert gaps == sorted(gaps)
    return records


@register(
    "circuits.garbling",
    smoke={"sizes": [2, 4]},
    full={"sizes": [2, 4, 8]},
    source="benchmarks/bench_appendixA_communication.py",
    summary="Garbled-table volume of actually built circuits vs the "
            "4 k0 bits/gate model (constant factor 544/256 for "
            "128-bit labels).",
    regress_on=("garble_s",),
)
def garbling(ctx) -> list[dict]:
    """Garble brute-force PSI circuits; check the table-volume model."""
    cm = CircuitCostModel()
    rng = random.Random(0)
    records = []
    for n in ctx.param("sizes"):
        circuit = brute_force_intersection_circuit(8, n, n)
        (garbled, _), elapsed = ctx.timeit(lambda c=circuit: garble(c, rng))
        assert len(garbled.tables) == circuit.gate_count
        built_bits = 8 * garbled.table_bytes
        model_bits = 4 * cm.k0 * circuit.gate_count
        ratio = built_bits / model_bits
        assert abs(ratio - 544 / 256) < 0.03
        records.append({
            "id": f"n{n}",
            "n": n,
            "gates": circuit.gate_count,
            "built_bits": built_bits,
            "model_bits": model_bits,
            "label_factor_x": round(ratio, 3),
            "metrics": {"garble_s": round(elapsed, 6)},
        })
    return records
