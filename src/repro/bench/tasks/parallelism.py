"""Area ``parallelism`` — the Section 6.2 P-processor assumption.

The measurement cores (``run_intersection_with_engine``, ``sweep``)
moved here from ``benchmarks/bench_parallelism_ablation.py``; the
legacy script imports them back for its pytest assertions.
"""

from __future__ import annotations

import os
import random
import time

from ...analysis.instrumentation import MetricsRecorder
from ...crypto.batch import measure_speedup
from ...crypto.engine import create_engine
from ...crypto.groups import QRGroup
from ...protocols.parties import (
    IntersectionReceiver,
    IntersectionSender,
    PublicParams,
)
from ..registry import register

__all__ = ["run_intersection_with_engine", "sweep"]


def run_intersection_with_engine(
    n: int, bits: int, workers: int, seed: int = 7
) -> dict:
    """One end-to-end intersection run; returns a flat JSON record.

    Both parties share one engine (they are in-process here); the
    record carries total wall time, per-phase timings and modexp
    counts from the metrics recorder.
    """
    params = PublicParams.for_bits(bits)
    half = n // 2
    v_r = [f"r{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    recorder = MetricsRecorder()
    engine = create_engine(workers, on_modexp=recorder.count_modexp)
    recorder.attach_engine(engine)
    try:
        engine.warm_up()  # pool startup is measured once, not per-run
        rng_r, rng_s = random.Random(f"{seed}/R"), random.Random(f"{seed}/S")
        start = time.perf_counter()
        with recorder.phase("setup"):
            receiver = IntersectionReceiver(v_r, params, rng_r, engine=engine)
            sender = IntersectionSender(v_s, params, rng_s, engine=engine)
        with recorder.phase("r.round1"):
            m1 = receiver.round1()
        with recorder.phase("s.round1"):
            m2 = sender.round1(m1)
        with recorder.phase("r.finish"):
            answer = receiver.finish(m2)
        wall_s = time.perf_counter() - start
    finally:
        engine.close()
    assert answer == {f"c{i}" for i in range(half)}
    report = recorder.report()
    return {
        "protocol": "intersection",
        "n": n,
        "bits": bits,
        "workers": workers,
        "wall_s": wall_s,
        "total_modexp": report["total_modexp"],
        "phases": report["phases"],
    }


def sweep(
    workers_list: list, sizes: list, bits_list: list
) -> list[dict]:
    """The full ablation grid, serial baseline included per cell."""
    records = []
    for bits in bits_list:
        for n in sizes:
            baseline = None
            for workers in workers_list:
                record = run_intersection_with_engine(n, bits, workers)
                if workers <= 1:
                    baseline = record["wall_s"]
                record["speedup_vs_serial"] = (
                    baseline / record["wall_s"]
                    if baseline is not None and record["wall_s"]
                    else None
                )
                records.append(record)
    return records


@register(
    "parallelism.batch-speedup",
    smoke={"bits": 512, "batches": [32, 96], "max_workers": 2},
    full={"bits": 1024, "batches": [32, 128, 512], "max_workers": 4},
    source="benchmarks/bench_parallelism_ablation.py",
    summary="Raw batch modexp through the process pool vs the model's "
            "ideal 1/P, pool startup reported separately.",
    regress_on=("parallel_s",),
)
def batch_speedup(ctx) -> list[dict]:
    """Measure parallel_pow speedup at growing batch sizes."""
    group = QRGroup.for_bits(ctx.param("bits"))
    exponent = group.random_exponent(ctx.rng)
    workers = min(ctx.param("max_workers"), os.cpu_count() or 1)
    records = []
    for batch in ctx.param("batches"):
        xs = [group.random_element(ctx.rng) for _ in range(batch)]
        result = measure_speedup(xs, exponent, group.p, processors=workers)
        records.append({
            "id": f"batch{batch}",
            "batch": batch,
            "workers": workers,
            "ideal_speedup": result.ideal,
            "metrics": {
                "sequential_s": round(result.sequential_s, 6),
                "parallel_s": round(result.parallel_s, 6),
                "pool_startup_s": round(result.pool_startup_s, 6),
                "speedup": round(result.speedup, 3),
            },
        })
    return records


@register(
    "parallelism.engine-sweep",
    smoke={"workers": [1, 2], "sizes": [64], "bits": [256]},
    full={"workers": [1, 2, 4], "sizes": [64, 512], "bits": [256, 512]},
    source="benchmarks/bench_parallelism_ablation.py",
    summary="End-to-end intersection through the party state machines "
            "with a shared process-pool engine: workers x n x bits.",
    regress_on=("wall_s",),
)
def engine_sweep(ctx) -> list[dict]:
    """Run the real-protocol engine sweep; one record per grid cell."""
    cpus = os.cpu_count() or 1
    workers_list = sorted({min(w, cpus) for w in ctx.param("workers")})
    raw = sweep(workers_list, ctx.param("sizes"), ctx.param("bits"))
    records = []
    for row in raw:
        assert row["total_modexp"] >= 2 * row["n"]
        records.append({
            "id": f"w{row['workers']}-n{row['n']}-k{row['bits']}",
            "protocol": row["protocol"],
            "n": row["n"],
            "bits": row["bits"],
            "workers": row["workers"],
            "total_modexp": row["total_modexp"],
            "metrics": {
                "wall_s": round(row["wall_s"], 6),
                "speedup_vs_serial": (
                    round(row["speedup_vs_serial"], 3)
                    if row["speedup_vs_serial"] is not None else None
                ),
            },
        })
    return records
