"""Area ``incremental`` — repeated queries through the Catalog API.

The repeated-query claim the Catalog/Peer redesign makes: after one
full run, a query over a churned table costs O(|delta|) modexp work,
not O(|V|).  This area measures exactly that crossover — a sweep of
churn fractions over a fixed table, each fraction timing (a) the
delta query through a warm :class:`repro.Catalog` pair and (b) a full
re-run over the same mutated tables — and records the speedup.  Tiny
deltas should sit far above 1x (the acceptance floor for the 1%
point is 5x at |V|=2000); at 50% churn the delta path's bookkeeping
approaches the full run and the ratio flattens toward 1, which is
the honest shape of the tradeoff, not a regression.
"""

from __future__ import annotations

import random
import time

from ..registry import register

__all__ = ["sweep_fractions"]


def _tables(n: int) -> tuple[list[str], list[str]]:
    """Two tables with a 50% overlap, |V| = n each."""
    half = n // 2
    common = [f"common-{i}" for i in range(half)]
    v_r = common + [f"r-only-{i}" for i in range(n - half)]
    v_s = common + [f"s-only-{i}" for i in range(n - half)]
    return v_r, v_s


def _churn(catalog, prefix: str, k: int, victims: list[str]) -> None:
    """Stage ``k`` inserts and ``k`` deletes on one catalog."""
    for i in range(k):
        catalog.insert(f"{prefix}-new-{i}")
    for value in victims[:k]:
        catalog.delete(value)


def sweep_fractions(
    n: int,
    fractions: list[float],
    bits: int,
    protocol: str,
    rng: random.Random,
) -> list[dict]:
    """One record per churn fraction: delta vs full-rerun wall time.

    Every fraction gets fresh catalogs (so one point's committed
    delta never warms the next), one full query to establish the
    incremental state, ``k = max(1, n*fraction)`` staged inserts plus
    ``k`` deletes per side, and then two timed runs over identical
    mutated tables: the delta query on the warm pair and a cold full
    exchange on a second pair.  Both answers must agree — a fast
    wrong answer is not a speedup.
    """
    import repro

    v_r, v_s = _tables(n)
    records = []
    for fraction in fractions:
        k = max(1, int(n * fraction))
        seed_r, seed_s = rng.getrandbits(64), rng.getrandbits(64)

        cat_r = repro.open_catalog(list(v_r), bits=bits, seed=seed_r)
        cat_s = repro.open_catalog(list(v_s), bits=bits, seed=seed_s)
        peer = cat_r.pair(cat_s)
        started = time.perf_counter()
        peer.query(protocol)
        full_s = time.perf_counter() - started

        _churn(cat_r, "r", k, v_r)
        _churn(cat_s, "s", k, v_s)
        started = time.perf_counter()
        delta = peer.query(protocol)
        delta_s = time.perf_counter() - started
        assert delta.mode == "delta"

        # The baseline: a cold full run over the same mutated tables.
        cold_r = repro.open_catalog(
            list(cat_r.data), bits=bits, seed=rng.getrandbits(64)
        )
        cold_s = repro.open_catalog(
            list(cat_s.data), bits=bits, seed=rng.getrandbits(64)
        )
        started = time.perf_counter()
        rerun = cold_r.pair(cold_s).query(protocol)
        rerun_s = time.perf_counter() - started

        records.append({
            "id": f"n{n}-frac-{fraction}",
            "fraction": fraction,
            "n": n,
            "delta_values": 2 * k,
            "answers_agree": delta.answer == rerun.answer,
            "metrics": {
                "elapsed_s": round(full_s + delta_s + rerun_s, 6),
                "full_first_s": round(full_s, 6),
                "delta_s": round(delta_s, 6),
                "full_rerun_s": round(rerun_s, 6),
                "speedup": round(rerun_s / delta_s, 3) if delta_s else 0.0,
            },
        })
    return records


@register(
    "incremental.delta-sweep",
    smoke={
        "n": 200, "bits": 96, "protocol": "intersection",
        "fractions": [0.01, 0.1],
    },
    full={
        "n": 2000, "bits": 128, "protocol": "intersection",
        "fractions": [0.001, 0.01, 0.1, 0.5],
    },
    source="benchmarks/bench_incremental.py",
    summary="Delta-query vs full-rerun wall time through the Catalog "
            "API, swept over churn fractions of |V| (the repeated-"
            "query crossover the incremental protocol buys).",
    regress_on=("delta_s", "full_rerun_s"),
)
def delta_sweep(ctx) -> list[dict]:
    """Sweep churn fractions; record the delta/full crossover."""
    return sweep_fractions(
        n=ctx.param("n"),
        fractions=list(ctx.param("fractions")),
        bits=ctx.param("bits"),
        protocol=ctx.param("protocol"),
        rng=ctx.rng,
    )
