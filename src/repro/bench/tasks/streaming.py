"""Area ``streaming`` — the chunked round pipeline over real TCP.

The measurement cores (``run_streamed``, ``sweep``) moved here from
``benchmarks/bench_streaming_pipeline.py``; the legacy script imports
them back for its pytest assertions (which CI's streaming-smoke job
still runs).
"""

from __future__ import annotations

import os
import queue
import random
import threading
import time

from ...analysis.instrumentation import MetricsRecorder
from ...crypto.engine import create_engine
from ...net import tcp
from ...protocols.parties import PublicParams
from ..registry import register

__all__ = ["run_streamed", "sweep"]

_PROTOCOL = "intersection"


class _DelayedEndpoint:
    """Adds a fixed per-frame send delay: a crude wide-area link."""

    def __init__(self, transport, delay_s: float):
        self._transport = transport
        self._delay_s = delay_s

    def send(self, message):
        time.sleep(self._delay_s)
        self._transport.send(message)

    def recv(self):
        return self._transport.recv()

    def settimeout(self, timeout):
        self._transport.settimeout(timeout)

    def close(self):
        self._transport.close()


def _values(n: int) -> tuple[list[str], list[str], set[str]]:
    half = n // 2
    v_r = [f"r{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    return v_r, v_s, {f"c{i}" for i in range(half)}


def run_streamed(
    n: int,
    bits: int,
    chunk_size: int | None,
    workers: int,
    link_delay_s: float = 0.0,
) -> dict:
    """One full TCP run of the intersection protocol; one JSON record.

    Both parties run in-process (server on a thread) with their own
    engine and recorder; the record aggregates the per-round pipeline
    entries from both sides.
    """
    params = PublicParams.for_bits(bits)
    v_r, v_s, expected = _values(n)
    s_recorder, r_recorder = MetricsRecorder(), MetricsRecorder()
    s_engine, r_engine = create_engine(workers), create_engine(workers)
    wrapper = None
    if link_delay_s:
        wrapper = lambda e: _DelayedEndpoint(e, link_delay_s)  # noqa: E731
    try:
        s_engine.warm_up()
        r_engine.warm_up()
        port_box: queue.Queue[int] = queue.Queue()

        def serve_s():
            tcp.serve(
                _PROTOCOL, v_s, params, random.Random("S"),
                ready_callback=port_box.put, chunk_size=chunk_size,
                engine=s_engine, recorder=s_recorder,
                endpoint_wrapper=wrapper,
            )

        thread = threading.Thread(target=serve_s)
        thread.start()
        port = port_box.get(timeout=30)
        start = time.perf_counter()
        answer = tcp.connect(
            _PROTOCOL, v_r, random.Random("R"), "127.0.0.1", port,
            chunk_size=chunk_size, engine=r_engine, recorder=r_recorder,
            endpoint_wrapper=wrapper,
        )
        wall_s = time.perf_counter() - start
        thread.join(timeout=60)
    finally:
        s_engine.close()
        r_engine.close()
    assert answer == expected

    pipeline = {
        **r_recorder.report().get("pipeline", {}),
        **s_recorder.report().get("pipeline", {}),
    }
    chunks = sum(entry["chunks"] for entry in pipeline.values())
    busy = sum(e["produce_s"] + e["send_s"] for e in pipeline.values())
    round_wall = sum(e["wall_s"] for e in pipeline.values())
    overlap_s = sum(e["overlap_s"] for e in pipeline.values())
    return {
        "protocol": _PROTOCOL,
        "n": n,
        "bits": bits,
        "chunk_size": chunk_size,
        "workers": workers,
        "link_delay_ms": link_delay_s * 1e3,
        "wall_s": wall_s,
        "chunks": chunks,
        "busy_s": busy,
        "overlap_s": overlap_s,
        "overlap_ratio": (overlap_s / round_wall) if round_wall else 0.0,
        "pipeline": pipeline,
    }


def sweep(
    sizes: list,
    chunk_sizes: list,
    workers_list: list,
    bits: int,
    link_delay_s: float,
) -> list[dict]:
    """The full grid; each streamed cell carries the speedup over the
    same-shape whole-round baseline."""
    records = []
    for n in sizes:
        for workers in workers_list:
            baseline = run_streamed(n, bits, None, workers, link_delay_s)
            records.append(baseline)
            for chunk_size in chunk_sizes:
                if chunk_size is None:
                    continue
                record = run_streamed(
                    n, bits, chunk_size, workers, link_delay_s
                )
                record["speedup_vs_whole_round"] = (
                    baseline["wall_s"] / record["wall_s"]
                    if record["wall_s"] else None
                )
                records.append(record)
    return records


@register(
    "streaming.pipeline-sweep",
    smoke={"sizes": [48], "chunks": [8], "workers": [1, 2], "bits": 256,
           "link_delay_ms": 2.0},
    full={"sizes": [96, 256], "chunks": [8, 32], "workers": [1, 2, 4],
          "bits": 256, "link_delay_ms": 2.0},
    source="benchmarks/bench_streaming_pipeline.py",
    summary="Chunked wire format over real TCP: chunk accounting and "
            "the crypto/wire overlap_ratio the pipelining buys.",
    regress_on=("wall_s",),
)
def pipeline_sweep(ctx) -> list[dict]:
    """Run the streaming grid; one record per cell, baselines included."""
    cpus = os.cpu_count() or 1
    workers_list = sorted({min(w, cpus) for w in ctx.param("workers")})
    raw = sweep(
        sizes=ctx.param("sizes"),
        chunk_sizes=ctx.param("chunks"),
        workers_list=workers_list,
        bits=ctx.param("bits"),
        link_delay_s=ctx.param("link_delay_ms") / 1e3,
    )
    records = []
    for row in raw:
        chunk = row["chunk_size"]
        if chunk is None:
            assert row["chunks"] == 0
        else:
            assert row["chunks"] > 0
        records.append({
            "id": (
                f"n{row['n']}-w{row['workers']}-"
                + ("whole" if chunk is None else f"c{chunk}")
            ),
            "n": row["n"],
            "bits": row["bits"],
            "workers": row["workers"],
            "chunk_size": chunk,
            "chunks": row["chunks"],
            "metrics": {
                "wall_s": round(row["wall_s"], 6),
                "busy_s": round(row["busy_s"], 6),
                "overlap_s": round(row["overlap_s"], 6),
                "overlap_ratio": round(row["overlap_ratio"], 4),
            },
        })
    return records
