"""Registered benchmark tasks, one module per area.

Importing a module here registers its tasks (the
:func:`repro.bench.registry.register` decorator runs at import);
:func:`repro.bench.registry.load_all_tasks` imports all of them.
Each module absorbs the measurement core of one or more legacy
``benchmarks/bench_*.py`` scripts — the scripts remain as pytest
suites asserting the paper's claims and as thin ``__main__`` shims
that forward to ``python -m repro.bench run <task>``.
"""
