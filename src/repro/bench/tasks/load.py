"""Area ``load`` — concurrent-session capacity of the serving stack.

The serving claim the event-loop refactor makes is not about one
session's speed (areas ``protocols``/``streaming`` own that) but about
*many at once*: a :class:`~repro.net.shard.ShardedProtocolServer`
holding hundreds to thousands of concurrent streaming sessions without
a per-session thread on the accept path. This area drives exactly that
- one client event loop launches every session together
(:func:`~repro.net.aio.connect_receiver_async`), all of them in flight
at once, against a sharded server - and records the *distribution* of
per-session completion latency (p50/p95/p99 via
:func:`~repro.bench.schema.percentiles`), because tail latency under
admission pressure is the thing a mean would hide.

Sessions refused with a typed busy wait out the server's retry hint
(jittered, :func:`~repro.net.session.busy_backoff_s`) and redial, so a
capacity smaller than the herd shows up as busy retries and a longer
tail rather than failures - the intended degradation mode.
"""

from __future__ import annotations

import asyncio
import random
import tempfile
import time

from ...net.aio import connect_receiver_async
from ...net.session import (
    ServerBusyError,
    SessionConfig,
    WorkerLost,
    busy_backoff_s,
)
from ...net.shard import ShardedProtocolServer
from ...protocols.parties import PublicParams
from ..registry import register
from ..schema import percentiles

__all__ = ["drive_sessions"]

#: Session-layer deadlines generous enough that a 1-core CI runner's
#: scheduling storms show up as tail latency, not spurious reconnects.
_LOAD_TIMEOUT_S = 30.0


async def _one_session(
    index: int,
    protocol: str,
    data: list,
    seed_rng: random.Random,
    port: int,
    config: SessionConfig,
    chunk_size: int,
) -> dict:
    """Run one client session to completion; busy refusals redial.

    Returns the session's latency (dialing to answer, busy waits
    included - that *is* the latency a refused client experiences) plus
    its answer and retry count.
    """
    rng = random.Random(seed_rng.getrandbits(64))
    started = time.perf_counter()
    busy_retries = 0
    worker_lost = 0
    while True:
        try:
            answer, stats = await connect_receiver_async(
                protocol, data, rng, "127.0.0.1", port,
                config=config, chunk_size=chunk_size,
            )
            break
        except ServerBusyError as exc:
            busy_retries += 1
            await asyncio.sleep(busy_backoff_s(exc.retry_after_s, rng))
        except WorkerLost as exc:
            # A mid-run kill landed on this session's shard: the typed
            # refusal carries the respawn hint; redial and resume.
            worker_lost += 1
            await asyncio.sleep(
                busy_backoff_s(exc.retry_after_s, rng, fallback_s=0.1)
            )
    return {
        "latency_ms": (time.perf_counter() - started) * 1000.0,
        "answer": sorted(answer),
        "busy_retries": busy_retries,
        "worker_lost": worker_lost + stats.worker_lost,
        "reconnects": stats.reconnects,
    }


def drive_sessions(
    sessions: int,
    shards: int,
    max_sessions: int,
    n: int,
    bits: int,
    chunk_size: int,
    process_workers: bool,
    rng: random.Random,
    kill_worker: bool = False,
) -> dict:
    """All ``sessions`` concurrent streaming runs; one summary dict.

    Every client is launched into the same event loop before any of
    them finishes, so the server sees the full herd at once;
    ``max_sessions`` is the per-shard admission ceiling, making
    ``shards * max_sessions`` the server's true concurrency and the
    rest of the herd exercise busy-refusal backoff.

    ``kill_worker`` (needs ``process_workers``) SIGKILLs shard 0's
    worker once a quarter of the herd has been routed: the herd must
    still finish - worker-lost refusals and reconnects, not failures -
    and the recovery cost lands in the same latency distribution the
    gate watches.
    """
    params = PublicParams.for_bits(bits)
    overlap = [f"common-{i}" for i in range(n // 2)]
    v_s = overlap + [f"sender-{i}" for i in range(n - n // 2)]
    v_r = overlap + [f"receiver-{i}" for i in range(n - n // 2)]
    expected = sorted(overlap)
    if kill_worker and not process_workers:
        raise ValueError("kill_worker needs process_workers=True")
    config = SessionConfig(timeout_s=_LOAD_TIMEOUT_S)
    # A killed worker can only resume its in-flight sessions from a
    # journal, so the kill variant runs journaled (fsync off - the
    # measurement is recovery, not disk durability).
    journal_tmp = (
        tempfile.TemporaryDirectory(prefix="bench-load-journal-")
        if kill_worker
        else None
    )
    server = ShardedProtocolServer(
        {"intersection": (v_s, params)},
        shards=shards,
        worker_processes=process_workers,
        config=config,
        max_sessions=max_sessions,
        chunk_size=chunk_size,
        busy_retry_hint_s=0.2,
        backlog=min(max(sessions, 16), 1024),
        journal_dir=journal_tmp.name if journal_tmp else None,
        journal_fsync=False,
        heartbeat_s=0.1,
        # A worker saturated by the full herd can starve its heartbeat
        # thread for whole seconds on a small CI box; this bench
        # measures capacity, not hang detection, so only a truly dead
        # worker (waitpid) should trigger the respawn path here.
        heartbeat_timeout_s=_LOAD_TIMEOUT_S,
    )

    async def _assassin() -> int | None:
        while server.routed < max(sessions // 4, 1):
            await asyncio.sleep(0.005)
        return server.kill_worker(0)

    async def _herd(port: int) -> list[dict]:
        seed_rng = random.Random(rng.getrandbits(64))
        killer = (
            asyncio.ensure_future(_assassin()) if kill_worker else None
        )
        tasks = [
            _one_session(
                i, "intersection", v_r, seed_rng, port, config, chunk_size
            )
            for i in range(sessions)
        ]
        outcomes = await asyncio.gather(*tasks)
        if killer is not None:
            assert await killer is not None, "assassin found no live worker"
        return outcomes

    try:
        with server:
            started = time.perf_counter()
            outcomes = asyncio.run(_herd(server.port))
            elapsed_s = time.perf_counter() - started
            respawns = server.respawns
    finally:
        if journal_tmp is not None:
            journal_tmp.cleanup()

    latencies = [o["latency_ms"] for o in outcomes]
    tails = percentiles(latencies)
    return {
        "completed": len(outcomes),
        "answers_ok": sum(1 for o in outcomes if o["answer"] == expected),
        "capacity": shards * max_sessions,
        "worker_kills": 1 if kill_worker else 0,
        "respawns": respawns,
        "metrics": {
            "elapsed_s": round(elapsed_s, 3),
            "p50_ms": round(tails["p50"], 3),
            "p95_ms": round(tails["p95"], 3),
            "p99_ms": round(tails["p99"], 3),
            "throughput_sps": round(len(outcomes) / elapsed_s, 3),
            "busy_retries": sum(o["busy_retries"] for o in outcomes),
            "worker_lost": sum(o["worker_lost"] for o in outcomes),
            "reconnects": sum(o["reconnects"] for o in outcomes),
        },
    }


@register(
    "load.async-sessions",
    smoke={
        "sessions": 128, "shards": 2, "max_sessions": 64,
        "n": 4, "bits": 96, "chunk_size": 2, "process_workers": True,
        "kill_worker": True,
    },
    full={
        "sessions": 1000, "shards": 4, "max_sessions": 250,
        "n": 4, "bits": 96, "chunk_size": 2, "process_workers": True,
        "kill_worker": False,
    },
    source="benchmarks/bench_load_sessions.py",
    summary="Concurrent streaming sessions through the sharded "
            "event-loop server; per-session latency percentiles "
            "(smoke kills one worker mid-herd and rides the respawn).",
    regress_on=("elapsed_s",),
)
def async_sessions(ctx) -> list[dict]:
    """Drive the whole herd at once; record the latency distribution."""
    sessions = ctx.param("sessions")
    shards = ctx.param("shards")
    record = drive_sessions(
        sessions=sessions,
        shards=shards,
        max_sessions=ctx.param("max_sessions"),
        n=ctx.param("n"),
        bits=ctx.param("bits"),
        chunk_size=ctx.param("chunk_size"),
        process_workers=ctx.param("process_workers"),
        rng=ctx.rng,
        kill_worker=ctx.param("kill_worker"),
    )
    return [{"id": f"s{sessions}x{shards}", "sessions": sessions,
             "shards": shards, **record}]
