"""Area ``costmodel`` — analytic cost tables, validated against code.

Absorbs the four appendix-A benches (gates, OT, communication,
computation tables) and the two section-6 benches (wire traffic vs the
bit formulas, modexp counts vs the operation formulas).
"""

from __future__ import annotations

import hashlib
import math

from ...analysis.calibration import calibrate
from ...analysis.costmodel import CostConstants, ProtocolCostModel
from ...analysis.instrumentation import counting_suite
from ...circuits.costmodel import CircuitCostModel
from ...crypto.ot import NaorPinkasCostModel, run_ot
from ...crypto.groups import QRGroup
from ...protocols.base import ProtocolSuite
from ...protocols.equijoin import run_equijoin
from ...protocols.intersection import run_intersection
from ...protocols.intersection_size import run_intersection_size
from ..registry import register

__all__ = []

#: Appendix A.2 paper rows — n: (input bits, table bits, ours bits).
_PAPER_COMM = {10**4: (1e9, 6.0e10, 3e7), 10**6: (1e11, 1.8e13, 3e9),
               10**8: (1e13, 4.9e15, 3e11)}
#: Appendix A.2 paper rows — n: (input C_e, eval C_r, ours C_e).
_PAPER_COMP = {10**4: (5e4, 4.7e8, 4e4), 10**6: (5e6, 1.5e11, 4e6),
               10**8: (5e8, 3.8e13, 4e8)}
#: Appendix A.1.2 paper rows — n: (m, gates); plus the brute-force row.
_PAPER_GATES = {10**4: (11, 2.3e8), 10**6: (19, 7.3e10), 10**8: (32, 1.9e13)}
_PAPER_BRUTE = {10**4: 6.3e9, 10**6: 6.3e13, 10**8: 6.3e17}


def _close(a: float, b: float, rel: float) -> bool:
    return math.isclose(a, b, rel_tol=rel)


@register(
    "costmodel.appendix-a-gates",
    smoke={},
    full={},
    source="benchmarks/bench_appendixA_gates.py",
    summary="A.1.2 circuit-size tables: partitioning m/f(n) rows and "
            "the brute-force row, rebuilt from the closed form.",
    regress_on=(),
)
def appendixA_gates(ctx) -> list[dict]:
    """Regenerate the A.1.2 gate-count tables and check the paper rows."""
    cm = CircuitCostModel()
    records = []
    for row in cm.circuit_size_table():
        pm, pf = _PAPER_GATES[row.n]
        assert row.m == pm and _close(row.gates, pf, 0.05)
        records.append({
            "id": f"partition-n{row.n:.0e}",
            "n": row.n,
            "m": row.m,
            "gates": row.gates,
            "paper_gates": pf,
        })
    for n, expected in _PAPER_BRUTE.items():
        gates = cm.brute_force_gates(n, n)
        assert _close(gates, expected, 0.01)
        records.append({
            "id": f"brute-n{n:.0e}",
            "n": n,
            "gates": gates,
            "paper_gates": expected,
        })
    return records


@register(
    "costmodel.appendix-a-ot",
    smoke={"bits": 256, "runs": 4},
    full={"bits": 1024, "runs": 10},
    source="benchmarks/bench_appendixA_ot.py",
    summary="A.1.1 Naor-Pinkas amortization (optimal l=8, 0.157 C_e, "
            "3200 bits) plus an executable DH-based OT timing.",
    regress_on=("ot_s",),
)
def appendixA_ot(ctx) -> list[dict]:
    """Sweep the batch parameter l and time one executable OT."""
    model = NaorPinkasCostModel(ce_over_cx=1000.0, k1_bits=100)
    best = model.optimal_l()
    assert best == 8
    assert abs(model.computation_cost(8) - 0.157) < 1e-3
    assert model.communication_bits(8) == 3200
    records = [
        {
            "id": f"l{l}",
            "l": l,
            "cot_ce": round(model.computation_cost(l), 4),
            "cot_bits": model.communication_bits(l),
            "optimal": l == best,
        }
        for l in (1, 2, 4, 6, 8, 10, 12)
    ]
    bits = ctx.param("bits")
    group = QRGroup.for_bits(bits)
    runs = ctx.param("runs")

    def transfer_batch():
        for _ in range(runs):
            out = run_ot(group, b"label-zero!!!!!!", b"label-one!!!!!!!",
                         ctx.rng.randrange(2), ctx.rng)
            assert out in (b"label-zero!!!!!!", b"label-one!!!!!!!")

    _, elapsed = ctx.timeit(transfer_batch)
    records.append({
        "id": f"executable-k{bits}",
        "bits": bits,
        "transfers": runs,
        "metrics": {"ot_s": round(elapsed / runs, 6)},
    })
    return records


@register(
    "costmodel.appendix-a-comparison",
    smoke={"cr_samples": 2000},
    full={"cr_samples": 20000},
    source="benchmarks/bench_appendixA_communication.py, "
           "benchmarks/bench_appendixA_computation.py",
    summary="A.2 circuit-vs-ours tables (bits and operation counts) "
            "with the 144-days-vs-0.5-hours headline and measured C_r.",
    regress_on=("cr_s",),
)
def appendixA_comparison(ctx) -> list[dict]:
    """Regenerate both A.2 tables and locate this machine's C_r."""
    cm = CircuitCostModel()
    records = []
    for row in cm.comparison_table():
        p_in, p_tab, p_ours = _PAPER_COMM[row.n]
        c_in, c_ev, c_ours = _PAPER_COMP[row.n]
        assert _close(row.circuit_input_bits, p_in, 0.03)
        assert _close(row.circuit_tables_bits, p_tab, 0.05)
        assert _close(row.ours_bits, p_ours, 0.03)
        assert _close(row.circuit_input_ce, c_in, 0.02)
        assert _close(row.circuit_eval_cr, c_ev, 0.05)
        assert _close(row.ours_ce, c_ours, 0.01)
        records.append({
            "id": f"n{row.n:.0e}",
            "n": row.n,
            "circuit_input_bits": row.circuit_input_bits,
            "circuit_tables_bits": row.circuit_tables_bits,
            "ours_bits": row.ours_bits,
            "circuit_input_ce": row.circuit_input_ce,
            "circuit_eval_cr": row.circuit_eval_cr,
            "ours_ce": row.ours_ce,
        })
    row_1m = {r.n: r for r in cm.comparison_table()}[10**6]
    circuit_days = cm.t1_transfer_days(row_1m.circuit_tables_bits)
    ours_hours = cm.t1_transfer_days(row_1m.ours_bits) * 24
    assert _close(circuit_days, 144, 0.05)
    assert _close(ours_hours, 0.5, 0.15)

    samples = ctx.param("cr_samples")
    payload = b"label-a" * 3 + b"label-b" * 3

    def prf_batch():
        for i in range(samples):
            hashlib.sha256(payload + i.to_bytes(4, "big")).digest()

    _, elapsed = ctx.timeit(prf_batch)
    records.append({
        "id": "headline",
        "circuit_t1_days": round(circuit_days, 1),
        "ours_t1_hours": round(ours_hours, 3),
        "paper": "144 days vs 0.5 hours",
        "metrics": {"cr_s": elapsed / samples},
    })
    return records


@register(
    "costmodel.section6-communication",
    smoke={"pairs": [[30, 30], [20, 60]], "bits": 128},
    full={"pairs": [[50, 50], [30, 90], [100, 20]], "bits": 128},
    source="benchmarks/bench_section6_communication.py",
    summary="S6.1: codewords on the wire match the (n_S + 2 n_R) k and "
            "equijoin bit formulas exactly.",
    regress_on=(),
)
def section6_communication(ctx) -> list[dict]:
    """Count codewords on real transcripts against the bit formulas."""
    bits = ctx.param("bits")

    def codewords(result) -> int:
        return sum(
            len(view.flat_integers())
            for view in (result.run.r_view, result.run.s_view)
        )

    records = []
    for n_r, n_s in ctx.param("pairs"):
        suite = ProtocolSuite.default(bits=bits, seed=n_r)
        size_run = run_intersection_size(
            [f"r{i}" for i in range(n_r)], [f"s{i}" for i in range(n_s)], suite
        )
        assert codewords(size_run) == n_s + 2 * n_r
        suite = ProtocolSuite.default(bits=bits, seed=n_r + 1)
        inter = run_intersection(
            [f"r{i}" for i in range(n_r)], [f"s{i}" for i in range(n_s)], suite
        )
        assert codewords(inter) == n_s + 3 * n_r
        suite = ProtocolSuite.default(bits=bits, seed=n_r + 2)
        join = run_equijoin(
            [f"r{i}" for i in range(n_r)],
            {f"s{i}": b"payload" for i in range(n_s)}, suite,
        )
        assert codewords(join) == n_r + 3 * n_r + n_s + n_s
        records.append({
            "id": f"r{n_r}-s{n_s}",
            "n_r": n_r,
            "n_s": n_s,
            "size_codewords": n_s + 2 * n_r,
            "intersection_codewords": n_s + 3 * n_r,
            "equijoin_codewords": 4 * n_r + 2 * n_s,
        })
    model = ProtocolCostModel(CostConstants())
    assert model.intersection_bits(10**6, 10**6) == 3 * 10**6 * 1024
    records.append({
        "id": "paper-scale-t1",
        "n": 10**6,
        "intersection_bits": model.intersection_bits(10**6, 10**6),
        "t1_hours": round(
            model.transfer_seconds(model.intersection_bits(10**6, 10**6))
            / 3600, 3
        ),
    })
    return records


@register(
    "costmodel.section6-computation",
    smoke={"pairs": [[20, 20], [10, 40]], "calib_bits": 256,
           "calib_samples": 4},
    full={"pairs": [[50, 50], [20, 80], [100, 10]], "calib_bits": 1024,
          "calib_samples": 20},
    source="benchmarks/bench_section6_computation.py",
    summary="S6.1: instrumented modexp counts equal the operation "
            "formulas; extrapolation to n=1M (paper: 2.22 h, P=10).",
    regress_on=("calibrate_s",),
)
def section6_computation(ctx) -> list[dict]:
    """Count modexps against the model, then extrapolate to paper scale."""
    model = ProtocolCostModel()
    records = []
    for n_r, n_s in ctx.param("pairs"):
        cs = counting_suite(bits=64)
        run_intersection(
            [f"r{i}" for i in range(n_r)], [f"s{i}" for i in range(n_s)],
            cs.suite,
        )
        predicted = model.intersection_ops(n_s, n_r)
        assert cs.counter.encryptions == predicted.encryptions
        inter_ops = cs.counter.encryptions

        cs = counting_suite(bits=64)
        run_equijoin(
            [f"s{i}" for i in range(n_r)],
            {f"s{i}": b"row" for i in range(n_s)}, cs.suite,
        )
        predicted_join = model.join_ops(n_s, n_r, min(n_r, n_s))
        assert cs.counter.encryptions == predicted_join.encryptions
        records.append({
            "id": f"r{n_r}-s{n_s}",
            "n_r": n_r,
            "n_s": n_s,
            "intersection_modexps": inter_ops,
            "equijoin_modexps": cs.counter.encryptions,
        })

    calibration, calib_s = ctx.timeit(lambda: calibrate(
        bits=ctx.param("calib_bits"), samples=ctx.param("calib_samples")
    ))
    measured = ProtocolCostModel(calibration.constants.with_processors(10))
    paper = ProtocolCostModel(CostConstants())
    n = 10**6
    theirs_h = paper.parallel_seconds(paper.intersection_seconds(n, n)) / 3600
    ours_h = (
        measured.parallel_seconds(measured.intersection_seconds(n, n)) / 3600
    )
    assert abs(theirs_h - 2.22) < 0.05
    records.append({
        "id": "extrapolate-1M",
        "n": n,
        "paper_hours": round(theirs_h, 3),
        "metrics": {
            "machine_hours": round(ours_h, 3),
            "calibrate_s": round(calib_s, 4),
        },
    })
    return records
