"""Area ``robustness`` — what fault tolerance costs and survives.

The measurement cores moved here from
``benchmarks/bench_fault_tolerance.py`` (which imports them back for
its pytest assertions). This area is the migrated emitter of
``BENCH_robustness.json``: the registry regenerates it at schema 2
via ``python -m repro.bench run robustness``.
"""

from __future__ import annotations

import random
import threading
import time

from ...net.chaos import ChaosSchedule, run_schedule
from ...net.faults import FaultInjector, FaultPlan
from ...net.journal import JournalDir, recover_sender_session
from ...net.serialization import encode
from ...net.session import RetryPolicy, SessionConfig
from ...net.tcp import connect_resumable_receiver, serve_resumable_sender
from ...protocols.parties import PublicParams, ReceiverMachine, SenderMachine
from ...protocols.spec import PROTOCOLS
from ..registry import register

__all__ = [
    "CHAOS_BENCH_SEEDS",
    "FAULT_RATES",
    "JOURNAL_MODES",
    "JOURNAL_SET_SIZES",
    "TrackingInjector",
    "build_crashed_journal",
    "run_once",
    "run_journaled",
    "session_config",
]

#: rate -> RNG seed. Runs are only a handful of frames, so seeds are
#: chosen (deterministically, once) such that the nonzero rates do
#: observably fire within the run.
FAULT_RATES = {0.0: 5, 0.05: 15, 0.10: 15, 0.20: 15}

#: journal mode label -> fsync flag (None = journaling disabled).
JOURNAL_MODES = {"off": None, "fsync-off": False, "fsync-on": True}
JOURNAL_SET_SIZES = (8, 32)

#: Fixed seeds for the legacy full chaos sweep; the harness task's
#: ``full`` params drive the same range.
CHAOS_BENCH_SEEDS = tuple(range(40))


class TrackingInjector(FaultInjector):
    """Keeps every wrapped endpoint so wire bytes survive reconnects."""

    def __init__(self, plan: FaultPlan):
        super().__init__(plan)
        self.endpoints: list = []

    def wrap(self, transport):
        """Wrap a transport, remembering the endpoint for accounting."""
        endpoint = super().wrap(transport)
        self.endpoints.append(endpoint)
        return endpoint

    __call__ = wrap

    @property
    def total_bytes_sent(self) -> int:
        """Bytes sent across every endpoint this injector wrapped."""
        return sum(e.bytes_sent for e in self.endpoints)

    @property
    def total_bytes_received(self) -> int:
        """Bytes received across every endpoint this injector wrapped."""
        return sum(e.bytes_received for e in self.endpoints)


def session_config() -> SessionConfig:
    """The aggressive-retry session config every robustness run uses."""
    return SessionConfig(
        timeout_s=0.3,
        retry=RetryPolicy(max_attempts=8, base_delay_s=0.01,
                          max_delay_s=0.05),
        max_reconnects=20,
        fin_grace_s=0.05,
    )


def run_once(rate: float, seed: int, bits: int) -> dict:
    """One resumable intersection run under an injected fault rate."""
    v_r = [f"r{i}" for i in range(12)] + [f"c{i}" for i in range(4)]
    v_s = [f"s{i}" for i in range(12)] + [f"c{i}" for i in range(4)]
    expected = {f"c{i}" for i in range(4)}

    plan = FaultPlan(seed=seed, drop_rate=rate / 2, corrupt_rate=rate / 2)
    injector = TrackingInjector(plan)
    config = session_config()
    params = PublicParams.for_bits(bits)
    ready = threading.Event()
    box: dict = {}

    def serve():
        box["server"] = serve_resumable_sender(
            "intersection", v_s, params, random.Random(seed + 1),
            ready_callback=lambda port: (
                box.__setitem__("port", port), ready.set()
            ),
            config=config,
        )

    thread = threading.Thread(target=serve)
    thread.start()
    assert ready.wait(timeout=10)
    started = time.perf_counter()
    answer, client_stats = connect_resumable_receiver(
        "intersection", v_r, random.Random(seed + 2), "127.0.0.1",
        box["port"], config=config, endpoint_wrapper=injector,
    )
    elapsed = time.perf_counter() - started
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert answer == expected, f"rate {rate}: wrong answer {answer!r}"
    _size_v_r, server_stats = box["server"]

    return {
        "protocol": "intersection",
        "fault_rate": rate,
        "seed": seed,
        "bits": bits,
        "n_r": len(v_r),
        "n_s": len(v_s),
        "elapsed_s": round(elapsed, 6),
        "client_bytes_sent": injector.total_bytes_sent,
        "client_bytes_received": injector.total_bytes_received,
        "retransmits": client_stats.retransmits
        + server_stats.retransmits,
        "reconnects": client_stats.reconnects,
        "replayed_frames": client_stats.replayed_frames
        + server_stats.replayed_frames,
        "faults": injector.stats.as_dict(),
    }


def _inputs(n: int):
    half = max(1, n // 4)
    v_r = [f"r{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    v_s = [f"s{i}" for i in range(n - half)] + [f"c{i}" for i in range(half)]
    return v_r, v_s, {f"c{i}" for i in range(half)}


def run_journaled(n: int, mode: str, bits: int, tmp_path) -> dict:
    """One clean-channel run with the given journal durability mode."""
    fsync = JOURNAL_MODES[mode]
    v_r, v_s, expected = _inputs(n)
    config = session_config()
    params = PublicParams.for_bits(bits)
    journal_kwargs = (
        {}
        if fsync is None
        else {
            "journal_dir": tmp_path / f"{mode}-{n}",
            "journal_fsync": fsync,
        }
    )
    ready = threading.Event()
    box: dict = {}

    def serve():
        box["server"] = serve_resumable_sender(
            "intersection", v_s, params, random.Random(11),
            ready_callback=lambda port: (
                box.__setitem__("port", port), ready.set()
            ),
            config=config, **journal_kwargs,
        )

    thread = threading.Thread(target=serve)
    thread.start()
    assert ready.wait(timeout=10)
    started = time.perf_counter()
    answer, client_stats = connect_resumable_receiver(
        "intersection", v_r, random.Random(12), "127.0.0.1", box["port"],
        config=config, **journal_kwargs,
    )
    elapsed = time.perf_counter() - started
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert answer == expected
    return {
        "protocol": "intersection",
        "journal": mode,
        "n": n,
        "bits": bits,
        "elapsed_s": round(elapsed, 6),
        "rounds": client_stats.rounds_computed,
    }


def build_crashed_journal(journal_dir: JournalDir, params, n: int,
                          session_id: int) -> int:
    """A sender journal frozen at the worst crash point.

    All inbound rounds consumed and the final outbound round journaled
    but never shipped - the maximum amount of state a restart has to
    rebuild by replay. Returns the number of journaled rounds.
    """
    spec = PROTOCOLS["intersection"]
    v_r, v_s, _expected = _inputs(n)
    receiver = ReceiverMachine(spec, v_r, params, random.Random("R"))
    sender = SenderMachine(spec, v_s, params, random.Random("S"))
    journal = journal_dir.open_session("sender", "intersection", session_id)
    inbound = outbound = 0
    for rnd in spec.rounds:
        producer, consumer = (
            (receiver, sender) if rnd.source == "R" else (sender, receiver)
        )
        wire = producer.produce(rnd).to_wire()
        if rnd.source == "R":
            journal.record_inbound(inbound, encode(wire))
            inbound += 1
        else:
            journal.record_outbound(outbound, encode(wire))
            outbound += 1
        consumer.consume(rnd, wire)
    journal.close()
    return inbound + outbound


@register(
    "robustness.fault-tolerance",
    smoke={"bits": 128, "rates": [0.0, 0.10]},
    full={"bits": 256, "rates": [0.0, 0.05, 0.10, 0.20]},
    source="benchmarks/bench_fault_tolerance.py",
    summary="Completion cost vs injected fault rate over real TCP: "
            "retransmits, reconnects, wire bytes; answers never change.",
    regress_on=("elapsed_s",),
)
def fault_tolerance(ctx) -> list[dict]:
    """Sweep fault rates through the resumable session layer."""
    bits = ctx.param("bits")
    records = []
    clean = None
    for rate in ctx.param("rates"):
        row = run_once(rate, seed=FAULT_RATES[rate], bits=bits)
        if rate == 0.0:
            assert row["faults"]["dropped"] == 0
            assert row["faults"]["corrupted"] == 0
            assert row["retransmits"] == 0
            clean = row
        elif clean is not None:
            # Every recovery is extra traffic on top of the protocol's
            # own frames.
            assert row["client_bytes_sent"] >= clean["client_bytes_sent"]
        records.append({
            "id": f"rate{rate:g}",
            "protocol": row["protocol"],
            "fault_rate": rate,
            "bits": bits,
            "n_r": row["n_r"],
            "n_s": row["n_s"],
            "metrics": {
                "elapsed_s": row["elapsed_s"],
                "client_bytes_sent": row["client_bytes_sent"],
                "client_bytes_received": row["client_bytes_received"],
                "retransmits": row["retransmits"],
                "reconnects": row["reconnects"],
                "replayed_frames": row["replayed_frames"],
                "faults_dropped": row["faults"]["dropped"],
                "faults_corrupted": row["faults"]["corrupted"],
            },
        })
    assert any(
        r["metrics"]["faults_dropped"] + r["metrics"]["faults_corrupted"] > 0
        for r in records if r["fault_rate"] > 0
    ), "no faults fired across the swept rates"
    return records


@register(
    "robustness.journal-overhead",
    smoke={"bits": 128, "sizes": [8]},
    full={"bits": 256, "sizes": [8, 32]},
    source="benchmarks/bench_fault_tolerance.py",
    summary="Crash durability cost per run: journal off vs fsync-off "
            "vs fsync-on across set sizes on a clean channel.",
    regress_on=("elapsed_s",),
)
def journal_overhead(ctx) -> list[dict]:
    """Sweep journal modes x set sizes; one record per cell."""
    import tempfile
    from pathlib import Path

    bits = ctx.param("bits")
    records = []
    with tempfile.TemporaryDirectory(prefix="bench-journal-") as tmp:
        for n in ctx.param("sizes"):
            for mode in JOURNAL_MODES:
                row = run_journaled(n, mode, bits, Path(tmp))
                records.append({
                    "id": f"{mode}-n{n}",
                    "protocol": row["protocol"],
                    "journal": mode,
                    "n": n,
                    "bits": bits,
                    "rounds": row["rounds"],
                    "metrics": {"elapsed_s": row["elapsed_s"]},
                })
    return records


@register(
    "robustness.kill-resume",
    smoke={"bits": 128, "sizes": [8]},
    full={"bits": 256, "sizes": [8, 32]},
    source="benchmarks/bench_fault_tolerance.py",
    summary="Time to rebuild a SenderSession from its journal after a "
            "crash at the worst point (all rounds journaled, none "
            "shipped).",
    regress_on=("recovery_s",),
)
def kill_resume(ctx) -> list[dict]:
    """Build a crashed journal per size and time its replay recovery."""
    import tempfile
    from pathlib import Path

    bits = ctx.param("bits")
    params = PublicParams.for_bits(bits)
    spec = PROTOCOLS["intersection"]
    records = []
    with tempfile.TemporaryDirectory(prefix="bench-resume-") as tmp:
        for n in ctx.param("sizes"):
            journal_dir = JournalDir(Path(tmp) / f"resume-{n}", fsync=False)
            rounds = build_crashed_journal(
                journal_dir, params, n, 0xBE0000 + n
            )
            _, v_s, _ = _inputs(n)
            stale = journal_dir.incomplete("sender", "intersection")
            assert len(stale) == 1
            started = time.perf_counter()
            session = recover_sender_session(
                stale[0], params,
                lambda v=v_s: spec.make_sender(
                    v, params, random.Random("S")
                ),
                config=session_config(), fsync=False,
            )
            elapsed = time.perf_counter() - started
            assert session.stats.rounds_recovered == rounds
            session.journal.close()
            records.append({
                "id": f"n{n}",
                "protocol": "intersection",
                "n": n,
                "bits": bits,
                "rounds_recovered": rounds,
                "metrics": {"recovery_s": round(elapsed, 6)},
            })
    return records


@register(
    "robustness.chaos-survival",
    smoke={"seeds": 6, "wall_timeout_s": 30.0},
    full={"seeds": 40, "wall_timeout_s": 30.0},
    source="benchmarks/bench_fault_tolerance.py",
    summary="Seeded composed-fault chaos schedules: outcome mix, "
            "restart counts, and the correct-or-typed-failure "
            "invariant on every run.",
    regress_on=("elapsed_s",),
)
def chaos_survival(ctx) -> list[dict]:
    """Drive the first N chaos schedules; per-seed records + summary."""
    records = []
    outcomes: dict = {}
    total_restarts = 0
    answers = 0
    for seed in range(ctx.param("seeds")):
        started = time.perf_counter()
        result = run_schedule(
            ChaosSchedule.generate(seed),
            wall_timeout_s=ctx.param("wall_timeout_s"),
        )
        elapsed = time.perf_counter() - started
        assert result.ok, result.describe()
        row = result.as_dict()
        # Error strings embed temp paths; keep only the exception type
        # so records stay byte-identical across reruns.
        for side in ("receiver", "sender"):
            error = row.get(f"{side}_error")
            if error:
                row[f"{side}_error"] = error.split("(", 1)[0]
        key = f"{row['receiver']}/{row['sender']}"
        outcomes[key] = outcomes.get(key, 0) + 1
        total_restarts += row["receiver_restarts"] + row["sender_restarts"]
        answers += 1 if row["receiver"] == "answer" else 0
        records.append({
            "id": f"seed{seed}",
            **row,
            "metrics": {"elapsed_s": round(elapsed, 6)},
        })
    assert answers >= len(records) // 2, (
        "chaos schedules should mostly still complete"
    )
    records.append({
        "id": "summary",
        "schedules": ctx.param("seeds"),
        "outcomes": outcomes,
        "total_restarts": total_restarts,
        "answers": answers,
    })
    return records


@register(
    "robustness.worker-failover",
    smoke={"trials": 4, "bits": 96},
    full={"trials": 16, "bits": 128},
    source="benchmarks/bench_worker_failover.py",
    summary="Client-observed recovery latency after a shard worker is "
            "SIGKILLed mid-session: kill-to-answer p50/p95/p99 under "
            "the supervisor's respawn-and-resume path.",
    regress_on=("recovery_p95_s",),
)
def worker_failover(ctx) -> list[dict]:
    """SIGKILL a supervised worker mid-session, time the recovery.

    Each trial runs one journaled chunk-streamed session against a
    single-shard supervised server, kills the worker the moment the
    front end has routed the session, and measures the wall time from
    the kill to the client's (byte-correct) answer - the respawn
    backoff, journal takeover, reconnect and replayed rounds all land
    inside it.
    """
    import asyncio
    import tempfile
    from pathlib import Path

    from ...net.aio import connect_receiver_async
    from ...net.shard import ShardedProtocolServer
    from ...net.server import ProtocolOffer
    from ..schema import percentiles

    bits = ctx.param("bits")
    trials = ctx.param("trials")
    params = PublicParams.for_bits(bits)
    v_r = [f"r{i}" for i in range(10)] + ["c0", "c1"]
    v_s = [f"s{i}" for i in range(10)] + ["c0", "c1"]
    expected = {"c0", "c1"}
    config = SessionConfig(
        timeout_s=2.0,
        retry=RetryPolicy(max_attempts=8, base_delay_s=0.02,
                          max_delay_s=0.2),
        max_reconnects=30,
        fin_grace_s=0.05,
    )

    async def trial(server, index: int) -> tuple[float, int]:
        routed_before = server.routed
        task = asyncio.ensure_future(
            connect_receiver_async(
                "intersection", v_r, random.Random(f"failover-{index}"),
                "127.0.0.1", server.port, config=config, chunk_size=1,
            )
        )
        # Kill the instant the front end has spliced the session
        # through - the worker dies owning journaled in-flight rounds.
        while server.routed == routed_before:
            await asyncio.sleep(0.002)
        server.kill_worker(0)
        killed_at = time.perf_counter()
        answer, stats = await task
        recovery = time.perf_counter() - killed_at
        assert set(answer) == expected
        assert stats.reconnects >= 1, "kill landed after the session"
        return recovery, stats.worker_lost

    records = []
    with tempfile.TemporaryDirectory(prefix="bench-failover-") as tmp:
        server = ShardedProtocolServer(
            [ProtocolOffer.from_data(
                "intersection", v_s, params, seed="failover-s"
            )],
            shards=1,
            worker_processes=True,
            config=config,
            journal_dir=Path(tmp),
            max_sessions=4,
            restart_budget=trials + 4,
            heartbeat_s=0.05,
            respawn_backoff_s=0.05,
            chunk_size=1,
        ).start()
        try:
            samples = []
            worker_lost_total = 0
            for index in range(trials):
                recovery, lost = asyncio.run(trial(server, index))
                samples.append(recovery)
                worker_lost_total += lost
            respawns = server.respawns
        finally:
            server.shutdown(drain_timeout_s=2.0)
    dist = percentiles(samples)
    records.append({
        "id": f"kill-resume-x{trials}",
        "protocol": "intersection",
        "trials": trials,
        "bits": bits,
        "shards": 1,
        "respawns": respawns,
        "worker_lost_notices": worker_lost_total,
        "metrics": {
            "recovery_p50_s": round(dist["p50"], 6),
            "recovery_p95_s": round(dist["p95"], 6),
            "recovery_p99_s": round(dist["p99"], 6),
            "recovery_max_s": round(max(samples), 6),
        },
    })
    return records
