"""Area ``attacks`` — the paper's negative results, measured.

Absorbs ``bench_naive_attack.py`` (S3.1 dictionary attack) and
``bench_sorting_ablation.py`` (footnote-3 positional attack). The
switchable-reorder protocol lives here so both the legacy pytest
module and ``make_experiments_report.py`` import one copy.
"""

from __future__ import annotations

from ...net.runner import ProtocolRun
from ...protocols.audit import audit_view
from ...protocols.base import ProtocolSuite, sorted_ciphertexts
from ...protocols.intersection import run_intersection
from ...protocols.naive_hash import dictionary_attack, run_naive_intersection
from ...workloads.generator import overlapping_sets
from ..registry import register

__all__ = ["intersection_size_run"]


def intersection_size_run(v_r, v_s, suite, reorder_z_r: bool):
    """The S5.1 size protocol with the step-4(b) reordering switchable.

    Returns ``(size, recovered, run)``: the computed intersection size,
    the set R recovers via the positional attack, and the transcript.
    With ``reorder_z_r=False`` the size-only protocol degrades to the
    full intersection protocol — the paper's footnote-3 warning.
    """
    run = ProtocolRun(protocol="intersection_size_ablation")
    r_values = sorted(set(v_r), key=repr)
    s_values = sorted(set(v_s), key=repr)
    x_r = suite.hash_side("R", r_values)
    x_s = suite.hash_side("S", s_values)
    e_r = suite.cipher.sample_key(suite.rng_r)
    e_s = suite.cipher.sample_key(suite.rng_s)

    # R ships Y_R *unsorted* (paired with its own value order, which a
    # semi-honest R legitimately remembers).
    y_r = suite.cipher.encrypt_many(e_r, x_r)
    y_r_received = run.to_s("3:Y_R", y_r)

    y_s_received = run.to_r(
        "4a:Y_S", sorted_ciphertexts(suite.cipher.encrypt_many(e_s, x_s))
    )
    z_r = suite.cipher.encrypt_many(e_s, y_r_received)
    if reorder_z_r:
        z_r = sorted_ciphertexts(z_r)
    z_r_received = run.to_r("4b:Z_R", z_r)

    z_s = set(suite.cipher.encrypt_many(e_r, y_s_received))
    size = len(z_s & set(z_r_received))

    # R's positional attack: if Z_R came back in Y_R order, position i
    # of Z_R corresponds to R's value i.
    recovered = {
        r_values[i] for i, z in enumerate(z_r_received) if z in z_s
    }
    return size, recovered, run


@register(
    "attacks.naive-dictionary",
    smoke={"bits": 128, "domain": 200, "n_s": 40, "n_r": 25},
    full={"bits": 256, "domain": 400, "n_s": 80, "n_r": 50},
    source="benchmarks/bench_naive_attack.py",
    summary="S3.1: dictionary attack recovers 100% of V_S from the "
            "naive hash protocol and 0% from ours.",
    regress_on=("attack_s",),
)
def naive_dictionary(ctx) -> list[dict]:
    """Run the attack against both protocols over the same domain."""
    bits = ctx.param("bits")
    suite = ProtocolSuite.default(bits=bits, seed=31)
    domain = [f"ssn-{i:05d}" for i in range(ctx.param("domain"))]
    v_s = domain[100:100 + ctx.param("n_s")]
    v_r = domain[: ctx.param("n_r")]

    naive = run_naive_intersection(v_r, v_s, suite)
    recovered_naive, naive_s = ctx.timeit(
        lambda: dictionary_attack(naive.observed_hashes, domain, suite.hash)
    )
    assert recovered_naive == set(v_s)

    secure = run_intersection(v_r, v_s, suite)
    observed = set(secure.run.r_view.flat_integers())
    recovered_secure, secure_s = ctx.timeit(
        lambda: dictionary_attack(observed, domain, suite.hash)
    )
    assert recovered_secure == set()

    return [
        {
            "id": "naive",
            "protocol": "naive-hash",
            "domain": len(domain),
            "recovered": len(recovered_naive),
            "of": len(v_s),
            "metrics": {"attack_s": round(naive_s, 6)},
        },
        {
            "id": "secure",
            "protocol": "intersection-s33",
            "domain": len(domain),
            "recovered": len(recovered_secure),
            "of": len(v_s),
            "metrics": {"attack_s": round(secure_s, 6)},
        },
    ]


@register(
    "attacks.sorting-ablation",
    smoke={"bits": 128, "n_r": 20, "n_s": 25, "overlap": 9},
    full={"bits": 256, "n_r": 40, "n_s": 50, "overlap": 18},
    source="benchmarks/bench_sorting_ablation.py",
    summary="Footnote 3: skipping the 4(b) reorder lets R's positional "
            "attack recover the full intersection; the audit flags it.",
    regress_on=(),
)
def sorting_ablation(ctx) -> list[dict]:
    """Run the size protocol with and without the 4(b) reorder."""
    bits = ctx.param("bits")
    v_r, v_s, expected = overlapping_sets(
        ctx.param("n_r"), ctx.param("n_s"), ctx.param("overlap"), ctx.rng
    )
    records = []
    for reorder in (True, False):
        suite = ProtocolSuite.default(bits=bits, seed=8)
        size, recovered, run = intersection_size_run(
            v_r, v_s, suite, reorder_z_r=reorder
        )
        assert size == len(expected)
        if not reorder:
            assert recovered == expected
            report = audit_view(
                run.r_view, suite.group, suite.hash,
                counterpart_values=list(v_s),
            )
            failed = {c.name for c in report.failures()}
            assert any(name.startswith("sorted:") for name in failed)
            audit_flagged = True
        else:
            assert len(recovered & expected) < len(expected)
            audit_flagged = False
        records.append({
            "id": "reordered" if reorder else "unsorted",
            "reorder_z_r": reorder,
            "overlap": len(expected),
            "positionally_recovered": len(recovered & expected),
            "audit_flags_sorted_check": audit_flagged,
        })
    return records
