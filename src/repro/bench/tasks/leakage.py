"""Area ``leakage`` — S5.2 equijoin-size leakage characterization.

Absorbs ``bench_leakage_ablation.py``: the duplicate-distribution sweep
between the paper's two extremes, plus the live-protocol check that the
wire-visible overlap matrix equals the plaintext analysis.
"""

from __future__ import annotations

from ...analysis.leakage import leakage_profile
from ...db.multiset import ValueMultiset
from ...protocols.base import ProtocolSuite
from ...protocols.equijoin_size import run_equijoin_size
from ...workloads.generator import multiset_pair
from ..registry import register

__all__ = []


def _distinct_count_multisets(n: int, overlap: int):
    """Every value gets a unique duplicate count (the worst case)."""
    values_r = [f"v{i}" for i in range(n)]
    values_s = (
        [f"v{i}" for i in range(overlap)]
        + [f"s{i}" for i in range(n - overlap)]
    )
    ms_r = ValueMultiset.from_values(
        [v for i, v in enumerate(values_r) for _ in range(i + 1)]
    )
    ms_s = ValueMultiset.from_values(
        [v for i, v in enumerate(values_s) for _ in range(i + 1)]
    )
    return ms_r, ms_s


@register(
    "leakage.duplicate-distributions",
    smoke={"n": 20, "overlap": 8, "live_n": 12, "live_overlap": 5,
           "bits": 128},
    full={"n": 40, "overlap": 16, "live_n": 12, "live_overlap": 5,
          "bits": 128},
    source="benchmarks/bench_leakage_ablation.py",
    summary="S5.2: identified fraction from uniform duplicates (0.0) "
            "to all-distinct counts (1.0), Zipf points in between; "
            "live protocol leak equals the plaintext analysis.",
    regress_on=(),
)
def duplicate_distributions(ctx) -> list[dict]:
    """Sweep duplicate distributions and check the live protocol."""
    n, overlap = ctx.param("n"), ctx.param("overlap")
    records = []

    def profile_record(rec_id: str, ms_r, ms_s, **extra) -> dict:
        fraction = leakage_profile(ms_r, ms_s).identified_fraction(n)
        assert 0.0 <= fraction <= 1.0
        return {
            "id": rec_id,
            "n": n,
            "overlap": overlap,
            "identified_fraction": round(fraction, 4),
            **extra,
        }

    ms_r, ms_s = multiset_pair(n, n, overlap, ctx.rng, uniform_count=3)
    uniform = profile_record("uniform-d3", ms_r, ms_s, distribution="uniform")
    assert uniform["identified_fraction"] == 0.0
    records.append(uniform)

    for alpha in (2.5, 1.1):
        ms_r, ms_s = multiset_pair(n, n, overlap, ctx.rng, alpha=alpha)
        records.append(profile_record(
            f"zipf-a{alpha}", ms_r, ms_s, distribution=f"zipf({alpha})"
        ))

    ms_r, ms_s = _distinct_count_multisets(n, overlap)
    distinct = profile_record(
        "all-distinct", ms_r, ms_s, distribution="distinct-counts"
    )
    assert distinct["identified_fraction"] == 1.0
    records.append(distinct)

    live_n = ctx.param("live_n")
    ms_r, ms_s = multiset_pair(
        live_n, live_n, ctx.param("live_overlap"), ctx.rng
    )
    suite = ProtocolSuite.default(bits=ctx.param("bits"), seed=6)
    result = run_equijoin_size(ms_r, ms_s, suite)
    profile = leakage_profile(ms_r, ms_s)
    assert result.partition_overlap == profile.matrix
    records.append({
        "id": "live-protocol",
        "n": live_n,
        "overlap": ctx.param("live_overlap"),
        "wire_matrix_equals_analysis": True,
        "partitions": len(profile.matrix),
    })
    return records
