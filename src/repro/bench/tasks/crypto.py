"""Area ``crypto`` — substrate costs: hashing, collisions, key size.

Absorbs ``bench_collision_bound.py`` and ``bench_keysize_ablation.py``.
"""

from __future__ import annotations

import math
import time

from ...analysis.calibration import calibrate
from ...crypto.groups import QRGroup
from ...crypto.hashing import (
    SquareHash,
    TryIncrementHash,
    collision_probability,
    find_collisions,
)
from ...protocols.base import ProtocolSuite
from ...protocols.intersection_size import run_intersection_size
from ..registry import register

__all__ = []  # tasks register by side effect; nothing to re-export


@register(
    "crypto.collision-bound",
    smoke={"cases": [[1024, 10**6], [512, 10**6]]},
    full={"cases": [[1024, 10**6], [1024, 10**4], [512, 10**6], [2048, 10**6]]},
    source="benchmarks/bench_collision_bound.py",
    summary="S3.2.2: Pr[hash collision] at the paper's parameters "
            "(paper: ~1e-295 at k=1024, n=1e6).",
    regress_on=(),
)
def collision_bound(ctx) -> list[dict]:
    """Recompute the S3.2.2 collision bound; pure math, no timing."""
    records = []
    for bits, n in ctx.param("cases"):
        domain = 2**bits // 2
        p = collision_probability(n, domain)
        records.append({
            "id": f"k{bits}-n{n:.0e}",
            "bits": bits,
            "n": n,
            "log10_pr_collision": (
                round(math.log10(p), 2) if p > 0 else None
            ),
            "paper": "~1e-295 at k=1024, n=1e6",
        })
    return records


@register(
    "crypto.hash-throughput",
    smoke={"bits": 256, "values": 50, "check_values": 1000},
    full={"bits": 1024, "values": 300, "check_values": 10_000},
    source="benchmarks/bench_collision_bound.py",
    summary="Try-and-increment hash into QR_p and the sort-based "
            "collision check the bound justifies.",
    regress_on=("hash_elapsed_s", "check_elapsed_s"),
)
def hash_throughput(ctx) -> list[dict]:
    """Time hashing + the duplicate check at the chosen modulus size."""
    bits = ctx.param("bits")
    count = ctx.param("values")
    group = QRGroup.for_bits(bits)
    hash_fn = TryIncrementHash(group)
    values = [f"value-{i}" for i in range(count)]
    _, hash_s = ctx.timeit(lambda: hash_fn.hash_set(values))
    n_check = ctx.param("check_values")
    hashes = [group.random_element(ctx.rng) for _ in range(n_check)]
    collisions, check_s = ctx.timeit(lambda: find_collisions(hashes))
    return [{
        "id": f"k{bits}",
        "bits": bits,
        "hashed_values": count,
        "checked_values": n_check,
        "collisions_found": len(collisions),
        "metrics": {
            "hash_elapsed_s": round(hash_s, 6),
            "check_elapsed_s": round(check_s, 6),
        },
    }]


@register(
    "crypto.hash-construction",
    smoke={"bits": 256, "values": 60},
    full={"bits": 1024, "values": 300},
    source="benchmarks/bench_keysize_ablation.py",
    summary="DESIGN.md choice 1: try-and-increment vs hash-and-square "
            "constructions for hashing into QR_p.",
    regress_on=("try_increment_s", "square_s"),
)
def hash_construction(ctx) -> list[dict]:
    """Time both hash-into-QR constructions on the same value set."""
    group = QRGroup.for_bits(ctx.param("bits"))
    values = [f"v{i}" for i in range(ctx.param("values"))]
    timings = {}
    for name, cls in (("try_increment", TryIncrementHash),
                      ("square", SquareHash)):
        hash_fn = cls(group)
        out, elapsed = ctx.timeit(lambda h=hash_fn: h.hash_set(values))
        assert all(x in group for x in out)
        timings[name] = elapsed
    return [{
        "id": f"k{ctx.param('bits')}",
        "bits": ctx.param("bits"),
        "values": len(values),
        "metrics": {
            "try_increment_s": round(timings["try_increment"], 6),
            "square_s": round(timings["square"], 6),
        },
    }]


@register(
    "crypto.keysize-ablation",
    smoke={"sizes": [128, 256], "n": 8, "samples": 3},
    full={"sizes": [256, 512, 1024, 2048], "n": 24, "samples": 8},
    source="benchmarks/bench_keysize_ablation.py",
    summary="Section 6's k=1024 design point ablated: C_e is "
            "superlinear in k, wire bits linear in k.",
    regress_on=("ce_s", "run_s"),
)
def keysize_ablation(ctx) -> list[dict]:
    """Sweep the modulus size through a real intersection-size run."""
    n = ctx.param("n")
    records = []
    for bits in ctx.param("sizes"):
        ce = calibrate(bits=bits, samples=ctx.param("samples")).constants.ce_seconds
        suite = ProtocolSuite.default(bits=bits, seed=bits)
        v_r = [f"r{i}" for i in range(n)]
        v_s = [f"s{i}" for i in range(n // 2)] + v_r[: n - n // 2]
        started = time.perf_counter()
        result = run_intersection_size(v_r, v_s, suite)
        elapsed = time.perf_counter() - started
        assert result.size == n - n // 2
        records.append({
            "id": f"k{bits}",
            "bits": bits,
            "n": n,
            "wire_bytes": result.run.total_bytes,
            "metrics": {
                "ce_s": round(ce, 6),
                "run_s": round(elapsed, 6),
            },
        })
    return records
