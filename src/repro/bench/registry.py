"""The benchmark task registry: named tasks, one lookup surface.

A :class:`BenchTask` is a named, parameterized experiment —
``<area>.<name>`` (the area prefix groups tasks into one
``BENCH_<area>.json`` artifact each). Task modules under
:mod:`repro.bench.tasks` register themselves at import time via the
:func:`register` decorator; :func:`load_all_tasks` imports them all,
and the CLI resolves ``run <task|area|all>`` through
:func:`select_tasks`.
"""

from __future__ import annotations

import difflib
import importlib
import pkgutil
import re
from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = [
    "BenchTask",
    "DuplicateTaskError",
    "UnknownTaskError",
    "all_tasks",
    "areas",
    "get_task",
    "load_all_tasks",
    "register",
    "select_tasks",
]

#: Task names are ``<area>.<task>``, kebab-case on both sides.
_NAME_RE = re.compile(r"^[a-z][a-z0-9-]*\.[a-z][a-z0-9-]*$")


class DuplicateTaskError(ValueError):
    """Raised when two tasks register under the same name."""


class UnknownTaskError(KeyError):
    """Raised when a selector matches neither a task nor an area."""

    def __init__(self, selector: str, candidates: list[str]):
        self.selector = selector
        self.candidates = candidates
        hint = f"; did you mean {', '.join(candidates)}?" if candidates else ""
        super().__init__(
            f"no task or area named {selector!r}{hint} "
            "(see `python -m repro.bench list`)"
        )

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        """The plain message (KeyError would repr-quote it)."""
        return self.args[0]


@dataclass(frozen=True)
class BenchTask:
    """One registered experiment.

    ``fn(ctx)`` receives a :class:`~repro.bench.runner.RunContext`
    (seeded rng + the mode's params) and returns a list of record
    dicts per the :mod:`repro.bench.schema` discipline: a unique
    ``id``, deterministic facts at the top level, measured values
    under ``metrics``.
    """

    #: Full name, ``<area>.<task>``.
    name: str
    #: The experiment body; returns the record list.
    fn: Callable[[Any], list[dict]]
    #: Tiny parameters: seconds-scale, used by CI and the smoke tests.
    smoke: Mapping[str, Any]
    #: Real parameters: the committed-trajectory scale.
    full: Mapping[str, Any]
    #: Optional override for the EXPERIMENTS.md report (default: full).
    report: Mapping[str, Any] | None = None
    #: Record-shape version; bump when record fields change meaning.
    schema: int = 1
    #: The legacy ``benchmarks/bench_*.py`` script this task absorbed.
    source: str = ""
    #: One-line description shown by ``list`` and in the report.
    summary: str = ""
    #: Metric keys the compare phase gates on (inside ``metrics``).
    regress_on: tuple[str, ...] = ("elapsed_s",)

    @property
    def area(self) -> str:
        """The artifact group: everything before the first dot."""
        return self.name.split(".", 1)[0]

    def params_for(self, mode: str) -> dict[str, Any]:
        """The parameter set for a run mode (report falls back to full)."""
        if mode == "smoke":
            chosen: Mapping[str, Any] = self.smoke
        elif mode == "full":
            chosen = self.full
        elif mode == "report":
            chosen = self.report if self.report is not None else self.full
        else:
            raise ValueError(f"unknown mode {mode!r}")
        return dict(chosen)


#: name -> task. Populated by :func:`register` at task-module import.
_REGISTRY: dict[str, BenchTask] = {}


def register(
    name: str,
    *,
    smoke: Mapping[str, Any],
    full: Mapping[str, Any],
    report: Mapping[str, Any] | None = None,
    schema: int = 1,
    source: str = "",
    summary: str = "",
    regress_on: tuple[str, ...] = ("elapsed_s",),
) -> Callable[[Callable], Callable]:
    """Decorator registering a task function under ``name``.

    Raises :class:`DuplicateTaskError` on a name collision and
    ``ValueError`` for names not shaped ``<area>.<task>``.
    """
    if not _NAME_RE.match(name):
        raise ValueError(
            f"task name {name!r} must be kebab-case '<area>.<task>'"
        )

    def wrap(fn: Callable) -> Callable:
        if name in _REGISTRY:
            raise DuplicateTaskError(
                f"benchmark task {name!r} is already registered "
                f"(by {_REGISTRY[name].fn.__module__})"
            )
        _REGISTRY[name] = BenchTask(
            name=name, fn=fn, smoke=smoke, full=full, report=report,
            schema=schema, source=source, summary=summary,
            regress_on=regress_on,
        )
        return fn

    return wrap


def load_all_tasks() -> None:
    """Import every module under :mod:`repro.bench.tasks` (idempotent)."""
    from . import tasks

    for info in pkgutil.iter_modules(tasks.__path__):
        if not info.name.startswith("_"):
            importlib.import_module(f"{tasks.__name__}.{info.name}")


def all_tasks() -> list[BenchTask]:
    """Every registered task, sorted by name."""
    load_all_tasks()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def areas() -> list[str]:
    """Every area with at least one registered task, sorted."""
    return sorted({task.area for task in all_tasks()})


def get_task(name: str) -> BenchTask:
    """Look one task up by full name."""
    load_all_tasks()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownTaskError(name, _close_matches(name)) from None


def _close_matches(selector: str) -> list[str]:
    """Likely-intended names for a typo'd selector, as a hint."""
    names = sorted(_REGISTRY)
    fragment = selector.split(".")[-1]
    hits = [n for n in names if fragment and fragment in n]
    for near in difflib.get_close_matches(selector, names, n=4):
        if near not in hits:
            hits.append(near)
    return hits[:4]


def select_tasks(selector: str) -> list[BenchTask]:
    """Resolve ``run``'s selector: a task name, an area, or ``all``.

    Comma-separated selectors union their matches (ordered, deduped).
    """
    load_all_tasks()
    chosen: dict[str, BenchTask] = {}
    for part in filter(None, (s.strip() for s in selector.split(","))):
        if part == "all":
            for task in all_tasks():
                chosen[task.name] = task
        elif part in _REGISTRY:
            chosen[part] = _REGISTRY[part]
        else:
            by_area = [t for t in all_tasks() if t.area == part]
            if not by_area:
                raise UnknownTaskError(part, _close_matches(part))
            for task in by_area:
                chosen[task.name] = task
    if not chosen:
        raise UnknownTaskError(selector, [])
    return sorted(chosen.values(), key=lambda t: t.name)
