"""The normalized ``BENCH_<area>.json`` result format.

One file per area, schema-tagged at both levels so the trajectory
stays diffable across PRs::

    {
      "schema": 2,                 # file format version (this module)
      "area": "robustness",
      "mode": "smoke",             # which parameter set produced it
      "seed": 20030609,
      "environment": {...},        # volatile: machine, sha, timestamp
      "tasks": [
        {
          "task": "robustness.fault-tolerance",
          "schema": 1,             # task's own record-shape version
          "source": "benchmarks/bench_fault_tolerance.py",
          "params": {...},
          "regress_on": ["elapsed_s"],
          "records": [
            {"id": "rate-0.05", ..., "metrics": {"elapsed_s": 0.41}}
          ]
        }
      ]
    }

Record discipline: every record carries a stable ``id`` (unique within
its task), deterministic facts (counts, byte totals, answers — identical
across reruns at the same seed and params) at the top level, and noisy
measured values under ``"metrics"``. The compare phase diffs only the
metrics named by ``regress_on``; the determinism test diffs everything
*except* metrics and the environment block (:func:`strip_volatile`).

Schema history: ``1`` was the flat ``{"benchmark", "records"}`` shape
the pre-harness ``bench_fault_tolerance.py`` emitted; ``2`` is the
registry format above.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

__all__ = [
    "FILE_SCHEMA",
    "bench_filename",
    "capture_environment",
    "dump_payload",
    "load_payload",
    "percentiles",
    "strip_volatile",
]

#: Version tag written at the top of every ``BENCH_<area>.json``.
FILE_SCHEMA = 2


def bench_filename(area: str) -> str:
    """The committed artifact name for an area: ``BENCH_<area>.json``."""
    return f"BENCH_{area}.json"


def _git_sha() -> str | None:
    """The current commit sha, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def capture_environment() -> dict[str, Any]:
    """Everything volatile about the machine that produced a run.

    Kept in one block so comparisons and determinism checks can drop
    it wholesale — two runs of the same code at the same seed differ
    only here (and in measured metrics).
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def strip_volatile(payload: dict) -> dict:
    """A deep copy of a bench payload minus environment and metrics.

    What remains must be byte-identical across reruns at the same seed
    and params — the determinism contract the harness tests enforce.
    """
    clean = json.loads(json.dumps(payload))
    clean.pop("environment", None)
    for task in clean.get("tasks", []):
        for record in task.get("records", []):
            record.pop("metrics", None)
    return clean


def percentiles(
    samples: Any, points: tuple[float, ...] = (50, 95, 99)
) -> dict[str, float]:
    """Latency-distribution summary for a record's ``"metrics"`` block.

    Returns ``{"p50": ..., "p95": ..., "p99": ...}`` (keys follow
    ``points``), computed by linear interpolation between closest
    ranks on the sorted samples - the same convention as
    ``numpy.percentile``'s default, but dependency-free. Load-style
    tasks record distributions this way instead of means alone: a
    mean hides exactly the tail the concurrency benches exist to
    watch.

    Raises:
        ValueError: no samples, or a point outside [0, 100].
    """
    data = sorted(float(sample) for sample in samples)
    if not data:
        raise ValueError("percentiles need at least one sample")
    summary: dict[str, float] = {}
    for point in points:
        if not 0 <= point <= 100:
            raise ValueError(f"percentile point out of range: {point}")
        rank = (len(data) - 1) * point / 100.0
        lo = math.floor(rank)
        hi = math.ceil(rank)
        value = data[lo] + (data[hi] - data[lo]) * (rank - lo)
        summary[f"p{point:g}"] = value
    return summary


def dump_payload(payload: dict, path: Path | str) -> None:
    """Write a payload as sorted, indented JSON with a trailing newline."""
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    Path(path).write_text(text, encoding="utf-8")


def load_payload(path: Path | str) -> dict:
    """Read one ``BENCH_<area>.json`` back."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
