"""``python -m repro.bench`` — the harness command line.

Phases::

    list                       show registered tasks (name, area, summary)
    run <task|area|all>        execute a subset, emit BENCH_<area>.json
    compare --baseline <ref>   diff a run against committed numbers
    report                     regenerate the EXPERIMENTS.md report

``run`` selectors take a full task name (``robustness.chaos-survival``),
an area (``robustness``), ``all``, or a comma-separated mix. Exit
codes: 0 success, 1 regression found (``compare``), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .compare import (
    DEFAULT_MIN_ABS,
    DEFAULT_THRESHOLD,
    Comparison,
    compare_payloads,
    load_baseline,
)
from .registry import UnknownTaskError, all_tasks, select_tasks
from .runner import run_selection, write_bench_files
from .schema import load_payload

__all__ = ["build_parser", "legacy_main", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.bench`` argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Unified benchmark harness (see docs/BENCHMARKS.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="show registered tasks")
    p.add_argument("--area", default=None, help="only this area")

    p = sub.add_parser("run", help="execute tasks, emit BENCH_<area>.json")
    p.add_argument(
        "selector",
        help="task name, area, 'all', or a comma-separated mix",
    )
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke", dest="mode", action="store_const", const="smoke",
        help="tiny parameters (CI-sized; the default)",
    )
    mode.add_argument(
        "--full", dest="mode", action="store_const", const="full",
        help="real parameters (the committed-trajectory scale)",
    )
    mode.add_argument(
        "--mode", dest="mode", choices=("smoke", "full", "report"),
        help="explicit parameter-set choice",
    )
    p.set_defaults(mode="smoke")
    p.add_argument("--seed", type=int, default=20030609,
                   help="run seed (per-task streams derive from it)")
    p.add_argument("--warmup", type=int, default=None,
                   help="discarded timing calls (default: 0 smoke, 1 else)")
    p.add_argument("--repeat", type=int, default=None,
                   help="timed calls, best kept (default: 1 smoke, 3 else)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the single produced area file here "
                        "(error if the selection spans areas)")
    p.add_argument("--out-dir", default=".", metavar="DIR",
                   help="directory for BENCH_<area>.json files (default .)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-task progress lines")

    p = sub.add_parser(
        "compare", help="diff BENCH files against a baseline"
    )
    p.add_argument(
        "--baseline", default="HEAD",
        help="git ref holding the committed numbers, or a directory of "
             "BENCH_<area>.json files (default HEAD)",
    )
    p.add_argument(
        "--current", default=".", metavar="DIR",
        help="directory holding the freshly produced files (default .)",
    )
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   help="fail above this fractional slowdown (default 0.20)")
    p.add_argument("--min-abs", type=float, default=DEFAULT_MIN_ABS,
                   help="ignore absolute drifts at or below this many "
                        "seconds (default 0.01)")
    p.add_argument("--area", action="append", default=None,
                   help="only compare these areas (repeatable)")
    p.add_argument("--no-fail", action="store_true",
                   help="report regressions but exit 0 (first-run CI)")

    p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write here (default stdout)")
    p.add_argument("--mode", choices=("smoke", "full", "report"),
                   default="report", help="parameter scale (default report)")
    p.add_argument("--seed", type=int, default=20030609)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    tasks = all_tasks()
    if args.area:
        tasks = [t for t in tasks if t.area == args.area]
        if not tasks:
            print(f"repro.bench: no tasks in area {args.area!r}",
                  file=sys.stderr)
            return 2
    width = max(len(t.name) for t in tasks)
    for task in tasks:
        print(f"{task.name:<{width}}  {task.summary}")
    print(f"# {len(tasks)} tasks; run one, an area, or 'all'")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        tasks = select_tasks(args.selector)
    except UnknownTaskError as exc:
        print(f"repro.bench: {exc}", file=sys.stderr)
        return 2
    progress = None if args.quiet else (
        lambda line: print(line, file=sys.stderr, flush=True)
    )
    by_area = run_selection(
        tasks, mode=args.mode, seed=args.seed,
        warmup=args.warmup, repeat=args.repeat, progress=progress,
    )
    if args.out is not None:
        if len(by_area) != 1:
            print(
                f"repro.bench: --out needs a single-area selection, got "
                f"{sorted(by_area)}; use --out-dir",
                file=sys.stderr,
            )
            return 2
        from .schema import dump_payload

        (payload,) = by_area.values()
        dump_payload(payload, args.out)
        print(args.out)
        return 0
    for path in write_bench_files(by_area, args.out_dir):
        print(path)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    current_dir = Path(args.current)
    files = sorted(current_dir.glob("BENCH_*.json"))
    if args.area:
        wanted = set(args.area)
        files = [
            f for f in files
            if f.name[len("BENCH_"):-len(".json")] in wanted
        ]
    if not files:
        print(f"repro.bench: no BENCH_*.json under {current_dir}",
              file=sys.stderr)
        return 2
    comparison = Comparison(threshold=args.threshold, min_abs=args.min_abs)
    for path in files:
        current = load_payload(path)
        area = current.get("area", path.stem)
        baseline = load_baseline(args.baseline, area)
        if baseline is None:
            comparison.notes.append(
                f"{area}: no baseline in {args.baseline!r}; skipped"
            )
            continue
        compare_payloads(
            baseline, current, threshold=args.threshold,
            min_abs=args.min_abs, comparison=comparison,
        )
    print(comparison.describe())
    if not comparison.ok and not args.no_fail:
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .report import write_report

    text = write_report(mode=args.mode, seed=args.seed)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(args.out)
    else:
        sys.stdout.write(text)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def legacy_main(task_selector: str, argv: Sequence[str] | None = None) -> int:
    """Back-compat shim for ``python benchmarks/bench_<x>.py [args]``.

    Each legacy script forwards here with its registry selector; extra
    CLI args pass straight through to ``run`` (so e.g. ``--full`` or
    ``--seed 7`` keep working from the old entrypoints).
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    print(
        f"# legacy entrypoint -> python -m repro.bench run {task_selector}",
        file=sys.stderr,
    )
    return main(["run", task_selector, *argv])
