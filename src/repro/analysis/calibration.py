"""Measure this machine's primitive costs (``C_e``, ``C_h``, ``C_K``, ``C_s``).

The paper's constants come from 2001 hardware ([36]: 0.02 s per
1024-bit exponentiation on a Pentium III). To compare the model against
runs on the present machine, :func:`calibrate` times the actual
primitives - modular exponentiation in the chosen group, the domain
hash, one ``K`` encryption, and comparison-sort throughput - and
returns a :class:`~repro.analysis.costmodel.CostConstants` with the
measured values.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..crypto.ext_cipher import MultiplicativeExtCipher
from ..crypto.groups import QRGroup
from ..crypto.hashing import TryIncrementHash
from ..net.channel import LinkModel, T1_LINE
from .costmodel import CostConstants

__all__ = ["Calibration", "calibrate"]


def _time_per_call(fn, calls: int) -> float:
    """Average seconds per call over ``calls`` invocations."""
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls


@dataclass(frozen=True)
class Calibration:
    """Measured constants plus context about how they were measured."""

    constants: CostConstants
    bits: int
    samples: int

    def exponentiations_per_hour(self) -> float:
        """Comparable to the paper's '2e5 exponentiations per hour'."""
        return 3600.0 / self.constants.ce_seconds


def calibrate(
    bits: int = 1024,
    samples: int = 30,
    seed: int = 20030609,
    processors: int = 1,
    link: LinkModel = T1_LINE,
) -> Calibration:
    """Measure ``C_e``, ``C_h``, ``C_K`` and ``C_s`` on this machine.

    Args:
        bits: modulus size to calibrate for (matches the suite in use).
        samples: timing repetitions per primitive.
        seed: randomness seed (deterministic inputs, not timings).
        processors: value to record in the returned constants.
        link: link model to record in the returned constants.
    """
    rng = random.Random(seed)
    group = QRGroup.for_bits(bits)
    hash_fn = TryIncrementHash(group)
    k_cipher = MultiplicativeExtCipher(group)

    base = group.random_element(rng)
    exponent = group.random_exponent(rng)
    ce = _time_per_call(lambda: pow(base, exponent, group.p), samples)

    values = [f"calibration-{rng.randrange(10**9)}" for _ in range(samples)]
    values_iter = iter(values * 2)
    ch = _time_per_call(lambda: hash_fn.hash_value(next(values_iter)), samples)

    kappa = group.random_element(rng)
    payload = b"x" * min(32, k_cipher.capacity_bytes)
    ck = _time_per_call(lambda: k_cipher.encrypt(kappa, payload), samples)

    # C_s is defined through "sorting n items costs n lg n C_s".
    n = 4096
    items = [rng.randrange(group.p) for _ in range(n)]
    per_sort = _time_per_call(lambda: sorted(items), max(3, samples // 10))
    import math

    cs = per_sort / (n * math.log2(n))

    constants = CostConstants(
        ce_seconds=ce,
        ch_seconds=ch,
        ck_seconds=ck,
        cs_seconds=cs,
        k_bits=bits,
        k_prime_bits=bits,
        processors=processors,
        link=link,
    )
    return Calibration(constants=constants, bits=bits, samples=samples)
