"""Operation-counting wrappers, for validating the Section 6 model.

The cost model predicts *how many* encryptions and hashes each protocol
performs; these wrappers count the actual calls in a live run so the
benchmarks (and tests) can compare prediction against reality exactly,
independent of machine speed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..crypto.commutative import PowerCipher
from ..crypto.ext_cipher import BlockExtCipher
from ..crypto.groups import QRGroup
from ..crypto.hashing import DomainHash, TryIncrementHash, Value
from ..protocols.base import ProtocolSuite

__all__ = ["OperationCounter", "CountingSuite", "counting_suite"]


@dataclass
class OperationCounter:
    """Tallies of primitive operations observed during a run."""

    encryptions: int = 0
    hashes: int = 0
    k_encryptions: int = 0

    def reset(self) -> None:
        """Zero all tallies (reuse the counter across runs)."""
        self.encryptions = 0
        self.hashes = 0
        self.k_encryptions = 0


class _CountingCipher(PowerCipher):
    """PowerCipher that counts every modular exponentiation."""

    def __init__(self, group: QRGroup, counter: OperationCounter):
        super().__init__(group)
        self._counter = counter

    def encrypt(self, key: int, x: int) -> int:
        self._counter.encryptions += 1
        return super().encrypt(key, x)

    def decrypt(self, key: int, y: int) -> int:
        self._counter.encryptions += 1
        return super().decrypt(key, y)

    def decrypt_many(self, key: int, ys):
        self._counter.encryptions += len(list(ys))
        return super().decrypt_many(key, ys)


class _CountingHash(DomainHash):
    """Delegating hash that counts every evaluation.

    Each party hashes its own set, so a value in both sets is hashed
    twice - exactly how the cost model's ``C_h (n_S + n_R)`` term
    counts it.
    """

    def __init__(self, inner: DomainHash, counter: OperationCounter):
        super().__init__(inner.group, inner.label)
        self._inner = inner
        self._counter = counter

    def hash_value(self, value: Value) -> int:
        self._counter.hashes += 1
        return self._inner.hash_value(value)


class _CountingExtCipher(BlockExtCipher):
    def __init__(self, group: QRGroup, counter: OperationCounter):
        super().__init__(group)
        self._counter = counter

    def encrypt(self, kappa: int, ext: bytes):
        self._counter.k_encryptions += 1
        return super().encrypt(kappa, ext)

    def decrypt(self, kappa: int, ciphertext):
        self._counter.k_encryptions += 1
        return super().decrypt(kappa, ciphertext)


@dataclass
class CountingSuite:
    """A protocol suite plus the counter wired into its primitives."""

    suite: ProtocolSuite
    counter: OperationCounter


def counting_suite(bits: int = 128, seed: int | None = 0) -> CountingSuite:
    """Build a suite whose cipher/hash/ext-cipher count their calls."""
    group = QRGroup.for_bits(bits)
    counter = OperationCounter()
    if seed is None:
        rng_r, rng_s = random.Random(), random.Random()
    else:
        rng_r, rng_s = random.Random(f"{seed}/R"), random.Random(f"{seed}/S")
    suite = ProtocolSuite(
        group=group,
        hash=_CountingHash(TryIncrementHash(group), counter),
        cipher=_CountingCipher(group, counter),
        ext_cipher=_CountingExtCipher(group, counter),
        rng_r=rng_r,
        rng_s=rng_s,
    )
    return CountingSuite(suite=suite, counter=counter)
