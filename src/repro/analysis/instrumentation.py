"""Operation counting and per-phase metrics, for the Section 6 model.

The cost model predicts *how many* encryptions and hashes each protocol
performs; these wrappers count the actual calls in a live run so the
benchmarks (and tests) can compare prediction against reality exactly,
independent of machine speed.

:class:`MetricsRecorder` adds the wall-clock dimension: named phase
timers plus modular-exponentiation counters that the TCP drivers, the
resumable sessions and the CLI all report as one JSON document, so the
Section 6 predicted-vs-measured comparison is a first-class output of
every run rather than a bench-only artifact. Wire an engine's
exponentiations in by passing :meth:`MetricsRecorder.count_modexp` as
the ``on_modexp`` callback of
:func:`repro.crypto.engine.create_engine`.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from ..crypto.commutative import PowerCipher
from ..crypto.engine import CryptoEngine
from ..crypto.ext_cipher import BlockExtCipher
from ..crypto.groups import QRGroup
from ..crypto.hashing import DomainHash, TryIncrementHash, Value
from ..protocols.base import ProtocolSuite

__all__ = [
    "OperationCounter",
    "CountingSuite",
    "counting_suite",
    "PhaseStats",
    "PipelineStats",
    "MetricsRecorder",
]


@dataclass
class OperationCounter:
    """Tallies of primitive operations observed during a run."""

    encryptions: int = 0
    hashes: int = 0
    k_encryptions: int = 0

    def reset(self) -> None:
        """Zero all tallies (reuse the counter across runs)."""
        self.encryptions = 0
        self.hashes = 0
        self.k_encryptions = 0


class _CountingCipher(PowerCipher):
    """PowerCipher that counts every modular exponentiation."""

    def __init__(
        self,
        group: QRGroup,
        counter: OperationCounter,
        engine: CryptoEngine | None = None,
    ):
        super().__init__(group, engine=engine)
        self._counter = counter

    def encrypt(self, key: int, x: int) -> int:
        self._counter.encryptions += 1
        return super().encrypt(key, x)

    def decrypt(self, key: int, y: int) -> int:
        self._counter.encryptions += 1
        return super().decrypt(key, y)

    def encrypt_many(self, key: int, xs):
        # The batched path goes through the engine, not encrypt():
        # count the whole batch here.
        xs = list(xs)
        self._counter.encryptions += len(xs)
        return super().encrypt_many(key, xs)

    def decrypt_many(self, key: int, ys):
        ys = list(ys)
        self._counter.encryptions += len(ys)
        return super().decrypt_many(key, ys)


class _CountingHash(DomainHash):
    """Delegating hash that counts every evaluation.

    Each party hashes its own set, so a value in both sets is hashed
    twice - exactly how the cost model's ``C_h (n_S + n_R)`` term
    counts it.
    """

    def __init__(self, inner: DomainHash, counter: OperationCounter):
        super().__init__(inner.group, inner.label)
        self._inner = inner
        self._counter = counter

    def hash_value(self, value: Value) -> int:
        self._counter.hashes += 1
        return self._inner.hash_value(value)


class _CountingExtCipher(BlockExtCipher):
    def __init__(self, group: QRGroup, counter: OperationCounter):
        super().__init__(group)
        self._counter = counter

    def encrypt(self, kappa: int, ext: bytes):
        self._counter.k_encryptions += 1
        return super().encrypt(kappa, ext)

    def decrypt(self, kappa: int, ciphertext):
        self._counter.k_encryptions += 1
        return super().decrypt(kappa, ciphertext)


@dataclass
class CountingSuite:
    """A protocol suite plus the counter wired into its primitives."""

    suite: ProtocolSuite
    counter: OperationCounter


def counting_suite(
    bits: int = 128,
    seed: int | None = 0,
    engine: CryptoEngine | None = None,
) -> CountingSuite:
    """Build a suite whose cipher/hash/ext-cipher count their calls.

    ``engine`` selects the batch execution strategy (parallel engines
    produce identical counts - the counter tallies work, not workers).
    """
    group = QRGroup.for_bits(bits)
    counter = OperationCounter()
    if seed is None:
        rng_r, rng_s = random.Random(), random.Random()
    else:
        rng_r, rng_s = random.Random(f"{seed}/R"), random.Random(f"{seed}/S")
    suite = ProtocolSuite(
        group=group,
        hash=_CountingHash(TryIncrementHash(group), counter),
        cipher=_CountingCipher(group, counter, engine=engine),
        ext_cipher=_CountingExtCipher(group, counter),
        rng_r=rng_r,
        rng_s=rng_s,
    )
    return CountingSuite(suite=suite, counter=counter)


# ----------------------------------------------------------------------
# Per-phase wall-clock + modexp metrics
# ----------------------------------------------------------------------
@dataclass
class PhaseStats:
    """Accumulated observations for one named phase."""

    name: str
    wall_s: float = 0.0
    modexp: int = 0
    calls: int = 0

    def as_dict(self) -> dict[str, Any]:
        """Flat mapping for the JSON report."""
        return {
            "wall_s": self.wall_s,
            "modexp": self.modexp,
            "calls": self.calls,
        }


@dataclass
class PipelineStats:
    """Producer/consumer overlap observations for one streamed round.

    The streaming transports (:mod:`repro.net.tcp` with a
    ``chunk_size``) time chunk *production* (crypto, on the prefetch
    thread) and chunk *sends* (wire I/O, on the driving thread)
    separately from the round's wall clock. When the double buffer
    works, ``produce_s + send_s > wall_s`` - the excess is the overlap
    the pipeline bought.
    """

    name: str
    produce_s: float = 0.0
    send_s: float = 0.0
    wall_s: float = 0.0
    chunks: int = 0

    @property
    def overlap_s(self) -> float:
        """Wall time saved by overlapping production with sending."""
        return max(0.0, self.produce_s + self.send_s - self.wall_s)

    @property
    def overlap_ratio(self) -> float:
        """``overlap_s`` as a fraction of the round's wall time."""
        return self.overlap_s / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict[str, Any]:
        """Flat mapping for the JSON report."""
        return {
            "produce_s": self.produce_s,
            "send_s": self.send_s,
            "wall_s": self.wall_s,
            "chunks": self.chunks,
            "overlap_s": self.overlap_s,
            "overlap_ratio": self.overlap_ratio,
        }


class MetricsRecorder:
    """Named phase timers plus modexp counters, reported as JSON.

    Usage::

        recorder = MetricsRecorder()
        engine = create_engine(4, on_modexp=recorder.count_modexp)
        with recorder.phase("r.round1"):
            m1 = receiver.round1()
        report = recorder.report()   # json.dumps-able

    Phases may nest; time and exponentiations are attributed to the
    innermost open phase (the outer phase's ``wall_s`` still covers the
    whole span, as wall time does). Exponentiations counted outside any
    phase land in ``unattributed_modexp``.
    """

    def __init__(self, engine: CryptoEngine | None = None):
        self.phases: dict[str, PhaseStats] = {}
        self.pipelines: dict[str, PipelineStats] = {}
        self.unattributed_modexp = 0
        self.sessions: list[dict[str, Any]] = []
        self._stack: list[PhaseStats] = []
        self._engine = engine
        self._started_at = time.perf_counter()

    def _stats(self, name: str) -> PhaseStats:
        stats = self.phases.get(name)
        if stats is None:
            stats = self.phases[name] = PhaseStats(name=name)
        return stats

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseStats]:
        """Time one phase; re-entering a name accumulates into it."""
        stats = self._stats(name)
        stats.calls += 1
        self._stack.append(stats)
        start = time.perf_counter()
        try:
            yield stats
        finally:
            stats.wall_s += time.perf_counter() - start
            self._stack.pop()

    def count_modexp(self, n: int = 1) -> None:
        """Attribute ``n`` modular exponentiations to the open phase."""
        if self._stack:
            self._stack[-1].modexp += n
        else:
            self.unattributed_modexp += n

    @property
    def total_modexp(self) -> int:
        """Every exponentiation observed, in or out of a phase."""
        return self.unattributed_modexp + sum(
            s.modexp for s in self.phases.values()
        )

    def attach_engine(self, engine: CryptoEngine) -> None:
        """Record which engine ran the batches (for the report)."""
        self._engine = engine

    def add_pipeline(
        self,
        name: str,
        produce_s: float,
        send_s: float,
        wall_s: float,
        chunks: int,
    ) -> None:
        """Fold one streamed round's overlap timings into the report.

        Re-entering a name (e.g. the same round across session
        reconnects) accumulates into it, like :meth:`phase` does.
        """
        stats = self.pipelines.get(name)
        if stats is None:
            stats = self.pipelines[name] = PipelineStats(name=name)
        stats.produce_s += produce_s
        stats.send_s += send_s
        stats.wall_s += wall_s
        stats.chunks += chunks

    def add_session(self, stats: Any) -> None:
        """Fold one finished session's counters into the report.

        Accepts a :class:`~repro.net.session.SessionStats` (its
        ``as_dict`` is taken) or an already-flat mapping - the
        supervised server (:mod:`repro.net.server`) reports one entry
        per hosted session.
        """
        as_dict = getattr(stats, "as_dict", None)
        self.sessions.append(dict(as_dict() if as_dict else stats))

    def report(self) -> dict[str, Any]:
        """The JSON document: engine info, totals, and per-phase stats."""
        out: dict[str, Any] = {
            "engine": (
                self._engine.describe()
                if self._engine is not None
                else {"engine": "unknown", "workers": 1}
            ),
            "total_wall_s": time.perf_counter() - self._started_at,
            "total_modexp": self.total_modexp,
            "unattributed_modexp": self.unattributed_modexp,
            "phases": {
                name: stats.as_dict() for name, stats in self.phases.items()
            },
        }
        if self.pipelines:
            out["pipeline"] = {
                name: stats.as_dict()
                for name, stats in self.pipelines.items()
            }
        if self.sessions:
            out["sessions"] = list(self.sessions)
        return out
