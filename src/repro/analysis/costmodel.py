"""The Section 6.1 cost model for the paper's protocols.

Formulas (with ``n_S = |V_S|``, ``n_R = |V_R|``, codewords ``k`` bits):

Computation
    Intersection / intersection size / equijoin size:
        ``(C_h + 2 C_e)(n_S + n_R) + 2 C_s n_S lg n_S + 3 C_s n_R lg n_R``
        (approximately ``2 C_e (n_S + n_R)``)
    Equijoin:
        ``C_h (n_S + n_R) + 2 C_e n_S + 5 C_e n_R + C_K (n_S + n_∩)
        + 2 C_s n_S lg n_S + 3 C_s n_R lg n_R``
        (approximately ``2 C_e n_S + 5 C_e n_R``)

Communication
    Intersection (and both size protocols): ``(n_S + 2 n_R) k`` bits.
    Equijoin: ``(n_S + 3 n_R) k + n_S k'`` bits, ``k'`` the encrypted
    ``ext(v)`` size.

Constants: the paper takes ``C_e`` = 0.02 s (1024-bit modexp, Pentium
III, 2001, [36]), a T1 line (1.544 Mbit/s), and ``P = 10`` processors
for the embarrassingly parallel encryption work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..net.channel import LinkModel, T1_LINE

__all__ = ["CostConstants", "PAPER_CONSTANTS", "OperationCounts", "ProtocolCostModel"]


@dataclass(frozen=True)
class CostConstants:
    """Unit costs in seconds plus environment parameters.

    The paper's analysis keeps only the ``C_e`` terms ("we can assume
    ``C_e >> C_h``, ``C_e >> C_K`` and ``n C_e >> n lg n C_s``"); the
    defaults therefore zero the minor constants. Calibration
    (:mod:`repro.analysis.calibration`) fills in measured values.
    """

    ce_seconds: float = 0.02
    ch_seconds: float = 0.0
    ck_seconds: float = 0.0
    cs_seconds: float = 0.0
    k_bits: int = 1024
    k_prime_bits: int = 1024
    processors: int = 10
    link: LinkModel = field(default_factory=lambda: T1_LINE)

    def with_processors(self, processors: int) -> "CostConstants":
        """Copy of these constants with a different parallelism ``P``."""
        return replace(self, processors=processors)


#: The exact constants Section 6 plugs in.
PAPER_CONSTANTS = CostConstants()


def _nlogn(n: int) -> float:
    """``n lg n`` with the n=0,1 edge cases flattened to 0."""
    return n * math.log2(n) if n > 1 else 0.0


@dataclass(frozen=True)
class OperationCounts:
    """Primitive-operation counts for one protocol run.

    Counting operations (rather than only seconds) lets the benchmarks
    validate the model *exactly* against instrumented runs, independent
    of machine speed.
    """

    encryptions: int
    hashes: int
    k_encryptions: int
    sort_items_weighted: float  # sum of n lg n terms, C_s weight

    def seconds(self, constants: CostConstants) -> float:
        """Total sequential computation time under given constants."""
        return (
            self.encryptions * constants.ce_seconds
            + self.hashes * constants.ch_seconds
            + self.k_encryptions * constants.ck_seconds
            + self.sort_items_weighted * constants.cs_seconds
        )


@dataclass
class ProtocolCostModel:
    """Evaluates Section 6.1's formulas for given set sizes."""

    constants: CostConstants = field(default_factory=lambda: PAPER_CONSTANTS)

    # ------------------------------------------------------------------
    # Operation counts (exact formulas)
    # ------------------------------------------------------------------
    def intersection_ops(self, n_s: int, n_r: int) -> OperationCounts:
        """Intersection, intersection-size and equijoin-size count."""
        return OperationCounts(
            encryptions=2 * (n_s + n_r),
            hashes=n_s + n_r,
            k_encryptions=0,
            sort_items_weighted=2 * _nlogn(n_s) + 3 * _nlogn(n_r),
        )

    def join_ops(self, n_s: int, n_r: int, n_common: int | None = None) -> OperationCounts:
        """Equijoin count; ``n_common`` defaults to ``min(n_s, n_r)``."""
        if n_common is None:
            n_common = min(n_s, n_r)
        return OperationCounts(
            encryptions=2 * n_s + 5 * n_r,
            hashes=n_s + n_r,
            k_encryptions=n_s + n_common,
            sort_items_weighted=2 * _nlogn(n_s) + 3 * _nlogn(n_r),
        )

    # ------------------------------------------------------------------
    # Computation time
    # ------------------------------------------------------------------
    def intersection_seconds(self, n_s: int, n_r: int, exact: bool = True) -> float:
        """Sequential seconds for the intersection-style protocols."""
        if exact:
            return self.intersection_ops(n_s, n_r).seconds(self.constants)
        return 2 * self.constants.ce_seconds * (n_s + n_r)

    def join_seconds(
        self, n_s: int, n_r: int, n_common: int | None = None, exact: bool = True
    ) -> float:
        """Sequential seconds for the equijoin protocol."""
        if exact:
            return self.join_ops(n_s, n_r, n_common).seconds(self.constants)
        return (2 * n_s + 5 * n_r) * self.constants.ce_seconds

    def parallel_seconds(self, sequential_seconds: float) -> float:
        """Wall-clock with the Section 6.2 ``P``-processor assumption."""
        return sequential_seconds / self.constants.processors

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def intersection_bits(self, n_s: int, n_r: int) -> float:
        """``(n_S + 2 n_R) k`` bits; also the size protocols' traffic."""
        return (n_s + 2 * n_r) * self.constants.k_bits

    def join_bits(self, n_s: int, n_r: int) -> float:
        """``(n_S + 3 n_R) k + n_S k'`` bits."""
        return (n_s + 3 * n_r) * self.constants.k_bits + n_s * self.constants.k_prime_bits

    def transfer_seconds(self, bits: float) -> float:
        """Modelled link time for a bit volume."""
        return self.constants.link.transfer_time(bits, messages=0)
