"""Multi-query composition analysis (the Section 2.3 limitation).

The paper is explicit that its guarantees are per-query: "our
techniques do not address the question of what the parties might learn
by combining the results of multiple queries." This module makes that
limitation *measurable*: given the sequence of (query input, answer)
pairs a party R observed, it computes everything R can deduce about
S's set ``V_S`` by set algebra alone.

The engine tracks, for every value R has ever queried with, whether its
membership in ``V_S`` is determined:

* an *intersection* query answers membership exactly for every queried
  value (in the answer -> member; queried but absent -> non-member);
* an *intersection-size* query adds a cardinality constraint
  ``|Q ∩ V_S| = k``; when combined with what is already known, it can
  collapse (e.g. the classic tracker: query ``Q`` then ``Q - {v}`` and
  subtract).

The inference is sound but deliberately simple (pairwise constraint
propagation, not full SAT) - enough to demonstrate the tracker attack
that :class:`repro.apps.restriction.QueryAuditor` exists to stop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

__all__ = ["MembershipKnowledge", "CompositionAnalyzer"]


@dataclass
class MembershipKnowledge:
    """What R currently knows about V_S membership."""

    members: set[Hashable] = field(default_factory=set)
    non_members: set[Hashable] = field(default_factory=set)

    @property
    def determined(self) -> set[Hashable]:
        return self.members | self.non_members

    def status(self, value: Hashable) -> bool | None:
        """True/False when determined, None when still unknown."""
        if value in self.members:
            return True
        if value in self.non_members:
            return False
        return None


@dataclass
class _SizeConstraint:
    """``|query_set ∩ V_S| == size`` from one intersection-size answer."""

    values: frozenset
    size: int


class CompositionAnalyzer:
    """Accumulates query/answer pairs and propagates inferences."""

    def __init__(self) -> None:
        self.knowledge = MembershipKnowledge()
        self._constraints: list[_SizeConstraint] = []

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def observe_intersection(
        self, query_values: Iterable[Hashable], answer: Iterable[Hashable]
    ) -> None:
        """An intersection query pins membership for every queried value."""
        query_set = set(query_values)
        answer_set = set(answer)
        if not answer_set <= query_set:
            raise ValueError("answer must be a subset of the query input")
        self.knowledge.members |= answer_set
        self.knowledge.non_members |= query_set - answer_set
        self._propagate()

    def observe_intersection_size(
        self, query_values: Iterable[Hashable], size: int
    ) -> None:
        """An intersection-size query adds a cardinality constraint."""
        values = frozenset(query_values)
        if not 0 <= size <= len(values):
            raise ValueError("impossible intersection size")
        self._constraints.append(_SizeConstraint(values=values, size=size))
        self._propagate()

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _propagate(self) -> None:
        """Fixed-point pass over the cardinality constraints.

        For each constraint, subtract what is already determined; if
        the residual demands *all* remaining values be members (or
        none), membership collapses. Pairwise differences of nested
        constraints (the tracker pattern) fall out automatically
        because the larger query's collapse feeds the smaller one.
        """
        changed = True
        while changed:
            changed = False
            for constraint in self._constraints:
                undetermined = constraint.values - self.knowledge.determined
                if not undetermined:
                    continue
                known_members = len(constraint.values & self.knowledge.members)
                residual = constraint.size - known_members
                if residual == 0:
                    self.knowledge.non_members |= undetermined
                    changed = True
                elif residual == len(undetermined):
                    self.knowledge.members |= undetermined
                    changed = True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def determined_fraction(self, universe: Iterable[Hashable]) -> float:
        """Share of ``universe`` whose membership R has pinned down."""
        universe_set = set(universe)
        if not universe_set:
            return 0.0
        return len(universe_set & self.knowledge.determined) / len(universe_set)

    def excess_over_single_query(
        self, single_query_determined: Iterable[Hashable]
    ) -> set[Hashable]:
        """Values determined only thanks to composition."""
        return self.knowledge.determined - set(single_query_determined)
