"""The Section 6.2 application estimates, reproduced as code.

Selective document sharing (6.2.1): ``|D_R| = 10`` documents against
``|D_S| = 100``, each with 1000 significant words. One intersection-size
run per document pair gives total computation
``|D_R| |D_S| (|d_R| + |d_S|) * 2 C_e = 4e6 C_e`` (~2 hours on
``P = 10`` processors) and communication
``|D_R| |D_S| (|d_R| + 2 |d_S|) k = 3e9 bits`` (~35 minutes on a T1).

Medical research (6.2.2): the Figure 2 algorithm makes four
intersection-size calls whose input sizes sum to ``2(|V_R| + |V_S|)``
values on each side; with one million ids per side the computation is
``8e6 C_e`` (~4 hours) and the communication ``8e9`` bits (~1.5 hours).
"""

from __future__ import annotations

from dataclasses import dataclass

from .costmodel import CostConstants, PAPER_CONSTANTS, ProtocolCostModel

__all__ = [
    "ApplicationEstimate",
    "document_sharing_estimate",
    "medical_research_estimate",
]


@dataclass(frozen=True)
class ApplicationEstimate:
    """A Section 6.2-style back-of-envelope, in the paper's units."""

    name: str
    encryptions_ce: float        # total modexps, units of C_e
    computation_hours: float     # wall clock on P processors
    communication_bits: float
    communication_hours: float

    @property
    def communication_minutes(self) -> float:
        return self.communication_hours * 60.0

    def round_trip_summary(self) -> str:
        """One-line compute+transfer summary in the paper's units."""
        return (
            f"{self.name}: {self.encryptions_ce:.2e} C_e "
            f"(~{self.computation_hours:.1f} h compute), "
            f"{self.communication_bits:.2e} bits "
            f"(~{self.communication_hours:.2f} h transfer)"
        )


def document_sharing_estimate(
    n_docs_r: int = 10,
    n_docs_s: int = 100,
    words_r: int = 1000,
    words_s: int = 1000,
    constants: CostConstants = PAPER_CONSTANTS,
) -> ApplicationEstimate:
    """Reproduce the 6.2.1 estimate (defaults give the paper's numbers).

    Computation per pair is ``(|d_R| + |d_S|) * 2 C_e`` and traffic per
    pair is ``(|d_R| + 2 |d_S|) k`` bits.
    """
    model = ProtocolCostModel(constants)
    pairs = n_docs_r * n_docs_s
    encryptions = pairs * 2.0 * (words_r + words_s)
    bits = pairs * model.intersection_bits(words_s, words_r)
    computation_s = encryptions * constants.ce_seconds / constants.processors
    transfer_s = model.transfer_seconds(bits)
    return ApplicationEstimate(
        name="selective document sharing",
        encryptions_ce=encryptions,
        computation_hours=computation_s / 3600.0,
        communication_bits=bits,
        communication_hours=transfer_s / 3600.0,
    )


def medical_research_estimate(
    n_r: int = 10**6,
    n_s: int = 10**6,
    constants: CostConstants = PAPER_CONSTANTS,
) -> ApplicationEstimate:
    """Reproduce the 6.2.2 estimate (defaults give the paper's numbers).

    The four intersection-size calls of Figure 2 touch each id of each
    side twice, so the combined cost is ``2 (|V_R| + |V_S|) * 2 C_e``
    and the combined traffic ``2 (|V_R| + |V_S|) * 2 k`` bits.
    """
    encryptions = 2.0 * (n_r + n_s) * 2.0
    bits = 2.0 * (n_r + n_s) * 2.0 * constants.k_bits
    computation_s = encryptions * constants.ce_seconds / constants.processors
    transfer_s = ProtocolCostModel(constants).transfer_seconds(bits)
    return ApplicationEstimate(
        name="medical research",
        encryptions_ce=encryptions,
        computation_hours=computation_s / 3600.0,
        communication_bits=bits,
        communication_hours=transfer_s / 3600.0,
    )
