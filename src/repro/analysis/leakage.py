"""Equijoin-size leakage analysis (Section 5.2's characterization).

The equijoin-size protocol reveals, beyond the answer:

* to each party, the other side's duplicate distribution;
* to R, the overlap count ``|V_R(d) ∩ V_S(d')|`` for every pair of
  duplicate classes, where ``V(d)`` is the set of values occurring
  exactly ``d`` times.

From the overlap matrix R can sometimes pin down individual values:
if *all* values in its class ``V_R(d)`` matched (or none did), R knows
each one's membership in ``V_S`` with certainty. The two extremes the
paper points out fall out of the same computation - with all duplicate
counts equal R learns only ``|V_R ∩ V_S|``; with all counts distinct
every class is a singleton and R recovers ``V_R ∩ V_S`` exactly.

:func:`leakage_profile` computes the matrix and the per-value
consequences on plaintext multisets (ground truth the protocol result
is validated against), plus a scalar "identified fraction" used by the
leakage ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..db.multiset import ValueMultiset

__all__ = ["LeakageProfile", "leakage_profile", "overlap_matrix"]


def overlap_matrix(
    ms_r: ValueMultiset, ms_s: ValueMultiset
) -> dict[tuple[int, int], int]:
    """``(d_R, d_S) -> |V_R(d_R) ∩ V_S(d_S)|`` over duplicate classes.

    Only nonzero entries are materialized.
    """
    partition_s = ms_s.partition_by_count()
    matrix: dict[tuple[int, int], int] = {}
    for d_r, values_r in ms_r.partition_by_count().items():
        for d_s, values_s in partition_s.items():
            overlap = len(values_r & values_s)
            if overlap:
                matrix[(d_r, d_s)] = overlap
    return matrix


@dataclass
class LeakageProfile:
    """What R can deduce from the equijoin-size run.

    Attributes:
        matrix: the class-overlap counts R learns.
        certain_members: R values R can *prove* are in ``V_S``.
        certain_nonmembers: R values R can prove are absent from ``V_S``.
        r_class_sizes: ``d -> |V_R(d)|`` (R knows its own classes).
    """

    matrix: dict[tuple[int, int], int]
    certain_members: set[Hashable]
    certain_nonmembers: set[Hashable]
    r_class_sizes: dict[int, int] = field(default_factory=dict)

    @property
    def identified(self) -> set[Hashable]:
        """Values whose membership status R learned exactly."""
        return self.certain_members | self.certain_nonmembers

    def identified_fraction(self, total_r_values: int) -> float:
        """Fraction of R's values whose membership R pinned down."""
        if total_r_values == 0:
            return 0.0
        return len(self.identified) / total_r_values


def leakage_profile(ms_r: ValueMultiset, ms_s: ValueMultiset) -> LeakageProfile:
    """Compute the Section 5.2 leak on plaintext multisets.

    A value ``v ∈ V_R(d)`` is *certainly a member* when every value in
    its class matched some S class (``sum_d' overlap(d, d') == |V_R(d)|``),
    and certainly a non-member when none did.
    """
    matrix = overlap_matrix(ms_r, ms_s)
    partition_r = ms_r.partition_by_count()
    matched_per_class: dict[int, int] = {}
    for (d_r, _), count in matrix.items():
        matched_per_class[d_r] = matched_per_class.get(d_r, 0) + count

    certain_members: set[Hashable] = set()
    certain_nonmembers: set[Hashable] = set()
    for d_r, values in partition_r.items():
        matched = matched_per_class.get(d_r, 0)
        if matched == len(values):
            certain_members |= values
        elif matched == 0:
            certain_nonmembers |= values

    return LeakageProfile(
        matrix=matrix,
        certain_members=certain_members,
        certain_nonmembers=certain_nonmembers,
        r_class_sizes={d: len(vs) for d, vs in partition_r.items()},
    )
