"""Cost analysis (Section 6), machine calibration, application
estimates and equijoin-size leakage characterization (Section 5.2)."""

from .calibration import Calibration, calibrate
from .composition import CompositionAnalyzer, MembershipKnowledge
from .costmodel import (
    CostConstants,
    OperationCounts,
    PAPER_CONSTANTS,
    ProtocolCostModel,
)
from .instrumentation import CountingSuite, OperationCounter, counting_suite
from .estimates import (
    ApplicationEstimate,
    document_sharing_estimate,
    medical_research_estimate,
)
from .leakage import LeakageProfile, leakage_profile, overlap_matrix

__all__ = [
    "CostConstants",
    "PAPER_CONSTANTS",
    "OperationCounts",
    "ProtocolCostModel",
    "ApplicationEstimate",
    "document_sharing_estimate",
    "medical_research_estimate",
    "Calibration",
    "calibrate",
    "LeakageProfile",
    "leakage_profile",
    "overlap_matrix",
    "OperationCounter",
    "CountingSuite",
    "counting_suite",
    "CompositionAnalyzer",
    "MembershipKnowledge",
]
