"""Command-line interface: ``python -m repro <command> ...``.

Runs the minimal-sharing protocols on newline-delimited value files
(both parties simulated in-process - the CLI is a study/demo tool, not
a network endpoint), prints cost estimates, and regenerates the
paper's tables.

Commands:

    intersection       private set intersection (Section 3)
    intersection-size  only the size (Section 5.1)
    equijoin-size      multiset join size (Section 5.2)
    equijoin-sum       SUM aggregate over the intersection (extension)
    estimate           the Section 6.2 application estimates
    tables             the Appendix A comparison tables
    calibrate          measure C_e/C_h/C_K/C_s on this machine
    serve              party S of any protocol as a real TCP server
    connect            party R of any protocol as a TCP client
    catalog            repeated incremental queries (stateful Catalog
                       API): ``catalog query`` in-process, ``catalog
                       serve``/``catalog connect`` over TCP, with
                       ``--insert``/``--delete`` staging a delta round
                       and ``--cache-dir`` persisting the encrypted
                       catalog across restarts

``serve``/``connect`` accept ``--protocol`` (every protocol in the
:mod:`repro.protocols.spec` registry - new registrations appear here
automatically), ``--timeout``, and ``--resumable`` to run under the
fault-tolerant session layer (checksummed frames, retries, resume
after disconnects) instead of the plain one-shot handshake. ``--workers N`` runs the
party's batch encryption on ``N`` processes (the Section 6.2
``P``-processor model; see docs/PERFORMANCE.md), and ``--metrics``
prints a per-phase wall-clock + modexp-count JSON report to stderr
(implied by ``--workers > 1``).

Resumable runs gain crash durability with ``--journal-dir DIR``: every
round is journaled to disk before it is acted on, and a killed process
restarted with the same directory recovers the interrupted run instead
of restarting the protocol (docs/PROTOCOLS.md, "Crash durability &
supervision"). ``serve --resumable --max-sessions N`` (N > 1) hosts a
supervised :class:`~repro.net.server.ProtocolServer` serving up to
``N`` concurrent sessions, draining gracefully on SIGTERM within
``--drain-timeout`` seconds.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .analysis.calibration import calibrate
from .analysis.estimates import (
    document_sharing_estimate,
    medical_research_estimate,
)
from .circuits.costmodel import CircuitCostModel
from .protocols.aggregate import run_equijoin_sum
from .protocols.base import ProtocolSuite
from .protocols.equijoin_size import run_equijoin_size
from .protocols.intersection import run_intersection
from .protocols.intersection_size import run_intersection_size
from .protocols.spec import PROTOCOLS, get_spec

__all__ = [
    "main",
    "build_parser",
    "EXIT_HANDSHAKE",
    "EXIT_BUSY",
    "EXIT_UNREACHABLE",
    "EXIT_TIMEOUT",
    "EXIT_JOURNAL",
    "EXIT_SESSION",
]

#: Exit code: the server speaks a different version or protocol.
EXIT_HANDSHAKE = 3
#: Exit code: the server refused the session (capacity/draining).
EXIT_BUSY = 4
#: Exit code: nothing answered at the address (connection refused).
EXIT_UNREACHABLE = 5
#: Exit code: the peer answered but the run timed out.
EXIT_TIMEOUT = 6
#: Exit code: the session journal is unreadable or fail-stopped.
EXIT_JOURNAL = 7
#: Exit code: any other typed session-layer failure.
EXIT_SESSION = 8


def _read_values(path: str) -> list[str]:
    """Newline-delimited values; blank lines ignored."""
    text = Path(path).read_text(encoding="utf-8")
    return [line.strip() for line in text.splitlines() if line.strip()]


def _read_value_amounts(path: str) -> dict[str, int]:
    """Lines of ``value<TAB or ,>amount`` for the sum aggregate."""
    out: dict[str, int] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        value, _, amount = (
            line.partition("\t") if "\t" in line else line.partition(",")
        )
        out[value.strip()] = int(amount.strip())
    return out


def _read_value_ext(path: str) -> dict[str, bytes]:
    """Lines of ``value<TAB or ,>ext-payload`` for the equijoin sender."""
    out: dict[str, bytes] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        value, _, ext = (
            line.partition("\t") if "\t" in line else line.partition(",")
        )
        out[value.strip()] = ext.strip().encode("utf-8")
    return out


#: ``serve``/``connect`` choices come straight from the spec registry,
#: so a protocol registered there is network-runnable with no CLI edit.
#: Delta schedules (``<name>+delta``) are internal - the catalog layer
#: selects them automatically - so they are filtered from the choices.
NET_PROTOCOLS = tuple(
    name for name, spec in PROTOCOLS.items() if spec.delta_of is None
)

#: How each spec's declared ``sender_input`` shape maps to a file reader.
_SENDER_READERS = {
    "values": _read_values,
    "ext": _read_value_ext,
    "amounts": _read_value_amounts,
}


def _add_engine_options(p: argparse.ArgumentParser) -> None:
    """The batch-crypto engine knobs shared by ``serve`` and ``connect``."""
    p.add_argument(
        "--workers", type=int, default=1,
        help="processes for batch encryption (Section 6.2's P; default 1)",
    )
    p.add_argument(
        "--chunk-size", type=int, default=None,
        help="stream chunkable rounds in slices of this many items, "
             "pipelining crypto with the wire (default: whole-round "
             "frames, the legacy format)",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="print a per-phase metrics JSON to stderr "
             "(implied by --workers > 1)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Minimal-sharing protocols (Agrawal et al., SIGMOD 2003)",
    )
    parser.add_argument(
        "--bits", type=int, default=512,
        help="safe-prime modulus size (default 512; paper uses 1024)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="deterministic randomness seed"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, needs_sets in [
        ("intersection", True),
        ("intersection-size", True),
        ("equijoin-size", True),
    ]:
        p = sub.add_parser(name, help=f"run the {name} protocol")
        if needs_sets:
            p.add_argument("--receiver", required=True, help="R's value file")
            p.add_argument("--sender", required=True, help="S's value file")

    p = sub.add_parser("equijoin-sum", help="SUM aggregate over the intersection")
    p.add_argument("--receiver", required=True, help="R's value file")
    p.add_argument("--sender", required=True, help="S's value,amount file")

    sub.add_parser("estimate", help="Section 6.2 application estimates")
    sub.add_parser("tables", help="Appendix A comparison tables")
    p = sub.add_parser("calibrate", help="measure primitive costs here")
    p.add_argument("--samples", type=int, default=15)

    p = sub.add_parser(
        "serve", help="run party S of a protocol over TCP"
    )
    p.add_argument(
        "--sender", required=True,
        help="S's value file (equijoin: value,ext-payload lines; "
             "equijoin-sum: value,amount lines)",
    )
    p.add_argument(
        "--protocol", choices=NET_PROTOCOLS, default="intersection",
        help="which protocol to serve (default intersection)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 = pick a free port")
    p.add_argument(
        "--timeout", type=float, default=None,
        help="socket deadline in seconds (default: block forever)",
    )
    p.add_argument(
        "--resumable", action="store_true",
        help="serve under the fault-tolerant session layer",
    )
    p.add_argument(
        "--journal-dir", default=None,
        help="journal resumable rounds to this directory and recover "
             "an interrupted run from it on restart (requires --resumable)",
    )
    p.add_argument(
        "--max-sessions", type=int, default=1,
        help="host up to N concurrent sessions via the supervised "
             "ProtocolServer (default 1 = single classic session; "
             "requires --resumable)",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=5.0,
        help="seconds the supervised server lets in-flight sessions "
             "finish after SIGTERM before aborting them (default 5)",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="split the supervised server into N worker processes "
             "routed by session id (default 1 = one process; "
             "requires --resumable and --max-sessions > 1)",
    )
    p.add_argument(
        "--restart-budget", type=int, default=3,
        help="respawns allowed per shard worker before the shard is "
             "marked failed and refuses new sessions (default 3; "
             "needs --shards > 1)",
    )
    p.add_argument(
        "--heartbeat-s", type=float, default=1.0,
        help="shard worker heartbeat period in seconds; a worker "
             "silent for 4x this is killed and respawned (default 1.0; "
             "needs --shards > 1)",
    )
    _add_engine_options(p)

    p = sub.add_parser(
        "connect", help="run party R of a protocol over TCP"
    )
    p.add_argument("--receiver", required=True, help="R's value file")
    p.add_argument(
        "--protocol", choices=NET_PROTOCOLS, default="intersection",
        help="which protocol to run (default intersection)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument(
        "--timeout", type=float, default=None,
        help="socket deadline in seconds (default: block forever)",
    )
    p.add_argument(
        "--resumable", action="store_true",
        help="connect under the fault-tolerant session layer",
    )
    p.add_argument(
        "--journal-dir", default=None,
        help="journal resumable rounds to this directory and recover "
             "an interrupted run from it on restart (requires --resumable)",
    )
    p.add_argument(
        "--retry-busy", type=int, default=0, metavar="N",
        help="when the server answers busy, wait out its retry hint "
             "and redial up to N times before exiting busy (default 0)",
    )
    p.add_argument(
        "--retry-policy", default=None, metavar="SPEC",
        help="unified retry policy as 'key=value,...' "
             "(keys: attempts, timeout, deadline, base, multiplier, "
             "max-delay, jitter, busy, worker-lost); redials typed "
             "busy and worker-lost refusals with jittered exponential "
             "backoff under a total deadline; replaces --retry-busy",
    )
    _add_engine_options(p)

    p = sub.add_parser(
        "catalog",
        help="repeated incremental queries via the stateful Catalog API",
    )
    cat_sub = p.add_subparsers(dest="catalog_command", required=True)

    def _add_catalog_common(cp: argparse.ArgumentParser) -> None:
        cp.add_argument(
            "--protocol", choices=NET_PROTOCOLS, default="intersection",
            help="which protocol to query (default intersection)",
        )
        cp.add_argument(
            "--cache-dir", default=None,
            help="persist this party's encrypted catalog here so a "
                 "restart warm-starts the first query (holds raw keys - "
                 "keep private)",
        )
        cp.add_argument(
            "--insert", action="append", default=[], metavar="VALUE",
            help="stage an insert after the first query (repeatable; "
                 "mapping protocols take value,payload)",
        )
        cp.add_argument(
            "--delete", action="append", default=[], metavar="VALUE",
            help="stage a delete after the first query (repeatable)",
        )

    cp = cat_sub.add_parser(
        "query", help="both parties in-process: full query, then a "
                      "delta query after staged mutations",
    )
    cp.add_argument("--receiver", required=True, help="R's value file")
    cp.add_argument(
        "--sender", required=True,
        help="S's value file (equijoin: value,ext lines; "
             "equijoin-sum: value,amount lines)",
    )
    _add_catalog_common(cp)

    cp = cat_sub.add_parser(
        "serve", help="serve a catalog as party S, answering N queries",
    )
    cp.add_argument(
        "--sender", required=True,
        help="S's value file (equijoin: value,ext lines; "
             "equijoin-sum: value,amount lines)",
    )
    cp.add_argument("--host", default="127.0.0.1")
    cp.add_argument("--port", type=int, default=0, help="0 = pick a free port")
    cp.add_argument(
        "--timeout", type=float, default=None,
        help="socket deadline in seconds (default: block forever)",
    )
    cp.add_argument(
        "--queries", type=int, default=1,
        help="how many client queries to answer before exiting "
             "(default 1; staged --insert/--delete apply after the "
             "first answered query)",
    )
    _add_catalog_common(cp)

    cp = cat_sub.add_parser(
        "connect", help="query a serving catalog as party R",
    )
    cp.add_argument("--receiver", required=True, help="R's value file")
    cp.add_argument("--host", default="127.0.0.1")
    cp.add_argument("--port", type=int, required=True)
    cp.add_argument(
        "--timeout", type=float, default=None,
        help="socket deadline in seconds (default: block forever)",
    )
    _add_catalog_common(cp)

    return parser


def _cmd_protocol(args: argparse.Namespace) -> int:
    suite = ProtocolSuite.default(bits=args.bits, seed=args.seed)
    v_r = _read_values(args.receiver)

    if args.command == "equijoin-sum":
        values_s = _read_value_amounts(args.sender)
        result = run_equijoin_sum(v_r, values_s, suite)
        print(f"sum over intersection: {result.total}")
        print(f"matches: {result.match_count}  |V_R|={result.size_v_r}  "
              f"|V_S|={result.size_v_s}")
        print(f"wire bytes: {result.run.total_bytes}")
        return 0

    v_s = _read_values(args.sender)
    if args.command == "intersection":
        result = run_intersection(v_r, v_s, suite)
        for value in sorted(result.intersection, key=repr):
            print(value)
        print(
            f"# |intersection|={len(result.intersection)} "
            f"|V_R|={result.size_v_r} |V_S|={result.size_v_s} "
            f"bytes={result.run.total_bytes}",
            file=sys.stderr,
        )
    elif args.command == "intersection-size":
        result = run_intersection_size(v_r, v_s, suite)
        print(result.size)
        print(
            f"# |V_R|={result.size_v_r} |V_S|={result.size_v_s} "
            f"bytes={result.run.total_bytes}",
            file=sys.stderr,
        )
    else:  # equijoin-size (multisets: duplicates in the files count)
        result = run_equijoin_size(v_r, v_s, suite)
        print(result.join_size)
        print(
            "# S's duplicate distribution seen by R: "
            f"{result.r_learns_s_duplicates}",
            file=sys.stderr,
        )
    return 0


def _cmd_estimate() -> int:
    for est in (document_sharing_estimate(), medical_research_estimate()):
        print(est.round_trip_summary())
    return 0


def _cmd_tables() -> int:
    cm = CircuitCostModel()
    print("Appendix A - partitioning circuit (w=32):")
    for row in cm.circuit_size_table():
        print(f"  n={row.n:.0e}  m={row.m}  f(n)={row.gates:.2e}")
    print("Appendix A - comparison (per row: circuit vs ours):")
    for row in cm.comparison_table():
        print(
            f"  n={row.n:.0e}  comp {row.circuit_input_ce:.1e} C_e + "
            f"{row.circuit_eval_cr:.1e} C_r vs {row.ours_ce:.1e} C_e;  "
            f"comm {row.circuit_input_bits + row.circuit_tables_bits:.1e} "
            f"vs {row.ours_bits:.1e} bits"
        )
    headline = {r.n: r for r in cm.comparison_table()}[10**6]
    print(
        "  headline (n=1e6, T1): "
        f"{cm.t1_transfer_days(headline.circuit_tables_bits):.0f} days vs "
        f"{cm.t1_transfer_days(headline.ours_bits)*24:.1f} hours"
    )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    cal = calibrate(bits=args.bits, samples=args.samples)
    c = cal.constants
    print(f"bits={cal.bits} samples={cal.samples}")
    print(f"C_e = {c.ce_seconds:.6f} s "
          f"({cal.exponentiations_per_hour():.3e} modexp/hour)")
    print(f"C_h = {c.ch_seconds:.6f} s")
    print(f"C_K = {c.ck_seconds:.6f} s")
    print(f"C_s = {c.cs_seconds:.3e} s per item-step")
    return 0


def _session_config(timeout: float | None):
    from .net.session import SessionConfig

    return SessionConfig(timeout_s=timeout) if timeout else SessionConfig()


def _build_engine_and_recorder(args: argparse.Namespace):
    """The ``--workers`` engine plus a recorder wired to count its work."""
    from .analysis.instrumentation import MetricsRecorder
    from .crypto.engine import create_engine

    recorder = MetricsRecorder()
    engine = create_engine(args.workers, on_modexp=recorder.count_modexp)
    recorder.attach_engine(engine)
    return engine, recorder


def _emit_metrics(args: argparse.Namespace, recorder) -> None:
    """Print the metrics JSON to stderr when asked (or parallel)."""
    if args.metrics or args.workers > 1:
        import json

        print(json.dumps(recorder.report()), file=sys.stderr)


def _print_answer(protocol: str, answer) -> None:
    kind = get_spec(protocol).answer_kind
    if kind == "set":
        for value in sorted(answer, key=repr):
            print(value)
        print(f"# |intersection|={len(answer)}", file=sys.stderr)
    elif kind == "ext-map":
        for value in sorted(answer, key=repr):
            print(f"{value}\t{answer[value].decode('utf-8', 'replace')}")
        print(f"# matches={len(answer)}", file=sys.stderr)
    else:  # "number": sizes and aggregates answer with one number
        print(answer)


def _cmd_serve(args: argparse.Namespace) -> int:
    import random as _random

    from .net import tcp
    from .protocols.parties import PublicParams

    data = _SENDER_READERS[get_spec(args.protocol).sender_input](args.sender)
    params = PublicParams.for_bits(args.bits)
    rng = _random.Random(args.seed)
    engine, recorder = _build_engine_and_recorder(args)

    def announce(port: int) -> None:
        print(f"serving {args.protocol} as party S on {args.host}:{port} "
              f"({len(data)} values)", flush=True)

    if (args.journal_dir or args.max_sessions > 1) and not args.resumable:
        print("--journal-dir/--max-sessions require --resumable",
              file=sys.stderr)
        return 2
    if args.shards > 1 and args.max_sessions <= 1:
        print("--shards requires --max-sessions > 1", file=sys.stderr)
        return 2

    try:
        if args.resumable and args.max_sessions > 1:
            return _serve_supervised(
                args, data, params, engine, recorder, announce
            )
        if args.resumable:
            size_v_r, stats = tcp.serve_resumable_sender(
                args.protocol, data, params, rng, host=args.host,
                port=args.port, ready_callback=announce,
                config=_session_config(args.timeout),
                engine=engine, recorder=recorder,
                journal_dir=args.journal_dir,
                chunk_size=args.chunk_size,
            )
            print(f"run complete; S learned |V_R| = {size_v_r}")
            print(f"# session stats: {stats.as_dict()}", file=sys.stderr)
            _emit_metrics(args, recorder)
            return 0

        size_v_r = tcp.serve(
            args.protocol, data, params, rng, host=args.host, port=args.port,
            ready_callback=announce, timeout=args.timeout,
            engine=engine, recorder=recorder, chunk_size=args.chunk_size,
        )
        print(f"run complete; S learned |V_R| = {size_v_r}")
        _emit_metrics(args, recorder)
        return 0
    finally:
        engine.close()


def _serve_supervised(
    args: argparse.Namespace, data, params, engine, recorder, announce
) -> int:
    """``serve --resumable --max-sessions N``: the supervised server.

    Hosts up to N concurrent sessions of the chosen protocol until
    SIGTERM/SIGINT, then drains within ``--drain-timeout`` seconds and
    prints one stats line per hosted session. With ``--shards K`` the
    sessions are spread over K supervised worker processes routed by
    session id (``--max-sessions`` stays the per-worker ceiling): dead
    or hung workers are respawned against their journal dirs up to
    ``--restart-budget`` times, and SIGUSR1 prints a per-shard
    ``health()`` snapshot to stderr.
    """
    import json as _json
    import signal as _signal

    from .net.server import ProtocolOffer, ProtocolServer
    from .net.shard import ShardedProtocolServer

    offer = ProtocolOffer.from_data(
        args.protocol, data, params, seed=args.seed or 0, engine=engine
    )
    if args.shards > 1:
        # Worker processes build their own party state post-fork; a
        # parent-owned pool engine would not survive the fork, so the
        # sharded path always uses the in-process engine.
        server = ShardedProtocolServer(
            [ProtocolOffer.from_data(
                args.protocol, data, params, seed=args.seed or 0
            )],
            shards=args.shards,
            host=args.host,
            port=args.port,
            worker_processes=True,
            max_sessions=args.max_sessions,
            config=_session_config(args.timeout),
            journal_dir=args.journal_dir,
            chunk_size=args.chunk_size,
            restart_budget=args.restart_budget,
            heartbeat_s=args.heartbeat_s,
        )
    else:
        server = ProtocolServer(
            [offer],
            host=args.host,
            port=args.port,
            max_sessions=args.max_sessions,
            config=_session_config(args.timeout),
            journal_dir=args.journal_dir,
            recorder=recorder,
            chunk_size=args.chunk_size,
        )
    server.start()
    announce(server.port)
    server.install_signal_handlers(drain_timeout_s=args.drain_timeout)
    if args.shards > 1:

        def _print_health(signum, frame) -> None:
            print(
                "# health: " + _json.dumps(server.health()),
                file=sys.stderr,
                flush=True,
            )

        _signal.signal(_signal.SIGUSR1, _print_health)
    capacity = args.max_sessions * max(args.shards, 1)
    print(
        f"supervising up to {capacity} concurrent sessions"
        + (f" across {args.shards} shard processes" if args.shards > 1 else "")
        + f" (SIGTERM drains within {args.drain_timeout}s; "
        + ("SIGUSR1 prints shard health)" if args.shards > 1 else
           "supervised single process)"),
        flush=True,
    )
    server.wait_closed()
    for summary in server.results():
        print(f"# session: {summary}", file=sys.stderr)
    if args.shards > 1:
        for row in server.drain_report:
            print(f"# shard drain: {row}", file=sys.stderr)
    _emit_metrics(args, recorder)
    return 0


def _cmd_connect(args: argparse.Namespace) -> int:
    import random as _random
    import time as _time

    from .net import tcp
    from .net.session import (
        ClientRetryPolicy,
        ServerBusyError,
        SessionError,
        busy_backoff_s,
    )

    v_r = _read_values(args.receiver)

    if args.journal_dir and not args.resumable:
        print("--journal-dir requires --resumable", file=sys.stderr)
        return 2
    policy = None
    if args.retry_policy is not None:
        if args.retry_busy:
            print(
                "--retry-policy replaces --retry-busy; pass only one",
                file=sys.stderr,
            )
            return 2
        try:
            policy = ClientRetryPolicy.parse(args.retry_policy)
        except ValueError as exc:
            print(f"bad --retry-policy: {exc}", file=sys.stderr)
            return 2

    engine, recorder = _build_engine_and_recorder(args)

    def _config():
        if policy is not None and args.timeout is None:
            return policy.session_config()
        return _session_config(args.timeout)

    def attempt() -> int:
        rng = _random.Random(args.seed)
        if args.resumable:
            answer, stats = tcp.connect_resumable_receiver(
                args.protocol, v_r, rng, args.host, args.port,
                config=_config(),
                engine=engine, recorder=recorder,
                journal_dir=args.journal_dir,
                chunk_size=args.chunk_size,
            )
            _print_answer(args.protocol, answer)
            print(f"# session stats: {stats.as_dict()}", file=sys.stderr)
            _emit_metrics(args, recorder)
            return 0

        answer = tcp.connect(
            args.protocol, v_r, rng, args.host, args.port,
            timeout=args.timeout, engine=engine, recorder=recorder,
            chunk_size=args.chunk_size,
        )
        _print_answer(args.protocol, answer)
        _emit_metrics(args, recorder)
        return 0

    # Jittered independently of the protocol seed so identically-seeded
    # clients refused in one burst do not redial in lockstep.
    backoff_rng = _random.Random()
    try:
        if policy is not None:
            deadline = (
                _time.monotonic() + policy.total_deadline_s
                if policy.total_deadline_s is not None
                else None
            )
            attempt_no = 0
            while True:
                attempt_no += 1
                try:
                    return attempt()
                except SessionError as exc:
                    if not policy.retryable(exc):
                        raise
                    if attempt_no >= policy.max_attempts:
                        raise
                    delay = policy.backoff_s(
                        attempt_no - 1,
                        backoff_rng,
                        hint_s=getattr(exc, "retry_after_s", None),
                    )
                    if (
                        deadline is not None
                        and _time.monotonic() + delay > deadline
                    ):
                        raise
                    print(
                        f"repro: {type(exc).__name__}; retrying in "
                        f"{delay:.3f}s (attempt {attempt_no}/"
                        f"{policy.max_attempts})",
                        file=sys.stderr,
                    )
                    _time.sleep(delay)
        retries_left = max(args.retry_busy, 0)
        while True:
            try:
                return attempt()
            except ServerBusyError as exc:
                if retries_left <= 0:
                    raise
                retries_left -= 1
                delay = busy_backoff_s(exc.retry_after_s, backoff_rng)
                print(
                    f"repro: server busy; retrying in {delay:.3f}s "
                    f"({retries_left} retries left)",
                    file=sys.stderr,
                )
                _time.sleep(delay)
    finally:
        engine.close()


def _split_insert(raw: str) -> tuple[str, str | None]:
    """One ``--insert`` operand: ``value`` or ``value,payload``."""
    value, sep, payload = raw.partition(",")
    return value.strip(), (payload.strip() if sep else None)


def _sender_payload(shape: str, value: str, payload: str | None):
    """Parse an insert payload per the spec's sender-input shape."""
    if shape == "values":
        if payload is not None:
            raise SystemExit(
                f"repro: --insert {value},{payload}: {shape!r} protocols "
                "take bare values"
            )
        return None
    if payload is None:
        raise SystemExit(
            f"repro: --insert {value}: this protocol needs value,"
            f"{'ext' if shape == 'ext' else 'amount'}"
        )
    return payload.encode("utf-8") if shape == "ext" else int(payload)


def _stage(catalog, inserts, deletes, shape: str | None) -> None:
    """Apply ``--insert``/``--delete`` operands to one catalog.

    ``shape`` is the sender-input shape for a sender-side catalog, or
    ``None`` for a receiver (bare values). Deletes of absent values
    are skipped so one shared operand list can drive both parties.
    """
    for value, payload in inserts:
        if shape is None:
            catalog.insert(value)
        else:
            catalog.insert(value, _sender_payload(shape, value, payload))
    for value in deletes:
        if value in catalog.data:
            catalog.delete(value)


def _cmd_catalog(args: argparse.Namespace) -> int:
    """The ``catalog`` subcommands: stateful repeated-query runs."""
    import random as _random

    from .api import open_catalog

    spec = get_spec(args.protocol)
    shape = spec.sender_input
    inserts = [_split_insert(raw) for raw in args.insert]
    deletes = [v.strip() for v in args.delete]
    mutating = bool(inserts or deletes)

    if args.catalog_command == "query":
        master = _random.Random(args.seed)
        rng_r = _random.Random(master.getrandbits(64))
        rng_s = _random.Random(master.getrandbits(64))
        base = Path(args.cache_dir) if args.cache_dir else None
        cat_r = open_catalog(
            _read_values(args.receiver), bits=args.bits, rng=rng_r,
            cache_dir=base / "receiver" if base else None,
        )
        cat_s = open_catalog(
            _SENDER_READERS[shape](args.sender), bits=args.bits, rng=rng_s,
            cache_dir=base / "sender" if base else None,
        )
        peer = cat_r.pair(cat_s)
        result = peer.query(spec)
        print(
            f"# query 1: mode={result.mode} cache_hit={result.cache_hit}",
            file=sys.stderr,
        )
        _print_answer(spec.name, result.answer)
        if mutating:
            _stage(cat_r, inserts, deletes, None)
            _stage(cat_s, inserts, deletes, shape)
            result = peer.query(spec)
            print(f"# query 2: mode={result.mode}", file=sys.stderr)
            _print_answer(spec.name, result.answer)
        return 0

    if args.catalog_command == "serve":
        catalog = open_catalog(
            _SENDER_READERS[shape](args.sender), bits=args.bits,
            seed=args.seed, cache_dir=args.cache_dir,
        )

        def announce(port: int) -> None:
            print(
                f"serving {spec.name} catalog as party S on "
                f"{args.host}:{port} ({len(catalog.data)} values)",
                flush=True,
            )

        peer = catalog.serve(
            host=args.host, port=args.port, ready_callback=announce,
            timeout=args.timeout,
        )
        try:
            for i in range(max(args.queries, 1)):
                result = peer.query(spec)
                print(
                    f"# query {i + 1}: mode={result.mode} "
                    f"|V_R|={result.size_v_r}",
                    file=sys.stderr,
                )
                if i == 0 and mutating:
                    _stage(catalog, inserts, deletes, shape)
        finally:
            peer.close()
        return 0

    # catalog connect: party R dials a serving catalog.
    catalog = open_catalog(
        _read_values(args.receiver), bits=args.bits, seed=args.seed,
        cache_dir=args.cache_dir,
    )
    peer = catalog.connect(args.host, port=args.port, timeout=args.timeout)
    result = peer.query(spec)
    print(
        f"# query 1: mode={result.mode} cache_hit={result.cache_hit}",
        file=sys.stderr,
    )
    _print_answer(spec.name, result.answer)
    if mutating:
        _stage(catalog, inserts, deletes, None)
        result = peer.query(spec)
        print(f"# query 2: mode={result.mode}", file=sys.stderr)
        _print_answer(spec.name, result.answer)
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command in ("intersection", "intersection-size",
                        "equijoin-size", "equijoin-sum"):
        return _cmd_protocol(args)
    if args.command == "estimate":
        return _cmd_estimate()
    if args.command == "tables":
        return _cmd_tables()
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "connect":
        return _cmd_connect(args)
    if args.command == "catalog":
        return _cmd_catalog(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def _fail(code: int, message: str) -> int:
    print(f"repro: {message}", file=sys.stderr)
    return code


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code.

    Expected operational failures exit with a one-line message and a
    distinct code instead of a traceback: handshake mismatch
    (:data:`EXIT_HANDSHAKE`), server busy (:data:`EXIT_BUSY`), nothing
    listening (:data:`EXIT_UNREACHABLE`), timeout
    (:data:`EXIT_TIMEOUT`), a fail-stopped journal
    (:data:`EXIT_JOURNAL`) and other session failures
    (:data:`EXIT_SESSION`). Unexpected errors (bad input files,
    genuine bugs) still raise.
    """
    from .net.journal import JournalError
    from .net.session import (
        HandshakeError,
        ServerBusyError,
        SessionError,
        WorkerLost,
    )

    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ServerBusyError as exc:
        return _fail(EXIT_BUSY, f"server busy: {exc}")
    except WorkerLost as exc:
        return _fail(EXIT_SESSION, f"server lost its worker: {exc}")
    except HandshakeError as exc:
        return _fail(EXIT_HANDSHAKE, f"handshake failed: {exc}")
    except JournalError as exc:
        return _fail(EXIT_JOURNAL, f"journal failure: {exc}")
    except SessionError as exc:
        # A session gives up by wrapping the last transport failure;
        # classify by the root cause so "nothing is listening" exits
        # the same whether or not the session layer retried first.
        cause: BaseException | None = exc.__cause__
        while cause is not None and cause.__cause__ is not None:
            cause = cause.__cause__
        if isinstance(cause, ConnectionError):
            return _fail(EXIT_UNREACHABLE, f"cannot reach the server: {exc}")
        if isinstance(cause, TimeoutError):
            return _fail(EXIT_TIMEOUT, f"timed out waiting for the peer: {exc}")
        return _fail(EXIT_SESSION, f"session failed: {exc}")
    except ConnectionError as exc:
        return _fail(EXIT_UNREACHABLE, f"cannot reach the server: {exc}")
    except TimeoutError as exc:
        detail = f": {exc}" if str(exc) else ""
        return _fail(EXIT_TIMEOUT, f"timed out waiting for the peer{detail}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
