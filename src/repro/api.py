"""One-call public API: run, serve and connect any registered protocol.

The rest of the library is deliberately layered - specs as data
(:mod:`repro.protocols.spec`), generic machines
(:mod:`repro.protocols.parties`), transports (:mod:`repro.net.tcp`),
sessions (:mod:`repro.net.session`) - and every layer is importable.
But the common cases should not require assembling those layers by
hand, so this module exposes exactly three verbs, all dispatching off
the :data:`~repro.protocols.spec.PROTOCOLS` registry:

* :func:`run` - both parties in-process, one call, returns the answer
  plus what each party learned about the other's set size;
* :func:`serve` - party S behind a real TCP listener (optionally under
  the resumable session layer, optionally journaled to disk);
* :func:`connect` - party R dialing a server.

All three accept ``chunk_size`` to stream chunkable rounds in bounded
slices (the million-item streaming pipeline); ``chunk_size=None``
keeps the legacy whole-round frames byte-identical to earlier
releases. New protocols registered in ``PROTOCOLS`` are runnable here
with zero facade edits.

Quickstart::

    import repro

    result = repro.run(
        "intersection",
        receiver_data=["alice", "bob", "carol"],
        sender_data=["bob", "carol", "dave"],
        bits=128,
        seed=7,
    )
    assert result.answer == {"bob", "carol"}
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from .protocols.parties import PublicParams, ReceiverMachine, SenderMachine
from .protocols.spec import ProtocolSpec, get_spec

__all__ = [
    "RunResult",
    "ServeResult",
    "ConnectResult",
    "run",
    "serve",
    "connect",
]


@dataclass(frozen=True)
class RunResult:
    """What an in-process :func:`run` produced.

    Attributes:
        answer: the protocol's output for party R (set, size, ext
            mapping, or aggregate - whatever the spec's ``finish``
            computes).
        size_v_r: ``|V_R|`` - all party S learns from the run.
        size_v_s: ``|V_S|`` - the set-size party R observes.
    """

    answer: Any
    size_v_r: int
    size_v_s: int


@dataclass(frozen=True)
class ServeResult:
    """What one completed :func:`serve` call produced.

    Attributes:
        size_v_r: ``|V_R|`` - all party S learns from the run.
        port: the actual bound port (the kernel-assigned one when the
            call asked for ``port=0``).
        stats: the :class:`~repro.net.session.SessionStats` of a
            resumable run; ``None`` for a plain one-shot run.
    """

    size_v_r: int
    port: int
    stats: Any = None


@dataclass(frozen=True)
class ConnectResult:
    """What one completed :func:`connect` call produced.

    Attributes:
        answer: the protocol's output for party R.
        stats: the :class:`~repro.net.session.SessionStats` of a
            resumable run; ``None`` for a plain one-shot run.
        busy_retries: how many busy refusals were waited out (under
            ``retry_busy`` or a ``retry`` policy) before the server
            admitted this session.
        retries: total redials a ``retry`` policy performed across all
            retryable failure classes (busy, worker-lost).
    """

    answer: Any
    stats: Any = None
    busy_retries: int = 0
    retries: int = 0


def _party_rngs(
    seed: Any, rng: random.Random | None
) -> tuple[random.Random, random.Random]:
    """Derive independent per-party rngs from one master seed/rng.

    Handing both machines the *same* rng would entangle their key
    draws through call order; deriving one child rng per party from a
    single master keeps ``seed=`` runs reproducible without that
    coupling.
    """
    master = rng if rng is not None else random.Random(seed)
    rng_r = random.Random(master.getrandbits(64))
    rng_s = random.Random(master.getrandbits(64))
    return rng_r, rng_s


def run(
    protocol: str | ProtocolSpec,
    receiver_data: Any,
    sender_data: Any,
    *,
    bits: int = 512,
    params: PublicParams | None = None,
    seed: Any = None,
    rng: random.Random | None = None,
    engine: Any = None,
    recorder: Any = None,
    chunk_size: int | None = None,
) -> RunResult:
    """Run both parties of any registered protocol in-process.

    Interprets the spec's round schedule with a
    :class:`~repro.protocols.parties.ReceiverMachine` and a
    :class:`~repro.protocols.parties.SenderMachine` exchanging wire
    payloads directly - the same payloads the TCP drivers would put on
    a socket, so the logical transcript is identical to a networked
    run.

    Args:
        protocol: registry name (or an unregistered spec object).
        receiver_data: party R's private input (a value sequence).
        sender_data: party S's private input, shaped per
            ``spec.sender_input`` (value list, ``v -> ext(v)`` map, or
            ``v -> amount`` map).
        bits: safe-prime modulus size when ``params`` is not given.
        params: explicit public parameters (overrides ``bits``).
        seed: master seed for reproducible runs; each party gets an
            independently derived rng.
        rng: explicit master rng (overrides ``seed``).
        engine: batch-crypto execution strategy
            (:mod:`repro.crypto.engine`).
        recorder: per-phase metrics collector
            (:class:`repro.analysis.instrumentation.MetricsRecorder`).
        chunk_size: stream chunkable rounds in slices of at most this
            many elements; ``None`` exchanges whole-round payloads.
    """
    spec = get_spec(protocol)
    if params is None:
        params = PublicParams.for_bits(bits)
    rng_r, rng_s = _party_rngs(seed, rng)
    receiver = ReceiverMachine(
        spec, receiver_data, params, rng_r, engine=engine, recorder=recorder
    )
    sender = SenderMachine(
        spec, sender_data, params, rng_s, engine=engine, recorder=recorder
    )
    for rnd in spec.rounds:
        producer, consumer = (
            (receiver, sender) if rnd.source == "R" else (sender, receiver)
        )
        if chunk_size is not None and rnd.chunkable:
            payloads = list(producer.produce_chunks(rnd, chunk_size))
            consumer.consume_chunks(rnd, payloads)
        else:
            consumer.consume(rnd, producer.produce(rnd).to_wire())
    answer = receiver.finish()
    return RunResult(
        answer=answer,
        size_v_r=sender.state.size_v_r,
        size_v_s=receiver.state.size_v_s,
    )


def serve(
    protocol: str | ProtocolSpec,
    data: Any,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    bits: int = 512,
    params: PublicParams | None = None,
    seed: Any = None,
    rng: random.Random | None = None,
    ready_callback: Callable[[int], None] | None = None,
    timeout: float | None = None,
    engine: Any = None,
    recorder: Any = None,
    chunk_size: int | None = None,
    resumable: bool = False,
    journal_dir: Any = None,
    config: Any = None,
    async_: bool = False,
) -> ServeResult:
    """Run party S of any registered protocol as a TCP server.

    Blocks until one receiver has been served and returns a
    :class:`ServeResult` carrying the actual bound port - with
    ``port=0`` the kernel picks a free one, and ``ready_callback``
    (when given) still fires with it as soon as the listener is up.

    ``resumable=True`` (implied by ``journal_dir``) serves under the
    fault-tolerant session layer: checksummed frames, resume after
    disconnects, chunk-granular cursors when ``chunk_size`` is set,
    and - with a ``journal_dir`` - crash recovery from the on-disk
    round journal. ``config`` is its
    :class:`~repro.net.session.SessionConfig`.

    ``async_=True`` hosts the same one-session run on the event-loop
    server (:class:`~repro.net.server.ProtocolServer`): identical wire
    bytes and journals, but sockets are owned by an event loop rather
    than a blocked accept thread. Implies the resumable session layer.
    For serving many sessions concurrently, use ``ProtocolServer`` (or
    :class:`~repro.net.shard.ShardedProtocolServer`) directly.
    """
    from .net import tcp

    spec = get_spec(protocol)
    if params is None:
        params = PublicParams.for_bits(bits)
    if rng is None:
        rng = random.Random(seed)
    bound: dict[str, int] = {}

    def _capture(actual_port: int) -> None:
        bound["port"] = actual_port
        if ready_callback is not None:
            ready_callback(actual_port)

    if async_:
        return _serve_async(
            spec, data, params, rng, host=host, port=port,
            ready_callback=_capture, config=config, engine=engine,
            recorder=recorder, journal_dir=journal_dir,
            chunk_size=chunk_size,
        )
    if resumable or journal_dir is not None:
        size_v_r, stats = tcp.serve_resumable_sender(
            spec.name, data, params, rng, host=host, port=port,
            ready_callback=_capture, config=config, engine=engine,
            recorder=recorder, journal_dir=journal_dir,
            chunk_size=chunk_size,
        )
        return ServeResult(size_v_r=size_v_r, port=bound["port"], stats=stats)
    size_v_r = tcp.serve(
        spec, data, params, rng, host=host, port=port,
        ready_callback=_capture, timeout=timeout, engine=engine,
        recorder=recorder, chunk_size=chunk_size,
    )
    return ServeResult(size_v_r=size_v_r, port=bound["port"], stats=None)


def _serve_async(
    spec: ProtocolSpec,
    data: Any,
    params: PublicParams,
    rng: random.Random,
    *,
    host: str,
    port: int,
    ready_callback: Callable[[int], None],
    config: Any,
    engine: Any,
    recorder: Any,
    journal_dir: Any,
    chunk_size: int | None,
) -> ServeResult:
    """One-session serve on the event-loop server (``async_=True``)."""
    from .net.server import ProtocolOffer, ProtocolServer

    offer = ProtocolOffer(
        protocol=spec.name,
        params=params,
        make_sender=lambda: spec.make_sender(data, params, rng, engine=engine),
    )
    server = ProtocolServer(
        [offer], host=host, port=port, max_sessions=1, config=config,
        journal_dir=journal_dir, recorder=recorder, chunk_size=chunk_size,
    ).start()
    try:
        ready_callback(server.port)
        cfg = server.config
        deadline_s = cfg.timeout_s * cfg.retry.max_attempts
        if not server.wait_for_sessions(count=1, timeout=deadline_s):
            raise TimeoutError(f"no client connected within {deadline_s}s")
        records = list(server.sessions.values())
        if not records:  # the only session failed at start (journal)
            raise RuntimeError("session failed during startup/recovery")
        record = records[0]
    finally:
        bound_port = server._bound_port
        server.shutdown(drain_timeout_s=server.config.timeout_s)
    if record.error is not None:
        raise record.error
    return ServeResult(
        size_v_r=record.result.size_v_r,
        port=bound_port,
        stats=record.session.stats,
    )


def connect(
    protocol: str | ProtocolSpec,
    data: Any,
    *,
    host: str = "127.0.0.1",
    port: int,
    seed: Any = None,
    rng: random.Random | None = None,
    timeout: float | None = None,
    engine: Any = None,
    recorder: Any = None,
    chunk_size: int | None = None,
    resumable: bool = False,
    journal_dir: Any = None,
    config: Any = None,
    retry_busy: int = 0,
    retry: Any = None,
) -> ConnectResult:
    """Run party R of any registered protocol as a TCP client.

    The server's handshake carries the public parameters, so R needs
    no setup beyond the address. Returns a :class:`ConnectResult`
    whose ``answer`` is the protocol's output for R.

    ``resumable=True`` (implied by ``journal_dir``) connects under the
    fault-tolerant session layer - it must match a resumable server.
    ``chunk_size`` streams R's chunkable outgoing rounds; inbound
    chunking is auto-detected either way.

    ``retry_busy`` waits out up to that many typed busy refusals from
    a saturated or draining server, sleeping the server's own retry
    hint stretched by jitter
    (:func:`~repro.net.session.busy_backoff_s`) between redials; the
    refusals actually waited out are reported as
    ``ConnectResult.busy_retries``. The default 0 keeps busy an
    immediate :class:`~repro.net.session.ServerBusyError`, exactly as
    before.

    ``retry`` is the unified alternative: a
    :class:`~repro.net.session.ClientRetryPolicy` (or a
    ``"key=value,..."`` spec string for
    :meth:`~repro.net.session.ClientRetryPolicy.parse`) governing max
    dial attempts, per-attempt timeout, a total deadline budget,
    jittered exponential backoff that honors server retry hints, and
    *which* typed failures are redialed - busy refusals and
    :class:`~repro.net.session.WorkerLost` (a supervised shard whose
    worker is mid-respawn) by default. When no explicit ``config`` is
    passed the policy also shapes the session config
    (per-attempt timeout, in-session reconnect budget). Mutually
    exclusive with ``retry_busy``.
    """
    import time

    from .net import tcp
    from .net.session import (
        ClientRetryPolicy,
        ServerBusyError,
        SessionError,
        busy_backoff_s,
    )

    spec = get_spec(protocol)
    if rng is None:
        rng = random.Random(seed)
    if retry is not None and retry_busy:
        raise ValueError("pass either retry= or retry_busy=, not both")
    if isinstance(retry, str):
        retry = ClientRetryPolicy.parse(retry)
    if retry is not None and config is None:
        config = retry.session_config()

    def _attempt() -> ConnectResult:
        if resumable or journal_dir is not None:
            answer, stats = tcp.connect_resumable_receiver(
                spec.name, data, rng, host, port, config=config,
                engine=engine, recorder=recorder, journal_dir=journal_dir,
                chunk_size=chunk_size,
            )
            return ConnectResult(answer=answer, stats=stats)
        answer = tcp.connect(
            spec, data, rng, host, port, timeout=timeout, engine=engine,
            recorder=recorder, chunk_size=chunk_size,
        )
        return ConnectResult(answer=answer, stats=None)

    if retry is not None:
        deadline = (
            time.monotonic() + retry.total_deadline_s
            if retry.total_deadline_s is not None
            else None
        )
        attempt = 0
        busy_waited = 0
        backoff_rng = random.Random(rng.getrandbits(64))
        while True:
            attempt += 1
            try:
                result = _attempt()
            except SessionError as exc:
                if not retry.retryable(exc):
                    raise
                if attempt >= retry.max_attempts:
                    raise
                delay = retry.backoff_s(
                    attempt - 1,
                    backoff_rng,
                    hint_s=getattr(exc, "retry_after_s", None),
                )
                if (
                    deadline is not None
                    and time.monotonic() + delay > deadline
                ):
                    raise
                if isinstance(exc, ServerBusyError):
                    busy_waited += 1
                time.sleep(delay)
                continue
            return ConnectResult(
                answer=result.answer,
                stats=result.stats,
                busy_retries=busy_waited,
                retries=attempt - 1,
            )

    waited = 0
    backoff_rng: random.Random | None = None
    while True:
        try:
            result = _attempt()
        except ServerBusyError as exc:
            if waited >= max(retry_busy, 0):
                raise
            waited += 1
            if backoff_rng is None:
                # Derived lazily so retry_busy=0 runs draw exactly the
                # same rng stream they always did.
                backoff_rng = random.Random(rng.getrandbits(64))
            time.sleep(busy_backoff_s(exc.retry_after_s, backoff_rng))
            continue
        return ConnectResult(
            answer=result.answer, stats=result.stats, busy_retries=waited
        )
